#!/usr/bin/env python
"""Accuracy of the approximate nonlinear iteration (Sec. 4.2.2).

Measures the deviation the stale-C substitution introduces as a function
of the adaptation time step, against the exact Algorithm 1: the replaced
term is the highest-order correction of the expansion (Eq. 12/13), so the
per-step error must shrink super-linearly with dt.

Usage::

    python examples/approximation_error.py [--steps 2]
"""
import argparse

from repro.constants import ModelParameters
from repro.core import SerialCore
from repro.grid import LatLonGrid
from repro.physics import perturbed_rest_state


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.steps = 1

    grid = LatLonGrid(nx=32, ny=16, nz=6)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)

    print(f"{grid}, {args.steps} step(s); error of the approximate "
          f"nonlinear iteration vs exact Algorithm 1\n")
    print(f"{'dt1 [s]':>8} {'max error':>12} {'signal':>10} "
          f"{'relative':>10} {'order':>7}")
    prev_err = None
    prev_dt = None
    for dt1 in (240.0, 120.0, 60.0, 30.0):
        params = ModelParameters(
            dt_adaptation=dt1, dt_advection=3 * dt1, m_iterations=3
        )
        exact = SerialCore(grid, params=params).run(state0, args.steps)
        approx = SerialCore(
            grid, params=params, approximate_c=True
        ).run(state0, args.steps)
        err = exact.max_difference(approx)
        signal = exact.max_abs()
        order = ""
        if prev_err is not None and err > 0:
            import math

            order = f"{math.log(prev_err / err) / math.log(prev_dt / dt1):.2f}"
        print(f"{dt1:>8.0f} {err:>12.3e} {signal:>10.3f} "
              f"{err / signal:>10.3e} {order:>7}")
        prev_err, prev_dt = err, dt1
    print("\n(the observed order reflects the O(dt) error of replacing "
          "C(psi^{i-1}) by the cached bundle inside the O(dt^3) term, "
          "integrated over a fixed number of steps)")


if __name__ == "__main__":
    main()
