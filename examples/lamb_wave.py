#!/usr/bin/env python
"""Lamb (external gravity) wave demo.

Excites a single zonal surface-pressure mode and watches it oscillate
under adaptation-only dynamics; compares the measured phase speed with
the analytic ``c = sqrt(R T~_s)`` of the standard atmosphere — the
restoring force implemented in the adaptation operator's barotropic
pressure term.

Usage::

    python examples/lamb_wave.py [--mode 3] [--steps 60]
"""
import argparse

import numpy as np

from repro import constants
from repro.constants import ModelParameters
from repro.core import SerialCore
from repro.grid import LatLonGrid
from repro.physics import rest_state
from repro.state.standard_atmosphere import StandardAtmosphere


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", type=int, default=3,
                        help="zonal wavenumber to excite")
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--dt", type=float, default=200.0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.steps = 8

    grid = LatLonGrid(nx=32, ny=16, nz=6)
    params = ModelParameters(
        dt_adaptation=args.dt, dt_advection=3 * args.dt, m_iterations=3,
        smoothing_beta=0.0, smoothing_beta_y_uv=0.0,
    )
    core = SerialCore(grid, params=params)

    state = rest_state(grid)
    band = np.exp(-((np.arange(grid.ny) - (grid.ny - 1) / 2) / 3.0) ** 2)
    state.psa[:] = 50.0 * band[:, None] * np.cos(args.mode * grid.lon)[None, :]

    eq = grid.ny // 2
    w = core.pad(state)
    amps = []
    print(f"mode m={args.mode}, step {3 * args.dt:.0f} s")
    width = 52
    for k in range(args.steps):
        w = core.step(w)
        s = core.strip(w)
        amp = np.fft.rfft(s.psa[eq])[args.mode].real / grid.nx
        amps.append(amp)
        bar_pos = int((amp / 60.0 + 0.5) * width)
        bar = [" "] * (width + 1)
        bar[width // 2] = "|"
        bar[min(width, max(0, bar_pos))] = "*"
        print(f"t={(k + 1) * 3 * args.dt / 3600:5.1f} h  "
              f"amp={amp:+7.2f} Pa  {''.join(bar)}")

    amps = np.array(amps)
    crossings = np.where(np.sign(amps[:-1]) != np.sign(amps[1:]))[0]
    if crossings.size:
        i0 = crossings[0]
        frac = amps[i0] / (amps[i0] - amps[i0 + 1])
        t_quarter = (i0 + frac + 1) * 3 * args.dt
        omega = 2 * np.pi / (4 * t_quarter)
        k_wave = args.mode / (
            grid.radius * np.sin(grid.theta_c[eq])
        )
        c = omega / k_wave
        c_ref = np.sqrt(constants.R_DRY * StandardAtmosphere().t_surface_ref)
        print(f"\nmeasured phase speed: {c:.1f} m/s   "
              f"analytic sqrt(R T~_s): {c_ref:.1f} m/s   "
              f"({100 * (c / c_ref - 1):+.1f}%)")
    else:
        print("\nno zero crossing found; increase --steps")


if __name__ == "__main__":
    main()
