#!/usr/bin/env python
"""Algorithm 2 vs Algorithm 1, end to end.

Runs the communication-avoiding core and the Y-Z original side by side on
the simulated cluster, and reports:

* the communication schedule (exchanges and C-collectives per step — the
  13 -> 2 and 3M -> 2M reductions);
* the logical-clock communication times;
* the numerical deviation introduced by the approximate nonlinear
  iteration (Sec. 4.2.2), compared with the serial exact reference.

Usage::

    python examples/ca_vs_original.py [--steps 4] [--nprocs 4]
"""
import argparse

from repro.constants import ModelParameters
from repro.core import DynamicalCore, SerialCore
from repro.grid import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--m", type=int, default=1,
                        help="nonlinear iterations per step (paper: 3; "
                        "small blocks need small M for the wide halos)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.steps = 2
        args.nprocs = 4

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0 * args.m, m_iterations=args.m
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    forcing = HeldSuarezForcing()

    exact = SerialCore(grid, params=params, forcing=forcing).run(
        state0, args.steps
    )

    print(f"{grid}, {args.nprocs} ranks, {args.steps} steps, M={args.m}\n")
    print(f"{'algorithm':>13} {'exch/step':>10} {'C-calls':>8} "
          f"{'msgs':>7} {'stencil[ms]':>12} {'collect[ms]':>12} "
          f"{'max err vs exact':>17}")
    for alg in ("original-yz", "ca"):
        core = DynamicalCore(
            grid, algorithm=alg, nprocs=args.nprocs, params=params,
            forcing=forcing,
        )
        out, diag = core.run(state0, args.steps)
        err = exact.max_difference(out)
        exch = diag.exchanges / args.steps
        print(
            f"{alg:>13} {exch:>10.1f} {diag.c_calls:>8} "
            f"{diag.p2p_messages:>7} {1e3 * diag.stencil_comm_time:>12.4f} "
            f"{1e3 * diag.collective_comm_time:>12.4f} {err:>17.3e}"
        )
    print(
        "\nNote: the original matches the exact serial core to round-off; "
        "the CA core's deviation is the approximate nonlinear iteration "
        "(one third of the z-collectives removed), which vanishes as "
        "dt -> 0."
    )


if __name__ == "__main__":
    main()
