"""Demo of the multi-tenant job runner (``repro.serve``).

Stands up a :class:`~repro.serve.JobServer` with crash-isolated worker
processes and walks the failure matrix end to end:

1. a clean job computes cold, then the identical resubmission is served
   from the integrity-checked cache, bit-identical;
2. a chaos job hard-crashes its worker mid-run — the supervisor respawns
   the worker and the retry resumes from the job's checkpoints;
3. a poison job exhausts its retries into a *typed* failure while the
   pool stays healthy;
4. a corrupted cache entry is quarantined and recomputed.

Run ``python examples/serve_demo.py`` (or ``--quick`` for CI).
"""
import argparse
import logging
import tempfile
from pathlib import Path

from repro.serve import JobServer, JobSpec


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="smallest settings (CI smoke)")
    ap.add_argument("--workdir", default=None,
                    help="cache/work directory (default: a temp dir)")
    args = ap.parse_args()
    logging.basicConfig(
        level=logging.WARNING, format="%(levelname)s %(message)s"
    )
    nsteps = 2 if args.quick else 4
    root = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="serve-demo-")
    )

    with JobServer(root / "cache", workers=1 if args.quick else 2,
                   heartbeat_timeout=10.0, backoff_base=0.02,
                   backoff_max=0.2) as srv:
        print(f"== serve demo ({srv.executor} workers, cache at {root}) ==")

        spec = JobSpec(name="tenant-a", nsteps=nsteps)
        cold = srv.submit(spec).result(timeout=300)
        print(f"cold run:   {cold.status}, {cold.latency_s * 1e3:.0f} ms, "
              f"digest {cold.state_digest[:12]}")
        hit = srv.submit(spec).result(timeout=300)
        print(f"cache hit:  {hit.status}, {hit.latency_s * 1e3:.0f} ms, "
              f"bit-identical={hit.state_digest == cold.state_digest}")

        crash = srv.submit(JobSpec(
            name="tenant-b", nsteps=nsteps,
            chaos={"kind": "crash", "attempts": [1]},
        )).result(timeout=300)
        print(f"crash job:  {crash.status} after {crash.attempts} attempts "
              f"(resumed from step {crash.resumed_from_step}; "
              f"notes: {crash.notes})")

        poison = srv.submit(JobSpec(
            name="tenant-c", nsteps=nsteps, chaos={"kind": "poison"},
        )).result(timeout=300)
        print(f"poison job: {poison.status} ({poison.error_type}) after "
              f"{poison.attempts} attempts — pool stays up")

        srv.cache.corrupt_entry_for_test(cold.key)
        redo = srv.submit(spec).result(timeout=300)
        print(f"corrupted entry: quarantined "
              f"{len(srv.cache.quarantined())} file(s), recomputed "
              f"bit-identical={redo.state_digest == cold.state_digest}")

        print("-- counters --")
        for name in ("serve_jobs_submitted_total", "serve_cache_hits_total",
                     "serve_cache_corrupt_total",
                     "serve_worker_restarts_total"):
            print(f"  {name}: {srv.counter_total(name):g}")
        print(f"  serve_retries_total: "
              f"{srv.counter_total('serve_retries_total'):g}")


if __name__ == "__main__":
    main()
