#!/usr/bin/env python
"""Held-Suarez spin-up: the paper's benchmark workload (Sec. 5.1).

Runs the dry H-S test from rest and prints the developing zonal-mean
circulation: the subtropical jets, the equator-pole temperature contrast
and the surface-pressure structure.  With ``--days 30`` (default 5 for a
quick demo) the westerly jets become clearly visible.

Usage::

    python examples/held_suarez_climate.py [--days 5] [--ny 24]
"""
import argparse

from repro.analysis.climatology import ClimatologyAccumulator
from repro.constants import ModelParameters
from repro.core import SerialCore
from repro.grid import LatLonGrid
from repro.physics import HeldSuarezForcing, perturbed_rest_state


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=5.0)
    parser.add_argument("--nx", type=int, default=48)
    parser.add_argument("--ny", type=int, default=24)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--spinup-days", type=float, default=None,
                        help="days excluded from the time mean "
                        "(default: half the run)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.days = 0.05
        args.nx = 32
        args.ny = 16
        args.nz = 6
        args.spinup_days = 0.02

    grid = LatLonGrid(nx=args.nx, ny=args.ny, nz=args.nz)
    params = ModelParameters(dt_adaptation=100.0, dt_advection=300.0)
    core = SerialCore(grid, params=params, forcing=HeldSuarezForcing())
    state = perturbed_rest_state(grid, amplitude_k=2.0)
    acc = ClimatologyAccumulator(grid, core.sigma)

    nsteps = int(args.days * 86400 / params.dt_advection)
    spinup_days = (
        args.spinup_days if args.spinup_days is not None else args.days / 2
    )
    spinup_steps = int(spinup_days * 86400 / params.dt_advection)
    print(f"running the Held-Suarez test: {args.days:g} model days "
          f"({nsteps} steps) on {grid}; averaging after day "
          f"{spinup_days:g}")

    w = core.pad(state)
    report_every = max(1, nsteps // 5)
    for k in range(1, nsteps + 1):
        w = core.step(w)
        if k > spinup_steps:
            acc.add(core.strip(w))
        if k % report_every == 0 and acc.samples > 0:
            print(f"\n=== through day {k * params.dt_advection / 86400:.1f} ===")
            print(acc.finalize().render())


if __name__ == "__main__":
    main()
