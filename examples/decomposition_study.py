#!/usr/bin/env python
"""Domain-decomposition study: the Section 4.2 trade-off, live.

Runs the original algorithm (Algorithm 1) under the X-Y, Y-Z and 3-D
decompositions on the simulated cluster and reports the logical-clock
communication breakdown; then evaluates the calibrated projection model at
paper scale (720x360x30, 10 model years) for the same comparison —
Figures 1 and 6 in miniature.

Usage::

    python examples/decomposition_study.py [--nprocs 8] [--steps 2]
"""
import argparse

from repro.analysis.lower_bounds import (
    fourier_filter_lower_bound,
    summation_lower_bound,
)
from repro.constants import ModelParameters
from repro.core import DynamicalCore
from repro.grid import LatLonGrid
from repro.grid.latlon import paper_grid
from repro.perf.model import PAPER_PROC_SWEEP, PerformanceModel
from repro.physics import HeldSuarezForcing, perturbed_rest_state


def executed_comparison(nprocs: int, steps: int) -> None:
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    print(f"\n-- executed on the simulated cluster: {grid}, "
          f"{nprocs} ranks, {steps} steps --")
    print(f"{'algorithm':>14} {'decomp':>9} {'stencil[ms]':>12} "
          f"{'collective[ms]':>15} {'makespan[ms]':>13} {'msgs':>7}")
    for alg in ("original-xy", "original-yz", "original-3d"):
        core = DynamicalCore(
            grid, algorithm=alg, nprocs=nprocs, params=params,
            forcing=HeldSuarezForcing(),
        )
        out, diag = core.run(state0, steps)
        d = core.config.resolve_decomposition()
        assert out.isfinite()
        print(
            f"{alg:>14} {f'{d.px}x{d.py}x{d.pz}':>9} "
            f"{1e3 * diag.stencil_comm_time:>12.3f} "
            f"{1e3 * diag.collective_comm_time:>15.3f} "
            f"{1e3 * diag.makespan:>13.3f} {diag.p2p_messages:>7}"
        )


def lower_bound_table() -> None:
    g = paper_grid()
    circles = g.ny * g.nz  # the filter runs on every latitude circle
    print("\n-- Theorems 4.1 / 4.2: per-processor data-movement lower "
          "bounds (words) --")
    print(f"{'p_x or p_z':>11} {'F (Thm 4.1, all circles)':>26} "
          f"{'C (Thm 4.2)':>14}")
    for p in (1, 2, 4, 8, 16):
        wf = fourier_filter_lower_bound(g.nx, p) * circles
        wc = summation_lower_bound(g.nx, g.ny, min(p, g.nz // 2))
        print(f"{p:>11} {wf:>26.0f} {wc:>14.0f}")
    print("-> the filter term is the high-order one; p_x = 1 removes it "
          "entirely: the Y-Z decomposition (Sec. 4.2.1)")


def projected_comparison() -> None:
    pm = PerformanceModel(paper_grid())
    print("\n-- projected at paper scale (10 model years, 720x360x30) --")
    print(f"{'p':>6} {'algorithm':>13} {'collective[s]':>14} "
          f"{'stencil[s]':>11} {'total[s]':>10} {'comm %':>7}")
    for p in PAPER_PROC_SWEEP:
        for alg in ("original-xy", "original-yz"):
            t = pm.timing(alg, p)
            print(
                f"{p:>6} {alg:>13} {t.collective_comm_time:>14.0f} "
                f"{t.stencil_comm_time:>11.0f} {t.total_time:>10.0f} "
                f"{100 * t.comm_fraction:>6.1f}%"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=8)
    parser.add_argument("--steps", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.nprocs = 4
        args.steps = 1
    lower_bound_table()
    executed_comparison(args.nprocs, args.steps)
    projected_comparison()


if __name__ == "__main__":
    main()
