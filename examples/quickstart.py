#!/usr/bin/env python
"""Quickstart: run the dynamical core for a few hours of model time.

Builds a small latitude-longitude mesh, initializes a resting atmosphere
with a warm bump, runs the serial reference core with Held-Suarez forcing,
and prints per-step diagnostics.

Usage::

    python examples/quickstart.py [--steps N] [--nx 48 --ny 24 --nz 8]
"""
import argparse

import numpy as np

from repro.analysis.energy import energy_budget
from repro.constants import ModelParameters
from repro.core import SerialCore
from repro.grid import LatLonGrid, cfl_report
from repro.physics import HeldSuarezForcing, perturbed_rest_state


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--nx", type=int, default=48)
    parser.add_argument("--ny", type=int, default=24)
    parser.add_argument("--nz", type=int, default=8)
    parser.add_argument("--dt", type=float, default=100.0,
                        help="adaptation sub-step [s]")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    args = parser.parse_args()
    if args.quick:
        args.steps = 3
        args.nx = 32
        args.ny = 16
        args.nz = 6

    grid = LatLonGrid(nx=args.nx, ny=args.ny, nz=args.nz)
    params = ModelParameters(
        dt_adaptation=args.dt, dt_advection=3 * args.dt, m_iterations=3
    )
    print(f"grid: {grid}   step: {params.dt_advection:.0f} s")

    report = cfl_report(grid, params.dt_adaptation)
    print(
        f"CFL: zonal(worst/pole)={report.cfl_zonal_worst:.2f} "
        f"zonal(equator)={report.cfl_zonal_equator:.3f} "
        f"meridional={report.cfl_meridional:.3f} "
        f"-> stable with polar filter: {report.stable_filtered}"
    )

    core = SerialCore(grid, params=params, forcing=HeldSuarezForcing())
    state = perturbed_rest_state(grid, amplitude_k=2.0)

    def monitor(k: int, s) -> None:
        if k % 5 == 0 or k == 1:
            e = energy_budget(s, grid)
            print(
                f"step {k:>4}  t={k * params.dt_advection / 3600:6.1f} h  "
                f"max|u'|={np.abs(s.U).max():7.3f} m/s  "
                f"max|p'_s|={np.abs(s.psa).max():7.1f} Pa  "
                f"KE={e.kinetic:9.3e}"
            )

    final = core.run(state, args.steps, monitor=monitor)
    print(f"\ndone: {core.steps_taken} steps, {core.c_calls} C-operator "
          f"applications, final state finite: {final.isfinite()}")


if __name__ == "__main__":
    main()
