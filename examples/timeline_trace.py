#!/usr/bin/env python
"""Timeline traces: watch the overlap of Algorithm 2, rank by rank.

Runs the Y-Z original and the communication-avoiding core with event
tracing enabled and renders text Gantt charts of each rank's logical
timeline — compute (#), collective waits (=) and receive waits (~).  The
original's 13 exchange stalls per step versus the CA core's 2 are plainly
visible.

Usage::

    python examples/timeline_trace.py [--steps 1] [--nprocs 4] \
        [--chrome-trace out.json]

``--chrome-trace`` additionally exports both timelines to one
Chrome-trace JSON (open in ``chrome://tracing`` or
https://ui.perfetto.dev), one process lane per algorithm.
"""
import argparse

from repro.constants import ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.grid import Decomposition, LatLonGrid
from repro.obs.exporters import logical_events, write_chrome_trace
from repro.physics import perturbed_rest_state
from repro.simmpi import MachineModel, run_spmd
from repro.simmpi.trace import busy_fraction, render_gantt

#: a communication-heavy machine (high latency, fast cores) — the regime
#: of the paper's Figure 1, where the CA schedule pays off; at toy problem
#: sizes a laptop-like model would be compute-bound instead
COMM_HEAVY = MachineModel(
    alpha=2.0e-5, beta=2.0e-9, gamma=1.0e-9, seconds_per_point=4.0e-10
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1)
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    parser.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                        help="export both timelines to a Chrome-trace JSON")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread",
                        help="rank execution backend; 'process' runs one OS "
                             "process per rank over shared-memory rings "
                             "(identical logical timelines, real multicore)")
    args = parser.parse_args()
    if args.quick:
        args.steps = 1
        args.nprocs = 4

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    if args.nprocs == 4:
        decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
    else:
        from repro.grid.decomposition import yz_decomposition

        decomp = yz_decomposition(grid.nx, grid.ny, grid.nz, args.nprocs)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)

    chrome_events = []
    for pid, (name, program) in enumerate((
        ("original (Y-Z, Algorithm 1)", original_rank_program),
        ("communication-avoiding (Algorithm 2)", ca_rank_program),
    ), start=1):
        cfg = DistributedConfig(
            grid=grid, decomp=decomp, params=params, nsteps=args.steps,
        )
        res = run_spmd(
            decomp.nranks, program, cfg, state0,
            machine=COMM_HEAVY, trace=True, backend=args.backend,
        )
        print(f"\n=== {name} ===  (makespan {max(res.clocks):.6f} s)")
        print(render_gantt(res.traces, width=args.width))
        for rec in res.traces:
            print(
                f"  rank {rec.rank}: compute "
                f"{100 * busy_fraction(rec, 'compute'):.0f}%  "
                f"collective {100 * busy_fraction(rec, 'collective'):.0f}%  "
                f"recv-wait {100 * busy_fraction(rec, 'recv_wait'):.0f}%"
            )
        if args.chrome_trace:
            chrome_events.extend(
                logical_events(res.traces, pid=pid, process_name=name)
            )

    if args.chrome_trace:
        out = write_chrome_trace(args.chrome_trace, chrome_events)
        print(f"\nChrome trace written to {out} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
