#!/usr/bin/env python
"""Fault injection and checkpoint/restart recovery, end to end.

Part 1 — resilience: run the communication-avoiding core with a fault
plan that crashes rank 1 partway through the integration.  The resilient
driver checkpoints after every chunk, detects the crash, rolls back to
the last checkpoint and re-runs the chunk; the recovered run ends
bit-identical to a fault-free run of the same chunked driver.

Part 2 — perturbed schedules: run one step under a degraded-network
window plus a straggler rank, with tracing on, and render the Gantt
timeline next to the clean schedule.  The injected X marks and the
stretched compute/wait spans show exactly where the perturbation landed.

Chaos mode (``--chaos``): run the escalation ladder under an aggressive
seeded fault plan — background message drops and corruption on every
link plus one rank crash — and verify that the whole run self-heals
*without touching disk*: transients are absorbed by message-level
retransmission and the crash by one in-memory buddy restore.  The
process exits nonzero if any disk rollback happened or the result
diverged, which makes it a CI gate; with ``--trace-dir`` the
observability trace and event log are written there as artifacts.

Rank-loss mode (``--rankloss``): the elastic-recovery gate.  A node
loss permanently removes rank 1 of 4 mid-run — on the process backend
this is a real SIGKILL of the rank's OS process — and the run must
complete on the shrunken 3-rank layout, bit-identical to a fault-free
run re-decomposed at the same chunk boundary, with zero leaked shared
memory segments and a flight-recorder dump naming the lost rank.  Exits
nonzero on any miss, which makes it the CI permanent-loss gate.

Usage::

    python examples/fault_tolerance.py [--steps 4] [--nprocs 4]
    python examples/fault_tolerance.py --chaos --trace-dir chaos-artifacts/
    python examples/fault_tolerance.py --rankloss --backend process
"""
import argparse
import sys
import tempfile
from pathlib import Path

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore
from repro.core.resilience import ResilienceConfig
from repro.grid import Decomposition, LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import (
    CrashSpec,
    DegradedWindow,
    FaultPlan,
    LinkFault,
    MachineModel,
    Straggler,
    run_spmd,
)
from repro.simmpi.trace import render_gantt

#: communication-heavy machine so waits are visible in the Gantt chart
COMM_HEAVY = MachineModel(
    alpha=2.0e-5, beta=2.0e-9, gamma=1.0e-9, seconds_per_point=4.0e-10
)


def demo_recovery(args) -> None:
    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    core = DynamicalCore(
        grid, algorithm="ca", nprocs=args.nprocs, params=params,
        backend=args.backend,
    )
    if args.backend == "process":
        print("note: fault-injected attempts always run on the thread "
              "backend; --backend process applies to fault-free chunks")

    crash_chunk = max(2, args.steps // 2)
    plan = FaultPlan(
        seed=0,
        crashes=(CrashSpec(rank=1, at_attempt=crash_chunk, at_call=5),),
    )
    print(f"== Part 1: crash rank 1 in chunk {crash_chunk} of {args.steps}, "
          f"recover from checkpoint ==")
    with tempfile.TemporaryDirectory() as dref, \
            tempfile.TemporaryDirectory() as dcr:
        ref, _, _ = core.run_resilient(
            state0, args.steps,
            ResilienceConfig(checkpoint_dir=dref, checkpoint_interval=1),
        )
        rec, diag, report = core.run_resilient(
            state0, args.steps,
            ResilienceConfig(
                checkpoint_dir=dcr, checkpoint_interval=1, faults=plan
            ),
        )
        print(report.describe())
        for ev in report.fault_events:
            print(f"  fault event: rank {ev.rank} {ev.kind} at t={ev.t:.3e} "
                  f"(attempt {ev.attempt}) {ev.detail}")
        diff = ref.max_difference(rec)
        print(f"max |recovered - fault-free| = {diff:.3e}  "
              f"({'bit-identical' if diff == 0.0 else 'DIVERGED'})")
        print(f"total makespan over {len(report.chunk_makespans)} committed "
              f"chunks: {diag.makespan:.3e} simulated s")


def demo_chaos(args) -> int:
    """Self-healing under drops + corruption + one crash; 0 on success."""
    from repro.obs import ObsConfig
    from repro.obs.flightrec import FlightRecorder

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)

    observe: ObsConfig | bool = True
    recorder = None
    if args.trace_dir:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        observe = ObsConfig(
            chrome_trace=str(trace_dir / "chaos_trace.json"),
            jsonl=str(trace_dir / "chaos_events.jsonl"),
            # collapsed-stack flamegraph of the chaos run (CI artifact)
            profile=str(trace_dir / "chaos_profile.collapsed"),
        )
        recorder = FlightRecorder(
            trace_dir / "chaos_flight.json", meta={"gate": "chaos"}
        )

    chaos = FaultPlan(
        seed=7,
        crashes=(CrashSpec(rank=1, at_attempt=2, at_call=5),),
        link_faults=(LinkFault(
            drop_probability=0.1, corrupt_probability=0.1,
        ),),
    )
    print(f"== Chaos: 10% drops + 10% corruption on every link, rank 1 "
          f"crashes in chunk 2 of {args.steps} ==")
    with tempfile.TemporaryDirectory() as dref, \
            tempfile.TemporaryDirectory() as dch:
        ref_core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=args.nprocs, params=params,
            backend=args.backend,
        )
        ref, _, _ = ref_core.run_resilient(
            state0, args.steps,
            ResilienceConfig(checkpoint_dir=dref, checkpoint_interval=1),
        )
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=args.nprocs,
            params=params, observe=observe,
        )
        rec, _, report = core.run_resilient(
            state0, args.steps,
            ResilienceConfig(
                checkpoint_dir=dch, checkpoint_interval=1, faults=chaos
            ),
        )
        print(report.describe())
        reg = core.observation.registry
        retransmits = sum(
            reg.counter("simmpi_retransmits_total", rank=str(r)).value
            for r in range(args.nprocs)
        )
        diff = ref.max_difference(rec)
        print(f"retransmits absorbed in place:  {retransmits:.0f}")
        print(f"buddy restores (diskless):      {report.buddy_restores}")
        print(f"disk rollbacks:                 {report.disk_rollbacks}")
        print(f"max |recovered - fault-free| = {diff:.3e}  "
              f"({'bit-identical' if diff == 0.0 else 'DIVERGED'})")
        if args.trace_dir:
            print(f"obs artifacts written to {args.trace_dir}")
        ok = (
            diff == 0.0
            and report.buddy_restores == 1
            and report.disk_rollbacks == 0
        )
        if recorder is not None:
            recorder.note(
                "chaos-run", retransmits=int(retransmits),
                buddy_restores=report.buddy_restores,
                disk_rollbacks=report.disk_rollbacks, max_diff=diff,
            )
            recorder.dump(f"chaos gate {'PASS' if ok else 'FAIL'}")
        print("CHAOS GATE:", "PASS — healed without touching disk"
              if ok else "FAIL")
        return 0 if ok else 1


def demo_rankloss(args) -> int:
    """Permanent 1-of-4 loss healed by the elastic tier; 0 on success."""
    from repro.obs import flightrec
    from repro.obs.flightrec import load_dump
    from repro.simmpi import NodeLoss
    from repro.simmpi.shm import live_segment_names

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    plan = FaultPlan(seed=7, node_losses=(NodeLoss(rank=1, at_call=30),))
    chunk = 2

    print(f"== Rank loss: rank 1 of {args.nprocs} permanently lost mid-run "
          f"({args.backend} backend), policy=shrink ==")
    with tempfile.TemporaryDirectory() as droot:
        flight_dir = Path(droot) / "flight"
        prev = flightrec.get_recorder()
        flightrec.install(
            flight_dir / "run.json", signals=False, logs=False,
        )
        try:
            core = DynamicalCore(
                grid, algorithm="original-yz", nprocs=args.nprocs,
                params=params, backend=args.backend,
            )
            rec, _, report = core.run_resilient(
                state0, args.steps,
                ResilienceConfig(
                    checkpoint_dir=Path(droot) / "ck",
                    checkpoint_interval=chunk,
                    rank_loss_policy="shrink", faults=plan,
                ),
            )
        finally:
            flightrec._installed = prev
        print(report.describe())
        rl = report.rank_losses[0]
        print(f"  lost {rl.lost} at step {rl.step}: policy {rl.policy}, "
              f"epoch {rl.epoch}, restored via {rl.source}, "
              f"mttr {rl.mttr:.3e} s, now {rl.new_size} ranks")

        # reference: fault-free 4-rank run to the loss boundary, then a
        # fault-free run at the recovered layout — same chunking
        transport = ResilienceConfig(checkpoint_dir="/unused").transport
        ref, step = state0, 0
        for nprocs, until in ((args.nprocs, rl.step),
                              (report.final_nranks, args.steps)):
            seg = DynamicalCore(
                grid, algorithm="original-yz", nprocs=nprocs, params=params
            )
            while step < until:
                c = min(chunk, args.steps - step)
                ref, _, _ = seg._run_once(
                    ref, c, faults=None, verify_checksums=True,
                    transport=transport, timeout=None, step0=step,
                )
                step += c
        diff = rec.max_difference(ref)

        leaked = live_segment_names()
        dumps = sorted(flight_dir.glob("*lostrank*"))
        dump_ok = args.backend != "process" or (
            bool(dumps) and "rank 1" in load_dump(dumps[0])["reason"]
        )
        print(f"max |recovered - fault-free@new-layout| = {diff:.3e}  "
              f"({'bit-identical' if diff == 0.0 else 'DIVERGED'})")
        print(f"leaked shm segments:            {leaked or 'none'}")
        if args.backend == "process":
            print(f"flight dump from killed rank:   "
                  f"{dumps[0].name if dumps else 'MISSING'}")
        ok = (
            diff == 0.0
            and report.final_nranks == args.nprocs - 1
            and report.membership_epoch == 1
            and not leaked
            and dump_ok
        )
        print("RANK-LOSS GATE:", "PASS — healed on the shrunken layout"
              if ok else "FAIL")
        return 0 if ok else 1


def demo_perturbed_schedule(args) -> None:
    from repro.core.comm_avoiding import ca_rank_program
    from repro.core.distributed import DistributedConfig

    grid = LatLonGrid(nx=32, ny=16, nz=8)
    params = ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    decomp = Decomposition(grid.nx, grid.ny, grid.nz, 1, 2, 2)
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    dcfg = DistributedConfig(
        grid=grid, decomp=decomp, params=params, sigma=None, nsteps=1
    )

    # the clean reference honours --backend; the perturbed run injects
    # faults and therefore always uses the thread backend
    clean = run_spmd(
        decomp.nranks, ca_rank_program, dcfg, state0,
        machine=COMM_HEAVY, trace=True, backend=args.backend,
    )
    plan = FaultPlan(
        seed=0,
        degraded=(DegradedWindow(
            t_start=0.0, t_end=clean.makespan, beta_factor=8.0,
        ),),
        stragglers=(Straggler(rank=2, slowdown=2.5),),
    )
    perturbed = run_spmd(
        decomp.nranks, ca_rank_program, dcfg, state0,
        machine=COMM_HEAVY, trace=True, faults=plan,
    )
    print("\n== Part 2: degraded network (beta x8) + straggler rank 2 ==")
    print("clean schedule:")
    print(render_gantt(clean.traces, width=args.width))
    print("perturbed schedule (same time axis scale markers, X = fault):")
    print(render_gantt(perturbed.traces, width=args.width))
    slowdown = perturbed.makespan / clean.makespan
    print(f"makespan: clean {clean.makespan:.3e} s -> perturbed "
          f"{perturbed.makespan:.3e} s  ({slowdown:.2f}x slower)")
    nevents = len(perturbed.fault_events())
    print(f"fault events recorded across ranks: {nevents}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (overrides size flags)")
    parser.add_argument("--chaos", action="store_true",
                        help="run only the chaos gate: drops + corruption "
                             "+ one crash must heal with zero disk rollbacks")
    parser.add_argument("--rankloss", action="store_true",
                        help="run only the rank-loss gate: a permanent "
                             "1-of-4 loss must heal elastically (shrink), "
                             "bit-identical, no shm leaks")
    parser.add_argument("--trace-dir", default=None,
                        help="with --chaos: write obs trace artifacts here")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread",
                        help="rank backend for fault-FREE runs and for "
                             "node-loss-only plans (a node loss SIGKILLs "
                             "the process rank); other injected faults "
                             "always use the thread backend")
    args = parser.parse_args()
    if args.quick:
        args.steps = 3
        args.nprocs = 4
    if args.chaos:
        sys.exit(demo_chaos(args))
    if args.rankloss:
        sys.exit(demo_rankloss(args))
    demo_recovery(args)
    demo_perturbed_schedule(args)


if __name__ == "__main__":
    main()
