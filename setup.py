"""Legacy shim so `pip install -e .` works offline (no wheel package
available for PEP-517 editable builds); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
