"""Physical constants and model parameters of the IAP-AGCM 4.0 dynamical core.

All values are the ones quoted in Section 2.1 of the paper (Xiao et al.,
ICPP 2018) or standard atmospheric-science values where the paper defers to
"the gas constant for dry air" etc.  Units are SI unless noted.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

#: Earth radius [m].
EARTH_RADIUS = 6.371e6

#: Angular velocity of the earth rotation [rad/s].
EARTH_OMEGA = 7.292e-5

#: Gas constant for dry air [J kg^-1 K^-1].
R_DRY = 287.04

#: Specific heat of dry air at constant pressure [J kg^-1 K^-1].
CP_DRY = 1004.64

#: kappa = R/cp for dry air (dimensionless).
KAPPA = R_DRY / CP_DRY

#: Characteristic velocity of gravity-wave propagation in the standard
#: atmosphere [m/s]; the paper's ``b`` in the transform (1).
B_GRAVITY_WAVE = 87.8

#: Reference surface pressure p0 [Pa] (1000 hPa in the paper).
P_REFERENCE = 1000.0e2

#: Pressure at the model top layer p_t [Pa] (2.2 hPa in the paper).
P_TOP = 2.2e2

#: Surface dissipation coefficient k_sa of the D_sa term (paper Sec. 2.1).
K_SA = 0.1

#: Gravitational acceleration [m/s^2].
GRAVITY = 9.80616

#: Reference sea-level temperature of the standard stratification [K].
T_SEA_LEVEL = 288.15

#: Standard-stratification lapse rate [K/m].
LAPSE_RATE = 6.5e-3


@dataclass(frozen=True)
class ModelParameters:
    """Tunable parameters of one dynamical-core configuration.

    Attributes mirror the symbols of Algorithm 1 / Algorithm 2:

    * ``m_iterations`` -- the paper's ``M``, the number of nonlinear
      iterations of the adaptation process per model step (paper uses 3).
    * ``dt_adaptation`` -- the adaptation sub-step ``dt_1`` [s].
    * ``dt_advection`` -- the advection step ``dt_2`` [s]; the paper
      requires ``dt_1 << dt_2``.
    * ``delta_p`` / ``delta_c`` -- the switches of Eq. (2); ``delta_p = 0``
      selects the standard-stratification approximation the IAP core uses.
    * ``filter_latitude`` -- poleward of this latitude [rad] the Fourier
      polar filter is applied.
    * ``smoothing_beta`` -- the ``beta`` weight of the smoothing operator
      ``S`` (Sec. 4.3.2).
    """

    m_iterations: int = 3
    dt_adaptation: float = 60.0
    dt_advection: float = 180.0  # = m_iterations * dt_adaptation (consistent split)
    delta_p: float = 0.0
    delta_c: float = 0.0
    filter_latitude: float = math.radians(70.0)
    #: polar-filter damping profile: "quadratic" | "sharp" | "exponential"
    #: (see repro.operators.filter.damping_factors)
    filter_profile: str = "quadratic"
    smoothing_beta: float = 0.1
    #: extra meridional 4th-difference damping of U/V (stability extension;
    #: 0 reproduces the paper's P1 exactly — see operators/smoothing.py)
    smoothing_beta_y_uv: float = 0.1

    def __post_init__(self) -> None:
        if self.m_iterations < 1:
            raise ValueError("m_iterations must be >= 1")
        if self.dt_adaptation <= 0 or self.dt_advection <= 0:
            raise ValueError("time steps must be positive")
        if not 0.0 <= self.filter_latitude < math.pi / 2:
            raise ValueError("filter_latitude must be in [0, pi/2)")
        if self.filter_profile not in ("quadratic", "sharp", "exponential"):
            raise ValueError(f"unknown filter_profile {self.filter_profile!r}")
        if not 0.0 <= self.smoothing_beta <= 1.0:
            raise ValueError("smoothing_beta must be in [0, 1]")


#: Default parameter set used throughout tests and benchmarks.
DEFAULT_PARAMETERS = ModelParameters()


#: Surface-pressure dissipation diffusivity [m^2/s] multiplying ``k_sa`` in
#: our concrete D_sa discretization (the paper gives the dimensionless
#: ``k_sa = 0.1`` but not the diffusivity scale; this value gives a weak,
#: stabilizing damping of p'_sa consistent with its role).
NU_SA = 1.0e5

#: The ``kappa*`` weight of the surface-pressure equation's D_sa term.
KAPPA_STAR = 1.0
