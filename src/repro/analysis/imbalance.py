"""Load-imbalance diagnostics of the latitude-longitude mesh.

Section 2.2 notes "the latitude-longitude mesh may not maintain
load-balance due to the non-uniformity"; the concrete culprit is the polar
Fourier filter, whose work concentrates on the ranks owning polar rows.
These helpers quantify the imbalance per decomposition — the hidden cost
inside the measured collective times of Figure 6.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import ModelParameters
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid


@dataclass(frozen=True)
class ImbalanceReport:
    """Filter-work distribution over the ranks of one decomposition."""

    decomposition: Decomposition
    work_per_rank: np.ndarray  # filter row-points owned by each rank
    active_ranks: int

    @property
    def imbalance_factor(self) -> float:
        """max/mean work ratio (1.0 = perfectly balanced).

        The mean is over *all* ranks: idle ranks make the filter load
        imbalance worse, not better.
        """
        mean = self.work_per_rank.mean()
        if mean == 0:
            return 1.0
        return float(self.work_per_rank.max() / mean)

    @property
    def idle_fraction(self) -> float:
        """Share of ranks with no filter work at all."""
        return float((self.work_per_rank == 0).mean())


def filter_imbalance(
    grid: LatLonGrid,
    decomp: Decomposition,
    params: ModelParameters | None = None,
) -> ImbalanceReport:
    """Distribute the polar-filter row work over the ranks of ``decomp``.

    Work unit: one (row, level) pair whose latitude circle is filtered;
    each costs one ``nx log nx`` FFT (or a share of it plus the x-line
    collective when longitude is split — the collective synchronizes the
    whole line, so the line's work is attributed to each member).
    """
    params = params or ModelParameters()
    sin_f = math.cos(params.filter_latitude)
    filtered_row = np.sin(grid.theta_c) < sin_f  # (ny,)
    work = np.zeros(decomp.nranks)
    for rank in range(decomp.nranks):
        ext = decomp.extent(rank)
        rows = int(filtered_row[ext.y0: ext.y1].sum())
        work[rank] = rows * ext.nz
    return ImbalanceReport(
        decomposition=decomp,
        work_per_rank=work,
        active_ranks=int((work > 0).sum()),
    )


def compare_decompositions(
    grid: LatLonGrid, nprocs: int, params: ModelParameters | None = None
) -> dict[str, ImbalanceReport]:
    """Filter imbalance of the X-Y vs Y-Z decomposition at ``nprocs``."""
    from repro.grid.decomposition import xy_decomposition, yz_decomposition

    return {
        "xy": filter_imbalance(
            grid, xy_decomposition(grid.nx, grid.ny, grid.nz, nprocs), params
        ),
        "yz": filter_imbalance(
            grid, yz_decomposition(grid.nx, grid.ny, grid.nz, nprocs), params
        ),
    }
