"""Diagnostics: energy conservation, communication lower bounds and the
Section 5.3 asymptotic cost formulas."""
from repro.analysis.energy import EnergyBudget, energy_budget
from repro.analysis.lower_bounds import (
    fourier_filter_lower_bound,
    summation_lower_bound,
    section53_costs,
    Sec53Costs,
)
from repro.analysis.scaling import (
    ScalingPoint,
    ca_advantage_persists,
    scaling_report,
    strong_scaling,
)
from repro.analysis.climatology import Climatology, ClimatologyAccumulator

__all__ = [
    "EnergyBudget",
    "energy_budget",
    "fourier_filter_lower_bound",
    "summation_lower_bound",
    "section53_costs",
    "Sec53Costs",
    "ScalingPoint",
    "ca_advantage_persists",
    "scaling_report",
    "strong_scaling",
    "Climatology",
    "ClimatologyAccumulator",
]
