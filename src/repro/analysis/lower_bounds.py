"""Communication lower bounds (Theorems 4.1 / 4.2) and the Section 5.3
asymptotic cost formulas.

These closed forms are what Section 4.2 uses to *choose* the Y-Z
decomposition (the FFT term dominates the reduction term), and what
Section 5.3 uses to argue ``W_XY >> W_YZ > W_CA`` and
``S_XY > S_YZ > S_CA``.  The benchmark ``bench_sec53_theory`` evaluates
them at paper scale; the tests check monotonicity, limits and consistency
with the instrumented simulated-MPI counters.
"""
from __future__ import annotations

import math
from dataclasses import dataclass


def fourier_filter_lower_bound(nx: int, px: int) -> float:
    """Theorem 4.1: words moved per processor by the ``n_x``-input Fourier
    filtering on ``p_x`` processors.

    ``W = Omega(2 n_x log n_x / (p_x log(n_x / p_x)) * eta)`` with
    ``eta = 0`` for ``p_x = 1`` (the whole circle is local) — the
    observation behind choosing ``p_x = 1``.
    """
    if not 1 <= px <= nx:
        raise ValueError("need 1 <= px <= nx")
    if px == 1:
        return 0.0
    if px == nx:
        # log(nx/px) = 0: the bound degenerates; use one input per rank
        return 2.0 * nx * math.log2(nx) / px
    return 2.0 * nx * math.log2(nx) / (px * math.log2(nx / px))


def summation_lower_bound(nx: int, ny: int, pz: int) -> float:
    """Theorem 4.2: words moved by any parallel execution of the summation
    operator ``C``: ``W = Omega(2 (p_z - 1) n_x n_y)``.

    Attained by ring algorithms (Thakur et al. 2005, paper ref. [19]).
    """
    if pz < 1:
        raise ValueError("pz must be >= 1")
    return 2.0 * (pz - 1) * nx * ny


def filter_dominates_summation(
    nx: int, ny: int, nz: int, px: int, py: int, pz: int
) -> bool:
    """The Sec. 4.2 dominance check:
    ``n_x n_y n_z log n_x / (p_x log(n_x/p_x)) >> (p_z - 1) n_x n_y``.

    Returns True when the (per-level) filter term exceeds the summation
    term, i.e. when avoiding the x-collective is the right call.
    """
    if px == 1:
        return False  # filter term vanished; nothing to dominate
    filter_term = (
        nx * ny * nz * math.log2(nx) / (px * math.log2(max(2.0, nx / px)))
    )
    summation_term = (pz - 1) * nx * ny
    return filter_term > summation_term


@dataclass(frozen=True)
class Sec53Costs:
    """Per-processor communication volume ``W`` and synchronization count
    ``S`` of one algorithm over ``K`` steps (Sec. 5.3 Theta-expressions,
    evaluated with unit constants)."""

    algorithm: str
    W: float
    S: float


def section53_costs(
    algorithm: str,
    nx: int,
    ny: int,
    nz: int,
    px: int,
    py: int,
    pz: int,
    m_iterations: int = 3,
    nsteps: int = 1,
) -> Sec53Costs:
    """Evaluate the Section 5.3 formulas.

    * ``W_CA  = Theta(2 M K  n_x (n_y/p_y)(n_z/p_z) log p_z)``
    * ``W_YZ  = Theta(3 M K  n_x (n_y/p_y)(n_z/p_z) log p_z)``
    * ``W_XY  = Theta(6 M K  n_z (n_y/p_y)(n_x/p_x) log p_x)``
    * ``S_CA = Theta((2M + 2) K)``, ``S_YZ = Theta((6M + 4) K)``,
      ``S_XY = Theta((9M + 10) K)``.
    """
    M, K = m_iterations, nsteps
    if algorithm == "ca":
        w = 2 * M * K * nx * (ny / py) * (nz / pz) * math.log2(max(2, pz))
        s = (2 * M + 2) * K
    elif algorithm == "yz":
        w = 3 * M * K * nx * (ny / py) * (nz / pz) * math.log2(max(2, pz))
        s = (6 * M + 4) * K
    elif algorithm == "xy":
        w = 6 * M * K * nz * (ny / py) * (nx / px) * math.log2(max(2, px))
        s = (9 * M + 10) * K
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return Sec53Costs(algorithm=algorithm, W=w, S=s)
