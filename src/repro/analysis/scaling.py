"""Strong-scaling analysis of the three algorithms.

Section 5.3 argues the CA algorithm's advantage persists "even when a much
larger number of processors are used"; these helpers quantify that with
speedup/efficiency curves from the calibrated projection model, extended
beyond the paper's 1024-rank sweep.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.perf.model import PerformanceModel


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    algorithm: str
    nprocs: int
    total_time: float
    speedup: float
    efficiency: float


def strong_scaling(
    model: PerformanceModel,
    algorithm: str,
    procs: list[int],
    base_procs: int | None = None,
) -> list[ScalingPoint]:
    """Speedup/efficiency relative to the smallest (or given) job size.

    Efficiency is normalized per processor:
    ``eff = (T_base * p_base) / (T_p * p)``.
    """
    if not procs:
        raise ValueError("procs must be non-empty")
    base_p = base_procs if base_procs is not None else min(procs)
    t_base = model.timing(algorithm, base_p).total_time
    out = []
    for p in sorted(procs):
        t = model.timing(algorithm, p).total_time
        speedup = t_base / t
        efficiency = (t_base * base_p) / (t * p)
        out.append(
            ScalingPoint(
                algorithm=algorithm,
                nprocs=p,
                total_time=t,
                speedup=speedup,
                efficiency=efficiency,
            )
        )
    return out


def scaling_report(
    model: PerformanceModel,
    algorithms: list[str],
    procs: list[int],
) -> str:
    """Plain-text strong-scaling comparison table."""
    lines = [
        f"strong scaling, {model.nsteps} steps "
        f"({model.grid.nx}x{model.grid.ny}x{model.grid.nz})",
        f"{'algorithm':>14} {'p':>6} {'total[s]':>12} {'speedup':>8} {'eff':>6}",
    ]
    for alg in algorithms:
        for pt in strong_scaling(model, alg, procs):
            lines.append(
                f"{alg:>14} {pt.nprocs:>6} {pt.total_time:>12.0f} "
                f"{pt.speedup:>8.2f} {pt.efficiency:>6.2f}"
            )
    return "\n".join(lines)


def ca_advantage_persists(
    model: PerformanceModel, procs: list[int]
) -> bool:
    """The Sec. 5.3 assertion: CA beats the Y-Z original at every size."""
    return all(
        model.timing("ca", p).total_time
        < model.timing("original-yz", p).total_time
        for p in procs
    )
