"""Zonal-mean climatology accumulation for Held-Suarez runs.

The H-S benchmark (the paper's evaluation workload, Sec. 5.1) is judged by
its statistically steady circulation: subtropical westerly jets, the
equator-pole temperature gradient, surface easterlies/westerlies.  The
:class:`ClimatologyAccumulator` ingests model states during a run and
produces time-mean zonal-mean fields plus eddy statistics — the standard
diagnostics of Held & Suarez (1994).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import transformed_to_physical
from repro.state.variables import ModelState


@dataclass
class Climatology:
    """Finished time-mean zonal-mean diagnostics (axes: level, latitude)."""

    latitudes_deg: np.ndarray
    sigma_mid: np.ndarray
    u_bar: np.ndarray
    v_bar: np.ndarray
    t_bar: np.ndarray
    ps_bar: np.ndarray          # (ny,)
    eddy_kinetic: np.ndarray    # zonal variance of u + v, (nz, ny)
    samples: int

    def jet_maximum(self) -> tuple[float, float, float]:
        """(speed [m/s], latitude [deg], sigma) of the strongest mean
        westerly."""
        k, j = np.unravel_index(self.u_bar.argmax(), self.u_bar.shape)
        return (
            float(self.u_bar[k, j]),
            float(self.latitudes_deg[j]),
            float(self.sigma_mid[k]),
        )

    def surface_temperature_contrast(self) -> float:
        """Equator-minus-pole time-mean surface temperature [K]."""
        ny = self.latitudes_deg.size
        t_eq = self.t_bar[-1, ny // 2]
        t_pole = 0.5 * (self.t_bar[-1, 0] + self.t_bar[-1, -1])
        return float(t_eq - t_pole)

    def hemispheric_symmetry_error(self) -> float:
        """Relative asymmetry of the mean zonal wind between hemispheres.

        The H-S forcing is symmetric; long means should be too (eddies
        break symmetry instantaneously, not in the time mean)."""
        flipped = self.u_bar[:, ::-1]
        denom = np.abs(self.u_bar).max() or 1.0
        return float(np.abs(self.u_bar - flipped).max() / denom)

    def render(self, rows: int = 12) -> str:
        """Text table of the principal zonal means."""
        ny = self.latitudes_deg.size
        k_mid = self.u_bar.shape[0] // 2
        lines = [
            f"H-S climatology ({self.samples} samples)",
            f"{'lat':>7} {'u(mid)':>8} {'u(sfc)':>8} {'T(sfc)':>8} "
            f"{'p_s[hPa]':>9} {'EKE':>9}",
        ]
        for j in range(0, ny, max(1, ny // rows)):
            lines.append(
                f"{self.latitudes_deg[j]:>7.1f} {self.u_bar[k_mid, j]:>8.2f} "
                f"{self.u_bar[-1, j]:>8.2f} {self.t_bar[-1, j]:>8.1f} "
                f"{self.ps_bar[j] / 100:>9.1f} "
                f"{self.eddy_kinetic[k_mid, j]:>9.3f}"
            )
        speed, lat, sig = self.jet_maximum()
        lines.append(
            f"jet: {speed:.1f} m/s at {lat:.0f} deg (sigma {sig:.2f}); "
            f"dT(eq-pole) = {self.surface_temperature_contrast():.1f} K"
        )
        return "\n".join(lines)


@dataclass
class ClimatologyAccumulator:
    """Streaming accumulator of zonal-mean statistics."""

    grid: LatLonGrid
    sigma: SigmaLevels
    reference: StandardAtmosphere = field(default_factory=StandardAtmosphere)

    def __post_init__(self) -> None:
        nz, ny = self.grid.nz, self.grid.ny
        self._n = 0
        self._u = np.zeros((nz, ny))
        self._v = np.zeros((nz, ny))
        self._t = np.zeros((nz, ny))
        self._ps = np.zeros(ny)
        self._eke = np.zeros((nz, ny))

    @property
    def samples(self) -> int:
        return self._n

    def add(self, state: ModelState) -> None:
        """Ingest one (interior, global) model state."""
        if state.U.shape != self.grid.shape3d:
            raise ValueError(
                f"state shape {state.U.shape} != grid {self.grid.shape3d}"
            )
        u, v, t, ps = transformed_to_physical(
            state.U, state.V, state.Phi, state.psa,
            self.sigma.mid, self.reference,
        )
        self._n += 1
        self._u += u.mean(axis=-1)
        self._v += v.mean(axis=-1)
        self._t += t.mean(axis=-1)
        self._ps += ps.mean(axis=-1)
        u_dev = u - u.mean(axis=-1, keepdims=True)
        v_dev = v - v.mean(axis=-1, keepdims=True)
        self._eke += 0.5 * (u_dev**2 + v_dev**2).mean(axis=-1)

    def finalize(self) -> Climatology:
        """The time means accumulated so far."""
        if self._n == 0:
            raise ValueError("no samples accumulated")
        n = float(self._n)
        return Climatology(
            latitudes_deg=self.grid.latitude_degrees(),
            sigma_mid=self.sigma.mid.copy(),
            u_bar=self._u / n,
            v_bar=self._v / n,
            t_bar=self._t / n,
            ps_bar=self._ps / n,
            eddy_kinetic=self._eke / n,
            samples=self._n,
        )
