"""Energy diagnostics of the transformed system.

Under the IAP transform (Eq. 1) the conserved quadratic form of the
continuous equations is the sum of kinetic energy, available potential
energy and available *surface* potential energy (Sec. 2.2):

.. math::

    E = \\tfrac12 \\int (U^2 + V^2 + \\Phi^2)\\, dV
      + \\tfrac12 \\int c_s \\left(\\frac{p'_{sa}}{p_0}\\right)^2 dA ,

with the surface weight ``c_s = R T~_s`` (the square of the Lamb-wave
speed) pairing the barotropic pressure force with the divergence source of
``p'_sa``.  Our generic second-order discretization conserves this only
approximately; the tests bound the drift on short unforced runs rather
than asserting machine-precision conservation.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.variables import ModelState


@dataclass(frozen=True)
class EnergyBudget:
    """Components of the transformed-variable energy integral."""

    kinetic: float
    available_potential: float
    surface_potential: float

    @property
    def total(self) -> float:
        return self.kinetic + self.available_potential + self.surface_potential


def energy_budget(
    state: ModelState,
    grid: LatLonGrid,
    sigma: SigmaLevels | None = None,
    reference: StandardAtmosphere | None = None,
) -> EnergyBudget:
    """Evaluate the energy integral of an interior state.

    Volume weights are ``cell_area * dsigma`` (the sigma-coordinate mass
    element up to the constant ``p_es/g`` factor common to all terms).
    """
    if sigma is None:
        sigma = SigmaLevels.uniform(grid.nz)
    if reference is None:
        reference = StandardAtmosphere()
    area = grid.cell_area()[:, None] / grid.nx  # per-cell area, (ny, 1)
    w3 = sigma.dsigma[:, None, None] * area[None]
    kinetic = 0.5 * float(np.sum((state.U**2 + state.V**2) * w3))
    ape = 0.5 * float(np.sum(state.Phi**2 * w3))
    c_s = constants.R_DRY * reference.t_surface_ref
    surf = 0.5 * c_s * float(
        np.sum((state.psa / constants.P_REFERENCE) ** 2 * area)
    )
    return EnergyBudget(
        kinetic=kinetic, available_potential=ape, surface_potential=surf
    )


def global_mean_psa(state: ModelState, grid: LatLonGrid) -> float:
    """Area-weighted mean surface-pressure perturbation (mass proxy).

    The dynamics conserve total mass, so this should stay at its initial
    value up to the (weak) ``D_sa`` dissipation and round-off.
    """
    area = grid.cell_area()[:, None] / grid.nx
    return float(np.sum(state.psa * area) / np.sum(area * np.ones_like(state.psa)))
