"""The IAP variable transform, Eq. (1) of the paper.

.. math::

    U = P u, \\quad V = P v, \\quad \\Phi = P R (T - \\tilde T) / b,
    \\quad p'_{sa} = p_s - \\tilde p_s,

with ``P = sqrt(p_es / p_0)`` and ``p_es = p_s - p_t``.  The transform makes
the quadratic invariant of the evolution equations the sum of kinetic +
available potential + available surface potential energy, which is why the
finite-difference core conserves energy (Sec. 2.2).
"""
from __future__ import annotations

import numpy as np

from repro import constants
from repro.state.standard_atmosphere import StandardAtmosphere


def p_es_from_ps(ps: np.ndarray) -> np.ndarray:
    """``p_es = p_s - p_t`` [Pa]."""
    return np.asarray(ps, dtype=np.float64) - constants.P_TOP


def p_factor(ps: np.ndarray) -> np.ndarray:
    """The transform factor ``P = sqrt(p_es / p_0)`` (dimensionless)."""
    pes = p_es_from_ps(ps)
    if np.any(pes <= 0):
        raise ValueError("surface pressure must exceed the model-top pressure")
    return np.sqrt(pes / constants.P_REFERENCE)


def physical_to_transformed(
    u: np.ndarray,
    v: np.ndarray,
    t: np.ndarray,
    ps: np.ndarray,
    sigma_mid: np.ndarray,
    reference: StandardAtmosphere,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Apply Eq. (1): ``(u, v, T, p_s) -> (U, V, Phi, p'_sa)``.

    ``u, v, T`` have shape ``(nz, ny, nx)``; ``ps`` has shape ``(ny, nx)``.
    The ``P`` factor is evaluated at scalar points and broadcast; on the C
    grid ``U`` and ``V`` sit half a cell off the scalar points, but the
    IAP formulation evaluates ``P`` by the same staggering-consistent
    averaging inside the operators, so the transform itself uses the
    collocated value (consistent with the inverse below).
    """
    ps = np.asarray(ps, dtype=np.float64)
    P = p_factor(ps)[None, :, :]
    # T~ is evaluated at the *local* pressure p = p_t + sigma * p_es so the
    # subtraction removes the full standard stratification; this is what
    # makes Phi (and the available potential energy) include the
    # surface-pressure-induced part.
    t_ref = reference.temperature_at_sigma(sigma_mid, ps=ps)
    U = P * u
    V = P * v
    Phi = P * constants.R_DRY * (t - t_ref) / constants.B_GRAVITY_WAVE
    psa = ps - reference.p_surface
    return U, V, Phi, psa


def transformed_to_physical(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    sigma_mid: np.ndarray,
    reference: StandardAtmosphere,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Invert Eq. (1): ``(U, V, Phi, p'_sa) -> (u, v, T, p_s)``."""
    ps = np.asarray(psa, dtype=np.float64) + reference.p_surface
    P = p_factor(ps)[None, :, :]
    u = U / P
    v = V / P
    t_ref = reference.temperature_at_sigma(sigma_mid, ps=ps)
    t = t_ref + constants.B_GRAVITY_WAVE * Phi / (P * constants.R_DRY)
    return u, v, t, ps
