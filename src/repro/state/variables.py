"""The prognostic state container ``xi = (U, V, Phi, p'_sa)``.

``U``, ``V``, ``Phi`` are 3-D fields of shape ``(nz, ny, nx)``; ``p'_sa``
is the 2-D surface-pressure perturbation of shape ``(ny, nx)``.  The
container supports exactly the linear-space operations Algorithm 1 /
Algorithm 2 need (``psi + dt * tendency``, midpoint averaging) plus
packing helpers for the simulated-MPI halo exchanges.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FIELD_NAMES = ("U", "V", "Phi", "psa")


@dataclass
class ModelState:
    """One instant of the transformed prognostic variables.

    The arithmetic operators create new states (functional style used by
    the serial reference core); the ``*_inplace`` methods mutate, used on
    the hot paths of the distributed cores.
    """

    U: np.ndarray
    V: np.ndarray
    Phi: np.ndarray
    psa: np.ndarray

    def __post_init__(self) -> None:
        if self.U.ndim != 3 or self.V.ndim != 3 or self.Phi.ndim != 3:
            raise ValueError("U, V, Phi must be 3-D (nz, ny, nx)")
        if self.psa.ndim != 2:
            raise ValueError("p'_sa must be 2-D (ny, nx)")
        if not (self.U.shape == self.V.shape == self.Phi.shape):
            raise ValueError(
                f"inconsistent 3-D shapes: "
                f"{self.U.shape} {self.V.shape} {self.Phi.shape}"
            )
        if self.psa.shape != self.U.shape[1:]:
            raise ValueError(
                f"p'_sa shape {self.psa.shape} != horizontal shape {self.U.shape[1:]}"
            )

    # ---- constructors --------------------------------------------------
    @classmethod
    def zeros(cls, shape3d: tuple[int, int, int], dtype=np.float64) -> "ModelState":
        """All-zero state for a ``(nz, ny, nx)`` shape."""
        nz, ny, nx = shape3d
        return cls(
            U=np.zeros((nz, ny, nx), dtype),
            V=np.zeros((nz, ny, nx), dtype),
            Phi=np.zeros((nz, ny, nx), dtype),
            psa=np.zeros((ny, nx), dtype),
        )

    @classmethod
    def random(
        cls,
        shape3d: tuple[int, int, int],
        rng: np.random.Generator,
        amplitude: float = 1.0,
    ) -> "ModelState":
        """Smooth-ish random state (useful for operator tests)."""
        nz, ny, nx = shape3d
        def f3():
            return amplitude * rng.standard_normal((nz, ny, nx))
        return cls(U=f3(), V=f3(), Phi=f3(),
                   psa=amplitude * rng.standard_normal((ny, nx)))

    # ---- shape ----------------------------------------------------------
    @property
    def shape3d(self) -> tuple[int, int, int]:
        return self.U.shape

    def copy(self) -> "ModelState":
        return ModelState(
            self.U.copy(), self.V.copy(), self.Phi.copy(), self.psa.copy()
        )

    # ---- linear-space operations -----------------------------------------
    def __add__(self, other: "ModelState") -> "ModelState":
        return ModelState(
            self.U + other.U, self.V + other.V,
            self.Phi + other.Phi, self.psa + other.psa,
        )

    def __sub__(self, other: "ModelState") -> "ModelState":
        return ModelState(
            self.U - other.U, self.V - other.V,
            self.Phi - other.Phi, self.psa - other.psa,
        )

    def __mul__(self, scalar: float) -> "ModelState":
        return ModelState(
            self.U * scalar, self.V * scalar,
            self.Phi * scalar, self.psa * scalar,
        )

    __rmul__ = __mul__

    def axpy(self, alpha: float, other: "ModelState") -> "ModelState":
        """``self + alpha * other`` as a new state."""
        return ModelState(
            self.U + alpha * other.U,
            self.V + alpha * other.V,
            self.Phi + alpha * other.Phi,
            self.psa + alpha * other.psa,
        )

    def axpy_inplace(self, alpha: float, other: "ModelState") -> "ModelState":
        """``self += alpha * other`` (mutating); returns self."""
        self.U += alpha * other.U
        self.V += alpha * other.V
        self.Phi += alpha * other.Phi
        self.psa += alpha * other.psa
        return self

    def axpy_into(
        self, alpha: float, other: "ModelState", out: "ModelState"
    ) -> "ModelState":
        """Allocation-free :meth:`axpy` into the preallocated ``out``.

        Bit-identical to ``self + alpha * other``; ``out`` may alias
        ``other`` but not ``self``.
        """
        for name in FIELD_NAMES:
            s, o, t = getattr(self, name), getattr(other, name), getattr(out, name)
            np.multiply(o, alpha, out=t)
            np.add(s, t, out=t)
        return out

    def copy_into(self, out: "ModelState") -> "ModelState":
        """Copy this state's fields into the preallocated ``out``."""
        for name in FIELD_NAMES:
            np.copyto(getattr(out, name), getattr(self, name))
        return out

    @staticmethod
    def midpoint(a: "ModelState", b: "ModelState") -> "ModelState":
        """``(a + b) / 2`` — the third internal update of Algorithm 1."""
        return ModelState(
            0.5 * (a.U + b.U), 0.5 * (a.V + b.V),
            0.5 * (a.Phi + b.Phi), 0.5 * (a.psa + b.psa),
        )

    @staticmethod
    def midpoint_into(
        a: "ModelState", b: "ModelState", out: "ModelState"
    ) -> "ModelState":
        """Allocation-free :meth:`midpoint`; ``out`` may alias ``a`` or ``b``."""
        for name in FIELD_NAMES:
            x, y, t = getattr(a, name), getattr(b, name), getattr(out, name)
            np.add(x, y, out=t)
            np.multiply(t, 0.5, out=t)
        return out

    # ---- field access ------------------------------------------------------
    def fields(self) -> dict[str, np.ndarray]:
        """Name -> array mapping over all four components."""
        return {"U": self.U, "V": self.V, "Phi": self.Phi, "psa": self.psa}

    # ---- metrics -------------------------------------------------------------
    def max_abs(self) -> float:
        """Max absolute value over all components (stability check)."""
        return max(
            float(np.max(np.abs(self.U))),
            float(np.max(np.abs(self.V))),
            float(np.max(np.abs(self.Phi))),
            float(np.max(np.abs(self.psa))),
        )

    def allclose(
        self, other: "ModelState", rtol: float = 1e-10, atol: float = 1e-12
    ) -> bool:
        return (
            np.allclose(self.U, other.U, rtol=rtol, atol=atol)
            and np.allclose(self.V, other.V, rtol=rtol, atol=atol)
            and np.allclose(self.Phi, other.Phi, rtol=rtol, atol=atol)
            and np.allclose(self.psa, other.psa, rtol=rtol, atol=atol)
        )

    def max_difference(self, other: "ModelState") -> float:
        """Max absolute componentwise difference."""
        return max(
            float(np.max(np.abs(self.U - other.U))),
            float(np.max(np.abs(self.V - other.V))),
            float(np.max(np.abs(self.Phi - other.Phi))),
            float(np.max(np.abs(self.psa - other.psa))),
        )

    def isfinite(self) -> bool:
        """Whether every entry of every component is finite."""
        return bool(
            np.isfinite(self.U).all()
            and np.isfinite(self.V).all()
            and np.isfinite(self.Phi).all()
            and np.isfinite(self.psa).all()
        )

    # ---- (de)serialization for message passing --------------------------------
    def pack(self) -> np.ndarray:
        """Flatten all components into one contiguous float64 vector."""
        return np.concatenate(
            [self.U.ravel(), self.V.ravel(), self.Phi.ravel(), self.psa.ravel()]
        )

    @classmethod
    def unpack(cls, buf: np.ndarray, shape3d: tuple[int, int, int]) -> "ModelState":
        """Inverse of :meth:`pack` for a known local shape."""
        nz, ny, nx = shape3d
        n3 = nz * ny * nx
        n2 = ny * nx
        if buf.size != 3 * n3 + n2:
            raise ValueError(f"buffer size {buf.size} != expected {3 * n3 + n2}")
        U = buf[:n3].reshape(nz, ny, nx).copy()
        V = buf[n3:2 * n3].reshape(nz, ny, nx).copy()
        Phi = buf[2 * n3:3 * n3].reshape(nz, ny, nx).copy()
        psa = buf[3 * n3:].reshape(ny, nx).copy()
        return cls(U, V, Phi, psa)

    @property
    def nbytes(self) -> int:
        """Total payload size of the four components in bytes."""
        return self.U.nbytes + self.V.nbytes + self.Phi.nbytes + self.psa.nbytes
