"""Standard stratification of the IAP transform.

The IAP-AGCM formulation subtracts a *standard stratification* — reference
profiles ``T~`` (temperature) and ``p~_s`` (surface pressure) — before
transforming to the prognostic variables (Eq. 1).  Subtracting the
reference removes the large hydrostatically balanced part of the state, so
the prognostic ``Phi`` and ``p'_sa`` are small perturbations; this is what
makes the energy-conserving formulation and the standard-stratification
approximation (``delta = 0`` in Eq. 2) possible.

We use the U.S. Standard Atmosphere troposphere profile (constant lapse
rate ``gamma`` up to the isothermal stratosphere), which is the common
concrete choice; the paper only requires *a* fixed reference.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants


@dataclass(frozen=True)
class StandardAtmosphere:
    """Reference profiles ``T~(p)`` and ``p~_s``.

    Parameters
    ----------
    t_surface:
        Reference sea-level temperature [K].
    lapse_rate:
        Tropospheric lapse rate [K/m].
    p_surface:
        Reference surface pressure ``p~_s`` [Pa].
    t_tropopause:
        Temperature floor [K]; above the level where the lapse profile
        reaches this value the reference is isothermal (stratosphere).
    """

    t_surface: float = constants.T_SEA_LEVEL
    lapse_rate: float = constants.LAPSE_RATE
    p_surface: float = constants.P_REFERENCE
    t_tropopause: float = 216.65

    def temperature(self, p: np.ndarray | float) -> np.ndarray:
        """Reference temperature ``T~`` at pressure ``p`` [Pa].

        Uses the hydrostatic constant-lapse-rate relation
        ``T = T_s * (p / p_s)^(R*gamma/g)`` capped below by the tropopause
        temperature.
        """
        p = np.asarray(p, dtype=np.float64)
        exponent = constants.R_DRY * self.lapse_rate / constants.GRAVITY
        with np.errstate(invalid="ignore"):
            t = self.t_surface * (p / self.p_surface) ** exponent
        return np.maximum(t, self.t_tropopause)

    def temperature_at_sigma(
        self, sigma_mid: np.ndarray, ps: np.ndarray | float | None = None
    ) -> np.ndarray:
        """``T~`` on sigma mid-levels.

        ``p = p_t + sigma * (p_s - p_t)``; by default the reference surface
        pressure is used, giving a horizontally uniform reference — the
        standard-stratification approximation of the paper.

        Returns an array broadcastable against ``(nz, ny, nx)`` fields:
        shape ``(nz, 1, 1)`` when ``ps`` is None or scalar.
        """
        sigma_mid = np.asarray(sigma_mid, dtype=np.float64)
        if ps is None:
            ps = self.p_surface
        p = constants.P_TOP + np.asarray(sigma_mid)[:, None, None] * (
            np.asarray(ps) - constants.P_TOP
        )
        return self.temperature(p)

    def tropopause_pressure(self) -> float:
        """Pressure [Pa] where the lapse profile reaches ``t_tropopause``."""
        exponent = constants.R_DRY * self.lapse_rate / constants.GRAVITY
        return self.p_surface * (self.t_tropopause / self.t_surface) ** (1.0 / exponent)

    def geopotential(self, p: np.ndarray | float) -> np.ndarray:
        """Standard-atmosphere geopotential ``phi~(p)`` [m^2/s^2].

        Analytic hydrostatic integral of the reference profile measured
        from the reference surface (``phi~(p~_s) = 0``):
        ``phi = (R T_s / alpha)(1 - (p/p_s)^alpha)`` in the troposphere and
        isothermal continuation above the tropopause.  Used for the local
        part of the sigma-coordinate geopotential perturbation — the
        restoring force of the external (surface-pressure) mode.
        """
        p = np.asarray(p, dtype=np.float64)
        alpha = constants.R_DRY * self.lapse_rate / constants.GRAVITY
        p_trop = self.tropopause_pressure()
        r_ts = constants.R_DRY * self.t_surface
        phi_tropo = (r_ts / alpha) * (
            1.0 - (np.maximum(p, p_trop) / self.p_surface) ** alpha
        )
        phi_strato = constants.R_DRY * self.t_tropopause * np.log(
            p_trop / np.minimum(np.maximum(p, 1e-3), p_trop)
        )
        return phi_tropo + phi_strato

    @property
    def t_surface_ref(self) -> float:
        """``T~_s``, the reference temperature at the reference surface."""
        return float(self.temperature(self.p_surface))

    @property
    def rho_sa(self) -> float:
        """Surface density ``rho~_sa = p~_s / (R * T~_s)`` of Eq. (6)."""
        return self.p_surface / (constants.R_DRY * self.t_surface_ref)
