"""Checkpointing: save and restore model states.

Long climate integrations restart from checkpoints; these helpers store a
:class:`ModelState` (plus minimal metadata for shape validation) in NumPy's
``.npz`` container.
"""
from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.state.variables import ModelState

#: format version written into every checkpoint
CHECKPOINT_VERSION = 1


def save_state(path: str | Path, state: ModelState, step: int = 0) -> None:
    """Write ``state`` to ``path`` (.npz), overwriting."""
    np.savez_compressed(
        path,
        version=np.int64(CHECKPOINT_VERSION),
        step=np.int64(step),
        U=state.U,
        V=state.V,
        Phi=state.Phi,
        psa=state.psa,
    )


def load_state(path: str | Path) -> tuple[ModelState, int]:
    """Read a checkpoint; returns ``(state, step)``.

    Raises
    ------
    ValueError
        On a missing field, wrong version, or inconsistent shapes.
    """
    with np.load(path) as data:
        missing = {"version", "step", "U", "V", "Phi", "psa"} - set(data.files)
        if missing:
            raise ValueError(f"checkpoint missing fields: {sorted(missing)}")
        version = int(data["version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        state = ModelState(
            U=data["U"].copy(),
            V=data["V"].copy(),
            Phi=data["Phi"].copy(),
            psa=data["psa"].copy(),
        )
        return state, int(data["step"])
