"""Checkpointing: save and restore model states.

Long climate integrations restart from checkpoints; these helpers store a
:class:`ModelState` (plus minimal metadata for shape validation) in NumPy's
``.npz`` container.
"""
from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.state.variables import ModelState

#: format version written into every checkpoint
CHECKPOINT_VERSION = 1


def save_state(path: str | Path, state: ModelState, step: int = 0) -> None:
    """Write ``state`` to ``path`` (.npz), overwriting."""
    np.savez_compressed(
        path,
        version=np.int64(CHECKPOINT_VERSION),
        step=np.int64(step),
        U=state.U,
        V=state.V,
        Phi=state.Phi,
        psa=state.psa,
    )


def checkpoint_path(directory: str | Path, step: int) -> Path:
    """Canonical checkpoint filename for ``step`` inside ``directory``."""
    return Path(directory) / f"ckpt_{step:08d}.npz"


def latest_checkpoint(directory: str | Path) -> tuple[Path, int] | None:
    """Newest (highest-step) checkpoint in ``directory``, or ``None``.

    Only files matching the :func:`checkpoint_path` naming scheme are
    considered, so foreign ``.npz`` files in the directory are ignored.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: tuple[Path, int] | None = None
    for p in directory.glob("ckpt_*.npz"):
        digits = p.stem[len("ckpt_"):]
        if not digits.isdigit():
            continue
        step = int(digits)
        if best is None or step > best[1]:
            best = (p, step)
    return best


def load_state(path: str | Path) -> tuple[ModelState, int]:
    """Read a checkpoint; returns ``(state, step)``.

    Raises
    ------
    ValueError
        On a missing field, wrong version, or inconsistent shapes.
    """
    with np.load(path) as data:
        missing = {"version", "step", "U", "V", "Phi", "psa"} - set(data.files)
        if missing:
            raise ValueError(f"checkpoint missing fields: {sorted(missing)}")
        version = int(data["version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        state = ModelState(
            U=data["U"].copy(),
            V=data["V"].copy(),
            Phi=data["Phi"].copy(),
            psa=data["psa"].copy(),
        )
        return state, int(data["step"])
