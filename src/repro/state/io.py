"""Checkpointing: save and restore model states — torn-write safe.

Long climate integrations restart from checkpoints; these helpers store a
:class:`ModelState` (plus minimal metadata for shape validation) in NumPy's
``.npz`` container.

Integrity model
---------------
A checkpoint that a crash can tear mid-write is worse than no checkpoint:
a resume that loads half a file restarts the run from garbage.  Writes
here are therefore *atomic* — the payload goes to a temporary file in the
same directory, is flushed and ``fsync``-ed, and only then renamed over
the final name (``os.replace`` is atomic on POSIX), so readers only ever
see either the previous complete file or the new complete file.  Every
write also leaves a **checksum sidecar** (``<name>.sha256``) written the
same way; readers verify the sidecar before trusting the payload, and the
resume path (:func:`latest_verified_checkpoint`) walks checkpoints newest
first until one passes — a crash between the payload rename and the
sidecar rename therefore falls back to the previous good checkpoint
instead of loading a torn or half-trusted file.

The generic helpers (:func:`atomic_write_bytes`, :func:`verify_sidecar`,
:func:`quarantine_file`) are shared with the result cache of
:mod:`repro.serve`, which applies the same tmp+fsync+rename+checksum
discipline to served artifacts.
"""
from __future__ import annotations

import hashlib
import io
import logging
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.state.variables import ModelState

logger = logging.getLogger(__name__)

#: format version written into every checkpoint
CHECKPOINT_VERSION = 1

#: suffix of the checksum sidecar written next to every atomic payload
CHECKSUM_SUFFIX = ".sha256"


# ---------------------------------------------------------------------------
# generic atomic-write + checksum machinery
# ---------------------------------------------------------------------------
def checksum_path(path: str | Path) -> Path:
    """Sidecar filename of ``path`` (``<name>.sha256``)."""
    path = Path(path)
    return path.with_name(path.name + CHECKSUM_SUFFIX)


def file_sha256(path: str | Path) -> str:
    """Hex SHA-256 of a file's bytes (chunked read)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _fsync_directory(directory: Path) -> None:
    """Make a rename in ``directory`` durable (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _replace_atomically(data: bytes, path: Path) -> None:
    """tmp file in ``path``'s directory → write → fsync → rename."""
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(
    path: str | Path, data: bytes, checksum: bool = True
) -> str:
    """Write ``data`` to ``path`` atomically; returns its hex SHA-256.

    The payload lands via tmp+fsync+rename so a crash can never leave a
    torn file under the final name.  With ``checksum`` (default), a
    ``<name>.sha256`` sidecar is written the same way *after* the payload
    rename — the unsafe crash window therefore fails safe: a stale or
    missing sidecar makes verification reject the entry, never accept a
    torn one.
    """
    path = Path(path)
    digest = hashlib.sha256(data).hexdigest()
    _replace_atomically(data, path)
    if checksum:
        _replace_atomically(
            f"{digest}  {path.name}\n".encode(), checksum_path(path)
        )
    _fsync_directory(path.parent)
    return digest


def verify_sidecar(path: str | Path) -> bool | None:
    """Checksum verdict on ``path``: ``True`` ok, ``False`` corrupt.

    ``None`` means no sidecar exists (a legacy file written before the
    integrity discipline) — the caller decides whether to trust it.
    Any read error on either file counts as corrupt.
    """
    path = Path(path)
    side = checksum_path(path)
    if not side.exists():
        return None
    try:
        expected = side.read_text().split()[0]
        return file_sha256(path) == expected
    except (OSError, IndexError):
        return False


def quarantine_file(path: str | Path, quarantine_dir: str | Path) -> Path:
    """Move a corrupt payload (and its sidecar) out of service.

    Returns the quarantined payload path; never raises on a concurrent
    removal (the corrupt entry being gone is the goal either way).
    """
    path = Path(path)
    qdir = Path(quarantine_dir)
    qdir.mkdir(parents=True, exist_ok=True)
    n = 0
    dest = qdir / path.name
    while dest.exists():
        n += 1
        dest = qdir / f"{path.name}.{n}"
    for src, dst in ((path, dest), (checksum_path(path),
                                    checksum_path(dest))):
        try:
            os.replace(src, dst)
        except OSError:
            pass
    logger.warning("quarantined corrupt file %s -> %s", path, dest)
    return dest


# ---------------------------------------------------------------------------
# model-state checkpoints
# ---------------------------------------------------------------------------
def state_npz_bytes(state: ModelState, step: int = 0) -> bytes:
    """The ``.npz`` serialization of one checkpoint, as bytes."""
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        version=np.int64(CHECKPOINT_VERSION),
        step=np.int64(step),
        U=state.U,
        V=state.V,
        Phi=state.Phi,
        psa=state.psa,
    )
    return buf.getvalue()


def save_state(path: str | Path, state: ModelState, step: int = 0) -> None:
    """Write ``state`` to ``path`` (.npz) atomically, overwriting.

    The write is tmp+fsync+rename with a ``.sha256`` sidecar (see the
    module docstring) — a crash mid-save leaves the previous checkpoint
    intact and verifiable.
    """
    atomic_write_bytes(Path(path), state_npz_bytes(state, step=step))


def checkpoint_path(directory: str | Path, step: int) -> Path:
    """Canonical checkpoint filename for ``step`` inside ``directory``."""
    return Path(directory) / f"ckpt_{step:08d}.npz"


def _checkpoints_by_step(directory: Path) -> list[tuple[Path, int]]:
    """All well-named checkpoints in ``directory``, newest step first."""
    found: list[tuple[Path, int]] = []
    for p in directory.glob("ckpt_*.npz"):
        digits = p.stem[len("ckpt_"):]
        if digits.isdigit():
            found.append((p, int(digits)))
    found.sort(key=lambda item: item[1], reverse=True)
    return found


def latest_checkpoint(directory: str | Path) -> tuple[Path, int] | None:
    """Newest (highest-step) checkpoint in ``directory``, or ``None``.

    Only files matching the :func:`checkpoint_path` naming scheme are
    considered, so foreign ``.npz`` files in the directory are ignored.
    No integrity check — see :func:`latest_verified_checkpoint`.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    found = _checkpoints_by_step(directory)
    return found[0] if found else None


def latest_verified_checkpoint(
    directory: str | Path,
) -> tuple[Path, int] | None:
    """Newest checkpoint that passes integrity checks, or ``None``.

    Walks checkpoints newest first.  A candidate is accepted when its
    checksum sidecar matches; a legacy candidate with no sidecar is
    accepted only if its container parses (torn legacy files raise).  A
    candidate that fails is skipped with a warning so a crash
    mid-checkpoint falls back to the previous good checkpoint instead of
    aborting the resume.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    for path, step in _checkpoints_by_step(directory):
        verdict = verify_sidecar(path)
        if verdict is False:
            logger.warning(
                "checkpoint %s fails its checksum — skipping (torn write?)",
                path,
            )
            continue
        if verdict is None:
            try:
                load_state(path, verify=False)
            except Exception as exc:
                logger.warning(
                    "checkpoint %s is unreadable (%s) — skipping", path, exc
                )
                continue
        return path, step
    return None


def load_state(
    path: str | Path, verify: bool = True
) -> tuple[ModelState, int]:
    """Read a checkpoint; returns ``(state, step)``.

    Raises
    ------
    ValueError
        On a checksum-sidecar mismatch (``verify=True``, the default), a
        missing field, wrong version, or inconsistent shapes.
    """
    if verify and verify_sidecar(path) is False:
        raise ValueError(
            f"checkpoint {path} does not match its checksum sidecar "
            "(torn or corrupted write)"
        )
    with np.load(path) as data:
        missing = {"version", "step", "U", "V", "Phi", "psa"} - set(data.files)
        if missing:
            raise ValueError(f"checkpoint missing fields: {sorted(missing)}")
        version = int(data["version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        state = ModelState(
            U=data["U"].copy(),
            V=data["V"].copy(),
            Phi=data["Phi"].copy(),
            psa=data["psa"].copy(),
        )
        return state, int(data["step"])
