"""Model state: standard stratification, the transform (1), and the
prognostic variable container ``xi = (U, V, Phi, p'_sa)``."""
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import (
    p_es_from_ps,
    p_factor,
    physical_to_transformed,
    transformed_to_physical,
)
from repro.state.variables import ModelState
from repro.state.io import load_state, save_state

__all__ = [
    "StandardAtmosphere",
    "ModelState",
    "p_es_from_ps",
    "p_factor",
    "physical_to_transformed",
    "transformed_to_physical",
    "load_state",
    "save_state",
]
