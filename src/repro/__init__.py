"""Communication-avoiding dynamical core of an atmospheric GCM.

Reproduction of Xiao et al., "Communication-Avoiding for Dynamical Core of
Atmospheric General Circulation Model", ICPP 2018.  See README.md for the
architecture overview and EXPERIMENTS.md for the paper-vs-reproduced
numbers.

Typical entry points:

>>> from repro.grid import LatLonGrid
>>> from repro.core import DynamicalCore
>>> from repro.physics import HeldSuarezForcing, perturbed_rest_state
"""

__version__ = "1.0.0"

__all__ = [
    "constants",
    "grid",
    "state",
    "simmpi",
    "operators",
    "core",
    "physics",
    "analysis",
    "perf",
    "bench",
]
