"""Per-operator compute weights and closed-form per-step event counts.

The weights express each operator's cost per point-update relative to the
machine model's ``seconds_per_point`` baseline; the event-count formulas
enumerate, exactly, the communication events of one model step of each
algorithm.  The formulas are validated against the instrumented counters
of the simulated-MPI runs in ``tests/test_perf_counts.py``, then evaluated
at paper scale by :mod:`repro.perf.model`.

Notation: ``M`` adaptation iterations per step; each iteration has 3
internal updates; the advection process has 3 updates; one smoothing per
step.  ``A`` = adaptation update, ``L`` = advection update, ``C`` =
z-collective, ``F`` = polar-filter application.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.grid.decomposition import Decomposition


@dataclass(frozen=True)
class ComputeWeights:
    """Relative cost (in ``seconds_per_point`` units) of one point-update
    of each operator.  Values approximate the flop/byte mix of the
    vectorized NumPy kernels; absolute scale is carried by the machine
    model's ``seconds_per_point`` (see calibration)."""

    adaptation: float = 10.0
    advection: float = 8.0
    vertical: float = 3.0
    smoothing: float = 4.0
    #: per (row-point x log2 nx) unit of the FFT filter
    filter_fft: float = 1.0
    update: float = 1.0

    def filter_seconds_per_point(self, nx: int, seconds_per_point: float) -> float:
        """Cost of one filtered-row point including the log factor."""
        return self.filter_fft * math.log2(max(nx, 2)) * seconds_per_point


DEFAULT_WEIGHTS = ComputeWeights()


@dataclass(frozen=True)
class StepEvents:
    """Exact per-rank communication events of ONE model step.

    ``p2p_messages``/``p2p_bytes``: point-to-point halo traffic *sent* by
    the busiest rank.  ``collectives``: number of collective operations the
    busiest rank participates in.  ``collective_bytes``: modelled bytes it
    moves inside them.  ``syncs``: synchronization events (collectives +
    blocking-receive waits), the analogue of the paper's latency cost S.
    """

    p2p_messages: int
    p2p_bytes: int
    collectives: int
    collective_bytes: int
    syncs: int


#: number of prognostic field arrays exchanged per halo message group
N_FIELDS = 4
#: bytes per float64 value
B = 8


def _halo_bytes_yz(
    decomp: Decomposition, gy: int, gz: int, nz_l: int, ny_l: int
) -> int:
    """Bytes sent by an interior rank in one Y-Z plane halo exchange.

    Two y-faces (gy rows x nz_l levels), two z-faces (gz levels x ny_l
    rows), four corners (gy x gz) — full longitude (nx) wide; the 3-D
    fields dominate (the 2-D p'_sa field adds its y-faces).
    """
    nx = decomp.nx
    face_y = gy * nz_l * nx
    face_z = gz * ny_l * nx
    corner = gy * gz * nx
    per_3d_field = 2 * face_y + 2 * face_z + 4 * corner
    per_2d_field = 2 * gy * nx
    return B * (3 * per_3d_field + per_2d_field)


def _halo_bytes_xy(
    decomp: Decomposition, gx: int, gy: int, nx_l: int, ny_l: int
) -> int:
    """Bytes sent by an interior rank in one X-Y plane halo exchange."""
    nz = decomp.nz
    face_x = gx * ny_l * nz
    face_y = gy * nx_l * nz
    corner = gx * gy * nz
    per_3d_field = 2 * face_x + 2 * face_y + 4 * corner
    per_2d_field = 2 * (gx * ny_l + gy * nx_l + 2 * gx * gy)
    return B * (3 * per_3d_field + per_2d_field)


def step_events(
    algorithm: str,
    decomp: Decomposition,
    m_iterations: int = 3,
    gy: int = 2,
    gz: int = 1,
    gx: int = 2,
    filtered_row_fraction: float = 0.2,
) -> StepEvents:
    """Closed-form events of one step for ``algorithm`` in
    {"original", "ca"} under ``decomp``.

    The busiest rank is an interior rank (8 plane neighbours) that also
    owns filtered (polar) rows in the X-Y case.

    Updates per step: ``3 M`` adaptation + 3 advection; exchanges:
    ``3 M + 3 + 1`` (original; the +1 is the smoothing exchange) vs 2
    (communication-avoiding).  ``C`` collectives: ``3 M`` (original) vs
    ``2 M`` (approximate nonlinear iteration).  Filter collectives (X-Y
    only): one per F application = ``3 M + 3``.
    """
    M = m_iterations
    nz_l = max(1, decomp.nz // decomp.pz)
    ny_l = max(1, decomp.ny // decomp.py)
    nx_l = max(1, decomp.nx // decomp.px)

    if algorithm not in ("original", "ca"):
        raise ValueError(f"unknown algorithm {algorithm!r}")

    if algorithm == "ca":
        if decomp.kind not in ("yz", "serial"):
            raise ValueError("the communication-avoiding core runs on Y-Z")
        # wide halos: 3M rows (+2 for the fused smoothing) in y, 3M in z
        # for the adaptation exchange; 3 in y and z for the advection one.
        wy_a, wz_a = 3 * M + 2, 3 * M
        wy_l, wz_l = 3, 3
        # the CA exchange additionally carries the stale C bundle
        # (column_sum 2D + phi' 3D + sigma-dot 3D+1) ~ doubling 3D volume
        bundle_factor = 2.0
        bytes_a = _halo_bytes_yz(decomp, wy_a, wz_a, nz_l, ny_l) * bundle_factor
        bytes_l = _halo_bytes_yz(decomp, wy_l, wz_l, nz_l, ny_l) * bundle_factor
        neighbours = 8 if decomp.py > 2 and decomp.pz > 2 else min(
            8, decomp.py * decomp.pz - 1
        )
        msgs = 2 * neighbours * N_FIELDS
        p2p_bytes = int(bytes_a + bytes_l)
        n_c = 2 * M
        q_z = decomp.pz
        # allgather of the 2-field contribution stack over the working
        # (halo-extended) rows
        ny_w = ny_l + 2 * wy_a
        c_bytes_each = 2 * nz_l * ny_w * decomp.nx * B
        coll_bytes = n_c * (q_z - 1) * c_bytes_each if q_z > 1 else 0
        collectives = n_c if q_z > 1 else 0
        syncs = collectives + 2  # two exchange waits
        return StepEvents(
            p2p_messages=msgs,
            p2p_bytes=p2p_bytes,
            collectives=collectives,
            collective_bytes=int(coll_bytes),
            syncs=syncs,
        )

    # original algorithm
    n_exchanges = 3 * M + 3 + 1
    if decomp.kind in ("yz", "serial"):
        neighbours = min(8, max(0, decomp.py * decomp.pz - 1))
        per_exchange = _halo_bytes_yz(decomp, gy, gz if decomp.pz > 1 else 0,
                                      nz_l, ny_l)
        n_c = 3 * M
        q_z = decomp.pz
        ny_w = ny_l + 2 * gy
        c_bytes_each = 2 * nz_l * ny_w * decomp.nx * B
        coll = n_c if q_z > 1 else 0
        coll_bytes = coll * (q_z - 1) * c_bytes_each
        filter_coll = 0
        filter_bytes = 0
    elif decomp.kind == "xy":
        neighbours = min(8, max(0, decomp.px * decomp.py - 1))
        per_exchange = _halo_bytes_xy(decomp, gx, gy, nx_l, ny_l)
        coll = 0
        coll_bytes = 0
        # filter: one x-line allgather per F application for polar ranks
        n_f = 3 * M + 3
        q_x = decomp.px
        filtered_rows = max(1, int(filtered_row_fraction * ny_l))
        each = filtered_rows * nz_l * nx_l * B * 3  # 3 filtered 3-D fields
        filter_coll = n_f if q_x > 1 else 0
        filter_bytes = filter_coll * (q_x - 1) * each
    else:  # 3d
        neighbours = min(26, decomp.nranks - 1)
        per_exchange = _halo_bytes_yz(decomp, gy, gz, nz_l, ny_l) + _halo_bytes_xy(
            decomp, gx, gy, nx_l, ny_l
        )
        n_c = 3 * M
        coll = n_c if decomp.pz > 1 else 0
        ny_w = ny_l + 2 * gy
        coll_bytes = coll * (decomp.pz - 1) * 2 * nz_l * ny_w * nx_l * B
        n_f = 3 * M + 3
        filtered_rows = max(1, int(filtered_row_fraction * ny_l))
        each = filtered_rows * nz_l * nx_l * B * 3
        filter_coll = n_f if decomp.px > 1 else 0
        filter_bytes = filter_coll * (decomp.px - 1) * each

    msgs = n_exchanges * neighbours * N_FIELDS
    return StepEvents(
        p2p_messages=msgs,
        p2p_bytes=int(n_exchanges * per_exchange),
        collectives=coll + filter_coll,
        collective_bytes=int(coll_bytes + filter_bytes),
        syncs=coll + filter_coll + n_exchanges,
    )
