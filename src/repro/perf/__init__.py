"""Performance model: per-operator compute weights, closed-form per-step
event counts for each algorithm/decomposition, and the projection to the
paper's scale (720x360x30, 10 model years, up to 1024 ranks)."""
from repro.perf.costs import ComputeWeights, DEFAULT_WEIGHTS, StepEvents, step_events
from repro.perf.model import (
    ALGORITHMS,
    AlgorithmTiming,
    Calibration,
    DEFAULT_CALIBRATION,
    PAPER_PROC_SWEEP,
    PerformanceModel,
)
from repro.perf.wallclock import (
    SCHEMA_VERSION as BENCH_SCHEMA_VERSION,
    compare_reports,
    load_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "ComputeWeights",
    "DEFAULT_WEIGHTS",
    "StepEvents",
    "step_events",
    "ALGORITHMS",
    "AlgorithmTiming",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "PAPER_PROC_SWEEP",
    "PerformanceModel",
    "BENCH_SCHEMA_VERSION",
    "compare_reports",
    "load_report",
    "run_benchmarks",
    "write_report",
]
