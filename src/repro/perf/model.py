"""Projection of the three algorithms to paper scale.

The executable simulated-MPI cores give exact event counts and
logical-clock times at small scale; this module evaluates the same
per-step schedules with an alpha-beta(+synchronization-overhead) machine
model at the paper's scale — 720 x 360 x 30, 10 model years, 128..1024
ranks — to regenerate Figures 1, 6, 7 and 8.

Model structure (per step, busiest rank):

* **compute** — point-updates x per-operator weight x ``seconds_per_point``.
  The CA core's redundant halo computation is accounted exactly by the
  trapezoidal shrink: update ``u`` of a batch of ``H`` runs on the block
  extended by ``H - u`` cells on each decomposed side.
* **stencil communication** — per exchange round: a round overhead (the
  rendezvous with up-to-8 neighbours, incl. jitter), per-message software
  cost, and payload bytes / bandwidth.  The CA core has 2 rounds per step
  instead of 13, pays more bytes (wide halos + the stale-C bundle), and
  earns an overlap credit bounded by the inner-block update time
  (Sec. 4.3.1).
* **collective communication** — ring-allgather cost plus a per-collective
  synchronization overhead representing the bulk-synchronous imbalance
  (polar load imbalance, OS jitter) that dominates measured collective
  times at scale; it grows logarithmically with the job size.

The free constants are calibrated so the model lands near the paper's
anchor numbers (17,400 -> 2,800 s stencil time at p = 1024; 54% total
reduction vs X-Y at p = 512; 46,300 s saved vs Y-Z at p = 1024); the
*shape* claims are asserted in the benchmark suite.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import ModelParameters
from repro.grid.decomposition import (
    Decomposition,
    xy_decomposition,
    yz_decomposition,
)
from repro.grid.latlon import LatLonGrid
from repro.perf.costs import B, ComputeWeights, DEFAULT_WEIGHTS, N_FIELDS

#: model seconds in 10 model years with the paper-scale advection step
SECONDS_PER_YEAR = 365.0 * 86400.0


@dataclass(frozen=True)
class Calibration:
    """Free constants of the projection model (see module docstring)."""

    #: per point-update per unit weight [s] (optimized Fortran-like rate)
    seconds_per_point: float = 1.2e-9
    #: effective per-rank bandwidth [s/B] for halo payloads
    beta: float = 1.7e-10
    #: per-message software/injection cost [s]
    alpha_msg: float = 4.0e-6
    #: per-exchange-round rendezvous/jitter overhead [s]
    round_overhead: float = 2.2e-3
    #: per-collective synchronization overhead at the reference job size
    sync_base: float = 1.2e-2
    #: growth of the sync overhead per doubling of the job size
    sync_per_doubling: float = 6.0e-3
    #: reference job size for ``sync_base``
    sync_ref_procs: int = 128

    def __post_init__(self) -> None:
        for name in (
            "seconds_per_point", "beta", "alpha_msg", "round_overhead",
            "sync_base", "sync_per_doubling",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.sync_ref_procs < 1:
            raise ValueError("sync_ref_procs must be >= 1")

    def sync_overhead(self, nprocs: int) -> float:
        """Effective per-collective synchronization cost for a job of
        ``nprocs`` ranks."""
        doublings = max(0.0, math.log2(max(1, nprocs) / self.sync_ref_procs))
        return self.sync_base + self.sync_per_doubling * doublings


DEFAULT_CALIBRATION = Calibration()


@dataclass(frozen=True)
class AlgorithmTiming:
    """10-year (or ``nsteps``-step) timing decomposition of one algorithm."""

    algorithm: str
    nprocs: int
    decomp: Decomposition
    nsteps: int
    compute_time: float
    stencil_comm_time: float
    collective_comm_time: float

    @property
    def comm_time(self) -> float:
        return self.stencil_comm_time + self.collective_comm_time

    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time

    @property
    def comm_fraction(self) -> float:
        return self.comm_time / self.total_time


class PerformanceModel:
    """Evaluate the per-step schedules of the three algorithms at scale."""

    #: paper-scale advection time step [s] (50 km mesh)
    PAPER_DT = 600.0

    def __init__(
        self,
        grid: LatLonGrid,
        params: ModelParameters | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        weights: ComputeWeights = DEFAULT_WEIGHTS,
        model_years: float = 10.0,
        dt_step: float | None = None,
    ) -> None:
        self.grid = grid
        self.params = params or ModelParameters()
        self.cal = calibration
        self.weights = weights
        self.dt_step = dt_step if dt_step is not None else self.PAPER_DT
        self.nsteps = int(round(model_years * SECONDS_PER_YEAR / self.dt_step))

    # ---- decomposition selection ------------------------------------------------
    def decomposition(self, algorithm: str, nprocs: int) -> Decomposition:
        g = self.grid
        if algorithm in ("original-yz", "ca"):
            return yz_decomposition(g.nx, g.ny, g.nz, nprocs)
        if algorithm == "original-xy":
            return xy_decomposition(g.nx, g.ny, g.nz, nprocs)
        if algorithm == "original-3d":
            # modest pz, the rest over the x-y plane (both collectives live)
            from repro.grid.decomposition import best_2d_factorization

            pz = 2 if nprocs % 2 == 0 and g.nz >= 4 else 1
            px, py = best_2d_factorization(nprocs // pz, g.nx, g.ny)
            return Decomposition(g.nx, g.ny, g.nz, px, py, pz)
        raise ValueError(f"unknown algorithm {algorithm!r}")

    # ---- per-step compute -------------------------------------------------
    def _block_points(self, decomp: Decomposition) -> float:
        return (
            (decomp.nx / decomp.px)
            * (decomp.ny / decomp.py)
            * (decomp.nz / decomp.pz)
        )

    def _ca_trapezoid_points(self, decomp: Decomposition, batch: int) -> float:
        """Mean working points per update of a CA batch of ``batch`` updates.

        Update ``u`` (1-based) runs on the block extended by ``batch - u + 1``
        cells on each decomposed side (y and z; x is full)."""
        ny_l = decomp.ny / decomp.py
        nz_l = decomp.nz / decomp.pz
        total = 0.0
        for u in range(1, batch + 1):
            h = batch - u + 1
            total += (ny_l + 2 * h) * ((nz_l + 2 * h) if decomp.pz > 1 else nz_l)
        return decomp.nx * total / batch

    def _compute_per_step(self, algorithm: str, decomp: Decomposition) -> float:
        M = self.params.m_iterations
        W, cal = self.weights, self.cal
        nx = decomp.nx
        block = self._block_points(decomp)
        # filter work: polar ranks FFT their filtered rows (worst rank)
        filter_zone = 2.0 * (math.pi / 2 - self.params.filter_latitude) / math.pi
        rows_local = decomp.ny / decomp.py
        filt_rows = min(rows_local, decomp.ny * filter_zone / 2.0)
        filt_points = filt_rows * (decomp.nz / decomp.pz) * nx
        n_updates = 3 * M + 3
        filter_work = (
            n_updates * W.filter_fft * math.log2(nx) * filt_points
        )
        if algorithm == "ca":
            adapt_pts = self._ca_trapezoid_points(decomp, 3 * M)
            adv_pts = self._ca_trapezoid_points(decomp, 3)
            work = (
                3 * M * (W.adaptation + W.vertical + W.update) * adapt_pts
                + 3 * (W.advection + W.update) * adv_pts
                + W.smoothing * adapt_pts
                + filter_work
            )
        else:
            work = (
                3 * M * (W.adaptation + W.vertical + W.update) * block
                + 3 * (W.advection + W.update) * block
                + W.smoothing * block
                + filter_work
            )
        return work * cal.seconds_per_point

    # ---- per-step stencil communication ----------------------------------------------
    def _halo_bytes(
        self, decomp: Decomposition, wy: float, wz: float, wx: float
    ) -> float:
        """Bytes sent per rank for one exchange with the given widths."""
        nx_l = decomp.nx / decomp.px
        ny_l = decomp.ny / decomp.py
        nz_l = decomp.nz / decomp.pz
        if decomp.kind in ("yz", "serial"):
            per3d = decomp.nx * (
                2 * wy * nz_l + 2 * wz * ny_l + 4 * wy * wz
            )
            per2d = decomp.nx * 2 * wy
        elif decomp.kind == "xy":
            per3d = decomp.nz * (
                2 * wx * ny_l + 2 * wy * nx_l + 4 * wx * wy
            )
            per2d = 2 * (wx * ny_l + wy * nx_l + 2 * wx * wy)
        else:  # 3d: faces in all three directions
            per3d = (
                2 * wx * ny_l * nz_l + 2 * wy * nx_l * nz_l
                + 2 * wz * nx_l * ny_l
                + 4 * (wx * wy * nz_l + wx * wz * ny_l + wy * wz * nx_l)
            )
            per2d = 2 * (wx * ny_l + wy * nx_l + 2 * wx * wy)
        return B * (3 * per3d + per2d)

    def _stencil_per_step(
        self, algorithm: str, decomp: Decomposition, compute_per_step: float
    ) -> float:
        M = self.params.m_iterations
        cal = self.cal
        n_neigh = 8
        if algorithm == "ca":
            wy_a, wz_a = 3 * M + 2, (3 * M if decomp.pz > 1 else 0)
            wy_l, wz_l = 3, (3 if decomp.pz > 1 else 0)
            bytes_a = self._halo_bytes(decomp, wy_a, wz_a, 0) * 2.0  # + C bundle
            bytes_l = self._halo_bytes(decomp, wy_l, wz_l, 0) * 2.0
            ny_l = decomp.ny / decomp.py
            rings_a = max(1.0, wy_a / max(1.0, ny_l))
            rings_l = max(1.0, wy_l / max(1.0, ny_l))
            msgs = n_neigh * N_FIELDS * (rings_a + rings_l)
            raw = (
                2 * cal.round_overhead
                + msgs * cal.alpha_msg
                + (bytes_a + bytes_l) * cal.beta
            )
            # overlap credit: one inner-block update hides part of each round
            inner_update = (
                (self.weights.adaptation + self.weights.advection)
                / 2.0
                * self._block_points(decomp)
                * cal.seconds_per_point
            )
            credit = min(2 * inner_update, 0.6 * raw)
            return raw - credit
        # original: 3M + 3 + 1 rounds with unit-radius halos
        n_rounds = 3 * M + 4
        if decomp.kind == "xy":
            bytes_per = self._halo_bytes(decomp, 2, 0, 2)
        elif decomp.kind == "3d":
            bytes_per = self._halo_bytes(
                decomp, 2, 1 if decomp.pz > 1 else 0, 2
            )
            n_neigh = 26
        else:
            bytes_per = self._halo_bytes(decomp, 2, 1 if decomp.pz > 1 else 0, 0)
        msgs = n_neigh * N_FIELDS
        per_round = (
            cal.round_overhead + msgs * cal.alpha_msg + bytes_per * cal.beta
        )
        return n_rounds * per_round

    # ---- per-step collective communication ---------------------------------
    def _collective_per_step(
        self, algorithm: str, decomp: Decomposition, nprocs: int
    ) -> float:
        M = self.params.m_iterations
        cal = self.cal
        sync = cal.sync_overhead(nprocs)
        total = 0.0
        # z-collectives of the C operator
        if decomp.pz > 1 and algorithm != "original-xy":
            n_c = 2 * M if algorithm == "ca" else 3 * M
            ny_w = decomp.ny / decomp.py + (
                2 * (3 * M + 2) if algorithm == "ca" else 4
            )
            bytes_each = 2 * (decomp.nz / decomp.pz) * ny_w * decomp.nx * B
            ring = (decomp.pz - 1) * (cal.alpha_msg + bytes_each * cal.beta)
            total += n_c * (ring + sync)
        # x-collectives of the Fourier filter
        if decomp.px > 1:
            n_f = 3 * M + 3
            filter_zone = 2.0 * (math.pi / 2 - self.params.filter_latitude) / math.pi
            rows_local = min(
                decomp.ny / decomp.py, decomp.ny * filter_zone / 2.0
            )
            bytes_each = (
                3 * rows_local * (decomp.nz / decomp.pz)
                * (decomp.nx / decomp.px) * B
            )
            ring = (decomp.px - 1) * (cal.alpha_msg + bytes_each * cal.beta)
            total += n_f * (ring + sync)
        return total

    # ---- ablation: halo batching depth -----------------------------------------------
    def ca_stencil_time_batched(self, nprocs: int, batch: int) -> float:
        """Projected 10-year stencil-communication time of a CA variant
        that exchanges every ``batch`` adaptation updates (redundant-work
        vs message-frequency trade-off; ``batch = 3M`` is Algorithm 2,
        ``batch = 1`` is the original exchange-per-update schedule with
        fused smoothing)."""
        M = self.params.m_iterations
        if not 1 <= batch <= 3 * M:
            raise ValueError(f"batch must be in [1, {3 * M}]")
        decomp = self.decomposition("ca", nprocs)
        cal = self.cal
        rounds_adapt = math.ceil(3 * M / batch)
        adv_batch = min(batch, 3)
        rounds_adv = math.ceil(3 / adv_batch)
        wz = batch if decomp.pz > 1 else 0
        bytes_total = (
            self._halo_bytes(decomp, batch + 2, wz, 0) * 2.0  # + C bundle
            + (rounds_adapt - 1) * self._halo_bytes(decomp, batch, wz, 0) * 2.0
            + rounds_adv * self._halo_bytes(
                decomp, adv_batch, adv_batch if decomp.pz > 1 else 0, 0
            ) * 2.0
        )
        rounds = rounds_adapt + rounds_adv
        ny_l = decomp.ny / decomp.py
        rings = max(1.0, batch / max(1.0, ny_l))
        msgs = 8 * N_FIELDS * rings * rounds
        raw = (
            rounds * cal.round_overhead
            + msgs * cal.alpha_msg
            + bytes_total * cal.beta
        )
        inner_update = (
            self.weights.adaptation
            * self._block_points(decomp)
            * cal.seconds_per_point
        )
        credit = min(rounds * inner_update, 0.6 * raw)
        return (raw - credit) * self.nsteps

    # ---- public API ---------------------------------------------------------
    def timing(self, algorithm: str, nprocs: int) -> AlgorithmTiming:
        """Projected timing of ``algorithm`` on ``nprocs`` ranks."""
        decomp = self.decomposition(algorithm, nprocs)
        compute = self._compute_per_step(algorithm, decomp)
        stencil = self._stencil_per_step(algorithm, decomp, compute)
        collective = self._collective_per_step(algorithm, decomp, nprocs)
        K = self.nsteps
        return AlgorithmTiming(
            algorithm=algorithm,
            nprocs=nprocs,
            decomp=decomp,
            nsteps=K,
            compute_time=compute * K,
            stencil_comm_time=stencil * K,
            collective_comm_time=collective * K,
        )

    def sweep(
        self, algorithms: list[str], procs: list[int]
    ) -> dict[str, list[AlgorithmTiming]]:
        """Timings for every (algorithm, nprocs) pair."""
        return {
            alg: [self.timing(alg, p) for p in procs] for alg in algorithms
        }


#: the process counts of the paper's evaluation figures
PAPER_PROC_SWEEP = [128, 256, 512, 1024]

#: the three algorithm labels used across figures and benches
ALGORITHMS = ["original-xy", "original-yz", "ca"]
