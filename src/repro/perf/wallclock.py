"""Wall-clock benchmark harness for the executed cores.

Unlike :mod:`repro.perf.model` (the paper's *analytic* cost model, in
simulated-machine seconds), this module measures real elapsed time of the
executed kernels and integrators on fixed meshes with pinned seeds, and
emits a schema-versioned JSON artifact that CI archives and gates on:

* per-kernel timings of the serial hot path (``C`` / adaptation /
  advection / smoothing), seed path vs workspace path;
* end-to-end step throughput of the serial core and the distributed rank
  programs (original-yz and CA on the simulated cluster);
* workspace allocation counters (fresh vs reused buffers), which make the
  "zero steady-state allocations" claim measurable.

The regression gate compares the current report's step throughput
against a committed baseline and fails on slowdowns beyond a tolerance;
speedups just move the baseline the next time it is refreshed.
"""
from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

SCHEMA_VERSION = 1

#: pinned RNG seed of the benchmark initial states
BENCH_SEED = 1234


@dataclass(frozen=True)
class MeshSpec:
    """A fixed benchmark mesh."""

    name: str
    nx: int
    ny: int
    nz: int
    nsteps: int  # timed steps for throughput cases


SMALL = MeshSpec("small", 32, 16, 6, nsteps=5)
#: tall enough that CA at 4 ranks keeps ny/p_y = 12 > 3M + 2 = 11 halo rows
MEDIUM = MeshSpec("medium", 72, 48, 12, nsteps=8)
#: CA needs ny/p_y > 3M + 2 halo rows, hence the taller mesh
CA_SMALL = MeshSpec("ca-small", 32, 32, 6, nsteps=5)

MESHES = {m.name: m for m in (SMALL, MEDIUM, CA_SMALL)}


def _grid(mesh: MeshSpec):
    from repro.grid.latlon import LatLonGrid

    return LatLonGrid(nx=mesh.nx, ny=mesh.ny, nz=mesh.nz)


def _initial(grid):
    from repro.physics.initial import balanced_random_state

    return balanced_random_state(grid, np.random.default_rng(BENCH_SEED))


# ---------------------------------------------------------------------------
# serial step throughput (seed path vs workspace path)
# ---------------------------------------------------------------------------
def bench_serial(mesh: MeshSpec, repeats: int = 1) -> dict:
    """Time the serial core on ``mesh``; returns the case record."""
    from repro.core.integrator import SerialCore

    grid = _grid(mesh)
    s0 = _initial(grid)

    def run(use_ws: bool) -> tuple[float, SerialCore]:
        best = float("inf")
        core = None
        for _ in range(repeats):
            core = SerialCore(grid, use_workspace=use_ws)
            w = core.pad(s0)
            w = core.step(w)  # warmup: pool fill, code paths hot
            t0 = time.perf_counter()
            for _ in range(mesh.nsteps):
                w = core.step(w)
            best = min(best, (time.perf_counter() - t0) / mesh.nsteps)
        return best, core

    t_seed, _ = run(False)
    t_ws, core = run(True)
    return {
        "kind": "serial_step",
        "mesh": mesh.name,
        "shape": [mesh.nz, mesh.ny, mesh.nx],
        "timed_steps": mesh.nsteps,
        "seed_ms_per_step": t_seed * 1e3,
        "ws_ms_per_step": t_ws * 1e3,
        "speedup": t_seed / t_ws,
        "steps_per_sec": 1.0 / t_ws,
        "allocations": {
            "fresh": core.ws.fresh_allocations,
            "reuses": core.ws.reuses,
            "pooled_bytes": core.ws.pooled_bytes,
        },
    }


# ---------------------------------------------------------------------------
# per-kernel timings on the serial engine
# ---------------------------------------------------------------------------
def _filter_bench(core, w, cached: bool):
    """Polar-filter micro-bench closure: plan construction + application.

    The seed flavour rebuilds the damping tables every call (one build
    per filter construction, the pre-cache behaviour); the ws flavour
    goes through the memoised :func:`repro.operators.filter.filter_plan`.
    """
    from repro.operators.filter import (
        apply_filter_rows,
        damping_factors,
        filter_plan,
    )

    geom = core.geom
    nx = geom.grid.nx
    lat = core.params.filter_latitude
    profile = core.params.filter_profile
    plan = filter_plan if cached else damping_factors

    def run() -> None:
        mask, factors = plan(geom.sin_c, nx, lat, profile)
        if mask.any():
            apply_filter_rows(w.U, mask, factors)

    return run


def bench_kernels(mesh: MeshSpec, inner: int = 5) -> dict:
    """Time each hot-path kernel in isolation, both code paths."""
    from repro.core.integrator import SerialCore
    from repro.operators.smoothing import smooth_state, smooth_state_into

    grid = _grid(mesh)
    s0 = _initial(grid)

    def timed(fn) -> float:
        fn()  # warmup
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        return (time.perf_counter() - t0) / inner * 1e3  # ms

    kernels: dict[str, dict[str, float]] = {}
    for label, use_ws in (("seed", False), ("ws", True)):
        core = SerialCore(grid, use_workspace=use_ws)
        eng = core.engine
        w = core.pad(s0)
        vd = eng.vertical(w)
        rec = {
            "vertical": timed(lambda: eng.vertical(w)),
            "adaptation": timed(lambda: eng.adaptation(w, vd)),
            "advection": timed(lambda: eng.advection(w, vd)),
        }
        if use_ws:
            out = core._ring.scratch(w)
            rec["smoothing"] = timed(
                lambda: smooth_state_into(
                    w, core.params, out, core.ws, core._smoothers
                )
            )
        else:
            rec["smoothing"] = timed(lambda: smooth_state(w, core.params))
        rec["polar_filter"] = timed(_filter_bench(core, w, cached=use_ws))
        for name, ms in rec.items():
            kernels.setdefault(name, {})[f"{label}_ms"] = ms
    for rec in kernels.values():
        rec["speedup"] = rec["seed_ms"] / rec["ws_ms"]
    return {"kind": "kernels", "mesh": mesh.name, "kernels": kernels}


# ---------------------------------------------------------------------------
# kernel tiers: reference vs fused serial step throughput
# ---------------------------------------------------------------------------
def bench_kernel_tiers(mesh: MeshSpec, repeats: int = 1) -> dict:
    """Serial step throughput of the reference vs fused kernel tiers.

    Both tiers step the workspace core from the same pinned initial
    state; the final trajectories must be bitwise equal (recorded as
    ``bit_identical``, gated absolutely by
    :func:`kernel_tier_violations`).  The fused-throughput gate is armed
    only on the medium mesh when a compiled backend (``c``/``numba``)
    actually resolved — on hosts with neither a C compiler nor numba the
    numpy fallback is recorded and the gate skipped, so the benchmark
    degrades gracefully instead of failing.
    """
    from repro.core.integrator import SerialCore
    from repro.kernels import kernel_set

    grid = _grid(mesh)
    s0 = _initial(grid)
    times: dict[str, float] = {"reference": float("inf"), "fused": float("inf")}
    finals: dict[str, object] = {}
    # tiers are interleaved within each repeat so a load spike on a busy
    # host degrades both measurements instead of skewing the ratio
    for _ in range(max(repeats, 2)):
        for tier in ("reference", "fused"):
            core = SerialCore(grid, kernel_tier=tier)
            w = core.pad(s0)
            w = core.step(w)  # warmup: pool fill, plan + library build
            t0 = time.perf_counter()
            for _ in range(mesh.nsteps):
                w = core.step(w)
            dt = (time.perf_counter() - t0) / mesh.nsteps
            times[tier] = min(times[tier], dt)
            finals[tier] = w
    bit_identical = all(
        np.array_equal(
            getattr(finals["reference"], f), getattr(finals["fused"], f)
        )
        for f in ("U", "V", "Phi", "psa")
    )
    backend = kernel_set("fused").backend
    compiled = backend in ("c", "numba")
    return {
        "kind": "kernel_tiers",
        "mesh": mesh.name,
        "shape": [mesh.nz, mesh.ny, mesh.nx],
        "timed_steps": mesh.nsteps,
        "reference_ms_per_step": times["reference"] * 1e3,
        "fused_ms_per_step": times["fused"] * 1e3,
        "speedup": times["reference"] / times["fused"],
        "steps_per_sec": 1.0 / times["fused"],
        "backend": backend,
        "compiled": compiled,
        "bit_identical": bit_identical,
        "gate_min_speedup": 2.0,
        "gate_enforced": compiled and mesh.name == "medium",
    }


def kernel_tier_violations(
    report: dict, baseline: dict | None = None
) -> list[str]:
    """Kernel-tier cases that break bit-identity or the fused-speedup gate.

    Bit-identity is absolute: wherever a tier case ran, whatever the
    backend, the fused trajectory must equal the reference bitwise.  The
    throughput gate requires the fused tier to reach
    ``gate_min_speedup`` times the reference serial step rate — measured
    against the committed baseline's reference time when a baseline is
    supplied (the acceptance form of the gate), else against the
    same-run reference — and fires only on cases marked
    ``gate_enforced`` (medium mesh with a compiled backend; the numpy
    fallback is recorded but never gated).
    """
    base_by_key = (
        {case_key(c): c for c in baseline["cases"]} if baseline else {}
    )
    violations = []
    for case in report["cases"]:
        if case.get("kind") != "kernel_tiers":
            continue
        if not case.get("bit_identical", True):
            violations.append(
                f"{case_key(case)}: fused[{case['backend']}] trajectory "
                f"diverges bitwise from the reference tier"
            )
        if not case.get("gate_enforced"):
            continue
        ref_ms = case["reference_ms_per_step"]
        ref_src = "same-run reference"
        base = base_by_key.get(case_key(case))
        if base is not None and "reference_ms_per_step" in base:
            ref_ms = base["reference_ms_per_step"]
            ref_src = "baseline reference"
        need = case.get("gate_min_speedup", 2.0)
        speedup = ref_ms / case["fused_ms_per_step"]
        if speedup < need:
            violations.append(
                f"{case_key(case)}: fused[{case['backend']}] at "
                f"{case['fused_ms_per_step']:.2f} ms/step is only "
                f"x{speedup:.2f} vs the {ref_src} ({ref_ms:.2f} ms), "
                f"below the x{need:.1f} gate"
            )
    return violations


# ---------------------------------------------------------------------------
# distributed rank programs on the simulated cluster
# ---------------------------------------------------------------------------
def bench_core(mesh: MeshSpec, algorithm: str, nprocs: int, nsteps: int) -> dict:
    """Wall-clock one distributed run (executed numerics, simulated comm).

    The measured time includes the launcher's thread scheduling, so this
    is a *pipeline* throughput number, not a projection of cluster
    performance — that is :mod:`repro.perf.model`'s job.
    """
    from repro.core.driver import DynamicalCore

    grid = _grid(mesh)
    s0 = _initial(grid)
    times = {}
    for label, use_ws in (("seed", False), ("ws", True)):
        core = DynamicalCore(
            grid, algorithm=algorithm, nprocs=nprocs, use_workspace=use_ws
        )
        core.run(s0, 1)  # warmup
        t0 = time.perf_counter()
        _, diag = core.run(s0, nsteps)
        times[label] = (time.perf_counter() - t0) / nsteps
    return {
        "kind": "distributed_step",
        "mesh": mesh.name,
        "algorithm": algorithm,
        "nprocs": nprocs,
        "timed_steps": nsteps,
        "seed_ms_per_step": times["seed"] * 1e3,
        "ws_ms_per_step": times["ws"] * 1e3,
        "speedup": times["seed"] / times["ws"],
        "steps_per_sec": 1.0 / times["ws"],
    }


# ---------------------------------------------------------------------------
# multicore scaling of the process backend
# ---------------------------------------------------------------------------
def bench_parallel_scaling(
    mesh: MeshSpec,
    algorithms: tuple[str, ...] = ("original-yz", "ca"),
    nprocs_list: tuple[int, ...] = (1, 2, 4),
    nsteps: int | None = None,
) -> list[dict]:
    """Wall-clock the process backend across rank counts.

    Unlike :func:`bench_core` (threads multiplexed on one core, so wall
    time is *pipeline* throughput), the process backend runs one OS
    process per rank over shared-memory rings — on a multicore host the
    ranks genuinely overlap and the CA core's communication avoidance
    shows up as wall-clock speedup.  Emits one case per (algorithm,
    nprocs) with parallel efficiency relative to the 1-rank run and the
    serial workspace step as the absolute reference; the ``ca`` case at
    the highest rank count carries ``gate_beats_serial`` so the
    regression gate can require real multicore wins where the host has
    the cores (see :func:`parallel_scaling_violations`).
    """
    from repro.core.driver import DynamicalCore
    from repro.core.integrator import SerialCore

    grid = _grid(mesh)
    s0 = _initial(grid)
    if nsteps is None:
        nsteps = mesh.nsteps

    score = SerialCore(grid, use_workspace=True)
    w = score.pad(s0)
    w = score.step(w)  # warmup
    t0 = time.perf_counter()
    for _ in range(nsteps):
        w = score.step(w)
    serial_ms = (time.perf_counter() - t0) / nsteps * 1e3

    ncpu = os.cpu_count() or 1
    gate_n = max(nprocs_list)
    cases = []
    for algorithm in algorithms:
        base_ms = None  # 1-rank time of this algorithm (efficiency base)
        for nprocs in nprocs_list:
            core = DynamicalCore(
                grid, algorithm=algorithm, nprocs=nprocs, backend="process"
            )
            core.run(s0, 1)  # warmup: forks ranks, fills pools
            t0 = time.perf_counter()
            core.run(s0, nsteps)
            ms = (time.perf_counter() - t0) / nsteps * 1e3
            if base_ms is None:
                base_ms = ms * nprocs_list[0]  # normalise if list skips 1
            speedup_vs_base = base_ms / ms
            cases.append(
                {
                    "kind": "parallel_scaling",
                    "mesh": mesh.name,
                    "algorithm": algorithm,
                    "nprocs": nprocs,
                    "backend": "process",
                    "timed_steps": nsteps,
                    "ms_per_step": ms,
                    "steps_per_sec": 1e3 / ms,
                    "serial_ws_ms_per_step": serial_ms,
                    "speedup_vs_serial": serial_ms / ms,
                    "efficiency": speedup_vs_base / nprocs,
                    "cpu_count": ncpu,
                    # the gate targets the medium mesh: on toy meshes the
                    # per-message overhead can dominate any parallel win
                    "gate_beats_serial": (
                        algorithm == "ca"
                        and nprocs == gate_n
                        and mesh.name == "medium"
                    ),
                    "gate_enforced": (
                        algorithm == "ca"
                        and nprocs == gate_n
                        and mesh.name == "medium"
                        and ncpu >= nprocs
                    ),
                }
            )
    return cases


def parallel_scaling_violations(report: dict) -> list[str]:
    """Gated parallel-scaling cases that fail to beat the serial step.

    A case marked ``gate_beats_serial`` (the CA core at the highest
    benchmarked rank count) must out-run the serial workspace step in
    wall-clock — but only on hosts with at least that many cores; on
    smaller machines the processes time-share one core and no parallel
    speedup is physically possible, so the case is recorded (with its
    ``cpu_count``) and the gate is skipped.  CI runs this on multicore
    runners where the gate is real.
    """
    violations = []
    ncpu = report.get("machine", {}).get("cpu_count") or 1
    for case in report["cases"]:
        if case.get("kind") != "parallel_scaling":
            continue
        if not case.get("gate_beats_serial"):
            continue
        if ncpu < case["nprocs"]:
            continue  # single/few-core host: parallel win not expected
        if case["ms_per_step"] >= case["serial_ws_ms_per_step"]:
            violations.append(
                f"{case_key(case)}: {case['ms_per_step']:.2f} ms/step on "
                f"{case['nprocs']} process ranks does not beat the serial "
                f"workspace step ({case['serial_ws_ms_per_step']:.2f} ms) "
                f"on a {ncpu}-core host"
            )
    return violations


# ---------------------------------------------------------------------------
# comm/compute overlap of the task-graph executor
# ---------------------------------------------------------------------------
def bench_overlap(
    mesh: MeshSpec,
    algorithm: str = "ca",
    nprocs: int = 4,
    nsteps: int | None = None,
    limit: float = 1.10,
) -> dict:
    """Sync executor vs task-graph executor on the process backend.

    The task-graph executor buys its comm/compute overlap with graph
    bookkeeping and split stencil passes; this case measures what that
    costs (or wins) in wall-clock on real cores, plus the executor's own
    overlap accounting (seconds of compute executed inside open comm
    windows).  The gate is an efficiency bound, not a speedup demand:
    ``taskgraph_ms <= limit * sync_ms`` — the overlap machinery must not
    tax the step more than ``limit - 1`` even where messages are cheap
    (shared-memory rings), and it must have actually opened comm windows
    (otherwise the executor silently fell back to the sync path).  Only
    enforced when the host has at least ``nprocs`` cores; fewer cores
    time-share and the ratio measures scheduler noise.
    """
    from repro.core.driver import DynamicalCore

    grid = _grid(mesh)
    s0 = _initial(grid)
    if nsteps is None:
        nsteps = mesh.nsteps
    ncpu = os.cpu_count() or 1
    case = {
        "kind": "overlap",
        "mesh": mesh.name,
        "algorithm": algorithm,
        "nprocs": nprocs,
        "backend": "process",
        "timed_steps": nsteps,
        "cpu_count": ncpu,
        "gate_limit": limit,
        "gate_enforced": ncpu >= nprocs,
    }
    times = {}
    for executor in ("sync", "taskgraph"):
        core = DynamicalCore(
            grid, algorithm=algorithm, nprocs=nprocs,
            backend="process", executor=executor,
        )
        core.run(s0, 1)  # warmup: forks ranks, fills pools
        t0 = time.perf_counter()
        _, diag = core.run(s0, nsteps)
        times[executor] = (time.perf_counter() - t0) / nsteps * 1e3
        if executor == "taskgraph":
            case["overlap_seconds"] = diag.overlap_seconds
            case["overlap_windows"] = diag.overlap_windows
    case["sync_ms_per_step"] = times["sync"]
    case["taskgraph_ms_per_step"] = times["taskgraph"]
    case["taskgraph_over_sync"] = times["taskgraph"] / times["sync"]
    case["steps_per_sec"] = 1e3 / times["taskgraph"]
    return case


def overlap_violations(report: dict) -> list[str]:
    """Overlap cases breaking the executor-efficiency gate.

    Absolute gate, no baseline needed: where the host has the cores, the
    task-graph executor must (a) have opened real communication windows
    and (b) keep its per-step wall time within ``gate_limit`` of the
    synchronous executor's.
    """
    violations = []
    for case in report["cases"]:
        if case.get("kind") != "overlap":
            continue
        if not case.get("gate_enforced"):
            continue
        if case.get("overlap_windows", 0) <= 0:
            violations.append(
                f"{case_key(case)}: taskgraph executor opened no comm "
                f"windows — the overlapped path did not engage"
            )
        limit = case["gate_limit"]
        if case["taskgraph_ms_per_step"] > limit * case["sync_ms_per_step"]:
            violations.append(
                f"{case_key(case)}: taskgraph "
                f"{case['taskgraph_ms_per_step']:.2f} ms/step exceeds "
                f"{limit:.2f}x the sync executor "
                f"({case['sync_ms_per_step']:.2f} ms/step) on a "
                f"{case['cpu_count']}-core host"
            )
    return violations


# ---------------------------------------------------------------------------
# fault-free overhead of the reliable transport
# ---------------------------------------------------------------------------
def bench_transport_overhead(mesh: MeshSpec, nsteps: int) -> dict:
    """Cost of the reliable transport on a clean network.

    Runs the same distributed program twice — once on the raw network
    (``transport=None``) and once with the sequence-numbered retransmit
    layer armed — with no faults injected.  The *logical* makespans are
    deterministic (a fault-free reliable send pays no retransmissions,
    so they should be identical); the wall-clock numbers are reported
    for context but are too noisy to gate on shared runners.
    """
    from repro.core.driver import DynamicalCore
    from repro.simmpi import TransportConfig

    grid = _grid(mesh)
    s0 = _initial(grid)
    wall: dict[str, float] = {}
    logical: dict[str, float] = {}
    for label, transport in (("plain", None), ("resilient", TransportConfig())):
        core = DynamicalCore(
            grid, algorithm="original-yz", nprocs=2, transport=transport
        )
        core.run(s0, 1)  # warmup
        t0 = time.perf_counter()
        _, diag = core.run(s0, nsteps)
        wall[label] = (time.perf_counter() - t0) / nsteps
        logical[label] = diag.makespan
    return {
        "kind": "transport_overhead",
        "mesh": mesh.name,
        "algorithm": "original-yz",
        "nprocs": 2,
        "timed_steps": nsteps,
        "plain_ms_per_step": wall["plain"] * 1e3,
        "resilient_ms_per_step": wall["resilient"] * 1e3,
        "plain_makespan": logical["plain"],
        "resilient_makespan": logical["resilient"],
        "logical_overhead_frac": (
            (logical["resilient"] - logical["plain"]) / logical["plain"]
        ),
        "wall_overhead_frac": wall["resilient"] / wall["plain"] - 1.0,
    }


def transport_overhead_violations(report: dict, limit: float = 0.05) -> list[str]:
    """Transport-overhead cases whose *logical* overhead exceeds ``limit``.

    This gate is absolute (no baseline needed): the simulated clocks are
    deterministic, so a clean run through the reliable transport must
    cost within ``limit`` of the raw network — today it costs exactly
    nothing, and this keeps it honest.
    """
    violations = []
    for case in report["cases"]:
        if case.get("kind") != "transport_overhead":
            continue
        frac = case["logical_overhead_frac"]
        if frac > limit:
            violations.append(
                f"{case_key(case)}: resilient transport costs "
                f"{frac * 100.0:.2f}% logical makespan on a clean network "
                f"(limit {limit * 100.0:.0f}%)"
            )
    return violations


# ---------------------------------------------------------------------------
# elastic rank-loss recovery MTTR
# ---------------------------------------------------------------------------
def bench_recovery_mttr(mesh: MeshSpec, nsteps: int) -> dict:
    """MTTR of one permanent rank loss under each elastic policy.

    Runs a 4-rank resilient integration that loses rank 1 mid-run, once
    per policy (``spare``, ``shrink``), and decomposes the logical MTTR
    into detection+consensus and block-migration time.  Two gates ride
    on this case (:func:`recovery_mttr_violations`):

    * **overhead** — the total recovery time must stay within a bounded
      fraction of the fault-free resilient run's makespan (all logical
      clocks, hence deterministic and safe to gate absolutely);
    * **trajectory anomaly** — the recovered final state must be
      bit-identical to the fault-free chunked trajectory at the
      recovered layout resumed from the same chunk boundary (zero
      tolerance: any drift is an anomaly, not noise).
    """
    import tempfile

    from repro.core.driver import DynamicalCore
    from repro.core.resilience import ResilienceConfig, run_resilient
    from repro.simmpi import FaultPlan, NodeLoss

    grid = _grid(mesh)
    s0 = _initial(grid)
    nprocs, chunk = 4, 2

    def resilient(policy, faults, workdir):
        core = DynamicalCore(grid, algorithm="original-yz", nprocs=nprocs)
        rcfg = ResilienceConfig(
            checkpoint_dir=workdir, checkpoint_interval=chunk,
            max_restarts=4, rank_loss_policy=policy, spare_ranks=1,
            faults=faults,
        )
        return core, *run_resilient(core, s0, nsteps, rcfg)

    def chunked_reference(segments):
        """Fault-free trajectory, chunked like the resilient driver."""
        transport = ResilienceConfig(checkpoint_dir="/unused").transport
        state, step = s0, 0
        for ranks, until in segments:
            core = DynamicalCore(
                grid, algorithm="original-yz", nprocs=ranks,
            )
            while step < until:
                c = min(chunk, nsteps - step)
                state, _, _ = core._run_once(
                    state, c, faults=None, verify_checksums=True,
                    transport=transport, timeout=None, step0=step,
                )
                step += c
        return state

    with tempfile.TemporaryDirectory() as tmp:
        _, _, clean_diag, _ = resilient("abort", None, f"{tmp}/clean")
        policies = {}
        for policy in ("spare", "shrink"):
            faults = FaultPlan(
                seed=BENCH_SEED,
                node_losses=(NodeLoss(rank=1, at_call=30),),
            )
            t0 = time.perf_counter()
            _, final, diag, report = resilient(
                policy, faults, f"{tmp}/{policy}"
            )
            wall = time.perf_counter() - t0
            rl = report.rank_losses[0]
            segments = (
                [(nprocs, nsteps)] if policy == "spare"
                else [(nprocs, rl.step), (report.final_nranks, nsteps)]
            )
            ref = chunked_reference(segments)
            policies[policy] = {
                "mttr": rl.mttr,
                "detect_s": rl.detect_s,
                "migrate_s": rl.migrate_s,
                "recovery_time": report.recovery_time,
                "recovery_frac": report.recovery_time / clean_diag.makespan,
                "final_nranks": report.final_nranks,
                "source": rl.source,
                "trajectory_max_diff": final.max_difference(ref),
                "wall_s": wall,
            }
    return {
        "kind": "recovery_mttr",
        "mesh": mesh.name,
        "algorithm": "original-yz",
        "nprocs": nprocs,
        "timed_steps": nsteps,
        "clean_makespan": clean_diag.makespan,
        "policies": policies,
    }


def recovery_mttr_violations(report: dict, limit: float = 0.5) -> list[str]:
    """Recovery cases breaking the MTTR or trajectory gates.

    ``limit`` bounds the *logical* recovery overhead as a fraction of
    the fault-free makespan; the trajectory gate is zero-tolerance.
    Both are absolute (deterministic logical clocks, bit-level state
    comparison): no baseline report is needed.
    """
    violations = []
    for case in report["cases"]:
        if case.get("kind") != "recovery_mttr":
            continue
        for policy, rec in case["policies"].items():
            if rec["recovery_frac"] > limit:
                violations.append(
                    f"{case_key(case)}[{policy}]: recovery costs "
                    f"{rec['recovery_frac'] * 100.0:.1f}% of the "
                    f"fault-free makespan (limit {limit * 100.0:.0f}%)"
                )
            if rec["trajectory_max_diff"] != 0.0:
                violations.append(
                    f"{case_key(case)}[{policy}]: trajectory anomaly — "
                    f"recovered state differs from the fault-free "
                    f"reference by {rec['trajectory_max_diff']:.3e}"
                )
    return violations


# ---------------------------------------------------------------------------
# report assembly / IO / regression gate
# ---------------------------------------------------------------------------
def _git_sha() -> str | None:
    """Short commit SHA of the working tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def machine_info() -> dict:
    """Provenance of one benchmark report: where and on what it ran."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def run_benchmarks(quick: bool = False, repeats: int = 1) -> dict:
    """The full benchmark suite; ``quick`` trims it to CI size."""
    meshes = [SMALL] if quick else [SMALL, MEDIUM]
    cases = []
    for mesh in meshes:
        cases.append(bench_serial(mesh, repeats=repeats))
    cases.append(bench_kernels(SMALL if quick else MEDIUM))
    cases.append(bench_kernel_tiers(SMALL if quick else MEDIUM, repeats=repeats))
    # distributed cases: a warmup run precedes timing, and enough timed
    # steps to keep launcher scheduling jitter out of the per-step number
    dist_steps = 2 if quick else 6
    cases.append(bench_core(SMALL, "original-yz", 2, dist_steps))
    cases.append(bench_core(CA_SMALL, "ca", 2, dist_steps))
    if quick:
        # CA at 4 ranks needs ny >= 48; the quick mesh tops out at 2
        cases.extend(
            bench_parallel_scaling(CA_SMALL, nprocs_list=(1, 2), nsteps=dist_steps)
        )
        cases.append(
            bench_overlap(CA_SMALL, nprocs=2, nsteps=dist_steps)
        )
    else:
        cases.extend(bench_parallel_scaling(MEDIUM, nprocs_list=(1, 2, 4)))
        cases.append(bench_overlap(MEDIUM, nprocs=4))
    cases.append(bench_transport_overhead(SMALL, nsteps=dist_steps))
    cases.append(bench_recovery_mttr(SMALL, nsteps=4))
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "bench_seed": BENCH_SEED,
        "machine": machine_info(),
        "cases": cases,
    }


def case_key(case: dict) -> str:
    """Stable identity of a case across reports."""
    parts = [case["kind"], case["mesh"]]
    if "algorithm" in case:
        parts += [case["algorithm"], str(case["nprocs"])]
    return ":".join(parts)


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"benchmark schema {version!r} unsupported "
            f"(expected {SCHEMA_VERSION})"
        )
    return report


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.2
) -> list[str]:
    """Regressions of ``current`` vs ``baseline``.

    A case regresses when its step throughput drops more than
    ``tolerance`` (fractional) below the baseline's.  Cases present in
    only one report are ignored (the gate must not block adding or
    retiring benchmarks), as are kernel breakdowns (micro-timings are too
    noisy for shared CI runners; the throughput cases gate).
    """
    base_by_key = {case_key(c): c for c in baseline["cases"]}
    regressions = []
    for case in current["cases"]:
        ref = base_by_key.get(case_key(case))
        if ref is None or "steps_per_sec" not in case:
            continue
        cur, old = case["steps_per_sec"], ref["steps_per_sec"]
        if cur < old * (1.0 - tolerance):
            regressions.append(
                f"{case_key(case)}: {cur:.3f} steps/s vs baseline "
                f"{old:.3f} (-{(1.0 - cur / old) * 100.0:.1f}%, "
                f"tolerance {tolerance * 100.0:.0f}%)"
            )
    return regressions
