"""Machine-readable experiment report.

Collects every reproduced figure/table into one JSON-serializable dict —
the artifact behind EXPERIMENTS.md.  Usable as a module
(:func:`full_report`) or a CLI::

    python -m repro.perf.report [output.json]
"""
from __future__ import annotations

import json
import sys
from typing import Any

from repro.analysis.lower_bounds import section53_costs
from repro.analysis.scaling import strong_scaling
from repro.grid.decomposition import xy_decomposition, yz_decomposition
from repro.grid.latlon import paper_grid
from repro.perf.model import (
    ALGORITHMS,
    PAPER_PROC_SWEEP,
    PerformanceModel,
)


def figure_data(model: PerformanceModel) -> dict[str, Any]:
    """Raw series of Figures 1/6/7/8."""
    out: dict[str, Any] = {"procs": PAPER_PROC_SWEEP}
    for alg in ALGORITHMS:
        timings = [model.timing(alg, p) for p in PAPER_PROC_SWEEP]
        out[alg] = {
            "collective_s": [t.collective_comm_time for t in timings],
            "stencil_s": [t.stencil_comm_time for t in timings],
            "compute_s": [t.compute_time for t in timings],
            "total_s": [t.total_time for t in timings],
            "comm_fraction": [t.comm_fraction for t in timings],
        }
    return out


def headline_claims(model: PerformanceModel) -> dict[str, Any]:
    """The paper's anchor numbers, as reproduced."""
    t = {
        (a, p): model.timing(a, p)
        for a in ALGORITHMS
        for p in PAPER_PROC_SWEEP
    }
    stencil_ratios = [
        t[("original-yz", p)].stencil_comm_time
        / t[("ca", p)].stencil_comm_time
        for p in PAPER_PROC_SWEEP
    ]
    coll_ratios = [
        t[("original-yz", p)].collective_comm_time
        / t[("ca", p)].collective_comm_time
        for p in PAPER_PROC_SWEEP
    ]
    return {
        "reduction_vs_xy_512": {
            "paper": 0.54,
            "reproduced": 1.0
            - t[("ca", 512)].total_time / t[("original-xy", 512)].total_time,
        },
        "stencil_speedup_avg": {
            "paper": 3.9,
            "reproduced": sum(stencil_ratios) / len(stencil_ratios),
        },
        "collective_speedup_avg": {
            "paper": 1.4,
            "reproduced": sum(coll_ratios) / len(coll_ratios),
        },
        "stencil_time_yz_1024_s": {
            "paper": 17_400,
            "reproduced": t[("original-yz", 1024)].stencil_comm_time,
        },
        "stencil_time_ca_1024_s": {
            "paper": 2_800,
            "reproduced": t[("ca", 1024)].stencil_comm_time,
        },
        "saved_vs_xy_1024_s": {
            "paper": 113_500,
            "reproduced": t[("original-xy", 1024)].total_time
            - t[("ca", 1024)].total_time,
        },
        "saved_vs_yz_1024_s": {
            "paper": 46_300,
            "reproduced": t[("original-yz", 1024)].total_time
            - t[("ca", 1024)].total_time,
        },
    }


def sec53_data(model: PerformanceModel) -> list[dict[str, Any]]:
    g = model.grid
    rows = []
    for p in PAPER_PROC_SWEEP:
        dyz = yz_decomposition(g.nx, g.ny, g.nz, p)
        dxy = xy_decomposition(g.nx, g.ny, g.nz, p)
        row: dict[str, Any] = {"p": p}
        for alg, d in (("ca", dyz), ("yz", dyz), ("xy", dxy)):
            c = section53_costs(alg, g.nx, g.ny, g.nz, d.px, d.py, d.pz)
            row[f"W_{alg}"] = c.W
            row[f"S_{alg}"] = c.S
        rows.append(row)
    return rows


def scaling_data(model: PerformanceModel) -> dict[str, Any]:
    out = {}
    for alg in ALGORITHMS:
        out[alg] = [
            {
                "p": pt.nprocs,
                "total_s": pt.total_time,
                "speedup": pt.speedup,
                "efficiency": pt.efficiency,
            }
            for pt in strong_scaling(model, alg, PAPER_PROC_SWEEP)
        ]
    return out


def full_report(model: PerformanceModel | None = None) -> dict[str, Any]:
    """Everything: figures, headline claims, Sec. 5.3 costs, scaling."""
    model = model or PerformanceModel(paper_grid())
    return {
        "meta": {
            "paper": "Xiao et al., Communication-Avoiding for Dynamical "
            "Core of Atmospheric General Circulation Model, ICPP 2018",
            "mesh": [model.grid.nx, model.grid.ny, model.grid.nz],
            "model_steps": model.nsteps,
            "dt_step_s": model.dt_step,
        },
        "figures": figure_data(model),
        "headline_claims": headline_claims(model),
        "sec53": sec53_data(model),
        "strong_scaling": scaling_data(model),
    }


def main(argv: list[str]) -> int:
    report = full_report()
    text = json.dumps(report, indent=2)
    if argv:
        with open(argv[0], "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {argv[0]}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
