"""Atomic-stage decomposition of the stencil smoothers + numpy fusion.

Following "Decomposition of stencil update formula into atomic stages"
(Wang 2016), each wide smoothing stencil is split into *atomic stages* —
the per-offset 4th-difference contributions and the scalar scale/combine
steps — which are then fused into single vectorized passes over pooled
:class:`~repro.core.workspace.Workspace` buffers.

The numpy fusion eliminates the materialized ``np.roll`` copies of the
reference path: each field is written once into a wrap-padded pooled
buffer, after which every shifted operand is a free *view*.  The
element-wise binary-operation sequence is kept identical to
:meth:`repro.operators.smoothing.FieldSmoother.full_into`, so the fused
pass is bit-identical to the reference tier.

:func:`apply_stages_sequential` applies the same atomic stages one by one
(the unfused schedule); the property tests assert the fused pass agrees
with it (and exactly with the reference) on every registered plan shape.
"""
from __future__ import annotations

import numpy as np

from repro.operators.smoothing import OFFSETS_FULL, FieldSmoother

#: wrap-pad width: the smoother radius
PAD = 2


def smoother_stages(sm: FieldSmoother) -> tuple[str, ...]:
    """Names of the atomic stages the fused smoothing pass merges."""
    stages = ["delta4_x", "axpy_x"]
    if sm.beta_y:
        stages += ["delta4_y", "axpy_y"]
    if sm.cross:
        stages += ["delta4_y_of_delta4_x", "axpy_cross"]
    return tuple(stages)


def apply_stages_sequential(sm: FieldSmoother, a: np.ndarray) -> np.ndarray:
    """The unfused schedule: sum the per-offset atomic stages one by one.

    Algebraically identical to :meth:`FieldSmoother.full`; floating-point
    reassociation across stages means agreement is to rounding, not bits —
    exactly the distinction the exactness flag of the equivalence harness
    documents.
    """
    return sm.partial(a, OFFSETS_FULL)


def fill_wrap_pad(a: np.ndarray, pad: np.ndarray) -> np.ndarray:
    """Write ``a`` into the interior of ``pad`` with wrap-around margins.

    ``pad`` has ``2 * PAD`` extra entries on the last two axes; after the
    fill, ``shifted_view(pad, dy, dx)`` equals ``sy(sx(a, dx), dy)`` for
    ``|dy|, |dx| <= PAD`` (corners are never read by the separable
    stencils, so they stay unfilled).
    """
    pad[..., PAD:-PAD, PAD:-PAD] = a
    pad[..., :PAD, PAD:-PAD] = a[..., -PAD:, :]
    pad[..., -PAD:, PAD:-PAD] = a[..., :PAD, :]
    pad[..., PAD:-PAD, :PAD] = a[..., :, -PAD:]
    pad[..., PAD:-PAD, -PAD:] = a[..., :, :PAD]
    return pad


def shifted_view(pad: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """View of the padded buffer equal to ``sy(sx(a, dx), dy)``."""
    ny = pad.shape[-2] - 2 * PAD
    nx = pad.shape[-1] - 2 * PAD
    return pad[
        ..., PAD + dy: PAD + dy + ny, PAD + dx: PAD + dx + nx
    ]


def _delta4_views(views, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """``delta4`` over five pre-shifted operand views.

    Same element-wise binary-operation sequence as
    :func:`repro.operators.smoothing._delta4_into` — only the shift copies
    are replaced by views — hence bit-identical.
    """
    m2, m1, c0, p1, p2 = views
    np.multiply(m1, 4.0, out=tmp)
    np.subtract(m2, tmp, out=out)
    np.multiply(c0, 6.0, out=tmp)
    np.add(out, tmp, out=out)
    np.multiply(p1, 4.0, out=tmp)
    np.subtract(out, tmp, out=out)
    np.add(out, p2, out=out)
    return out


def smooth_field_fused_numpy(
    sm: FieldSmoother, a: np.ndarray, out: np.ndarray, ws
) -> np.ndarray:
    """Fused numpy smoothing pass, bit-identical to ``sm.full_into``.

    One wrap-padded write of ``a`` makes every shift a view; the delta4
    stages then run with zero shift copies.  The cross term pads the
    ``delta4_x`` intermediate in y the same way.
    """
    pshape = a.shape[:-2] + (a.shape[-2] + 2 * PAD, a.shape[-1] + 2 * PAD)
    pad = ws.take(pshape)
    fill_wrap_pad(a, pad)
    a_view = shifted_view(pad, 0, 0)
    tmp = ws.take(a.shape)
    t2 = ws.take(a.shape)

    # dx4 lands in a y-padded buffer when the cross term will y-shift it
    dxp = None
    if sm.cross:
        dxp = ws.take(a.shape[:-2] + (a.shape[-2] + 2 * PAD, a.shape[-1]))
        dx = dxp[..., PAD:-PAD, :]
    else:
        dxp_plain = ws.take(a.shape)
        dx = dxp_plain
    _delta4_views(
        [shifted_view(pad, 0, d) for d in (-2, -1, 0, 1, 2)], dx, tmp
    )
    np.multiply(dx, sm.beta_x / 16.0, out=out)
    np.subtract(a_view, out, out=out)
    if sm.beta_y:
        _delta4_views(
            [shifted_view(pad, d, 0) for d in (-2, -1, 0, 1, 2)], t2, tmp
        )
        np.multiply(t2, sm.beta_y / 16.0, out=t2)
        np.subtract(out, t2, out=out)
    if sm.cross:
        dxp[..., :PAD, :] = dx[..., -PAD:, :]
        dxp[..., -PAD:, :] = dx[..., :PAD, :]
        ny = a.shape[-2]
        _delta4_views(
            [dxp[..., PAD + d: PAD + d + ny, :] for d in (-2, -1, 0, 1, 2)],
            t2, tmp,
        )
        np.multiply(t2, sm.beta_x * sm.beta_y / 256.0, out=t2)
        np.add(out, t2, out=out)
    if sm.cross:
        ws.give(pad, tmp, t2, dxp)
    else:
        ws.give(pad, tmp, t2, dxp_plain)
    return out
