"""Optional numba JIT of the fused smoothing pass.

The loop body below mirrors the C ``smooth_full`` kernel element for
element (same IEEE binary-operation sequence as
:meth:`repro.operators.smoothing.FieldSmoother.full_into`), so all three
backends are bit-identical.  When numba is importable the function is
``njit``-compiled lazily at first use; without numba the undecorated
pure-Python loops still run (and are exercised by the equivalence tests on
tiny meshes), so the no-numba CI leg covers the identical code path.
"""
from __future__ import annotations

_NUMBA_ERR: Exception | None = None
try:  # pragma: no cover - exercised only on the numba CI leg
    import numba as _numba
except Exception as exc:  # numba is optional; never required
    _numba = None
    _NUMBA_ERR = exc


def numba_available() -> bool:
    """Whether the numba JIT is importable in this interpreter."""
    return _numba is not None


def _smooth_full_loops(a, dx, out, nl, ny, nx, cx, cy, cxy, use_y, use_cross):
    # stage 1: dx <- delta4_x(a)
    for line in range(nl * ny):
        base = line * nx
        for i in range(nx):
            m2 = (i - 2) % nx
            m1 = (i - 1) % nx
            p1 = (i + 1) % nx
            p2 = (i + 2) % nx
            v = a[base + m2] - 4.0 * a[base + m1]
            v = v + 6.0 * a[base + i]
            v = v - 4.0 * a[base + p1]
            v = v + a[base + p2]
            dx[base + i] = v
    # stage 2: combine with inline delta4_y of a (and of dx for the cross)
    for lev in range(nl):
        off = lev * ny * nx
        for j in range(ny):
            jm2 = (j - 2) % ny
            jm1 = (j - 1) % ny
            jp1 = (j + 1) % ny
            jp2 = (j + 2) % ny
            for i in range(nx):
                e = off + j * nx + i
                o = a[e] - cx * dx[e]
                if use_y:
                    v = a[off + jm2 * nx + i] - 4.0 * a[off + jm1 * nx + i]
                    v = v + 6.0 * a[e]
                    v = v - 4.0 * a[off + jp1 * nx + i]
                    v = v + a[off + jp2 * nx + i]
                    o = o - cy * v
                if use_cross:
                    v = dx[off + jm2 * nx + i] - 4.0 * dx[off + jm1 * nx + i]
                    v = v + 6.0 * dx[e]
                    v = v - 4.0 * dx[off + jp1 * nx + i]
                    v = v + dx[off + jp2 * nx + i]
                    o = o + cxy * v
                out[e] = o


_JITTED = None


def smooth_full_fn():
    """The loop kernel, njit-compiled when numba is present."""
    global _JITTED
    if _JITTED is None:
        if _numba is not None:  # pragma: no cover - numba CI leg
            _JITTED = _numba.njit(cache=True, fastmath=False)(
                _smooth_full_loops
            )
        else:
            _JITTED = _smooth_full_loops
    return _JITTED


def smooth_full_numba(a, out, scratch, beta_x, beta_y, cross):
    """Fused smoothing of one field via the (optionally JITted) loops."""
    ny, nx = a.shape[-2], a.shape[-1]
    nl = 1
    for n in a.shape[:-2]:
        nl *= n
    fn = smooth_full_fn()
    fn(
        a.reshape(-1), scratch.reshape(-1), out.reshape(-1),
        nl, ny, nx,
        beta_x / 16.0, beta_y / 16.0, beta_x * beta_y / 256.0,
        1 if beta_y else 0, 1 if cross else 0,
    )
    return out
