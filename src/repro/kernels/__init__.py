"""Opt-in fused/compiled kernel tier for the stencil hot path.

``kernel_tier="fused"`` routes the smoothing, advection, adaptation, and
vertical-diagnostic operators through single fused passes (compiled C via
ctypes, numba-JITted loops, or fused numpy over wrap-padded pooled
buffers) that reproduce the reference tier bit for bit.  The reference
implementations in :mod:`repro.operators` stay the oracle; every fused
path falls back to them transparently when it cannot handle a call.

See ``docs/kernels.md`` for the tier system, the atomic-stage
decomposition, and the exactness guarantees.
"""
from repro.kernels.cbackend import c_available
from repro.kernels.dispatch import (
    BACKENDS,
    TIERS,
    KernelSet,
    available_backends,
    kernel_set,
    resolve_backend,
)
from repro.kernels.numba_backend import numba_available
from repro.kernels.plans import (
    KernelPlan,
    clear_plan_cache,
    kernel_plan,
    plan_cache_stats,
    registered_plans,
)

__all__ = [
    "BACKENDS",
    "TIERS",
    "KernelPlan",
    "KernelSet",
    "available_backends",
    "c_available",
    "clear_plan_cache",
    "kernel_plan",
    "kernel_set",
    "numba_available",
    "plan_cache_stats",
    "registered_plans",
]
