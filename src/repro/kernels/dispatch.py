"""Kernel-tier dispatch: resolve a backend and route operator calls.

A :class:`KernelSet` is the object the tendency engine and the integrator
consult when ``kernel_tier="fused"``.  Each operator method either handles
the call with a fused kernel and returns the result, or returns ``None`` —
in which case the caller runs the reference workspace path.  Fallback is
therefore always transparent and per-operator: a missing compiler, a
non-contiguous working array, or an unsupported decomposition never
changes results, only speed.

Backend resolution (``backend="auto"``): the compiled C backend when a
system compiler is available, else numba (smoothing only), else the fused
numpy passes (smoothing only).  The C backend covers all four operators;
the equivalence tests pin each backend explicitly.

Every fused call is wrapped in a ``repro.obs`` span with category
``"kernel"`` so kernel-level timings appear next to the operator spans in
traces.
"""
from __future__ import annotations

import warnings

import numpy as np

from repro import constants
from repro.kernels import cbackend
from repro.kernels.numba_backend import numba_available, smooth_full_numba
from repro.kernels.plans import KernelPlan, kernel_plan
from repro.kernels.stages import smoother_stages, smooth_field_fused_numpy
from repro.obs.spans import span

TIERS = ("reference", "fused")
BACKENDS = ("auto", "c", "numba", "numpy")

#: Operators each backend can fuse.  Everything else falls back.
_COVERAGE = {
    "c": ("smoothing", "advection", "adaptation", "vertical"),
    "numba": ("smoothing",),
    "numpy": ("smoothing",),
}

_STAGES = {
    "advection": ("l1_zonal", "l2_meridional", "l3_vertical", "negate"),
    "adaptation": ("pressure_gradient", "coriolis", "omega", "combine"),
    "vertical": (
        "flux_divergence",
        "column_prefix",
        "column_suffix",
        "interface_velocities",
        "phi_prime",
    ),
}

_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def available_backends() -> list[str]:
    """Fused backends usable in this environment (ordered by preference)."""
    out = []
    if cbackend.c_available():
        out.append("c")
    if numba_available():
        out.append("numba")
    out.append("numpy")
    return out


def resolve_backend(backend: str = "auto") -> str:
    """Map a requested backend to a concrete one (may still lack coverage)."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; use {BACKENDS}")
    if backend != "auto":
        return backend
    return available_backends()[0]


def _ok(*arrays: np.ndarray) -> bool:
    return all(
        a.flags.c_contiguous and a.dtype == np.float64 for a in arrays
    )


class KernelSet:
    """One resolved kernel tier: fused entry points with fallback.

    ``exact=True`` (the default) means every fused path must be
    bit-identical to the reference tier — which all shipped backends are;
    the flag is threaded so the equivalence harness can state the
    guarantee it asserts.
    """

    def __init__(
        self, tier: str = "fused", backend: str = "auto", exact: bool = True
    ) -> None:
        if tier not in TIERS:
            raise ValueError(f"unknown kernel tier {tier!r}; use {TIERS}")
        self.tier = tier
        self.requested_backend = backend
        self.backend = resolve_backend(backend)
        self.exact = exact
        self._lib = None

    # ---- backend plumbing -------------------------------------------------

    def _covers(self, op: str) -> bool:
        return op in _COVERAGE.get(self.backend, ())

    def _library(self):
        """The C library, or ``None`` (with a one-shot warning) if unbuildable."""
        if self._lib is None:
            try:
                self._lib = cbackend.load_library()
            except cbackend.KernelBuildError as exc:
                _warn_once(
                    "c-build",
                    f"fused C kernels unavailable ({exc}); falling back",
                )
                self._lib = False
        return self._lib or None

    def _register(self, op: str, shape: tuple, stages: tuple, extra=()) -> KernelPlan:
        return kernel_plan(
            op,
            self.backend,
            shape,
            extra,
            lambda: KernelPlan(
                op=op,
                backend=self.backend,
                shape=tuple(shape),
                stages=stages,
                fn=getattr(self, op if op != "smoothing" else "smooth_field"),
            ),
        )

    # ---- smoothing --------------------------------------------------------

    def smooth_field(self, sm, a: np.ndarray, out: np.ndarray, ws):
        """Fused smoothing of one field; ``None`` if this call can't fuse."""
        if not self._covers("smoothing") or not _ok(a, out):
            return None
        self._register(
            "smoothing", a.shape, smoother_stages(sm),
            (sm.beta_x, sm.beta_y, sm.cross),
        )
        if self.backend == "c":
            lib = self._library()
            if lib is None:
                return None
            scratch = ws.take(a.shape)
            cbackend.smooth_full_c(
                lib, a, out, scratch, sm.beta_x, sm.beta_y, sm.cross
            )
            ws.give(scratch)
            return out
        if self.backend == "numba":
            scratch = ws.take(a.shape)
            smooth_full_numba(a, out, scratch, sm.beta_x, sm.beta_y, sm.cross)
            ws.give(scratch)
            return out
        return smooth_field_fused_numpy(sm, a, out, ws)

    def smooth_state_into(self, state, params, out, ws, smoothers):
        """Fused ``S`` over a whole state; ``None`` to fall back."""
        if not self._covers("smoothing"):
            return None
        with span(f"smoothing-fused[{self.backend}]", "kernel"):
            for name in ("U", "V", "Phi", "psa"):
                res = self.smooth_field(
                    smoothers[name], getattr(state, name), getattr(out, name), ws
                )
                if res is None:
                    return None
            return out

    # ---- the stencil tendencies (C backend only) --------------------------

    def _pf_into(self, psa: np.ndarray, pf: np.ndarray) -> np.ndarray:
        """``P`` with the exact reference op chain (and its guard)."""
        np.add(psa, constants.P_REFERENCE, out=pf)
        np.subtract(pf, constants.P_TOP, out=pf)
        if np.any(pf <= 0):
            raise ValueError(
                "surface pressure must exceed the model-top pressure"
            )
        np.divide(pf, constants.P_REFERENCE, out=pf)
        np.sqrt(pf, out=pf)
        return pf

    def advection(self, state, vd, geom, ws, out, cache):
        """Fused ``L``-tendency; ``None`` if this call can't fuse."""
        if not self._covers("advection"):
            return None
        U, V, Phi = state.U, state.V, state.Phi
        sdot = vd.sdot_iface
        if not _ok(U, V, Phi, state.psa, sdot, out.U, out.V, out.Phi):
            return None
        lib = self._library()
        if lib is None:
            return None
        kg = self._advec_kgeom(geom, cache)
        with span(f"advection-fused[{self.backend}]", "kernel"):
            self._register("advection", U.shape, _STAGES["advection"])
            nz, ny, nx = U.shape
            pf = self._pf_into(state.psa, ws.take(state.psa.shape))
            scratch = {
                "vel": ws.take((nz, ny, nx)),
                "vs": ws.take((nz, ny, nx)),
                "flux": ws.take((nz, ny, nx)),
                "sstag": ws.take((nz + 1, ny, nx)),
                "fbar": ws.take((nz + 1, ny, nx)),
                "p2d": ws.take((3, ny, nx)),
            }
            cbackend.advection_c(
                lib, U, V, Phi, pf, sdot, kg.advection, kg.advection_dsig,
                geom.grid.dlambda, geom.grid.dtheta, scratch,
                out.U, out.V, out.Phi,
            )
            out.psa[...] = 0.0
            ws.give(pf, *scratch.values())
        return out

    def _advec_kgeom(self, geom, cache) -> _RowsOnly:
        kg = getattr(cache, "_kernel_geom", None)
        if kg is None:
            kg = _RowsOnly()
            kg.advection = {
                "sin_c": _flat(cache.sin_c3), "sin_v": _flat(cache.sin_v3),
                "pre_c": _flat(cache.pre_c3), "pre_v": _flat(cache.pre_v3),
                "tas_c": _flat(cache.two_a_sin_c3),
                "tas_v": _flat(cache.two_a_sin_v3),
            }
            kg.advection_dsig = _flat(cache.dsig3)
            cache._kernel_geom = kg
        return kg

    def adaptation(self, state, vd, geom, params, ws, out, cache):
        """Fused ``A-hat``-tendency; ``None`` if this call can't fuse."""
        if not self._covers("adaptation"):
            return None
        U, V, Phi, psa = state.U, state.V, state.Phi, state.psa
        phi_p = vd.phi_prime
        w_if = vd.w_iface
        col_sum = vd.column_sum
        if not _ok(U, V, Phi, psa, phi_p, w_if, col_sum, out.U, out.V, out.Phi):
            return None
        lib = self._library()
        if lib is None:
            return None
        from repro.operators.adaptation import surface_dissipation
        from repro.operators.vertical import DEFAULT_REFERENCE

        kg = self._adapt_kgeom(cache)
        with span(f"adaptation-fused[{self.backend}]", "kernel"):
            self._register("adaptation", U.shape, _STAGES["adaptation"])
            pf = self._pf_into(psa, ws.take(psa.shape))
            pes = ws.take(psa.shape)
            np.power(pf, 2, out=pes)
            np.multiply(pes, constants.P_REFERENCE, out=pes)
            # The reference-temperature profile uses a non-integer power,
            # whose numpy SIMD routine libm does not reproduce bitwise —
            # it stays in numpy, exactly as the reference computes it.
            t_ref_surf = DEFAULT_REFERENCE.temperature(
                psa + constants.P_REFERENCE
            )
            baro = ws.take(psa.shape)
            np.multiply(pf, constants.R_DRY, out=baro)
            np.multiply(baro, t_ref_surf, out=baro)
            b = constants.B_GRAVITY_WAVE
            cbackend.adaptation_c(
                lib, U, V, Phi, phi_p, w_if, col_sum, pf, pes, baro,
                kg.adaptation, geom.grid.radius,
                geom.grid.dlambda, geom.grid.dtheta,
                b, b * (1.0 + params.delta_c),
                out.U, out.V, out.Phi,
            )
            d_sa = surface_dissipation(psa, geom)
            np.multiply(d_sa, constants.KAPPA_STAR, out=d_sa)
            np.subtract(d_sa, col_sum, out=d_sa)
            np.multiply(d_sa, constants.P_REFERENCE, out=d_sa)
            np.copyto(out.psa, d_sa)
            ws.give(pf, pes, baro)
        return out

    def _adapt_kgeom(self, cache):
        kg = getattr(cache, "_kernel_geom", None)
        if kg is None:
            kg = _RowsOnly()
            kg.adaptation = {
                "a_sin_c": _flat(cache.a_sin_c3),
                "cot_c": _flat(cache.cot_c3),
                "omcos_c": _flat(cache.two_omega_cos_c3),
                "cot_v": _flat(cache.cot_v3),
                "omcos_v": _flat(cache.two_omega_cos_v3),
                "sig_mid": _flat(cache.sig_mid3),
            }
            cache._kernel_geom = kg
        return kg

    def vertical(self, U, V, Phi, psa, geom, gather, ws, cache):
        """Fused ``C`` diagnostics; ``None`` if this call can't fuse.

        Only the serial / full-column case is fused (no z-gather, no ghost
        levels, identity interface and level maps); everything else runs
        the reference workspace path.
        """
        if not self._covers("vertical"):
            return None
        nz = geom.grid.nz
        if (
            gather is not None
            or geom.gz != 0
            or not cache.k_if_identity
            or not cache.k_lev_identity
            or U.shape[0] != nz
        ):
            return None
        if not _ok(U, V, Phi, psa):
            return None
        lib = self._library()
        if lib is None:
            return None
        from repro.operators.vertical import VerticalDiagnostics

        kg = self._vert_kgeom(geom, cache)
        with span(f"vertical-fused[{self.backend}]", "kernel"):
            self._register("vertical", U.shape, _STAGES["vertical"])
            ny_w, nx_w = psa.shape
            pf = self._pf_into(psa, ws.take((ny_w, nx_w)))
            div_p = ws.take((nz, ny_w, nx_w))
            col_sum = ws.take((ny_w, nx_w))
            pw = ws.take((nz + 1, ny_w, nx_w))
            w = ws.take((nz + 1, ny_w, nx_w))
            sdot = ws.take((nz + 1, ny_w, nx_w))
            phi_prime = ws.take((nz, ny_w, nx_w))
            s2d = ws.take((3, ny_w, nx_w))
            cbackend.vertical_c(
                lib, U, V, Phi, pf, kg.vertical,
                geom.grid.dlambda, geom.grid.dtheta,
                constants.B_GRAVITY_WAVE,
                div_p, col_sum, pw, w, sdot, phi_prime, s2d,
            )
            ws.give(s2d)
        return VerticalDiagnostics(
            div_p=div_p,
            column_sum=col_sum,
            pw_iface=pw,
            w_iface=w,
            sdot_iface=sdot,
            phi_prime=phi_prime,
            p_fac=pf,
        )

    def _vert_kgeom(self, geom, cache):
        kg = getattr(cache, "_kernel_geom", None)
        if kg is None:
            kg = _RowsOnly()
            kg.vertical = {
                "sin_v": _flat(geom.sin_v),
                "a_sin_c": _flat(cache.a_sin_c3),
                "dsig": _flat(cache.dsig_own3),
                "ratio": _flat(cache.ratio_own3),
                "sig_if": _flat(cache.sig_if3),
            }
            cache._kernel_geom = kg
        return kg

    def describe(self) -> dict:
        """Summary for traces / bench reports."""
        return {
            "tier": self.tier,
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "exact": self.exact,
            "coverage": list(_COVERAGE.get(self.backend, ())),
        }


class _RowsOnly:
    """Attribute bag for per-cache flat metric rows."""


def _flat(a) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64).ravel())


def kernel_set(
    tier: str = "reference", backend: str = "auto", exact: bool = True
) -> KernelSet | None:
    """Build the kernel set for a tier (``None`` for the reference tier)."""
    if tier not in TIERS:
        raise ValueError(f"unknown kernel tier {tier!r}; use {TIERS}")
    if tier == "reference":
        return None
    return KernelSet(tier=tier, backend=backend, exact=exact)
