"""Memoised per-shape kernel plans (the ``filter_plan`` pattern).

A *plan* freezes everything a fused kernel needs that depends only on the
working-array shape and the operator parameters: the resolved low-level
entry point, scratch-buffer shapes, and the atomic-stage metadata the
property tests introspect.  Plans are memoised process-wide on their exact
inputs — mirroring :func:`repro.operators.filter.filter_plan` — so rank
programs and benchmark sweeps build each plan once.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class KernelPlan:
    """One fused kernel resolved for a specific operator + shape.

    Attributes
    ----------
    op:
        Operator name (``smoothing``/``advection``/``adaptation``/
        ``vertical``).
    backend:
        Resolved backend (``c``/``numba``/``numpy``).
    shape:
        Working-array shape the plan was built for.
    stages:
        Names of the atomic stages the fused pass merges, in application
        order (introspected by the stage-algebra property tests).
    fn:
        The fused entry point (backend-specific signature).
    meta:
        Backend-specific extras (scratch shapes, ctypes handles, ...).
    """

    op: str
    backend: str
    shape: tuple[int, ...]
    stages: tuple[str, ...]
    fn: Callable = field(compare=False)
    meta: Any = field(default=None, compare=False)


_PLAN_CACHE: dict[tuple, KernelPlan] = {}
_PLAN_STATS = {"hits": 0, "misses": 0}


def kernel_plan(
    op: str,
    backend: str,
    shape: tuple[int, ...],
    key_extra: tuple,
    build: Callable[[], KernelPlan],
) -> KernelPlan:
    """Memoised plan lookup: build once per (op, backend, shape, extras)."""
    key = (op, backend, tuple(shape), key_extra)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _PLAN_STATS["hits"] += 1
        return cached
    _PLAN_STATS["misses"] += 1
    plan = build()
    _PLAN_CACHE[key] = plan
    return plan


def registered_plans() -> list[KernelPlan]:
    """All plans built so far (the property tests sweep these shapes)."""
    return list(_PLAN_CACHE.values())


def plan_cache_stats() -> dict[str, int]:
    """Current kernel-plan cache counters (``hits``, ``misses``, ``size``)."""
    return {**_PLAN_STATS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Drop all cached kernel plans and reset the counters."""
    _PLAN_CACHE.clear()
    _PLAN_STATS["hits"] = 0
    _PLAN_STATS["misses"] = 0
