"""Build and drive the compiled C kernels via ctypes.

The C source (:mod:`repro.kernels.csrc`) is compiled at first use with the
system C compiler into a shared object cached under a content-addressed
path (sha256 of source + flags), written with an atomic rename so
concurrent ranks / process-backend children race safely.  No third-party
packages are involved: ``cc``/``gcc`` + ``ctypes`` only.  When no working
compiler exists, :func:`load_library` raises :class:`KernelBuildError` and
the dispatch layer falls back to the next backend.

``-ffp-contract=off`` is mandatory: FMA contraction would change rounding
and break the bit-identity contract with the reference tier.  The first
flag set adds ``-march=native`` so the division-bound stencil loops get
the widest SIMD divides the host has; since every generated op is still a
plain IEEE ``+ - * /``/``sqrt`` (FMA stays disabled), results do not
depend on the vector width.  Hosts whose compiler rejects the flag fall
through to the portable set.
"""
from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

from repro.kernels.csrc import C_SOURCE

#: flag sets tried in order; each is content-addressed separately
CFLAGS_SETS = (
    ("-O3", "-march=native", "-fPIC", "-shared", "-ffp-contract=off"),
    ("-O3", "-fPIC", "-shared", "-ffp-contract=off"),
)
#: the portable flags (kept as the stable name for tests/docs)
CFLAGS = CFLAGS_SETS[-1]


class KernelBuildError(RuntimeError):
    """The C kernel library could not be built or loaded."""


_LIB: ctypes.CDLL | None = None
_LIB_ERROR: Exception | None = None


def _cache_dir() -> str:
    d = os.environ.get("REPRO_KERNELS_CACHE")
    if not d:
        d = os.path.join(tempfile.gettempdir(), "repro-kernels")
    os.makedirs(d, exist_ok=True)
    return d


def _build_so() -> str:
    """Compile the kernel library (or reuse the content-addressed cache)."""
    last_err: Exception | None = None
    for cflags in CFLAGS_SETS:
        tag = hashlib.sha256(
            (C_SOURCE + "|" + " ".join(cflags)).encode()
        ).hexdigest()[:16]
        so_path = os.path.join(_cache_dir(), f"repro_kernels_{tag}.so")
        if os.path.exists(so_path):
            return so_path
        workdir = tempfile.mkdtemp(dir=_cache_dir())
        c_path = os.path.join(workdir, "kernels.c")
        tmp_so = os.path.join(workdir, "kernels.so")
        with open(c_path, "w") as fh:
            fh.write(C_SOURCE)
        for cc in ("cc", "gcc", "clang"):
            try:
                subprocess.run(
                    [cc, *cflags, c_path, "-o", tmp_so, "-lm"],
                    check=True, capture_output=True, timeout=120,
                )
            except (OSError, subprocess.SubprocessError) as exc:
                last_err = exc
                continue
            os.replace(tmp_so, so_path)  # atomic: concurrent builders converge
            return so_path
    raise KernelBuildError(f"no working C compiler: {last_err}")


_VP = ctypes.c_void_p
_L = ctypes.c_long
_D = ctypes.c_double
_I = ctypes.c_int

#: argtypes per exported kernel (pointers are passed as raw addresses)
_SIGNATURES = {
    "smooth_full": [_VP] * 3 + [_L] * 3 + [_D] * 3 + [_I] * 2,
    "advection": [_VP] * 12 + [_D] * 2 + [_L] * 3 + [_VP] * 9,
    "adaptation": [_VP] * 15 + [_D] * 5 + [_L] * 3 + [_VP] * 3,
    "vertical": [_VP] * 9 + [_D] * 3 + [_L] * 3 + [_VP] * 7,
}


def load_library() -> ctypes.CDLL:
    """The compiled kernel library (memoised; raises KernelBuildError)."""
    global _LIB, _LIB_ERROR
    if _LIB is not None:
        return _LIB
    if _LIB_ERROR is not None:
        raise KernelBuildError(str(_LIB_ERROR))
    try:
        lib = ctypes.CDLL(_build_so())
    except (KernelBuildError, OSError) as exc:
        _LIB_ERROR = exc
        raise KernelBuildError(str(exc)) from exc
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = None
        fn.argtypes = argtypes
    _LIB = lib
    return lib


def c_available() -> bool:
    """Whether the C backend can be (or already was) built."""
    try:
        load_library()
        return True
    except KernelBuildError:
        return False


def _p(a: np.ndarray) -> int:
    if not a.flags.c_contiguous or a.dtype != np.float64:
        raise ValueError("kernel arrays must be C-contiguous float64")
    return a.ctypes.data


def smooth_full_c(
    lib, a: np.ndarray, out: np.ndarray, scratch: np.ndarray,
    beta_x: float, beta_y: float, cross: bool,
) -> None:
    """One field's full smoothing, bit-identical to ``full_into``."""
    ny, nx = a.shape[-2], a.shape[-1]
    nl = 1 if a.ndim == 2 else int(np.prod(a.shape[:-2]))
    lib.smooth_full(
        _p(a), _p(scratch), _p(out),
        nl, ny, nx,
        beta_x / 16.0, beta_y / 16.0, beta_x * beta_y / 256.0,
        1 if beta_y else 0, 1 if cross else 0,
    )


def advection_c(
    lib, U, V, Phi, pf, sdot, rows, dsig, dlam, dth, scratch, tU, tV, tPhi
) -> None:
    """The full advection tendency (negated), bit-identical to the ws path.

    ``rows`` is the dict of flat per-row metric arrays; ``scratch`` a dict
    of pooled buffers (vel/vs/flux 3-D, sstag/fbar interface-sized,
    p2d a (3, ny, nx) block for the k-invariant pf staggers).
    """
    nz, ny, nx = U.shape
    lib.advection(
        _p(U), _p(V), _p(Phi), _p(pf), _p(sdot),
        _p(rows["sin_c"]), _p(rows["sin_v"]),
        _p(rows["pre_c"]), _p(rows["pre_v"]),
        _p(rows["tas_c"]), _p(rows["tas_v"]),
        _p(dsig), dlam, dth,
        nz, ny, nx,
        _p(scratch["vel"]),
        _p(scratch["vs"]), _p(scratch["flux"]),
        _p(scratch["sstag"]), _p(scratch["fbar"]),
        _p(scratch["p2d"]),
        _p(tU), _p(tV), _p(tPhi),
    )


def adaptation_c(
    lib, U, V, Phi, phi_p, w_if, col_sum, pf, pes, baro, rows,
    a, dlam, dth, b, coeff, tU, tV, tPhi,
) -> None:
    """The U/V/Phi adaptation tendencies (psa part stays in numpy)."""
    nz, ny, nx = U.shape
    lib.adaptation(
        _p(U), _p(V), _p(Phi), _p(phi_p), _p(w_if), _p(col_sum),
        _p(pf), _p(pes), _p(baro),
        _p(rows["a_sin_c"]), _p(rows["cot_c"]), _p(rows["omcos_c"]),
        _p(rows["cot_v"]), _p(rows["omcos_v"]), _p(rows["sig_mid"]),
        a, dlam, dth, b, coeff,
        nz, ny, nx,
        _p(tU), _p(tV), _p(tPhi),
    )


def vertical_c(
    lib, U, V, Phi, pf, rows, dlam, dth, bgrav,
    div_p, col_sum, pw, w, sdot, phi_prime, s2d,
) -> None:
    """The ``C`` diagnostics (serial / identity-column case).

    ``s2d`` is a (3, ny, nx) scratch block for the k-invariant 2-D
    factors (staggered ``pf`` and ``bgrav/pf``).
    """
    nz, ny, nx = U.shape
    lib.vertical(
        _p(U), _p(V), _p(Phi), _p(pf),
        _p(rows["sin_v"]), _p(rows["a_sin_c"]),
        _p(rows["dsig"]), _p(rows["ratio"]), _p(rows["sig_if"]),
        dlam, dth, bgrav,
        nz, ny, nx,
        _p(div_p), _p(col_sum), _p(pw), _p(w), _p(sdot), _p(phi_prime),
        _p(s2d),
    )
