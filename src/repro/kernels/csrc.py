"""C source of the fused stencil kernels.

Each function transcribes the per-element IEEE binary-operation sequence
of the corresponding workspace (``_ws``) reference path in
``repro.operators`` — same operands, same order — so results are
bit-identical.  Shifted operands use wrap-around (mod-n) indexing on both
horizontal axes, matching the ``np.roll`` semantics of the reference
shifts; the wrap only matters on the first/last columns, so every x-loop
peels those and runs a branch-free, directly-indexed interior that the
compiler can vectorize (the kernels are division-bound, and SIMD divides
are the bulk of the speedup).  Stencil bodies are written once as macros
so the peeled and interior iterations are textually the same ops.

Compiled with ``-ffp-contract=off`` so no FMA contraction can change
rounding; only ``+ - * / sqrt`` are used (all IEEE-exact and identical
between numpy and C on the same hardware, at any vector width).  Anything
involving ``pow`` with a non-integer exponent (the reference-temperature
profile) stays in numpy, where the caller precomputes it.
"""

C_SOURCE = r"""
#include <math.h>

static long wm(long i, long n) {  /* wrap for offsets within +-2 */
    if (i < 0) return i + n;
    if (i >= n) return i - n;
    return i;
}

/* ---- smoothing: P1/P2 fused over one field --------------------------- */
/* Stage 1: dx[e] = delta4_x(a)[e]; stage 2: out = a - cx*dx (- cy*dy4(a))
   (+ cxy*dy4(dx)).  a is (nl, ny, nx) with nl collapsed leading dims.  */
void smooth_full(const double *restrict a, double *restrict dx,
                 double *restrict out,
                 long nl, long ny, long nx,
                 double cx, double cy, double cxy,
                 int use_y, int use_cross)
{
    long l, j, i;
#define DX4(i_, m2_, m1_, p1_, p2_) do { \
        double v = r[m2_] - 4.0 * r[m1_]; \
        v = v + 6.0 * r[i_]; \
        v = v - 4.0 * r[p1_]; \
        v = v + r[p2_]; \
        d[i_] = v; \
    } while (0)
    for (l = 0; l < nl; l++) {
        const double *ap = a + l * ny * nx;
        double *dp = dx + l * ny * nx;
        for (j = 0; j < ny; j++) {
            const double *r = ap + j * nx;
            double *d = dp + j * nx;
            if (nx < 4) {  /* tiny circles: generic wrapped indexing */
                for (i = 0; i < nx; i++)
                    DX4(i, wm(i - 2, nx), wm(i - 1, nx),
                        wm(i + 1, nx), wm(i + 2, nx));
                continue;
            }
            DX4(0, nx - 2, nx - 1, 1, 2);
            DX4(1, nx - 1, 0, 2, 3);
            for (i = 2; i < nx - 2; i++)
                DX4(i, i - 2, i - 1, i + 1, i + 2);
            DX4(nx - 2, nx - 4, nx - 3, nx - 1, 0);
            DX4(nx - 1, nx - 3, nx - 2, 0, 1);
        }
    }
#undef DX4
    for (l = 0; l < nl; l++) {
        const double *ap = a + l * ny * nx;
        const double *dp = dx + l * ny * nx;
        double *op = out + l * ny * nx;
        for (j = 0; j < ny; j++) {
            long jm2 = wm(j - 2, ny), jm1 = wm(j - 1, ny);
            long jp1 = wm(j + 1, ny), jp2 = wm(j + 2, ny);
            const double *ac = ap + j * nx;
            const double *am2 = ap + jm2 * nx, *am1 = ap + jm1 * nx;
            const double *ap1 = ap + jp1 * nx, *ap2 = ap + jp2 * nx;
            const double *dc = dp + j * nx;
            const double *dm2 = dp + jm2 * nx, *dm1 = dp + jm1 * nx;
            const double *dq1 = dp + jp1 * nx, *dq2 = dp + jp2 * nx;
            double *o = op + j * nx;
            for (i = 0; i < nx; i++) {
                double v = ac[i] - cx * dc[i];
                if (use_y) {
                    double t = am2[i] - 4.0 * am1[i];
                    t = t + 6.0 * ac[i];
                    t = t - 4.0 * ap1[i];
                    t = t + ap2[i];
                    v = v - cy * t;
                }
                if (use_cross) {
                    double t = dm2[i] - 4.0 * dm1[i];
                    t = t + 6.0 * dc[i];
                    t = t - 4.0 * dq1[i];
                    t = t + dq2[i];
                    v = v + cxy * t;
                }
                o[i] = v;
            }
        }
    }
}

/* ---- advection helper stages ----------------------------------------- */

static void l1_pass(const double *restrict F, const double *restrict u,
                    const double *restrict pre,
                    double dlam, long nz, long ny, long nx,
                    double *restrict out)
{
    long k, j, i;
#define L1(i_, m1_, p1_) do { \
        double o = Fr[p1_] * ur[p1_] - Fr[m1_] * ur[m1_]; \
        o = o / (2.0 * dlam); \
        o = o * 2.0; \
        double t = ur[p1_] - ur[m1_]; \
        t = t / (2.0 * dlam); \
        t = Fr[i_] * t; \
        o = o - t; \
        orow[i_] = o * pj; \
    } while (0)
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *Fr = F + (k * ny + j) * nx;
            const double *ur = u + (k * ny + j) * nx;
            double *orow = out + (k * ny + j) * nx;
            double pj = pre[j];
            L1(0, nx - 1, 1);
            for (i = 1; i < nx - 1; i++)
                L1(i, i - 1, i + 1);
            L1(nx - 1, nx - 2, 0);
        }
#undef L1
}

/* vs/flux are (nz, ny, nx) scratch; the L2 term ACCUMULATES into out
   (out[e] += term[e], the same add the reference applies afterwards)   */
static void l2_centre_pass(const double *restrict F,
                           const double *restrict v_if,
                           const double *restrict sin_if,
                           const double *restrict denom,
                           double dth, long nz, long ny, long nx,
                           double *restrict vs, double *restrict flux,
                           double *restrict out)
{
    long k, j, i;
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *vr = v_if + (k * ny + j) * nx;
            double sj = sin_if[j];
            double *o = vs + (k * ny + j) * nx;
            for (i = 0; i < nx; i++)
                o[i] = vr[i] * sj;
        }
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jp1 = wm(j + 1, ny);
            const double *Fc = F + (k * ny + j) * nx;
            const double *Fp = F + (k * ny + jp1) * nx;
            const double *vr = vs + (k * ny + j) * nx;
            double *o = flux + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double t = Fc[i] + Fp[i];
                t = t * 0.5;
                o[i] = t * vr[i];
            }
        }
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny);
            const double *Fc = F + (k * ny + j) * nx;
            const double *fc = flux + (k * ny + j) * nx;
            const double *fm = flux + (k * ny + jm1) * nx;
            const double *vc = vs + (k * ny + j) * nx;
            const double *vm = vs + (k * ny + jm1) * nx;
            double dj = denom[j];
            double *o = out + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double v = fc[i] - fm[i];
                v = v / dth;
                v = v * 2.0;
                double t = vc[i] - vm[i];
                t = t / dth;
                t = Fc[i] * t;
                v = v - t;
                o[i] = o[i] + v / dj;
            }
        }
}

/* same contract as l2_centre_pass: accumulates into out */
static void l2_v_pass(const double *restrict F, const double *restrict v_c,
                      const double *restrict sin_c,
                      const double *restrict denom,
                      double dth, long nz, long ny, long nx,
                      double *restrict vs, double *restrict flux,
                      double *restrict out)
{
    long k, j, i;
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *vr = v_c + (k * ny + j) * nx;
            double sj = sin_c[j];
            double *o = vs + (k * ny + j) * nx;
            for (i = 0; i < nx; i++)
                o[i] = vr[i] * sj;
        }
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny);
            const double *Fm = F + (k * ny + jm1) * nx;
            const double *Fc = F + (k * ny + j) * nx;
            const double *vr = vs + (k * ny + j) * nx;
            double *o = flux + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double t = Fm[i] + Fc[i];
                t = t * 0.5;
                o[i] = t * vr[i];
            }
        }
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jp1 = wm(j + 1, ny);
            const double *Fc = F + (k * ny + j) * nx;
            const double *fc = flux + (k * ny + j) * nx;
            const double *fp = flux + (k * ny + jp1) * nx;
            const double *vc = vs + (k * ny + j) * nx;
            const double *vp = vs + (k * ny + jp1) * nx;
            double dj = denom[j];
            double *o = out + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double v = fp[i] - fc[i];
                v = v / dth;
                v = v * 2.0;
                double t = vp[i] - vc[i];
                t = t / dth;
                t = Fc[i] * t;
                v = v - t;
                o[i] = o[i] + v / dj;
            }
        }
}

/* sdot is (nz+1, ny, nx); fbar is (nz+1, ny, nx) scratch.  The L3 term
   accumulates into out and the final negation of the whole advection
   tendency is folded into the same store (an exact sign flip).        */
static void l3_pass(const double *restrict F, const double *restrict sdot,
                    const double *restrict dsig,
                    long nz, long ny, long nx,
                    double *restrict fbar, double *restrict out)
{
    long k, e;
    long plane = ny * nx;
    for (k = 1; k < nz; k++)
        for (e = 0; e < plane; e++) {
            double t = F[(k - 1) * plane + e] + F[k * plane + e];
            fbar[k * plane + e] = t * 0.5;
        }
    for (e = 0; e < plane; e++) {
        fbar[e] = F[e];
        fbar[nz * plane + e] = F[(nz - 1) * plane + e];
    }
    for (k = 0; k <= nz; k++)
        for (e = 0; e < plane; e++)
            fbar[k * plane + e] = sdot[k * plane + e] * fbar[k * plane + e];
    for (k = 0; k < nz; k++) {
        const double *fb = fbar + k * plane;
        const double *fn = fbar + (k + 1) * plane;
        const double *sb = sdot + k * plane;
        const double *sn = sdot + (k + 1) * plane;
        const double *Fk = F + k * plane;
        double dk = dsig[k];
        double *o = out + k * plane;
        for (e = 0; e < plane; e++) {
            double v = fn[e] - fb[e];
            v = v / dk;
            double t = sn[e] - sb[e];
            t = t / dk;
            double u = Fk[e] * 0.5;
            u = u * t;
            double s = o[e] + (v - u);
            o[e] = -s;
        }
    }
}

/* ---- the advection tendency ------------------------------------------ */
/* p2d is a (3, ny, nx) scratch block for the k-invariant pf staggers    */
void advection(const double *restrict U, const double *restrict V,
               const double *restrict Phi,
               const double *restrict pf, const double *restrict sdot,
               const double *restrict sin_c, const double *restrict sin_v,
               const double *restrict pre_c, const double *restrict pre_v,
               const double *restrict tas_c, const double *restrict tas_v,
               const double *restrict dsig, double dlam, double dth,
               long nz, long ny, long nx,
               double *restrict vel,
               double *restrict vs, double *restrict flux,
               double *restrict sstag, double *restrict fbar,
               double *restrict p2d,
               double *restrict tU, double *restrict tV,
               double *restrict tPhi)
{
    long k, j, i;
    long plane = ny * nx;
    double *pu2 = p2d;             /* pf staggered to u-points */
    double *pv2 = p2d + plane;     /* pf staggered to v-points */
    double *b2 = p2d + 2 * plane;  /* pv2 staggered back to u-points */

    for (j = 0; j < ny; j++) {
        const double *pr = pf + j * nx;
        double *o = pu2 + j * nx;
        { double t = pr[nx - 1] + pr[0]; o[0] = t * 0.5; }
        for (i = 1; i < nx; i++) {
            double t = pr[i - 1] + pr[i];
            o[i] = t * 0.5;
        }
    }
    for (j = 0; j < ny; j++) {
        long jp1 = wm(j + 1, ny);
        const double *pr = pf + j * nx;
        const double *pq = pf + jp1 * nx;
        double *o = pv2 + j * nx;
        for (i = 0; i < nx; i++) {
            double t = pr[i] + pq[i];
            o[i] = t * 0.5;
        }
    }
    for (j = 0; j < ny; j++) {
        const double *pr = pv2 + j * nx;
        double *o = b2 + j * nx;
        { double t = pr[nx - 1] + pr[0]; o[0] = t * 0.5; }
        for (i = 1; i < nx; i++) {
            double t = pr[i - 1] + pr[i];
            o[i] = t * 0.5;
        }
    }

    /* ---- U --------------------------------------------------------- */
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *Ur = U + (k * ny + j) * nx;
            const double *pr = pu2 + j * nx;
            double *o = vel + (k * ny + j) * nx;
            for (i = 0; i < nx; i++)
                o[i] = Ur[i] / pr[i];
        }
    l1_pass(U, vel, pre_c, dlam, nz, ny, nx, tU);
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *Vr = V + (k * ny + j) * nx;
            const double *br = b2 + j * nx;
            double *o = vel + (k * ny + j) * nx;
#define VSTAG(i_, m1_) do { \
            double t = Vr[m1_] + Vr[i_]; \
            t = t * 0.5; \
            o[i_] = t / br[i_]; \
        } while (0)
            VSTAG(0, nx - 1);
            for (i = 1; i < nx; i++)
                VSTAG(i, i - 1);
#undef VSTAG
        }
    l2_centre_pass(U, vel, sin_v, tas_c, dth, nz, ny, nx, vs, flux, tU);
    for (k = 0; k <= nz; k++)
        for (j = 0; j < ny; j++) {
            const double *sr = sdot + (k * ny + j) * nx;
            double *o = sstag + (k * ny + j) * nx;
            { double t = sr[nx - 1] + sr[0]; o[0] = t * 0.5; }
            for (i = 1; i < nx; i++) {
                double t = sr[i - 1] + sr[i];
                o[i] = t * 0.5;
            }
        }
    l3_pass(U, sstag, dsig, nz, ny, nx, fbar, tU);

    /* ---- V --------------------------------------------------------- */
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jp1 = wm(j + 1, ny);
            const double *U0 = U + (k * ny + j) * nx;
            const double *U1 = U + (k * ny + jp1) * nx;
            const double *pr = pv2 + j * nx;
            double *o = vel + (k * ny + j) * nx;
#define UBAR(i_, p1_) do { \
            double t = U0[i_] + U0[p1_]; \
            t = t + U1[i_]; \
            t = t + U1[p1_]; \
            t = t * 0.25; \
            o[i_] = t / pr[i_]; \
        } while (0)
            for (i = 0; i < nx - 1; i++)
                UBAR(i, i + 1);
            UBAR(nx - 1, 0);
#undef UBAR
        }
    l1_pass(V, vel, pre_v, dlam, nz, ny, nx, tV);
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny);
            const double *Vm = V + (k * ny + jm1) * nx;
            const double *Vc = V + (k * ny + j) * nx;
            const double *pr = pf + j * nx;
            double *o = vel + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double t = Vm[i] + Vc[i];
                t = t * 0.5;
                o[i] = t / pr[i];
            }
        }
    l2_v_pass(V, vel, sin_c, tas_v, dth, nz, ny, nx, vs, flux, tV);
    for (k = 0; k <= nz; k++)
        for (j = 0; j < ny; j++) {
            long jp1 = wm(j + 1, ny);
            const double *s0 = sdot + (k * ny + j) * nx;
            const double *s1 = sdot + (k * ny + jp1) * nx;
            double *o = sstag + (k * ny + j) * nx;
            for (i = 0; i < nx; i++) {
                double t = s0[i] + s1[i];
                o[i] = t * 0.5;
            }
        }
    l3_pass(V, sstag, dsig, nz, ny, nx, fbar, tV);

    /* ---- Phi ------------------------------------------------------- */
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *Ur = U + (k * ny + j) * nx;
            const double *pr = pf + j * nx;
            double *o = vel + (k * ny + j) * nx;
#define USTAG(i_, p1_) do { \
            double t = Ur[i_] + Ur[p1_]; \
            t = t * 0.5; \
            o[i_] = t / pr[i_]; \
        } while (0)
            for (i = 0; i < nx - 1; i++)
                USTAG(i, i + 1);
            USTAG(nx - 1, 0);
#undef USTAG
        }
    l1_pass(Phi, vel, pre_c, dlam, nz, ny, nx, tPhi);
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            const double *Vr = V + (k * ny + j) * nx;
            const double *pr = pv2 + j * nx;
            double *o = vel + (k * ny + j) * nx;
            for (i = 0; i < nx; i++)
                o[i] = Vr[i] / pr[i];
        }
    l2_centre_pass(Phi, vel, sin_v, tas_c, dth, nz, ny, nx, vs, flux, tPhi);
    l3_pass(Phi, sdot, dsig, nz, ny, nx, fbar, tPhi);
}

/* ---- the adaptation tendency (U/V/Phi parts; psa stays in numpy) ----- */
void adaptation(const double *restrict U, const double *restrict V,
                const double *restrict Phi,
                const double *restrict phi_p, const double *restrict w_if,
                const double *restrict col_sum, const double *restrict pf,
                const double *restrict pes, const double *restrict baro,
                const double *restrict a_sin_c, const double *restrict cot_c,
                const double *restrict omcos_c, const double *restrict cot_v,
                const double *restrict omcos_v,
                const double *restrict sig_mid,
                double a, double dlam, double dth, double b, double coeff,
                long nz, long ny, long nx,
                double *restrict tU, double *restrict tV,
                double *restrict tPhi)
{
    long k, j, i;
    long plane = ny * nx;

    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny);
            const double *pr = pf + j * nx;
            const double *per = pes + j * nx;
            const double *br = baro + j * nx;
            const double *Pc = phi_p + (k * ny + j) * nx;
            const double *Gc = Phi + (k * ny + j) * nx;
            const double *Uc = U + (k * ny + j) * nx;
            const double *Vm = V + (k * ny + jm1) * nx;
            const double *Vc = V + (k * ny + j) * nx;
            double asj = a_sin_c[j], ccj = cot_c[j], ocj = omcos_c[j];
            double *o = tU + (k * ny + j) * nx;
#define AD_U(i_, m1_) do { \
            double pu = pr[m1_] + pr[i_]; \
            pu = pu * 0.5; \
            double t1 = Pc[i_] - Pc[m1_]; \
            t1 = t1 / dlam; \
            t1 = t1 * pu; \
            t1 = t1 / asj; \
            double t2 = Gc[m1_] + Gc[i_]; \
            t2 = t2 * 0.5; \
            t2 = t2 * b; \
            double bu = br[m1_] + br[i_]; \
            bu = bu * 0.5; \
            t2 = t2 + bu; \
            double pe = per[m1_] + per[i_]; \
            pe = pe * 0.5; \
            t2 = t2 / pe; \
            double dd = per[i_] - per[m1_]; \
            dd = dd / dlam; \
            t2 = t2 * dd; \
            t2 = t2 / asj; \
            double up = Uc[i_] / pu; \
            double t4 = up * ccj; \
            t4 = t4 / a; \
            t4 = ocj + t4; \
            double vb = Vm[m1_] + Vm[i_]; \
            vb = vb + Vc[m1_]; \
            vb = vb + Vc[i_]; \
            vb = vb * 0.25; \
            t4 = t4 * vb; \
            double v = -t1; \
            v = v - t2; \
            v = v - t4; \
            o[i_] = v; \
        } while (0)
            AD_U(0, nx - 1);
            for (i = 1; i < nx; i++)
                AD_U(i, i - 1);
#undef AD_U
        }

    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jp1 = wm(j + 1, ny);
            const double *pr = pf + j * nx;
            const double *pq = pf + jp1 * nx;
            const double *per = pes + j * nx;
            const double *peq = pes + jp1 * nx;
            const double *br = baro + j * nx;
            const double *bq = baro + jp1 * nx;
            const double *Pc = phi_p + (k * ny + j) * nx;
            const double *Pp = phi_p + (k * ny + jp1) * nx;
            const double *Gc = Phi + (k * ny + j) * nx;
            const double *Gp = Phi + (k * ny + jp1) * nx;
            const double *Uc = U + (k * ny + j) * nx;
            const double *Uq = U + (k * ny + jp1) * nx;
            double cvj = cot_v[j], ovj = omcos_v[j];
            double *o = tV + (k * ny + j) * nx;
#define AD_V(i_, p1_) do { \
            double pv = pr[i_] + pq[i_]; \
            pv = pv * 0.5; \
            double t1 = Pp[i_] - Pc[i_]; \
            t1 = t1 / dth; \
            t1 = t1 * pv; \
            t1 = t1 / a; \
            double t2 = Gc[i_] + Gp[i_]; \
            t2 = t2 * 0.5; \
            t2 = t2 * b; \
            double bv = br[i_] + bq[i_]; \
            bv = bv * 0.5; \
            t2 = t2 + bv; \
            double pe = per[i_] + peq[i_]; \
            pe = pe * 0.5; \
            t2 = t2 / pe; \
            double dd = peq[i_] - per[i_]; \
            dd = dd / dth; \
            t2 = t2 * dd; \
            t2 = t2 / a; \
            double ub = Uc[i_] + Uc[p1_]; \
            ub = ub + Uq[i_]; \
            ub = ub + Uq[p1_]; \
            ub = ub * 0.25; \
            double t4 = ub / pv; \
            t4 = t4 * cvj; \
            t4 = t4 / a; \
            t4 = ovj + t4; \
            t4 = t4 * ub; \
            double v = -t1; \
            v = v - t2; \
            v = v + t4; \
            o[i_] = v; \
        } while (0)
            for (i = 0; i < nx - 1; i++)
                AD_V(i, i + 1);
            AD_V(nx - 1, 0);
#undef AD_V
        }

    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny), jp1 = wm(j + 1, ny);
            const double *pr = pf + j * nx;
            const double *per = pes + j * nx;
            const double *pm = pes + jm1 * nx;
            const double *pp = pes + jp1 * nx;
            const double *csr = col_sum + j * nx;
            const double *w0 = w_if + k * plane + j * nx;
            const double *w1 = w_if + (k + 1) * plane + j * nx;
            const double *Uc = U + (k * ny + j) * nx;
            const double *Vm = V + (k * ny + jm1) * nx;
            const double *Vc = V + (k * ny + j) * nx;
            double sgk = sig_mid[k], asj = a_sin_c[j];
            double *o = tPhi + (k * ny + j) * nx;
#define AD_P(i_, m1_, p1_) do { \
            double t1 = w0[i_] + w1[i_]; \
            t1 = t1 * 0.5; \
            t1 = t1 / sgk; \
            double cs = csr[i_] / pr[i_]; \
            t1 = t1 - cs; \
            double t2 = Vm[i_] + Vc[i_]; \
            t2 = t2 * 0.5; \
            t2 = t2 / per[i_]; \
            double dd = pp[i_] - pm[i_]; \
            dd = dd / (2.0 * dth); \
            t2 = t2 * dd; \
            t2 = t2 / a; \
            double t3 = Uc[i_] + Uc[p1_]; \
            t3 = t3 * 0.5; \
            t3 = t3 / per[i_]; \
            double dl = per[p1_] - per[m1_]; \
            dl = dl / (2.0 * dlam); \
            t3 = t3 * dl; \
            t3 = t3 / asj; \
            double v = t1 + t2; \
            v = v + t3; \
            o[i_] = v * coeff; \
        } while (0)
            AD_P(0, nx - 1, 1);
            for (i = 1; i < nx - 1; i++)
                AD_P(i, i - 1, i + 1);
            AD_P(nx - 1, nx - 2, 0);
#undef AD_P
        }
}

/* ---- the vertical-integral diagnostics (serial / identity case) ------ */
/* Plane-sweep layout: the k loops are outermost and every inner loop is
   a contiguous streaming pass, so the prefix/suffix column sums become
   vectorized plane updates instead of strided per-column walks.  s2d is
   a (3, ny, nx) scratch block for the k-invariant 2-D factors; the
   prefix sums build in place inside pw and the suffix sums inside
   phi_prime before each is transformed to its final value.            */
void vertical(const double *restrict U, const double *restrict V,
              const double *restrict Phi, const double *restrict pf,
              const double *restrict sin_v, const double *restrict a_sin_c,
              const double *restrict dsig, const double *restrict ratio,
              const double *restrict sig_if,
              double dlam, double dth, double bgrav,
              long nz, long ny, long nx,
              double *restrict div_p, double *restrict col_sum,
              double *restrict pw, double *restrict w,
              double *restrict sdot, double *restrict phi_prime,
              double *restrict s2d)
{
    long k, j, i;
    long plane = ny * nx;
    double *pu2 = s2d;             /* pf staggered to u-points */
    double *pv2s = s2d + plane;    /* pf staggered to v-points, x sin_v */
    double *bf2 = s2d + 2 * plane; /* bgrav / pf */

    for (j = 0; j < ny; j++) {
        const double *pr = pf + j * nx;
        double *o = pu2 + j * nx;
        { double t = pr[nx - 1] + pr[0]; o[0] = t * 0.5; }
        for (i = 1; i < nx; i++) {
            double t = pr[i - 1] + pr[i];
            o[i] = t * 0.5;
        }
    }
    for (j = 0; j < ny; j++) {
        long jp1 = wm(j + 1, ny);
        const double *pr = pf + j * nx;
        const double *pq = pf + jp1 * nx;
        double svj = sin_v[j];
        double *o = pv2s + j * nx;
        for (i = 0; i < nx; i++) {
            double t = pr[i] + pq[i];
            t = t * 0.5;
            o[i] = t * svj;
        }
    }
    for (j = 0; j < ny; j++) {
        const double *pr = pf + j * nx;
        double *o = bf2 + j * nx;
        for (i = 0; i < nx; i++)
            o[i] = bgrav / pr[i];
    }

    /* flux divergence, plane by plane */
    for (k = 0; k < nz; k++)
        for (j = 0; j < ny; j++) {
            long jm1 = wm(j - 1, ny);
            const double *Uc = U + (k * ny + j) * nx;
            const double *Vc = V + (k * ny + j) * nx;
            const double *Vm = V + (k * ny + jm1) * nx;
            const double *tu = pu2 + j * nx;
            const double *tv = pv2s + j * nx;
            const double *tm = pv2s + jm1 * nx;
            double asj = a_sin_c[j];
            double *o = div_p + (k * ny + j) * nx;
#define DIVB(i_, p1_) do { \
            double fx = tu[p1_] * Uc[p1_] - tu[i_] * Uc[i_]; \
            fx = fx / dlam; \
            double fy = tv[i_] * Vc[i_] - tm[i_] * Vm[i_]; \
            fy = fy / dth; \
            double dv = fx + fy; \
            o[i_] = dv / asj; \
        } while (0)
            for (i = 0; i < nx - 1; i++)
                DIVB(i, i + 1);
            DIVB(nx - 1, 0);
#undef DIVB
        }

    /* prefix sums of dsig*div build in place inside pw; np.cumsum copies
       the first element exactly (no 0+x, which would flip a -0.0)      */
    for (i = 0; i < plane; i++)
        pw[i] = 0.0;
    {
        const double *d0 = div_p;
        double dk = dsig[0];
        double *s1 = pw + plane;
        for (i = 0; i < plane; i++)
            s1[i] = dk * d0[i];
    }
    for (k = 1; k < nz; k++) {
        const double *dkp = div_p + k * plane;
        const double *sk = pw + k * plane;
        double dk = dsig[k];
        double *sn = pw + (k + 1) * plane;
        for (i = 0; i < plane; i++) {
            double t = dk * dkp[i];
            sn[i] = sk[i] + t;
        }
    }
    for (i = 0; i < plane; i++)
        col_sum[i] = pw[nz * plane + i];

    /* suffix sums of ratio*Phi build in place inside phi_prime */
    {
        const double *Pk = Phi + (nz - 1) * plane;
        double rk = ratio[nz - 1];
        double *o = phi_prime + (nz - 1) * plane;
        for (i = 0; i < plane; i++)
            o[i] = rk * Pk[i];
    }
    for (k = nz - 2; k >= 0; k--) {
        const double *Pk = Phi + k * plane;
        const double *hn = phi_prime + (k + 1) * plane;
        double rk = ratio[k];
        double *o = phi_prime + k * plane;
        for (i = 0; i < plane; i++) {
            double t = rk * Pk[i];
            o[i] = hn[i] + t;
        }
    }

    /* interface velocities: pw transforms in place, w and sdot follow */
    for (k = 0; k <= nz; k++) {
        double sk = sig_if[k];
        for (j = 0; j < ny; j++) {
            const double *cs = col_sum + j * nx;
            const double *pr = pf + j * nx;
            double *pwr = pw + k * plane + j * nx;
            double *wr = w + k * plane + j * nx;
            double *sdr = sdot + k * plane + j * nx;
            for (i = 0; i < nx; i++) {
                double p = pr[i];
                double t = sk * cs[i];
                t = t - pwr[i];
                pwr[i] = t;
                wr[i] = t / p;
                double p2 = p * p;
                sdr[i] = t / p2;
            }
        }
    }

    /* phi_prime: (hs - cphi/2) * bgrav/p, with cphi recomputed bitwise */
    for (k = 0; k < nz; k++) {
        const double *Pk = Phi + k * plane;
        double rk = ratio[k];
        for (j = 0; j < ny; j++) {
            const double *Pr = Pk + j * nx;
            const double *bf = bf2 + j * nx;
            double *o = phi_prime + k * plane + j * nx;
            for (i = 0; i < nx; i++) {
                double c = rk * Pr[i];
                double t = c * 0.5;
                t = o[i] - t;
                o[i] = t * bf[i];
            }
        }
    }
}
"""
