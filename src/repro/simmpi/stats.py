"""Per-rank communication/computation accounting.

These counters are the ground truth for the Section 5.3 verification: the
closed-form event-count formulas of :mod:`repro.perf.costs` are asserted
equal to these instrumented values in the test suite.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CommStats:
    """Counters and logical-time accumulators of one simulated rank.

    Counter semantics
    -----------------
    * ``p2p_messages_sent/received`` — number of point-to-point messages.
    * ``p2p_bytes_sent/received`` — their payload bytes.
    * ``collective_ops`` — number of collective calls (allreduce etc.).
    * ``collective_bytes`` — modelled bytes moved by this rank inside
      collectives (e.g. ``2 (q-1)/q * n`` for a ring allreduce).
    * ``synchronizations`` — events at which this rank's clock was forced
      to wait for another rank (blocking recv/wait that actually waited,
      plus every collective/barrier); this is the instrumented analogue of
      the paper's latency cost ``S``.

    Time semantics (all logical seconds)
    ------------------------------------
    * ``compute_time`` — explicit compute advances.
    * ``p2p_time`` — time spent inside send/recv/wait calls (sender
      overhead + receiver waiting).
    * ``collective_time`` — time spent inside collectives, including
      waiting for stragglers.

    Fault accounting
    ----------------
    * ``faults_injected`` — number of fault events observed by this rank
      (injected crashes/drops/corruptions/degradations plus detected
      checksum failures).
    * ``fault_events`` — the :class:`~repro.simmpi.faults.FaultEvent`
      records themselves, in occurrence order.

    Reliable-transport accounting
    -----------------------------
    * ``retransmits`` — failed wire attempts this rank re-sent (message-
      level recovery, invisible to the application).
    * ``retransmit_time`` — logical seconds lost to failure detection
      and backoff before those retransmissions.
    * ``breaker_trips`` — circuit breakers this rank tripped open on its
      outgoing links.
    * ``messages_lost`` — permanently lost upstream messages this rank
      detected as sequence gaps (:class:`~repro.simmpi.network.
      MessageLost`).
    """

    p2p_messages_sent: int = 0
    p2p_messages_received: int = 0
    p2p_bytes_sent: int = 0
    p2p_bytes_received: int = 0
    collective_ops: int = 0
    collective_bytes: int = 0
    synchronizations: int = 0
    faults_injected: int = 0
    retransmits: int = 0
    breaker_trips: int = 0
    messages_lost: int = 0
    compute_time: float = 0.0
    p2p_time: float = 0.0
    collective_time: float = 0.0
    retransmit_time: float = 0.0
    #: free-form buckets: algorithms tag phases ("stencil", "fourier", ...)
    tagged_time: dict = field(default_factory=dict)
    #: fault events observed by this rank, in order
    fault_events: list = field(default_factory=list)

    @property
    def comm_time(self) -> float:
        """Total communication time (p2p + collective)."""
        return self.p2p_time + self.collective_time

    @property
    def total_time(self) -> float:
        """compute + communication time."""
        return self.compute_time + self.comm_time

    def add_tagged(self, tag: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the free-form bucket ``tag``."""
        self.tagged_time[tag] = self.tagged_time.get(tag, 0.0) + seconds

    def merge_max(self, others: list["CommStats"]) -> "CommStats":
        """Elementwise max over ranks — the critical-path view of [16]."""
        out = CommStats()
        allstats = [self, *others]
        for f in (
            "p2p_messages_sent", "p2p_messages_received",
            "p2p_bytes_sent", "p2p_bytes_received",
            "collective_ops", "collective_bytes", "synchronizations",
            "faults_injected", "retransmits", "breaker_trips",
            "messages_lost",
        ):
            setattr(out, f, max(getattr(s, f) for s in allstats))
        for f in ("compute_time", "p2p_time", "collective_time",
                  "retransmit_time"):
            setattr(out, f, max(getattr(s, f) for s in allstats))
        keys = set()
        for s in allstats:
            keys.update(s.tagged_time)
        out.tagged_time = {
            k: max(s.tagged_time.get(k, 0.0) for s in allstats) for k in keys
        }
        out.fault_events = [e for s in allstats for e in s.fault_events]
        return out
