"""Rendezvous-based collectives over rank groups.

A :class:`GroupContext` is shared by all member ranks of one
sub-communicator.  Every collective call opens (or joins) the slot for the
group's next generation number; the last rank to arrive combines the
contributions, computes the completion time from the machine model and the
members' clocks, and wakes everyone.  Clocks of all participants are set to
the common completion time — collectives are synchronizing, exactly as the
paper counts them in the latency cost ``S``.
"""
from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from repro.simmpi.machine import MachineModel
from repro.simmpi.network import AbortFlag, DeadlockError


class _Slot:
    """One in-flight collective operation (one generation of one group)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.contributions: dict[int, Any] = {}
        self.clocks: dict[int, float] = {}
        self.durations: dict[int, float] = {}
        self.result: Any = None
        self.t_end: float = 0.0
        self.done = False
        self.cond = threading.Condition()


class GroupContext:
    """Shared rendezvous state of one sub-communicator."""

    def __init__(
        self, ranks: tuple[int, ...], abort: AbortFlag | None = None
    ) -> None:
        self.ranks = ranks
        self.size = len(ranks)
        self._slots: dict[int, _Slot] = {}
        self._lock = threading.Lock()
        self._abort = abort

    def wake_all(self) -> None:
        """Wake every blocked member (launcher fail-fast abort)."""
        with self._lock:
            slots = list(self._slots.values())
        for slot in slots:
            with slot.cond:
                slot.cond.notify_all()

    def _slot(self, generation: int) -> _Slot:
        with self._lock:
            slot = self._slots.get(generation)
            if slot is None:
                slot = _Slot(self.size)
                self._slots[generation] = slot
            return slot

    def _retire(self, generation: int) -> None:
        # Drop completed slots so long runs do not accumulate memory.
        with self._lock:
            self._slots.pop(generation, None)

    def execute(
        self,
        generation: int,
        rank: int,
        clock: float,
        contribution: Any,
        combine: Callable[[dict[int, Any]], Any],
        duration: float,
        timeout: float,
    ) -> tuple[Any, float]:
        """Join the collective; returns ``(combined_result, t_end)``.

        ``combine`` maps {rank: contribution} to the common result;
        ``duration`` is this member's view of the modelled collective
        cost; the max over members' views is added to the max of their
        arrival clocks (so per-rank cost estimates and fault-injected
        degradation factors resolve deterministically, independent of
        which thread happens to arrive last).
        """
        slot = self._slot(generation)
        with slot.cond:
            slot.contributions[rank] = contribution
            slot.clocks[rank] = clock
            slot.durations[rank] = duration
            if len(slot.contributions) == slot.size:
                slot.result = combine(slot.contributions)
                slot.t_end = max(slot.clocks.values()) + max(
                    slot.durations.values()
                )
                slot.done = True
                slot.cond.notify_all()
            else:
                import time

                deadline = time.monotonic() + timeout
                while not slot.done:
                    if self._abort is not None and self._abort.is_set():
                        raise DeadlockError(
                            f"rank {rank}: collective gen={generation} on "
                            f"group {self.ranks} aborted — "
                            f"{self._abort.reason}"
                        )
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        arrived = sorted(slot.contributions)
                        missing = sorted(set(self.ranks) - set(arrived))
                        raise DeadlockError(
                            f"rank {rank}: collective gen={generation} on group "
                            f"{self.ranks} timed out after {timeout}s "
                            f"({len(arrived)}/{slot.size} arrived: "
                            f"ranks {arrived} present, ranks {missing} missing)"
                        )
                    slot.cond.wait(remaining)
            result, t_end = slot.result, slot.t_end
        # Last reader retires the slot: count readers via contributions set.
        with slot.cond:
            slot.size -= 1
            if slot.size == 0:
                self._retire(generation)
        return result, t_end


# ---- combine functions ---------------------------------------------------


def combine_sum(contribs: dict[int, np.ndarray]) -> np.ndarray:
    """Elementwise sum (deterministic: accumulate in rank order)."""
    total = None
    for r in sorted(contribs):
        arr = contribs[r]
        total = arr.astype(np.float64, copy=True) if total is None else total + arr
    return total


def combine_max(contribs: dict[int, np.ndarray]) -> np.ndarray:
    """Elementwise max."""
    out = None
    for r in sorted(contribs):
        arr = np.asarray(contribs[r])
        out = arr.copy() if out is None else np.maximum(out, arr)
    return out


def combine_min(contribs: dict[int, np.ndarray]) -> np.ndarray:
    """Elementwise min."""
    out = None
    for r in sorted(contribs):
        arr = np.asarray(contribs[r])
        out = arr.copy() if out is None else np.minimum(out, arr)
    return out


def combine_gather(contribs: dict[int, Any]) -> list[Any]:
    """Rank-ordered list of all contributions."""
    return [contribs[r] for r in sorted(contribs)]


REDUCE_OPS: dict[str, Callable[[dict[int, np.ndarray]], np.ndarray]] = {
    "sum": combine_sum,
    "max": combine_max,
    "min": combine_min,
}


def collective_cost(
    model: MachineModel, op: str, q: int, nbytes: int
) -> tuple[float, int]:
    """(duration, modelled bytes moved per rank) of collective ``op``."""
    if q <= 1:
        return 0.0, 0
    if op == "allreduce":
        return model.allreduce_time(q, nbytes), int(2 * (q - 1) / q * nbytes)
    if op == "reduce":
        return model.reduce_time(q, nbytes), nbytes
    if op == "bcast":
        return model.bcast_time(q, nbytes), nbytes
    if op == "allgather":
        return model.allgather_time(q, nbytes), (q - 1) * nbytes
    if op == "alltoall":
        return model.alltoall_time(q, nbytes), (q - 1) * nbytes
    if op == "scan":
        return model.scan_time(q, nbytes), nbytes
    if op == "gather" or op == "scatter":
        # binomial tree to/from the root; the root moves (q-1) payloads
        return model.bcast_time(q, nbytes), (q - 1) * nbytes
    if op == "barrier":
        return model.barrier_time(q), 0
    raise ValueError(f"unknown collective {op!r}")
