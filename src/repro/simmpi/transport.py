"""Reliable-transport policy of the simulated cluster.

The seed substrate models a *raw* network: a :class:`~repro.simmpi.faults.
LinkFault` drop leaves the receiver blocked until the deadlock timeout and
a corrupted payload aborts the whole world with ``CorruptedMessage`` —
one transient costs a full chunk rollback.  Real interconnects do not
work that way: MPI sits on a reliable byte stream that sequences,
acknowledges and retransmits at the message level, so transients are
absorbed where they occur.  This module supplies that layer:

* :class:`TransportConfig` — the knobs: bounded retransmits with per-link
  exponential backoff, and a circuit breaker that stops burning retries
  on a link that keeps failing;
* :class:`LinkHealth` — per-directed-link failure bookkeeping owned by
  the *sender* (single-threaded access, no locks);
* :func:`retransmit_delay` — the deterministic logical-clock cost of one
  failed attempt (detection + backoff), derived from the machine model.

Retransmission is simulated **sender-side**: the sender draws the fate of
every wire attempt from its own per-rank fault RNG stream, so outcomes
stay bit-reproducible regardless of thread scheduling (a receiver-driven
NACK protocol would interleave draws across threads).  The logical-clock
charges model what the wire would have cost: a dropped attempt is
detected after a retransmission-timeout (RTO), a corrupted one after the
full transfer plus a NACK flight back.
"""
from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.simmpi.machine import MachineModel


def jitter_unit(
    seed: int, attempt: int, src: int, dest: int, retry: int
) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one wire attempt.

    A pure hash of ``(seed, attempt, link, retry)`` — no RNG state is
    consumed, so arming jitter perturbs nothing else, and the draw is
    identical regardless of thread scheduling or platform.  Different
    links (and different retries of one link) get decorrelated values,
    which is exactly what desynchronizes retransmit bursts.
    """
    digest = hashlib.blake2b(
        struct.pack("<qqqqq", seed, attempt, src, dest, retry),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True)
class TransportConfig:
    """Reliability policy of the simulated point-to-point transport.

    Parameters
    ----------
    reliable:
        Master switch.  ``False`` reproduces the raw seed network (no
        retransmits, no sequence tracking) even when a config is passed.
    max_retransmits:
        Wire attempts beyond the first before the sender gives up and
        falls back to raw-network semantics (drop stays lost, corruption
        is delivered for the receiver's checksum to catch) — the
        escalation path to the resilience layer stays reachable.
    rto_base:
        Retransmission timeout before the first retry, in logical
        seconds.  ``None`` derives a per-message estimate from the
        machine model: one round trip (transfer + ack flight).
    rto_factor / rto_max:
        Exponential backoff of the timeout: retry ``k`` (0-based) waits
        ``min(rto * rto_factor**k, rto_max)``.
    rto_jitter:
        Deterministic seeded jitter fraction in ``[0, 1]`` applied to the
        backed-off timeout: the wait is scaled by
        ``1 + rto_jitter * (u - 0.5)`` with ``u`` the per-link draw of
        :func:`jitter_unit` (seeded from the fault plan's seed), so
        synchronized retransmit bursts across links de-phase instead of
        self-amplifying.  The default ``0.0`` reproduces the un-jittered
        seed behavior bit-identically; a non-zero value is still fully
        deterministic under the existing fault seed.
    breaker_threshold:
        Consecutive failed wire attempts on one directed link that trip
        its circuit breaker; an open breaker skips retransmission
        entirely (fail fast to the escalation path) until a successful
        delivery on the link closes it again.
    """

    reliable: bool = True
    max_retransmits: int = 4
    rto_base: float | None = None
    rto_factor: float = 2.0
    rto_max: float = 1.0
    rto_jitter: float = 0.0
    breaker_threshold: int = 8

    def __post_init__(self) -> None:
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        if self.rto_base is not None and self.rto_base < 0:
            raise ValueError("rto_base must be >= 0")
        if self.rto_factor < 1.0:
            raise ValueError("rto_factor must be >= 1")
        if not 0.0 <= self.rto_jitter <= 1.0:
            raise ValueError("rto_jitter must be in [0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    def rto(
        self, machine: MachineModel, nbytes: int, retry: int, u: float = 0.5
    ) -> float:
        """Backed-off retransmission timeout of retry ``retry`` (0-based).

        ``u`` is the deterministic jitter draw (see :func:`jitter_unit`);
        the default midpoint ``0.5`` makes the jitter term vanish, so
        callers that do not thread a draw reproduce the un-jittered
        timeout exactly.
        """
        base = (
            self.rto_base
            if self.rto_base is not None
            else 2.0 * machine.alpha + machine.beta * nbytes
        )
        delay = min(base * self.rto_factor**retry, self.rto_max)
        if self.rto_jitter > 0.0:
            delay *= 1.0 + self.rto_jitter * (u - 0.5)
        return delay


class LinkHealth:
    """Failure streak of one directed link, tracked by the sender.

    ``record_failure`` returns ``True`` exactly when this failure trips
    the breaker open; a successful delivery closes it and resets the
    streak.  Instances are owned by a single sender thread — no locking.
    """

    __slots__ = ("consecutive_failures", "open")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.open = False

    def record_failure(self, threshold: int) -> bool:
        self.consecutive_failures += 1
        if not self.open and self.consecutive_failures >= threshold:
            self.open = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.open = False


def detection_delay(
    config: TransportConfig,
    machine: MachineModel,
    action: str,
    nbytes: int,
    retry: int,
    u: float = 0.5,
) -> float:
    """Logical seconds from a failed wire attempt to its retransmission.

    A *drop* is noticed when no ack arrives within the (backed-off) RTO;
    a *corrupt* attempt travels the full wire before the receiver NACKs
    it, so the sender pays the transfer plus the NACK flight, then the
    same backoff.  ``u`` threads the deterministic jitter draw through
    to :meth:`TransportConfig.rto`.
    """
    delay = config.rto(machine, nbytes, retry, u=u)
    if action == "corrupt":
        delay += machine.alpha + machine.beta * nbytes + machine.alpha
    return delay
