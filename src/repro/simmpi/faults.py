"""Declarative fault injection for the simulated cluster.

A :class:`FaultPlan` is pure data: a seeded, deterministic description of
what goes wrong, where and when.  The launcher turns it into a
:class:`FaultInjector` — the runtime object the communicator consults on
every operation — so that, with a fixed seed, any faulty run is
bit-reproducible: same logical clocks, same fault events, same failures.

Supported fault classes (each mirrors a failure mode large production
runs actually see):

* **rank crash** (:class:`CrashSpec`) — a rank dies at a given logical
  time, comm-call count and/or launch attempt, raising :class:`RankCrash`
  on the victim; the launcher then aborts the surviving ranks promptly
  instead of letting them hit the full deadlock timeout;
* **message drop / payload corruption** (:class:`LinkFault`) — per-link
  Bernoulli loss or silent data corruption, drawn from per-rank RNG
  streams; corrupted payloads are caught by the substrate's message
  checksums (when enabled) as :class:`CorruptedMessage`, otherwise they
  propagate silently until a NaN/blowup guard notices;
* **degraded network window** (:class:`DegradedWindow`) — alpha/beta
  multipliers over a logical-time interval, modelling a congested or
  flapping link; clocks silently inflate;
* **compute straggler** (:class:`Straggler`) — a per-rank compute
  slowdown factor over a window, modelling a thermally-throttled or
  oversubscribed node.

Every injected fault is recorded as a :class:`FaultEvent` in the
victim's :class:`~repro.simmpi.stats.CommStats` (and in its trace, when
tracing is on), so perturbed schedules can be rendered and audited.

Determinism
-----------
All randomized decisions are drawn from per-``(seed, attempt, rank)``
NumPy generator streams and are consumed in each rank's own deterministic
operation order, so outcomes never depend on thread scheduling.  Crash
specs are *one-shot per injector*: once fired they stay consumed across
launch attempts, which is what lets a resilient driver restart from a
checkpoint and complete (the "replaced node" model).
"""
from __future__ import annotations

import logging
import math
import threading
from dataclasses import dataclass

import numpy as np

logger = logging.getLogger(__name__)


class RankCrash(RuntimeError):
    """An injected fatal failure of one simulated rank."""

    #: whether the failed rank is gone for good (node loss) or merely
    #: crashed-and-replaceable; the failure detector uses this as direct
    #: evidence when classifying transient vs permanent failures
    permanent = False

    def __init__(self, rank: int, detail: str = "") -> None:
        self.rank = rank
        suffix = f": {detail}" if detail else ""
        super().__init__(f"rank {rank} crashed (injected){suffix}")


class RankLost(RankCrash):
    """A *permanent* node loss: the rank's host is gone and will not
    return at this rank count.  On the thread backend the victim raises
    this; on the process backend the victim's OS process is SIGKILLed
    instead (the parent sees the pipe EOF as a ``ChildProcessError``)."""

    permanent = True

    def __init__(self, rank: int, detail: str = "") -> None:
        super().__init__(rank, detail)
        # overwrite the message: this is a node death, not a mere crash
        suffix = f": {detail}" if detail else ""
        self.args = (f"rank {rank} lost its node (injected){suffix}",)


class CorruptedMessage(RuntimeError):
    """A received payload failed its checksum — corrupted in flight."""


@dataclass(frozen=True)
class CrashSpec:
    """Crash ``rank`` when every given trigger condition holds.

    ``at_time`` compares against the victim's logical clock, ``at_call``
    against its cumulative comm-operation count (send/recv/collective,
    1-based), ``at_attempt`` against the injector's launch-attempt number
    (1-based; lets a sweep target "step k" of a chunked resilient run).
    At least one trigger must be given.  Crashes are one-shot: a spec
    fires at most once per injector lifetime.
    """

    rank: int
    at_time: float | None = None
    at_call: int | None = None
    at_attempt: int | None = None

    def __post_init__(self) -> None:
        if self.at_time is None and self.at_call is None and self.at_attempt is None:
            raise ValueError("CrashSpec needs at_time, at_call and/or at_attempt")

    def triggered(self, clock: float, ncalls: int, attempt: int) -> bool:
        if self.at_attempt is not None and attempt != self.at_attempt:
            return False
        if self.at_time is not None and clock < self.at_time:
            return False
        if self.at_call is not None and ncalls < self.at_call:
            return False
        return True


@dataclass(frozen=True)
class NodeLoss:
    """Permanently kill ``rank``'s node when every trigger condition holds.

    Trigger semantics match :class:`CrashSpec` (logical time, cumulative
    comm-call count, launch attempt; at least one required).  Unlike a
    crash the failure is *permanent*: on the thread backend the victim
    raises :class:`RankLost`, on the process backend the victim's OS
    process SIGKILLs itself — in both cases a replacement at the same
    rank id only exists if the recovery policy provides one (hot spare),
    otherwise the run must shrink.  Node losses are one-shot per
    injector, like crash specs.
    """

    rank: int
    at_time: float | None = None
    at_call: int | None = None
    at_attempt: int | None = None

    def __post_init__(self) -> None:
        if self.at_time is None and self.at_call is None and self.at_attempt is None:
            raise ValueError("NodeLoss needs at_time, at_call and/or at_attempt")

    def triggered(self, clock: float, ncalls: int, attempt: int) -> bool:
        if self.at_attempt is not None and attempt != self.at_attempt:
            return False
        if self.at_time is not None and clock < self.at_time:
            return False
        if self.at_call is not None and ncalls < self.at_call:
            return False
        return True


@dataclass(frozen=True)
class LinkFault:
    """Bernoulli message loss / corruption on matching point-to-point links.

    ``source``/``dest`` of ``None`` match any rank; the fault is active
    for sends whose sender clock lies in ``[t_start, t_end)`` and — when
    ``attempts`` is given — only on those launch attempts.
    ``corrupt_mode`` is ``"scale"`` (one element blown up to ~1e15,
    caught by a blowup threshold) or ``"nan"`` (caught by NaN guards).
    """

    source: int | None = None
    dest: int | None = None
    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    corrupt_mode: str = "scale"
    t_start: float = 0.0
    t_end: float = math.inf
    attempts: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.corrupt_mode not in ("scale", "nan"):
            raise ValueError(f"unknown corrupt_mode {self.corrupt_mode!r}")
        for p in (self.drop_probability, self.corrupt_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")

    def matches(self, source: int, dest: int, clock: float, attempt: int) -> bool:
        if self.source is not None and self.source != source:
            return False
        if self.dest is not None and self.dest != dest:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return self.t_start <= clock < self.t_end


@dataclass(frozen=True)
class DegradedWindow:
    """Transient network degradation: alpha/beta multipliers over a
    logical-time window.  ``ranks`` of ``None`` degrades every link;
    otherwise a p2p message is degraded when its sender or receiver is
    listed, and a collective when the observing member is listed.
    Collectives are slowed by ``max(alpha_factor, beta_factor)``."""

    t_start: float
    t_end: float
    alpha_factor: float = 1.0
    beta_factor: float = 1.0
    ranks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if min(self.alpha_factor, self.beta_factor) < 0:
            raise ValueError("degradation factors must be non-negative")

    def active(self, clock: float) -> bool:
        return self.t_start <= clock < self.t_end

    def applies_to(self, *ranks: int) -> bool:
        return self.ranks is None or any(r in self.ranks for r in ranks)


@dataclass(frozen=True)
class Straggler:
    """Compute slowdown of one rank over a logical-time window — the
    clock silently advances ``slowdown`` times further per unit of
    charged work."""

    rank: int
    slowdown: float
    t_start: float = 0.0
    t_end: float = math.inf

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (use 1 for no-op)")

    def active(self, rank: int, clock: float) -> bool:
        return rank == self.rank and self.t_start <= clock < self.t_end


@dataclass(frozen=True)
class FaultPlan:
    """The declarative, seeded description of everything that will go
    wrong in a simulated run.  Pure data; build a runtime injector with
    :meth:`injector` (or pass the plan straight to ``run_spmd``)."""

    seed: int = 0
    crashes: tuple[CrashSpec, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    degraded: tuple[DegradedWindow, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    node_losses: tuple[NodeLoss, ...] = ()

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    @property
    def node_loss_only(self) -> bool:
        """True when the plan injects nothing but permanent node losses.

        Such plans are *process-safe*: the victim kills its own OS
        process (no cross-rank RNG coordination needed), so the launcher
        allows them on the process backend — the only fault class that
        genuinely exercises kill-the-OS-process recovery.
        """
        return bool(self.node_losses) and not (
            self.crashes or self.link_faults or self.degraded or self.stragglers
        )

    def describe(self) -> str:
        parts = [
            f"{len(self.crashes)} crash(es)",
            f"{len(self.link_faults)} link fault(s)",
            f"{len(self.degraded)} degraded window(s)",
            f"{len(self.stragglers)} straggler(s)",
            f"{len(self.node_losses)} node loss(es)",
        ]
        return f"FaultPlan(seed={self.seed}: " + ", ".join(parts) + ")"


@dataclass(frozen=True)
class FaultEvent:
    """One injected (or detected) fault occurrence on one rank."""

    rank: int
    #: "crash" | "node-loss" | "drop" | "corrupt" | "degrade" |
    #: "straggle" | "corruption-detected"
    kind: str
    t: float
    attempt: int = 1
    detail: str = ""


class FaultInjector:
    """Runtime fault state shared by all ranks of one (or several)
    ``run_spmd`` attempts.

    Reusable across attempts: :meth:`begin_attempt` resets the per-rank
    RNG streams (seeded ``(plan.seed, attempt, rank)``) while crash specs
    stay one-shot for the injector's whole lifetime.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.attempt = 0
        self._fired_crashes: set[int] = set()
        self._fired_node_losses: set[int] = set()
        self._noted: set[tuple] = set()
        self._rngs: dict[int, np.random.Generator] = {}
        self._lock = threading.Lock()

    # ---- lifecycle -------------------------------------------------------
    def begin_attempt(self) -> None:
        """Start a new launch attempt: fresh RNG streams, fresh one-per-
        attempt event markers; fired crashes stay consumed."""
        with self._lock:
            self.attempt += 1
            self._rngs = {}
            self._noted = set()

    def snapshot(self) -> tuple[int, frozenset[int], frozenset[int]]:
        """Fork-shippable injector state: ``(attempt, fired crash spec
        indices, fired node-loss spec indices)``.  A process-backend
        child rebuilds an equivalent injector from the (picklable) plan
        plus this snapshot, so one-shot semantics hold across the fork
        boundary."""
        with self._lock:
            return (
                self.attempt,
                frozenset(self._fired_crashes),
                frozenset(self._fired_node_losses),
            )

    def restore_snapshot(
        self, snap: tuple[int, frozenset[int], frozenset[int]]
    ) -> None:
        """Adopt a :meth:`snapshot` (process-backend child, post-fork)."""
        attempt, crashes, losses = snap
        with self._lock:
            self.attempt = attempt
            self._fired_crashes = set(crashes)
            self._fired_node_losses = set(losses)
            self._rngs = {}
            self._noted = set()

    def _rng(self, rank: int) -> np.random.Generator:
        with self._lock:
            rng = self._rngs.get(rank)
            if rng is None:
                rng = np.random.default_rng(
                    [self.plan.seed, self.attempt, rank]
                )
                self._rngs[rank] = rng
            return rng

    def _note_once(self, key: tuple) -> bool:
        """True the first time ``key`` is seen this attempt."""
        with self._lock:
            if key in self._noted:
                return False
            self._noted.add(key)
            return True

    # ---- crashes ---------------------------------------------------------
    def check_crash(
        self, rank: int, clock: float, ncalls: int
    ) -> FaultEvent | None:
        """The crash event to fire now, or None.  Marks the spec consumed."""
        for i, spec in enumerate(self.plan.crashes):
            if spec.rank != rank:
                continue
            if not spec.triggered(clock, ncalls, self.attempt):
                continue
            with self._lock:
                if i in self._fired_crashes:
                    continue
                self._fired_crashes.add(i)
            logger.warning(
                "injected crash on rank %d (t=%.6g, call %d, attempt %d)",
                rank, clock, ncalls, self.attempt,
            )
            return FaultEvent(
                rank, "crash", clock, self.attempt,
                f"t={clock:.6g} call={ncalls} attempt={self.attempt}",
            )
        return None

    # ---- node losses -----------------------------------------------------
    def check_node_loss(
        self, rank: int, clock: float, ncalls: int
    ) -> FaultEvent | None:
        """The node-loss event to fire now, or None.  Marks the spec
        consumed (one-shot, like crashes)."""
        for i, spec in enumerate(self.plan.node_losses):
            if spec.rank != rank:
                continue
            if not spec.triggered(clock, ncalls, self.attempt):
                continue
            with self._lock:
                if i in self._fired_node_losses:
                    continue
                self._fired_node_losses.add(i)
            logger.warning(
                "injected node loss on rank %d (t=%.6g, call %d, attempt %d)",
                rank, clock, ncalls, self.attempt,
            )
            return FaultEvent(
                rank, "node-loss", clock, self.attempt,
                f"t={clock:.6g} call={ncalls} attempt={self.attempt}",
            )
        return None

    def consume_node_losses(self, ranks) -> None:
        """Mark every node-loss spec targeting ``ranks`` as fired.

        The recovery driver calls this once a loss has been detected and
        absorbed: on the process backend the victim died in a *forked
        copy* of this injector, so the parent's copy must be told the
        spec is spent — otherwise a relaunch (spare adoption at the same
        rank id) would kill the replacement too.
        """
        targets = set(ranks)
        with self._lock:
            for i, spec in enumerate(self.plan.node_losses):
                if spec.rank in targets:
                    self._fired_node_losses.add(i)

    # ---- point-to-point --------------------------------------------------
    def on_send(
        self, rank: int, dest: int, nbytes: int, clock: float
    ) -> tuple[str, str, float, float, list[FaultEvent]]:
        """Fate of a message: ``(action, corrupt_mode, alpha_factor,
        beta_factor, events)`` with action in
        ``{"deliver", "drop", "corrupt"}``."""
        events: list[FaultEvent] = []
        action = "deliver"
        corrupt_mode = "scale"
        for fi, f in enumerate(self.plan.link_faults):
            if not f.matches(rank, dest, clock, self.attempt):
                continue
            rng = self._rng(rank)
            if f.drop_probability > 0 and rng.random() < f.drop_probability:
                action = "drop"
                logger.info(
                    "injected message drop on link %d->%d (%d B, t=%.6g)",
                    rank, dest, nbytes, clock,
                )
                events.append(FaultEvent(
                    rank, "drop", clock, self.attempt,
                    f"link {rank}->{dest} ({nbytes} B)",
                ))
                break
            if f.corrupt_probability > 0 and rng.random() < f.corrupt_probability:
                action = "corrupt"
                corrupt_mode = f.corrupt_mode
                logger.info(
                    "injected payload corruption on link %d->%d "
                    "(mode=%s, t=%.6g)",
                    rank, dest, f.corrupt_mode, clock,
                )
                events.append(FaultEvent(
                    rank, "corrupt", clock, self.attempt,
                    f"link {rank}->{dest} mode={f.corrupt_mode}",
                ))
                break
        alpha_f = beta_f = 1.0
        for wi, w in enumerate(self.plan.degraded):
            if w.active(clock) and w.applies_to(rank, dest):
                alpha_f *= w.alpha_factor
                beta_f *= w.beta_factor
                if self._note_once(("degrade", rank, wi)):
                    events.append(FaultEvent(
                        rank, "degrade", clock, self.attempt,
                        f"window [{w.t_start:.6g}, {w.t_end:.6g}) "
                        f"alpha x{w.alpha_factor:g} beta x{w.beta_factor:g}",
                    ))
        return action, corrupt_mode, alpha_f, beta_f, events

    def corrupt_payload(self, payload: np.ndarray, rank: int, mode: str) -> None:
        """Silently damage one element of ``payload`` in place."""
        if payload.size == 0:
            return
        flat = payload.reshape(-1)
        idx = int(self._rng(rank).integers(flat.size))
        if not np.issubdtype(flat.dtype, np.floating):
            if np.issubdtype(flat.dtype, np.integer):
                flat[idx] = np.iinfo(flat.dtype).max
            return
        flat[idx] = np.nan if mode == "nan" else (flat[idx] + 1.0) * 1e15

    # ---- collectives / compute -------------------------------------------
    def collective_factor(
        self, rank: int, clock: float
    ) -> tuple[float, list[FaultEvent]]:
        """Duration multiplier of a collective observed by ``rank``."""
        factor = 1.0
        events: list[FaultEvent] = []
        for wi, w in enumerate(self.plan.degraded):
            if w.active(clock) and w.applies_to(rank):
                factor *= max(w.alpha_factor, w.beta_factor)
                if self._note_once(("degrade", rank, wi)):
                    logger.debug(
                        "degraded collective on rank %d in window "
                        "[%.6g, %.6g)", rank, w.t_start, w.t_end,
                    )
                    events.append(FaultEvent(
                        rank, "degrade", clock, self.attempt,
                        f"collective window [{w.t_start:.6g}, {w.t_end:.6g})",
                    ))
        return factor, events

    def on_compute(
        self, rank: int, clock: float
    ) -> tuple[float, list[FaultEvent]]:
        """Compute-time multiplier of ``rank`` at ``clock`` (stragglers)."""
        factor = 1.0
        events: list[FaultEvent] = []
        for si, s in enumerate(self.plan.stragglers):
            if s.active(rank, clock):
                factor *= s.slowdown
                if self._note_once(("straggle", rank, si)):
                    logger.debug(
                        "rank %d straggling x%g from t=%.6g",
                        rank, s.slowdown, clock,
                    )
                    events.append(FaultEvent(
                        rank, "straggle", clock, self.attempt,
                        f"slowdown x{s.slowdown:g} from t={clock:.6g}",
                    ))
        return factor, events
