"""The per-rank communicator of the simulated cluster.

:class:`SimComm` is what the distributed dynamical cores program against.
It deliberately mirrors the mpi4py surface (``send``/``recv``/``isend``/
``irecv``/``allreduce``/``bcast``/``barrier``/sub-communicators) so the
algorithms read like the MPI codes they model, but every operation also
advances a deterministic logical clock and updates :class:`CommStats`.
"""
from __future__ import annotations

import threading
import time
from typing import Any, Sequence

import numpy as np

from repro.obs.spans import point as obs_point, span as obs_span
from repro.simmpi.collectives import (
    GroupContext,
    REDUCE_OPS,
    collective_cost,
    combine_gather,
)
from repro.simmpi.faults import (
    CorruptedMessage,
    FaultEvent,
    FaultInjector,
    RankCrash,
    RankLost,
)
from repro.simmpi.machine import MachineModel
from repro.simmpi.network import (
    AbortFlag,
    DeadlockError,
    Mailbox,
    Message,
    MessageLost,
    payload_checksum,
)
from repro.simmpi.stats import CommStats
from repro.simmpi.transport import (
    LinkHealth,
    TransportConfig,
    detection_delay,
    jitter_unit,
)


class SimWorld:
    """Shared state of one simulated cluster run."""

    #: thread-backend mailboxes hand the payload object to the receiver,
    #: so senders must copy it first (see ``SimComm._as_payload``); the
    #: shared-memory world (repro.simmpi.shm) packs bytes into its rings
    #: inside ``deliver`` and overrides this to True
    copies_on_deliver = False

    def __init__(
        self,
        nranks: int,
        machine: MachineModel,
        timeout: float = 120.0,
        injector: FaultInjector | None = None,
        verify_checksums: bool = False,
        transport: TransportConfig | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.machine = machine
        self.timeout = timeout
        self.injector = injector
        self.verify_checksums = verify_checksums
        self.transport = transport
        self.abort_flag = AbortFlag()
        self.mailboxes = [Mailbox(r, abort=self.abort_flag) for r in range(nranks)]
        self._groups: dict[tuple[int, ...], GroupContext] = {}
        self._groups_lock = threading.Lock()

    def group(self, ranks: tuple[int, ...]) -> GroupContext:
        """The shared rendezvous context of a rank group (created once)."""
        with self._groups_lock:
            ctx = self._groups.get(ranks)
            if ctx is None:
                ctx = GroupContext(ranks, abort=self.abort_flag)
                self._groups[ranks] = ctx
            return ctx

    def abort(self, reason: str) -> None:
        """Fail fast: wake every blocked receive/collective with ``reason``."""
        self.abort_flag.set(reason)
        for mb in self.mailboxes:
            mb.wake()
        with self._groups_lock:
            groups = list(self._groups.values())
        for ctx in groups:
            ctx.wake_all()


class Request:
    """Handle of a non-blocking operation.

    * isend requests are complete at creation (buffered-send semantics);
      ``wait`` is a no-op.
    * irecv requests match and deliver on ``wait``.
    """

    def __init__(
        self,
        comm: "SimComm",
        kind: str,
        source: int = -1,
        tag: int = 0,
    ) -> None:
        self._comm = comm
        self._kind = kind
        self._source = source
        self._tag = tag
        self._done = kind == "isend"
        self._payload: np.ndarray | None = None
        self._claimed = None  # physically arrived Message, logically pending

    def test(self) -> bool:
        """Nonblocking completion probe: ``True`` iff :meth:`wait` would
        not block.

        For irecv requests this *physically* claims a matching message out
        of the mailbox (on the process backend that also drains the shared
        ring, unblocking a writer stalled on a full link) but applies
        **no logical effects**: no clock merge, no stats, no fault-hook
        tick, no trace events.  All of those happen in :meth:`wait`, in
        the caller's canonical program order — which is what keeps logical
        clocks bit-identical under arbitrary poll interleavings.
        """
        if self._done or self._claimed is not None:
            return True
        msg = self._comm._world.mailboxes[self._comm.rank].try_collect(
            self._source, self._tag
        )
        if msg is None:
            return False
        self._claimed = msg
        return True

    def wait(self) -> np.ndarray | None:
        """Complete the operation; returns the payload for irecv.

        Raises :class:`~repro.simmpi.faults.CorruptedMessage` when
        integrity checking is on and the payload fails its checksum, and
        :class:`~repro.simmpi.network.MessageLost` when reliable
        transport is on and the message's sequence number shows an
        upstream message was permanently dropped.
        """
        if self._done:
            return self._payload
        self._comm._fault_hook()
        if self._claimed is not None:
            msg, self._claimed = self._claimed, None
        else:
            with obs_span("recv-wait", "simmpi"):
                msg = self._comm._world.mailboxes[self._comm.rank].collect(
                    self._source, self._tag, self._comm._world.timeout
                )
        comm = self._comm
        transport = comm._world.transport
        if transport is not None and transport.reliable:
            key = (self._source, self._tag)
            expected = comm._recv_seq.get(key, 0)
            if msg.seq != expected:
                comm.stats.messages_lost += max(1, msg.seq - expected)
                comm._recv_seq[key] = msg.seq + 1
                comm._record_fault(FaultEvent(
                    comm.rank, "message-lost", comm.clock,
                    comm._injector.attempt if comm._injector else 1,
                    f"stream {self._source}->{comm.rank} tag {self._tag}: "
                    f"got seq {msg.seq}, expected {expected}",
                ))
                raise MessageLost(
                    f"rank {comm.rank}: message(s) from rank {self._source} "
                    f"(tag {self._tag}) permanently lost — received seq "
                    f"{msg.seq}, expected {expected}"
                )
            comm._recv_seq[key] = expected + 1
        if msg.checksum is not None and payload_checksum(msg.payload) != msg.checksum:
            comm._record_fault(FaultEvent(
                comm.rank, "corruption-detected", comm.clock,
                comm._injector.attempt if comm._injector else 1,
                f"message from rank {self._source} tag {self._tag}",
            ))
            raise CorruptedMessage(
                f"rank {comm.rank}: payload of message from rank "
                f"{self._source} (tag {self._tag}) failed its checksum — "
                "corrupted in flight"
            )
        t0 = comm.clock
        waited = max(0.0, msg.arrival - comm.clock)
        if waited > 0.0:
            comm.stats.synchronizations += 1
        comm.clock = max(comm.clock, msg.arrival)
        comm.stats.p2p_time += waited
        comm.stats.p2p_messages_received += 1
        comm.stats.p2p_bytes_received += msg.payload.nbytes
        if comm._phase is not None:
            comm.stats.add_tagged(comm._phase, waited)
        if comm.tracer is not None and waited > 0:
            comm.tracer.record(
                "recv_wait", t0, comm.clock,
                detail=f"src={self._source} tag={self._tag}",
                phase=comm._phase,
            )
        obs_point(
            "irecv", "comm",
            args={"flow": f"{self._source}>{comm.rank}t{self._tag}#{msg.seq}"},
        )
        self._payload = msg.payload
        self._done = True
        return self._payload


class SimComm:
    """Communicator handle owned by one simulated rank."""

    def __init__(self, world: SimWorld, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.nranks
        self.clock = 0.0
        self.stats = CommStats()
        self._generations: dict[tuple[int, ...], int] = {}
        self._phase: str | None = None
        self._injector = world.injector
        self._comm_calls = 0
        self.tracer = None  # TraceRecorder, attached by the launcher
        # reliable-transport state (all single-threaded: owned by this rank)
        self._send_seq: dict[tuple[int, int], int] = {}   # (dest, tag) -> next
        self._recv_seq: dict[tuple[int, int], int] = {}   # (source, tag) -> next
        self._link_health: dict[int, LinkHealth] = {}     # dest -> health

    # ---- fault plumbing ---------------------------------------------------
    def _record_fault(self, event) -> None:
        """Log one injected/detected fault into stats (and the trace)."""
        self.stats.fault_events.append(event)
        self.stats.faults_injected += 1
        if self.tracer is not None:
            self.tracer.record(
                "fault", event.t, event.t, detail=f"{event.kind}: {event.detail}"
            )

    def _fault_hook(self, count: bool = True) -> None:
        """Consult the injector before a communication operation; raises
        :class:`~repro.simmpi.faults.RankCrash` when a crash spec fires
        and :class:`~repro.simmpi.faults.RankLost` (thread backend) or a
        self-inflicted SIGKILL (process backend) on a node loss."""
        inj = self._injector
        if inj is None:
            return
        if count:
            self._comm_calls += 1
        event = inj.check_node_loss(self.rank, self.clock, self._comm_calls)
        if event is not None:
            self._record_fault(event)
            if getattr(self._world, "hard_kill_on_node_loss", False):
                self._die_hard(event)
            raise RankLost(self.rank, event.detail)
        event = inj.check_crash(self.rank, self.clock, self._comm_calls)
        if event is not None:
            self._record_fault(event)
            raise RankCrash(self.rank, event.detail)

    def _die_hard(self, event: FaultEvent) -> None:
        """Process backend node loss: genuinely kill this rank's OS
        process.  SIGKILL is unmaskable and skips every handler and
        ``finally`` — the parent learns of the death only through the
        status pipe's EOF, exactly like a real node failure.  A flight
        recorder installed in this process dumps first (post-mortem
        artifact naming the lost rank), since nothing runs after KILL.
        """
        import os
        import signal

        from repro.obs import flightrec

        flightrec.note(
            "node-loss", rank=self.rank, t=event.t, detail=event.detail
        )
        rec = flightrec.get_recorder()
        if rec is not None:
            try:
                # the recorder was fork-inherited: dump to a per-victim
                # path so the parent's own dump is not clobbered
                rec.path = rec.path.with_name(
                    f"{rec.path.stem}-lostrank{self.rank}-"
                    f"pid{os.getpid()}{rec.path.suffix}"
                )
                rec.dump(f"node loss: rank {self.rank} killed")
            except Exception:  # noqa: BLE001 - nothing may delay the kill
                pass
        os.kill(os.getpid(), signal.SIGKILL)

    # ---- phases -----------------------------------------------------------
    def set_phase(self, phase: str | None) -> None:
        """Label subsequent communication time with ``phase`` (for figures)."""
        self._phase = phase

    @property
    def machine(self) -> MachineModel:
        return self._world.machine

    @property
    def pack_in_place(self) -> bool:
        """True when sends consume payload bytes synchronously (the
        shared-memory process backend), so callers may hand reusable
        pack buffers to ``send``/``isend`` without an aliasing copy."""
        return self._world.copies_on_deliver

    # ---- compute ------------------------------------------------------------
    def compute(self, seconds: float, phase: str | None = None) -> None:
        """Advance the logical clock by ``seconds`` of local computation.

        An active straggler fault silently inflates ``seconds`` by its
        slowdown factor — the degraded-clock failure mode.
        """
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self._fault_hook(count=False)
        if self._injector is not None:
            factor, events = self._injector.on_compute(self.rank, self.clock)
            for ev in events:
                self._record_fault(ev)
            seconds *= factor
        t0 = self.clock
        self.clock += seconds
        self.stats.compute_time += seconds
        if phase is not None:
            self.stats.add_tagged(phase, seconds)
        if self.tracer is not None and seconds > 0:
            self.tracer.record("compute", t0, self.clock, phase=phase)

    # ---- point-to-point -------------------------------------------------------
    def _as_payload(self, array: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(array)
        if self._world.copies_on_deliver:
            # deliver() packs the bytes into a shared ring synchronously,
            # so the payload may alias sender memory (pack-in-place)
            return arr
        if arr is array or arr.base is not None:
            return arr.copy()  # messages must not alias sender memory
        return arr  # ascontiguousarray already produced a private copy

    def send(self, dest: int, array: np.ndarray, tag: int = 0) -> None:
        """Buffered send: the sender pays only the overhead ``alpha``.

        Under a reliable :class:`~repro.simmpi.transport.TransportConfig`
        a failed wire attempt (injected drop, or corruption with
        checksums armed) is retransmitted with exponential backoff until
        it delivers, the per-link retry budget runs out, or the link's
        circuit breaker opens; each retry draws a *fresh* fault fate.  A
        message the transport gives up on falls back to raw-network
        semantics: a drop stays lost (the receiver detects the sequence
        gap), a corruption is delivered for the receiver's checksum.
        """
        self._fault_hook()
        payload = self._as_payload(array)
        transport = self._world.transport
        reliable = transport is not None and transport.reliable
        checksum = (
            payload_checksum(payload) if self._world.verify_checksums else None
        )
        health: LinkHealth | None = None
        if reliable:
            health = self._link_health.get(dest)
            if health is None:
                health = self._link_health[dest] = LinkHealth()
        attempt = self._injector.attempt if self._injector is not None else 1
        retry = 0
        while True:
            alpha_f = beta_f = 1.0
            action = "deliver"
            corrupt_mode = "scale"
            if self._injector is not None:
                action, corrupt_mode, alpha_f, beta_f, events = (
                    self._injector.on_send(
                        self.rank, dest, payload.nbytes, self.clock
                    )
                )
                for ev in events:
                    self._record_fault(ev)
            # Corruption is only sender-visible when the receiver would
            # NACK it, i.e. when payload checksums are armed; a drop is
            # always noticed as a missing ack.
            detectable = action == "drop" or (
                action == "corrupt" and self._world.verify_checksums
            )
            if reliable and detectable:
                if health.record_failure(transport.breaker_threshold):
                    self.stats.breaker_trips += 1
                    self._record_fault(FaultEvent(
                        self.rank, "breaker-open", self.clock, attempt,
                        f"link {self.rank}->{dest} after "
                        f"{health.consecutive_failures} consecutive failures",
                    ))
                if health.open or retry >= transport.max_retransmits:
                    self._record_fault(FaultEvent(
                        self.rank, "retransmit-exhausted", self.clock,
                        attempt,
                        f"link {self.rank}->{dest} tag {tag}: giving up "
                        f"after {retry} retransmit(s)"
                        + (" (breaker open)" if health.open else ""),
                    ))
                    break
                # Failed wire attempt: pay its overhead plus the
                # detection + backoff delay, then go around again.
                overhead = alpha_f * self.machine.alpha
                u = 0.5
                if transport.rto_jitter > 0.0:
                    seed = (
                        self._injector.plan.seed
                        if self._injector is not None else 0
                    )
                    u = jitter_unit(seed, attempt, self.rank, dest, retry)
                delay = detection_delay(
                    transport, self.machine, action, payload.nbytes, retry,
                    u=u,
                )
                self.clock += overhead + delay
                self.stats.p2p_time += overhead + delay
                self.stats.p2p_messages_sent += 1
                self.stats.p2p_bytes_sent += payload.nbytes
                self.stats.retransmits += 1
                self.stats.retransmit_time += delay
                if self._phase is not None:
                    self.stats.add_tagged(self._phase, overhead + delay)
                retry += 1
                continue
            if reliable and action == "deliver":
                health.record_success()
            break
        if action == "corrupt":
            # checksum was taken first, so integrity checking catches this
            self._injector.corrupt_payload(payload, self.rank, corrupt_mode)
        arrival = self.clock + (
            alpha_f * self.machine.alpha
            + beta_f * self.machine.beta * payload.nbytes
        )
        overhead = alpha_f * self.machine.alpha
        self.clock += overhead
        self.stats.p2p_time += overhead
        self.stats.p2p_messages_sent += 1
        self.stats.p2p_bytes_sent += payload.nbytes
        if self._phase is not None:
            self.stats.add_tagged(self._phase, overhead)
        seq = self._send_seq.get((dest, tag), 0)
        self._send_seq[(dest, tag)] = seq + 1
        if action == "drop":
            return  # the sender is oblivious; the receiver never sees it
        self._world.mailboxes[dest].deliver(
            Message(self.rank, dest, tag, payload, arrival, checksum, seq)
        )
        obs_point(
            "isend", "comm",
            args={"flow": f"{self.rank}>{dest}t{tag}#{seq}"},
        )

    def isend(self, dest: int, array: np.ndarray, tag: int = 0) -> Request:
        """Non-blocking send (identical cost accounting to :meth:`send`)."""
        self.send(dest, array, tag)
        return Request(self, "isend")

    def recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Blocking receive from ``source`` with matching ``tag``."""
        return self.irecv(source, tag).wait()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Post a non-blocking receive; completion happens in ``wait``."""
        return Request(self, "irecv", source=source, tag=tag)

    def waitany(self, requests: Sequence[Request]) -> int:
        """Block until at least one request can complete without blocking;
        return the lowest such index.

        Unlike mpi4py's ``Waitany`` this does **not** complete the
        request: the winner is only *claimed* (see :meth:`Request.test`),
        and the caller decides when to apply the logical completion via
        ``wait()``.  That split is deliberate — physical arrival order is
        timing-dependent, so letting it drive logical completion order
        would make logical clocks nondeterministic.  Blocking between
        poll sweeps uses the mailbox condition variable (with the same
        bounded timed waits as ``collect`` on the process backend), so
        there is no busy-wait and the writer-drains-own-incoming rule
        still holds.
        """
        if not requests:
            raise ValueError("waitany needs at least one request")
        mailbox = self._world.mailboxes[self.rank]
        deadline = None
        while True:
            for idx, req in enumerate(requests):
                if req.test():
                    return idx
            abort = getattr(self._world, "abort_flag", None)
            if abort is not None and abort.is_set():
                raise DeadlockError(
                    f"rank {self.rank}: waitany aborted — {abort.reason}"
                )
            check = getattr(self._world, "_check_abort", None)
            if check is not None:
                check(f"rank {self.rank}: waitany")
            if deadline is None:
                deadline = time.monotonic() + self._world.timeout
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"rank {self.rank}: waitany over {len(requests)} "
                    f"request(s) timed out after {self._world.timeout}s; "
                    f"mailbox holds {mailbox.pending_summary()}"
                )
            mailbox.wait_any(min(remaining, 0.05))

    def sendrecv(
        self, dest: int, array: np.ndarray, source: int, tag: int = 0
    ) -> np.ndarray:
        """Exchange with (possibly different) partners without deadlock."""
        req = self.isend(dest, array, tag)
        out = self.recv(source, tag)
        req.wait()
        return out

    # ---- sub-communicators -----------------------------------------------------
    def subcomm(self, ranks: Sequence[int]) -> "SubComm":
        """Sub-communicator over ``ranks`` (must include this rank).

        All members must construct the sub-communicator with the same rank
        list, and must then call the same sequence of collectives on it.
        """
        key = tuple(sorted(set(int(r) for r in ranks)))
        if self.rank not in key:
            raise ValueError(f"rank {self.rank} not in group {key}")
        return SubComm(self, key)

    def world_comm(self) -> "SubComm":
        """Sub-communicator spanning all ranks."""
        return self.subcomm(range(self.size))

    # ---- world-wide collectives (convenience) -------------------------------------
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        return self.world_comm().allreduce(array, op)

    def barrier(self) -> None:
        self.world_comm().barrier()

    def bcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        return self.world_comm().bcast(array, root)

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        return self.world_comm().allgather(array)

    def allgather_obj(self, obj: Any) -> list[Any]:
        return self.world_comm().allgather_obj(obj)


class SubComm:
    """A collective-capable group view; thin wrapper over :class:`SimComm`."""

    def __init__(self, comm: SimComm, ranks: tuple[int, ...]) -> None:
        self._comm = comm
        self.ranks = ranks
        self.size = len(ranks)
        self.rank = ranks.index(comm.rank)

    # ---- plumbing ------------------------------------------------------------
    def _next_generation(self) -> int:
        gens = self._comm._generations
        gen = gens.get(self.ranks, 0)
        gens[self.ranks] = gen + 1
        return gen

    def _run(
        self,
        op: str,
        contribution: Any,
        nbytes: int,
        combine,
    ) -> Any:
        comm = self._comm
        comm._fault_hook()
        if self.size == 1:
            return combine({comm.rank: contribution})
        ctx = comm._world.group(self.ranks)
        duration, bytes_moved = collective_cost(
            comm.machine, op, self.size, nbytes
        )
        if comm._injector is not None:
            factor, events = comm._injector.collective_factor(
                comm.rank, comm.clock
            )
            for ev in events:
                comm._record_fault(ev)
            duration *= factor
        gen = self._next_generation()
        t_before = comm.clock
        with obs_span("collective", "simmpi"):
            result, t_end = ctx.execute(
                gen,
                comm.rank,
                comm.clock,
                contribution,
                combine,
                duration,
                comm._world.timeout,
            )
        comm.clock = max(comm.clock, t_end)
        elapsed = comm.clock - t_before
        comm.stats.collective_time += elapsed
        comm.stats.collective_ops += 1
        comm.stats.collective_bytes += bytes_moved
        comm.stats.synchronizations += 1
        if comm._phase is not None:
            comm.stats.add_tagged(comm._phase, elapsed)
        if comm.tracer is not None and elapsed > 0:
            comm.tracer.record(
                "collective", t_before, comm.clock,
                detail=f"{op} q={self.size}", phase=comm._phase,
            )
        return result

    # ---- collectives --------------------------------------------------------------
    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Elementwise reduction, result available on all members."""
        arr = np.ascontiguousarray(array)
        combine = REDUCE_OPS[op]
        result = self._run("allreduce", arr.copy(), arr.nbytes, combine)
        return np.array(result, copy=True)

    def reduce(
        self, array: np.ndarray, root: int = 0, op: str = "sum"
    ) -> np.ndarray | None:
        """Reduction to the group-local ``root``; others get ``None``."""
        arr = np.ascontiguousarray(array)
        combine = REDUCE_OPS[op]
        result = self._run("reduce", arr.copy(), arr.nbytes, combine)
        return np.array(result, copy=True) if self.rank == root else None

    def bcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        """Broadcast from group-local ``root``."""
        contribution = None
        nbytes = 0
        if self.rank == root:
            if array is None:
                raise ValueError("root must supply the broadcast payload")
            contribution = np.ascontiguousarray(array).copy()
            nbytes = contribution.nbytes
        root_world = self.ranks[root]

        def combine(contribs):
            return contribs[root_world]

        # every member must agree on nbytes for the cost model: gather it
        # from the root's contribution inside combine; cost uses sender value
        # which only the root knows — non-roots pass 0 and the max is taken
        # by using the root's nbytes via a fixed convention: all members are
        # required to know the payload size in this simulated setting, so we
        # conservatively cost with the local estimate (root's actual size).
        result = self._run("bcast", contribution, nbytes, combine)
        return np.array(result, copy=True)

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        """Rank-ordered list of every member's array."""
        arr = np.ascontiguousarray(array).copy()
        return self._run("allgather", arr, arr.nbytes, combine_gather)

    def allgather_obj(self, obj: Any) -> list[Any]:
        """Allgather of arbitrary Python objects (zero modelled bytes).

        For test plumbing and result assembly only — not for modelling
        communication cost.
        """
        return self._run("allgather", obj, 0, combine_gather)

    def gather(self, array: np.ndarray, root: int = 0) -> list[np.ndarray] | None:
        """Rank-ordered list at the group-local ``root``; others get None."""
        arr = np.ascontiguousarray(array).copy()
        result = self._run("gather", arr, arr.nbytes, combine_gather)
        return result if self.rank == root else None

    def scatter(
        self, arrays: list[np.ndarray] | None, root: int = 0
    ) -> np.ndarray:
        """Distribute ``arrays[i]`` from the group-local ``root`` to member ``i``."""
        contribution = None
        nbytes = 0
        if self.rank == root:
            if arrays is None or len(arrays) != self.size:
                raise ValueError("root must supply one payload per member")
            contribution = [np.ascontiguousarray(a).copy() for a in arrays]
            nbytes = contribution[0].nbytes if contribution else 0
        root_world = self.ranks[root]

        def combine(contribs):
            return contribs[root_world]

        payloads = self._run("scatter", contribution, nbytes, combine)
        return np.array(payloads[self.rank], copy=True)

    def alltoall(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Personalized exchange: ``blocks[i]`` goes to member ``i``;
        returns the blocks every member addressed to this rank, in group
        order.  (The transpose primitive of distributed FFTs.)"""
        if len(blocks) != self.size:
            raise ValueError(
                f"alltoall needs {self.size} blocks, got {len(blocks)}"
            )
        payload = [np.ascontiguousarray(b).copy() for b in blocks]
        nbytes_pair = payload[0].nbytes if payload else 0

        def combine(contribs):
            # full exchange matrix: row = sender (world rank order)
            return {r: contribs[r] for r in contribs}

        matrix = self._run("alltoall", payload, nbytes_pair, combine)
        me = self.rank
        return [matrix[r][me] for r in sorted(matrix)]

    def exscan(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Exclusive prefix reduction in group rank order.

        Member ``i`` receives ``op`` over members ``0..i-1``; member 0
        receives zeros.
        """
        arr = np.ascontiguousarray(array).astype(np.float64)

        def combine(contribs):
            ordered = [contribs[r] for r in sorted(contribs)]
            return ordered

        ordered = self._run("scan", arr.copy(), arr.nbytes, combine)
        out = np.zeros_like(arr)
        for i in range(self.rank):
            out += ordered[i]
        return out

    def barrier(self) -> None:
        """Synchronize all members (clocks aligned to the max)."""
        self._run("barrier", None, 0, lambda c: None)
