"""Event tracing of the simulated cluster.

When enabled (``run_spmd(..., trace=True)``), every rank records a
:class:`TraceEvent` for each compute span, point-to-point operation and
collective, with logical-clock start/end times.  The trace is the raw
material for timeline rendering and critical-path analysis — the
"maximum over execution paths" accounting of the paper's reference [16]
(Solomonik et al.) made concrete.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One logical-clock span on one rank."""

    rank: int
    kind: str          # "compute" | "send" | "recv_wait" | "collective"
    t_start: float
    t_end: float
    detail: str = ""
    phase: str | None = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class TraceRecorder:
    """Per-rank event sink (attached to a SimComm when tracing)."""

    rank: int
    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        kind: str,
        t_start: float,
        t_end: float,
        detail: str = "",
        phase: str | None = None,
    ) -> None:
        self.events.append(
            TraceEvent(self.rank, kind, t_start, t_end, detail, phase)
        )


def merge_timeline(recorders: list[TraceRecorder]) -> list[TraceEvent]:
    """All events of all ranks, ordered by start time (ties by rank)."""
    events: list[TraceEvent] = []
    for rec in recorders:
        events.extend(rec.events)
    return sorted(events, key=lambda e: (e.t_start, e.rank))


def busy_fraction(recorder: TraceRecorder, kind: str = "compute") -> float:
    """Share of this rank's span spent in events of ``kind``."""
    if not recorder.events:
        return 0.0
    total = max(e.t_end for e in recorder.events)
    if total <= 0:
        return 0.0
    busy = sum(e.duration for e in recorder.events if e.kind == kind)
    return busy / total


def render_gantt(
    recorders: list[TraceRecorder],
    width: int = 72,
    t_max: float | None = None,
) -> str:
    """Plain-text timeline: one row per rank.

    Symbols: ``#`` compute, ``~`` waiting on a receive, ``=`` collective,
    ``X`` an injected/detected fault event, ``-`` idle/other.  Resolution
    is ``t_max / width``; overlapping kinds in one cell resolve by
    precedence fault > compute > collective > wait.
    """
    if t_max is None:
        t_max = max(
            (e.t_end for rec in recorders for e in rec.events), default=0.0
        )
    if t_max <= 0:
        return "(empty trace)"
    symbols = {
        "compute": "#", "collective": "=", "recv_wait": "~", "send": "s",
        "fault": "X",
    }
    precedence = {"X": 4, "#": 3, "=": 2, "~": 1, "s": 1, "-": 0}
    lines = []
    for rec in recorders:
        row = ["-"] * width
        for e in rec.events:
            a = min(width - 1, int(e.t_start / t_max * width))
            b = min(width - 1, max(a, int(e.t_end / t_max * width) - 1))
            sym = symbols.get(e.kind, "-")
            for i in range(a, b + 1):
                if precedence[sym] > precedence[row[i]]:
                    row[i] = sym
        lines.append(f"rank {rec.rank:>3} |{''.join(row)}|")
    lines.append(
        f"legend: # compute   = collective   ~ recv wait   X fault   "
        f"(span {t_max:.3e} s)"
    )
    return "\n".join(lines)
