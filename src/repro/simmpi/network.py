"""Mailboxes and message transport of the simulated cluster.

Each rank owns a :class:`Mailbox`; a send appends a :class:`Message` to the
destination mailbox under its condition variable; a receive blocks until a
message matching ``(source, tag)`` is present.  Matching is FIFO per
``(source, tag)`` pair, which — together with single-threaded senders —
makes message delivery deterministic regardless of thread scheduling.

When one rank fails, the launcher raises the world's :class:`AbortFlag`;
blocked receivers (and collectives) wake immediately and raise a
``DeadlockError`` naming the originating failure instead of sitting out
the full wall-clock timeout.
"""
from __future__ import annotations

import threading
import zlib
from collections import Counter
from dataclasses import dataclass

import numpy as np


class DeadlockError(RuntimeError):
    """A blocking receive timed out — the SPMD program deadlocked."""


class MessageLost(RuntimeError):
    """A sequence gap on one (source, tag) stream: an upstream message was
    permanently dropped (retransmits exhausted or breaker open).  Raised
    by the receiver as soon as the *next* message on the stream arrives,
    instead of sitting out the full deadlock timeout."""


class AbortFlag:
    """World-wide fail-fast switch: set once by the launcher when any
    rank fails; blocked operations check it and bail out promptly."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason = ""
        self._lock = threading.Lock()

    def set(self, reason: str) -> None:
        with self._lock:
            if not self._event.is_set():
                self._reason = reason
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        with self._lock:
            return self._reason


def payload_checksum(payload: np.ndarray) -> int:
    """CRC32 of a (contiguous) payload — the in-flight integrity check."""
    return zlib.crc32(payload.tobytes())


@dataclass
class Message:
    """One in-flight point-to-point message.

    ``arrival`` is the logical time at which the payload is available at
    the receiver (sender clock at send + alpha + beta * bytes); the
    receiver's clock is advanced to at least this value on receive.
    ``checksum`` is the sender-side CRC32 of the *uncorrupted* payload
    (None when integrity checking is off).  ``seq`` numbers the
    ``(source, dest, tag)`` stream so the reliable transport can detect
    permanently lost messages as a gap at the receiver.
    """

    source: int
    dest: int
    tag: int
    payload: np.ndarray
    arrival: float
    checksum: int | None = None
    seq: int = 0


def _summarize_pending(messages: list[Message]) -> str:
    """Compact ``(source, tag) xN`` summary of a mailbox's backlog."""
    if not messages:
        return "empty"
    counts = Counter((m.source, m.tag) for m in messages)
    parts = [
        f"(src={s}, tag={t}) x{n}" if n > 1 else f"(src={s}, tag={t})"
        for (s, t), n in sorted(counts.items())
    ]
    return f"{len(messages)} message(s): " + ", ".join(parts)


class Mailbox:
    """The incoming-message queue of one rank."""

    def __init__(self, rank: int, abort: AbortFlag | None = None) -> None:
        self.rank = rank
        self._messages: list[Message] = []
        self._cond = threading.Condition()
        self._abort = abort

    def deliver(self, msg: Message) -> None:
        """Called by the *sender* thread to enqueue a message."""
        with self._cond:
            self._messages.append(msg)
            self._cond.notify_all()

    def wake(self) -> None:
        """Wake blocked collectors (used by the launcher's fail-fast abort)."""
        with self._cond:
            self._cond.notify_all()

    def collect(self, source: int, tag: int, timeout: float) -> Message:
        """Block until the first message matching ``(source, tag)`` arrives.

        Raises
        ------
        DeadlockError
            If no matching message arrives within ``timeout`` wall
            seconds, or another rank failed and the run was aborted.
        """
        import time

        with self._cond:
            deadline = None
            while True:
                for idx, msg in enumerate(self._messages):
                    if msg.source == source and msg.tag == tag:
                        return self._messages.pop(idx)
                if self._abort is not None and self._abort.is_set():
                    raise DeadlockError(
                        f"rank {self.rank}: recv(source={source}, tag={tag}) "
                        f"aborted — {self._abort.reason}"
                    )
                if deadline is None:
                    deadline = time.monotonic() + timeout
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {self.rank}: recv(source={source}, tag={tag}) "
                        f"timed out after {timeout}s; mailbox holds "
                        f"{_summarize_pending(self._messages)}"
                    )
                self._cond.wait(remaining)

    def try_collect(self, source: int, tag: int) -> Message | None:
        """Nonblocking :meth:`collect`: pop and return the first message
        matching ``(source, tag)``, or ``None`` if none has arrived.

        Never blocks and never raises; abort/timeout handling stays in the
        blocking :meth:`collect` so that polling has no failure-injection
        or accounting side effects.
        """
        with self._cond:
            for idx, msg in enumerate(self._messages):
                if msg.source == source and msg.tag == tag:
                    return self._messages.pop(idx)
        return None

    def wait_any(self, timeout: float) -> None:
        """Block until *any* delivery (or wake) notifies, at most
        ``timeout`` seconds.  Used by ``Comm.waitany`` between poll
        sweeps; spurious wakeups are fine — callers re-poll."""
        with self._cond:
            self._cond.wait(timeout)

    def pending_count(self) -> int:
        """Number of undelivered messages (used by shutdown sanity checks)."""
        with self._cond:
            return len(self._messages)

    def pending_summary(self) -> str:
        """Human-readable backlog summary (for launcher diagnostics)."""
        with self._cond:
            return _summarize_pending(self._messages)
