"""Mailboxes and message transport of the simulated cluster.

Each rank owns a :class:`Mailbox`; a send appends a :class:`Message` to the
destination mailbox under its condition variable; a receive blocks until a
message matching ``(source, tag)`` is present.  Matching is FIFO per
``(source, tag)`` pair, which — together with single-threaded senders —
makes message delivery deterministic regardless of thread scheduling.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


class DeadlockError(RuntimeError):
    """A blocking receive timed out — the SPMD program deadlocked."""


@dataclass
class Message:
    """One in-flight point-to-point message.

    ``arrival`` is the logical time at which the payload is available at
    the receiver (sender clock at send + alpha + beta * bytes); the
    receiver's clock is advanced to at least this value on receive.
    """

    source: int
    dest: int
    tag: int
    payload: np.ndarray
    arrival: float


class Mailbox:
    """The incoming-message queue of one rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._messages: list[Message] = []
        self._cond = threading.Condition()

    def deliver(self, msg: Message) -> None:
        """Called by the *sender* thread to enqueue a message."""
        with self._cond:
            self._messages.append(msg)
            self._cond.notify_all()

    def collect(self, source: int, tag: int, timeout: float) -> Message:
        """Block until the first message matching ``(source, tag)`` arrives.

        Raises
        ------
        DeadlockError
            If no matching message arrives within ``timeout`` wall seconds.
        """
        with self._cond:
            deadline = None
            while True:
                for idx, msg in enumerate(self._messages):
                    if msg.source == source and msg.tag == tag:
                        return self._messages.pop(idx)
                if deadline is None:
                    import time

                    deadline = time.monotonic() + timeout
                import time

                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {self.rank}: recv(source={source}, tag={tag}) "
                        f"timed out after {timeout}s; "
                        f"pending={[(m.source, m.tag) for m in self._messages]}"
                    )
                self._cond.wait(remaining)

    def pending_count(self) -> int:
        """Number of undelivered messages (used by shutdown sanity checks)."""
        with self._cond:
            return len(self._messages)
