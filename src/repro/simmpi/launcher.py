"""SPMD launcher: run the same function on every simulated rank.

``run_spmd(nranks, fn, *args)`` starts one thread per rank, each with its
own :class:`SimComm`, and collects the per-rank return values, statistics
and final logical clocks.  Exceptions on any rank abort the run promptly
— the world's abort flag wakes every blocked receive and collective — and
are re-raised on the caller with rank attribution.

Fault injection: pass ``faults=FaultPlan(...)`` (or a reusable
:class:`~repro.simmpi.faults.FaultInjector`) to have the communicators
inject rank crashes, message drops/corruption, degraded-network windows
and compute stragglers; ``verify_checksums=True`` arms the in-flight
payload integrity check (:class:`~repro.simmpi.faults.CorruptedMessage`).
"""
from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.spans import set_rank
from repro.simmpi.comm import SimComm, SimWorld
from repro.simmpi.faults import FaultInjector, FaultPlan
from repro.simmpi.machine import LAPTOP_LIKE, MachineModel
from repro.simmpi.network import DeadlockError
from repro.simmpi.stats import CommStats
from repro.simmpi.trace import TraceRecorder
from repro.simmpi.transport import TransportConfig


class SpmdError(RuntimeError):
    """One or more ranks raised; carries the per-rank tracebacks.

    Attributes
    ----------
    failures:
        ``{rank: traceback string}`` of every failed rank.
    exceptions:
        ``{rank: exception object}`` (same keys) — lets callers classify
        failures by type (``RankCrash``, ``CorruptedMessage``,
        ``DeadlockError``, ...) without string matching.
    stats:
        Per-rank :class:`CommStats` captured at failure time (fault
        events of the doomed attempt survive here), or ``None``.
    """

    def __init__(
        self,
        failures: dict[int, str],
        exceptions: dict[int, BaseException] | None = None,
        stats: list[CommStats] | None = None,
    ) -> None:
        self.failures = failures
        self.exceptions = exceptions or {}
        self.stats = stats
        ranks = ", ".join(str(r) for r in sorted(failures))
        lines = [f"SPMD ranks [{ranks}] failed:"]
        for r in sorted(failures):
            exc = self.exceptions.get(r)
            if exc is not None:
                summary = f"{type(exc).__name__}: {exc}"
            else:
                tb_lines = failures[r].strip().splitlines()
                summary = tb_lines[-1] if tb_lines else "unknown failure"
            lines.append(f"  rank {r}: {summary}")
        first = failures[min(failures)]
        lines.append(f"first failing rank traceback:\n{first}")
        super().__init__("\n".join(lines))


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    stats: list[CommStats]
    clocks: list[float]
    traces: list[TraceRecorder] | None = None

    @property
    def nranks(self) -> int:
        return len(self.results)

    @property
    def makespan(self) -> float:
        """Simulated wall time: the slowest rank's final logical clock."""
        return max(self.clocks)

    def critical_stats(self) -> CommStats:
        """Per-field max over ranks (critical-path accounting of [16])."""
        return self.stats[0].merge_max(self.stats[1:])

    def total_comm_time(self) -> float:
        """Max over ranks of (p2p + collective) logical time."""
        return max(s.comm_time for s in self.stats)

    def total_compute_time(self) -> float:
        """Max over ranks of compute logical time."""
        return max(s.compute_time for s in self.stats)

    def fault_events(self) -> list:
        """All fault events of all ranks, in rank order."""
        return [e for s in self.stats for e in s.fault_events]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 120.0,
    trace: bool = False,
    faults: FaultPlan | FaultInjector | None = None,
    verify_checksums: bool = False,
    transport: TransportConfig | None = None,
) -> SpmdResult:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (threads).
    fn:
        The rank program; first argument is its :class:`SimComm`.
    machine:
        Cost model; defaults to :data:`repro.simmpi.machine.LAPTOP_LIKE`.
    timeout:
        Wall-clock seconds after which a blocked receive or collective is
        declared a deadlock.  Callers running many model steps should
        scale this with the work (see ``repro.core.driver``, which does).
    trace:
        Record per-rank :class:`TraceRecorder` timelines (compute spans,
        receive waits, collectives, fault events) in the result.
    faults:
        Declarative :class:`FaultPlan` (deterministic under its seed), or
        a live :class:`FaultInjector` when the caller wants one-shot
        crash state to persist across restart attempts.
    verify_checksums:
        Checksum every point-to-point payload at the sender and verify on
        receive; in-flight corruption then raises ``CorruptedMessage``
        instead of silently contaminating the receiver.
    transport:
        Reliable-transport policy (:class:`~repro.simmpi.transport.
        TransportConfig`): sequence-numbered messages with bounded,
        backed-off retransmission of drops and (checksummed) corruption,
        per-link circuit breakers, and prompt ``MessageLost`` detection
        of permanently dropped messages.  ``None`` models the raw
        network of the seed substrate.
    """
    injector = faults.injector() if isinstance(faults, FaultPlan) else faults
    if injector is not None:
        injector.begin_attempt()
    world = SimWorld(
        nranks,
        machine or LAPTOP_LIKE,
        timeout=timeout,
        injector=injector,
        verify_checksums=verify_checksums,
        transport=transport,
    )
    comms = [SimComm(world, r) for r in range(nranks)]
    tracers: list[TraceRecorder] | None = None
    if trace:
        tracers = [TraceRecorder(r) for r in range(nranks)]
        for c, t in zip(comms, tracers):
            c.tracer = t
    results: list[Any] = [None] * nranks
    failures: dict[int, str] = {}
    exceptions: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        # Label wall-clock spans with the simulated rank; restore after —
        # the serial fast path runs in the caller's thread.
        prev_rank = set_rank(rank)
        try:
            results[rank] = fn(comms[rank], *args)
        except BaseException as exc:  # noqa: BLE001 - report everything to caller
            with failures_lock:
                failures[rank] = traceback.format_exc()
                exceptions[rank] = exc
            # fail fast: wake the surviving ranks out of blocked waits
            world.abort(f"rank {rank} failed with {type(exc).__name__}: {exc}")
        finally:
            set_rank(prev_rank)

    if nranks == 1:
        # Fast path: no threads for serial runs.
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank{r}")
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout + 30.0)
        hung = [t.name for t in threads if t.is_alive()]
        if hung and not failures:
            backlog = {
                r: world.mailboxes[r].pending_summary() for r in range(nranks)
            }
            detail = (
                f"rank threads still alive: {hung}; "
                f"per-rank mailbox backlog: {backlog}"
            )
            raise SpmdError(
                {-1: detail},
                exceptions={-1: DeadlockError(detail)},
                stats=[c.stats for c in comms],
            )
    if failures:
        raise SpmdError(
            failures, exceptions=exceptions, stats=[c.stats for c in comms]
        )
    return SpmdResult(
        results=results,
        stats=[c.stats for c in comms],
        clocks=[c.clock for c in comms],
        traces=tracers,
    )
