"""SPMD launcher: run the same function on every simulated rank.

``run_spmd(nranks, fn, *args)`` starts one thread per rank, each with its
own :class:`SimComm`, and collects the per-rank return values, statistics
and final logical clocks.  Exceptions on any rank abort the run promptly
— the world's abort flag wakes every blocked receive and collective — and
are re-raised on the caller with rank attribution.

Fault injection: pass ``faults=FaultPlan(...)`` (or a reusable
:class:`~repro.simmpi.faults.FaultInjector`) to have the communicators
inject rank crashes, message drops/corruption, degraded-network windows
and compute stragglers; ``verify_checksums=True`` arms the in-flight
payload integrity check (:class:`~repro.simmpi.faults.CorruptedMessage`).
"""
from __future__ import annotations

import pickle
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.spans import (
    NULL_SPAN,
    SpanTracer,
    active_tracer,
    current_trace_context,
    set_active,
    set_rank,
    set_trace_context,
)
from repro.simmpi.comm import SimComm, SimWorld
from repro.simmpi.faults import FaultInjector, FaultPlan
from repro.simmpi.machine import LAPTOP_LIKE, MachineModel
from repro.simmpi.network import DeadlockError
from repro.simmpi.stats import CommStats
from repro.simmpi.trace import TraceRecorder
from repro.simmpi.transport import TransportConfig


class SpmdError(RuntimeError):
    """One or more ranks raised; carries the per-rank tracebacks.

    Attributes
    ----------
    failures:
        ``{rank: traceback string}`` of every failed rank.
    exceptions:
        ``{rank: exception object}`` (same keys) — lets callers classify
        failures by type (``RankCrash``, ``CorruptedMessage``,
        ``DeadlockError``, ...) without string matching.
    stats:
        Per-rank :class:`CommStats` captured at failure time (fault
        events of the doomed attempt survive here), or ``None``.
    """

    def __init__(
        self,
        failures: dict[int, str],
        exceptions: dict[int, BaseException] | None = None,
        stats: list[CommStats] | None = None,
    ) -> None:
        self.failures = failures
        self.exceptions = exceptions or {}
        self.stats = stats
        ranks = ", ".join(str(r) for r in sorted(failures))
        lines = [f"SPMD ranks [{ranks}] failed:"]
        for r in sorted(failures):
            exc = self.exceptions.get(r)
            if exc is not None:
                summary = f"{type(exc).__name__}: {exc}"
            else:
                tb_lines = failures[r].strip().splitlines()
                summary = tb_lines[-1] if tb_lines else "unknown failure"
            lines.append(f"  rank {r}: {summary}")
        first = failures[min(failures)]
        lines.append(f"first failing rank traceback:\n{first}")
        super().__init__("\n".join(lines))


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    stats: list[CommStats]
    clocks: list[float]
    traces: list[TraceRecorder] | None = None

    @property
    def nranks(self) -> int:
        return len(self.results)

    @property
    def makespan(self) -> float:
        """Simulated wall time: the slowest rank's final logical clock."""
        return max(self.clocks)

    def critical_stats(self) -> CommStats:
        """Per-field max over ranks (critical-path accounting of [16])."""
        return self.stats[0].merge_max(self.stats[1:])

    def total_comm_time(self) -> float:
        """Max over ranks of (p2p + collective) logical time."""
        return max(s.comm_time for s in self.stats)

    def total_compute_time(self) -> float:
        """Max over ranks of compute logical time."""
        return max(s.compute_time for s in self.stats)

    def fault_events(self) -> list:
        """All fault events of all ranks, in rank order."""
        return [e for s in self.stats for e in s.fault_events]


BACKENDS = ("thread", "process")

#: default extra wall-clock slack granted past ``timeout`` before the
#: join watchdog declares the run wedged
DEFAULT_JOIN_GRACE = 30.0


def reap_processes(
    procs,
    *,
    join_timeout: float = 2.0,
    term_timeout: float = 5.0,
    kill_timeout: float = 5.0,
) -> list[int]:
    """Join, then terminate, then kill: never leave a child running.

    The escalation ladder of process cleanup — a polite ``join``, a
    SIGTERM with a grace period, and finally SIGKILL for children that
    ignore SIGTERM (wedged in a handler, signal-blocked, ...).  Returns
    the pids that needed SIGKILL.  Shared by the SPMD process backend
    and the :mod:`repro.serve` worker supervisor: any component that
    owns child processes must be able to reap a wedged one without
    hanging itself.
    """
    procs = list(procs)
    for p in procs:
        p.join(timeout=join_timeout)
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        if p.is_alive():
            p.join(timeout=term_timeout)
    killed: list[int] = []
    for p in procs:
        if p.is_alive():
            p.kill()
            p.join(timeout=kill_timeout)
            if p.pid is not None:
                killed.append(p.pid)
    return killed


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 120.0,
    trace: bool = False,
    faults: FaultPlan | FaultInjector | None = None,
    verify_checksums: bool = False,
    transport: TransportConfig | None = None,
    backend: str = "thread",
    shm_link_bytes: int | None = None,
    join_grace: float = DEFAULT_JOIN_GRACE,
) -> SpmdResult:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (threads or processes, see ``backend``).
    fn:
        The rank program; first argument is its :class:`SimComm`.
    machine:
        Cost model; defaults to :data:`repro.simmpi.machine.LAPTOP_LIKE`.
    timeout:
        Wall-clock seconds after which a blocked receive or collective is
        declared a deadlock.  Callers running many model steps should
        scale this with the work (see ``repro.core.driver``, which does).
    trace:
        Record per-rank :class:`TraceRecorder` timelines (compute spans,
        receive waits, collectives, fault events) in the result.
    faults:
        Declarative :class:`FaultPlan` (deterministic under its seed), or
        a live :class:`FaultInjector` when the caller wants one-shot
        crash state to persist across restart attempts.
    verify_checksums:
        Checksum every point-to-point payload at the sender and verify on
        receive; in-flight corruption then raises ``CorruptedMessage``
        instead of silently contaminating the receiver.
    transport:
        Reliable-transport policy (:class:`~repro.simmpi.transport.
        TransportConfig`): sequence-numbered messages with bounded,
        backed-off retransmission of drops and (checksummed) corruption,
        per-link circuit breakers, and prompt ``MessageLost`` detection
        of permanently dropped messages.  ``None`` models the raw
        network of the seed substrate.
    backend:
        ``"thread"`` (default) runs every rank as a thread in this
        process — deterministic fault injection, zero launch cost.
        ``"process"`` forks one OS process per rank and moves messages
        and collectives over shared-memory ring buffers
        (:mod:`repro.simmpi.shm`), so rank compute genuinely runs in
        parallel.  Numerics and logical clocks are bit-identical between
        backends.  ``nranks == 1`` always runs in the caller.
    shm_link_bytes:
        Process backend only: ring capacity per directed link (default
        sized by :func:`repro.simmpi.shm.default_link_bytes`; larger
        messages stream through in chunks).
    join_grace:
        Hard join watchdog: wall-clock slack past ``timeout`` before a
        rank that neither reported nor died is declared wedged and the
        run fails with :class:`SpmdError` (process backend children are
        then terminated, escalating to SIGKILL).  A hung child must
        never hang the caller.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; pick from {BACKENDS}")
    # Causal launch span: when tracing is on, every rank's spans — thread
    # or forked process — parent under this span, so the whole SPMD run
    # exports as one subtree of the caller's trace.
    wall_tracer = active_tracer()
    launch_cm = (
        wall_tracer.span(f"spmd[{nranks}]", "spmd")
        if wall_tracer is not None
        else NULL_SPAN
    )
    if backend == "process":
        if faults is not None:
            plan = faults.plan if isinstance(faults, FaultInjector) else faults
            if not plan.node_loss_only:
                raise ValueError(
                    "fault injection on backend='process' is limited to "
                    "node-loss-only plans (the victim kills its own OS "
                    "process) — injected drops/crashes rely on "
                    "deterministic in-process delivery (backend='thread')"
                )
        if nranks > 1:
            injector = (
                faults.injector() if isinstance(faults, FaultPlan) else faults
            )
            faults_state = None
            if injector is not None:
                injector.begin_attempt()
                # children fork *copies* of the injector: ship the plan
                # plus the fired-spec snapshot so one-shot semantics and
                # the attempt number survive the fork boundary
                faults_state = (injector.plan, injector.snapshot())
            with launch_cm as launch:
                trace_ctx = None
                if wall_tracer is not None:
                    ctx_trace, _ = current_trace_context()
                    trace_ctx = (
                        ctx_trace or wall_tracer.trace_id, launch.span_id
                    )
                return _run_spmd_process(
                    nranks, fn, args,
                    machine=machine or LAPTOP_LIKE,
                    timeout=timeout,
                    trace=trace,
                    verify_checksums=verify_checksums,
                    transport=transport,
                    shm_link_bytes=shm_link_bytes,
                    join_grace=join_grace,
                    trace_ctx=trace_ctx,
                    faults_state=faults_state,
                )
        # single rank: the serial fast path below is already process-free
    injector = faults.injector() if isinstance(faults, FaultPlan) else faults
    if injector is not None:
        injector.begin_attempt()
    world = SimWorld(
        nranks,
        machine or LAPTOP_LIKE,
        timeout=timeout,
        injector=injector,
        verify_checksums=verify_checksums,
        transport=transport,
    )
    comms = [SimComm(world, r) for r in range(nranks)]
    tracers: list[TraceRecorder] | None = None
    if trace:
        tracers = [TraceRecorder(r) for r in range(nranks)]
        for c, t in zip(comms, tracers):
            c.tracer = t
    results: list[Any] = [None] * nranks
    failures: dict[int, str] = {}
    exceptions: dict[int, BaseException] = {}
    failures_lock = threading.Lock()
    launch_ctx: tuple[str, int] | None = None

    def runner(rank: int) -> None:
        # Label wall-clock spans with the simulated rank and hand the
        # launch's causal context to this (possibly fresh) thread;
        # restore after — the serial fast path runs in the caller's
        # thread.
        prev_rank = set_rank(rank)
        prev_ctx = (
            set_trace_context(*launch_ctx) if launch_ctx is not None else None
        )
        try:
            results[rank] = fn(comms[rank], *args)
        except BaseException as exc:  # noqa: BLE001 - report everything to caller
            with failures_lock:
                failures[rank] = traceback.format_exc()
                exceptions[rank] = exc
            # fail fast: wake the surviving ranks out of blocked waits
            world.abort(f"rank {rank} failed with {type(exc).__name__}: {exc}")
        finally:
            if prev_ctx is not None:
                set_trace_context(*prev_ctx)
            set_rank(prev_rank)

    with launch_cm as launch:
        if wall_tracer is not None:
            ctx_trace, _ = current_trace_context()
            launch_ctx = (ctx_trace or wall_tracer.trace_id, launch.span_id)
        if nranks == 1:
            # Fast path: no threads for serial runs.
            runner(0)
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(r,), daemon=True, name=f"rank{r}"
                )
                for r in range(nranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=timeout + join_grace)
            hung = [t.name for t in threads if t.is_alive()]
            if hung and not failures:
                backlog = {
                    r: world.mailboxes[r].pending_summary()
                    for r in range(nranks)
                }
                detail = (
                    f"rank threads still alive: {hung}; "
                    f"per-rank mailbox backlog: {backlog}"
                )
                raise SpmdError(
                    {-1: detail},
                    exceptions={-1: DeadlockError(detail)},
                    stats=[c.stats for c in comms],
                )
        if failures:
            raise SpmdError(
                failures, exceptions=exceptions, stats=[c.stats for c in comms]
            )
    return SpmdResult(
        results=results,
        stats=[c.stats for c in comms],
        clocks=[c.clock for c in comms],
        traces=tracers,
    )


# ---------------------------------------------------------------------------
# process backend (shared-memory rings; see repro.simmpi.shm)
# ---------------------------------------------------------------------------
def _picklable(exc: BaseException) -> BaseException:
    """``exc`` itself when it survives pickling, else a summary stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _process_rank_main(
    world, rank: int, fn, args, trace: bool, ends, trace_ctx=None,
    faults_state=None,
) -> None:
    """Entry point of one rank process (after fork).

    Runs the rank program against the shared-memory world and ships a
    status dict — result, stats, clock, logical trace, wall-clock spans —
    back through ``conn``.  Failures abort the world (fail fast for the
    peers) and ship the traceback instead.
    """
    import os

    status: dict[str, Any] = {
        "rank": rank, "ok": False, "result": None, "stats": None,
        "clock": 0.0, "trace": None, "spans": None, "tb": None, "exc": None,
    }
    # fork copies every rank's pipe write-end into every child; close the
    # other ranks' ends so a dead peer's pipe EOFs promptly in the parent
    conn = ends[rank]
    for i, end in enumerate(ends):
        if i != rank:
            end.close()
    comm = None
    tracer = None
    try:
        world.attach(rank)
        if faults_state is not None:
            # rebuild this rank's injector from the launcher's snapshot:
            # same plan, same attempt number, same consumed one-shot
            # specs — so node-loss triggers fire at the same logical
            # point as they would on the thread backend
            plan, snap = faults_state
            inj = FaultInjector(plan)
            inj.restore_snapshot(snap)
            world.injector = inj
        set_rank(rank)
        parent_tracer = active_tracer()  # inherited through fork
        if parent_tracer is not None:
            # fresh tracer on the parent's epoch: perf_counter is
            # CLOCK_MONOTONIC on Linux, shared across processes, so the
            # child's spans land on the parent's timeline directly —
            # without re-shipping the spans the parent recorded pre-fork
            tracer = SpanTracer()
            tracer.epoch = parent_tracer.epoch
            if trace_ctx is not None:
                # join the launcher's causal tree: spans recorded in this
                # process parent under the launch span and carry its
                # trace id across the fork boundary
                tracer.trace_id = trace_ctx[0]
                set_trace_context(*trace_ctx)
            set_active(tracer)
        comm = SimComm(world, rank)
        if trace:
            comm.tracer = TraceRecorder(rank)
        status["result"] = fn(comm, *args)
        status["ok"] = True
    except BaseException as exc:  # noqa: BLE001 - report everything to caller
        status["tb"] = traceback.format_exc()
        status["exc"] = _picklable(exc)
        world.abort(f"rank {rank} failed with {type(exc).__name__}: {exc}")
    finally:
        if comm is not None:
            status["stats"] = comm.stats
            status["clock"] = comm.clock
            status["trace"] = comm.tracer
        if tracer is not None:
            status["spans"] = tracer.spans
        try:
            conn.send(status)
        except Exception as exc:  # e.g. unpicklable rank result
            status.update(
                ok=False, result=None, trace=None, spans=None,
                tb=traceback.format_exc(),
                exc=RuntimeError(
                    f"rank {rank}: could not ship its result back: {exc}"
                ),
            )
            try:
                conn.send(status)
            except Exception:
                os._exit(70)
        finally:
            conn.close()


def _run_spmd_process(
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    *,
    machine: MachineModel,
    timeout: float,
    trace: bool,
    verify_checksums: bool,
    transport: TransportConfig | None,
    shm_link_bytes: int | None,
    join_grace: float,
    trace_ctx: tuple[str, int] | None = None,
    faults_state=None,
) -> SpmdResult:
    """One OS process per rank over shared-memory rings (fork start method).

    Fork keeps the launch cheap and pickle-free: the rank function, its
    arguments and the world object are inherited copy-on-write.  Results
    come back over per-rank pipes; a child that dies without reporting
    (hard crash, ``os._exit``) is detected by its pipe's EOF and surfaces
    as a :class:`SpmdError` carrying a ``ChildProcessError``.
    """
    from multiprocessing.connection import wait as conn_wait

    from repro.simmpi.shm import ShmWorld, sweep_stale_segments

    world = ShmWorld(
        nranks, machine,
        timeout=timeout,
        verify_checksums=verify_checksums,
        transport=transport,
        link_bytes=shm_link_bytes,
    )
    ctx = world.ctx
    procs: dict[int, Any] = {}
    conns: dict[int, Any] = {}
    try:
        child_ends = []
        for r in range(nranks):
            recv_end, send_end = ctx.Pipe(duplex=False)
            conns[r] = recv_end
            child_ends.append(send_end)
        for r in range(nranks):
            procs[r] = ctx.Process(
                target=_process_rank_main,
                args=(world, r, fn, args, trace, child_ends, trace_ctx,
                      faults_state),
                daemon=True,
                name=f"rank{r}",
            )
        for p in procs.values():
            p.start()
        for end in child_ends:
            end.close()  # EOF on a rank's pipe now means "its process died"

        rank_of = {conn: r for r, conn in conns.items()}
        pending = dict(conns)
        reports: dict[int, dict] = {}
        crashed: dict[int, int | None] = {}
        deadline = time.monotonic() + timeout + join_grace
        while pending:
            ready = conn_wait(list(pending.values()), timeout=0.5)
            for conn in ready:
                r = rank_of[conn]
                try:
                    reports[r] = conn.recv()
                except (EOFError, OSError):
                    procs[r].join(timeout=2.0)
                    crashed[r] = procs[r].exitcode
                    world.abort(
                        f"rank {r} process died with exit code "
                        f"{procs[r].exitcode} before reporting"
                    )
                del pending[r]
            if pending and time.monotonic() > deadline:
                world.abort(
                    f"SPMD run exceeded its {timeout + join_grace:.0f}s "
                    "deadline"
                )
                # one last short grace period for in-flight reports
                for conn in conn_wait(list(pending.values()), timeout=2.0):
                    r = rank_of[conn]
                    try:
                        reports[r] = conn.recv()
                    except (EOFError, OSError):
                        crashed[r] = procs[r].exitcode
                    del pending[r]
                break
        hung = sorted(pending)

        results: list[Any] = [None] * nranks
        stats = [CommStats() for _ in range(nranks)]
        clocks = [0.0] * nranks
        tracers: list[TraceRecorder] | None = (
            [TraceRecorder(r) for r in range(nranks)] if trace else None
        )
        failures: dict[int, str] = {}
        exceptions: dict[int, BaseException] = {}
        tracer = active_tracer()
        for r, rep in sorted(reports.items()):
            if rep.get("stats") is not None:
                stats[r] = rep["stats"]
            clocks[r] = rep.get("clock", 0.0)
            if tracers is not None and rep.get("trace") is not None:
                tracers[r] = rep["trace"]
            if tracer is not None and rep.get("spans"):
                tracer.absorb(
                    rep["spans"],
                    trace_id=trace_ctx[0] if trace_ctx else None,
                    parent_id=trace_ctx[1] if trace_ctx else None,
                )
            if rep.get("ok"):
                results[r] = rep["result"]
            else:
                failures[r] = rep.get("tb") or "(no traceback captured)"
                exceptions[r] = rep.get("exc") or RuntimeError(
                    f"rank {r} failed without detail"
                )
        for r, code in sorted(crashed.items()):
            detail = (
                f"rank {r} process died with exit code {code} "
                "before reporting its result"
            )
            failures[r] = detail
            exceptions[r] = ChildProcessError(detail)
        if failures:
            raise SpmdError(failures, exceptions=exceptions, stats=stats)
        if hung:
            backlog = {
                r: world.mailboxes[r].pending_summary() for r in range(nranks)
            }
            detail = (
                f"rank processes still running: {hung}; "
                f"per-rank mailbox backlog: {backlog}"
            )
            raise SpmdError(
                {-1: detail},
                exceptions={-1: DeadlockError(detail)},
                stats=stats,
            )
        return SpmdResult(
            results=results, stats=stats, clocks=clocks, traces=tracers
        )
    finally:
        # hard reap: a child wedged in a handler (or ignoring SIGTERM)
        # must never outlive the run — escalate join -> TERM -> KILL
        reap_processes(procs.values())
        for conn in conns.values():
            conn.close()
        world.destroy()
        # reclaim segments a *previous*, SIGKILLed launcher left behind
        # (our own are covered by destroy() and the shm atexit hook)
        sweep_stale_segments()
