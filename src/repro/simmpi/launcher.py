"""SPMD launcher: run the same function on every simulated rank.

``run_spmd(nranks, fn, *args)`` starts one thread per rank, each with its
own :class:`SimComm`, and collects the per-rank return values, statistics
and final logical clocks.  Exceptions on any rank abort the run and are
re-raised on the caller with rank attribution.
"""
from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.simmpi.comm import SimComm, SimWorld
from repro.simmpi.machine import LAPTOP_LIKE, MachineModel
from repro.simmpi.stats import CommStats
from repro.simmpi.trace import TraceRecorder


class SpmdError(RuntimeError):
    """One or more ranks raised; carries the per-rank tracebacks."""

    def __init__(self, failures: dict[int, str]) -> None:
        self.failures = failures
        ranks = ", ".join(str(r) for r in sorted(failures))
        first = failures[min(failures)]
        super().__init__(f"SPMD ranks [{ranks}] failed; rank traceback:\n{first}")


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]
    stats: list[CommStats]
    clocks: list[float]
    traces: list[TraceRecorder] | None = None

    @property
    def nranks(self) -> int:
        return len(self.results)

    @property
    def makespan(self) -> float:
        """Simulated wall time: the slowest rank's final logical clock."""
        return max(self.clocks)

    def critical_stats(self) -> CommStats:
        """Per-field max over ranks (critical-path accounting of [16])."""
        return self.stats[0].merge_max(self.stats[1:])

    def total_comm_time(self) -> float:
        """Max over ranks of (p2p + collective) logical time."""
        return max(s.comm_time for s in self.stats)

    def total_compute_time(self) -> float:
        """Max over ranks of compute logical time."""
        return max(s.compute_time for s in self.stats)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 120.0,
    trace: bool = False,
) -> SpmdResult:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (threads).
    fn:
        The rank program; first argument is its :class:`SimComm`.
    machine:
        Cost model; defaults to :data:`repro.simmpi.machine.LAPTOP_LIKE`.
    timeout:
        Wall-clock seconds after which a blocked receive or collective is
        declared a deadlock.
    trace:
        Record per-rank :class:`TraceRecorder` timelines (compute spans,
        receive waits, collectives) in the result.
    """
    world = SimWorld(nranks, machine or LAPTOP_LIKE, timeout=timeout)
    comms = [SimComm(world, r) for r in range(nranks)]
    tracers: list[TraceRecorder] | None = None
    if trace:
        tracers = [TraceRecorder(r) for r in range(nranks)]
        for c, t in zip(comms, tracers):
            c.tracer = t
    results: list[Any] = [None] * nranks
    failures: dict[int, str] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args)
        except BaseException:  # noqa: BLE001 - report everything to caller
            with failures_lock:
                failures[rank] = traceback.format_exc()

    if nranks == 1:
        # Fast path: no threads for serial runs.
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank{r}")
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout + 30.0)
        hung = [t.name for t in threads if t.is_alive()]
        if hung and not failures:
            raise SpmdError({-1: f"rank threads still alive: {hung}"})
    if failures:
        raise SpmdError(failures)
    return SpmdResult(
        results=results,
        stats=[c.stats for c in comms],
        clocks=[c.clock for c in comms],
        traces=tracers,
    )
