"""Deterministic membership: failure detection, consensus, rebuild plans.

Permanent node loss is the one failure the escalation ladder of
:mod:`repro.core.resilience` could not absorb: a crashed rank that never
returns used to abort the attempt (and, under :mod:`repro.serve`, burn a
whole job retry).  This module supplies the missing machinery, in the
same spirit as ULFM's ``MPI_Comm_shrink``/``MPI_Comm_agree`` but built
for the simulated cluster:

* a **failure detector** (:class:`FailureDetector`) that turns the
  evidence carried by a failed SPMD attempt — ``RankLost`` exceptions,
  dead-process EOFs, repeated crashes of the same rank — into a
  transient-vs-permanent classification, and *charges* the detection to
  the logical clock with a deterministic per-link heartbeat/suspicion
  timeline plus a survivor consensus round (allreduce of the suspicion
  bitmap, costed by the machine model);
* a **membership view** (:class:`MembershipView`) tracking the epoch —
  bumped on every accepted loss — and the hot-spare pool
  (:class:`SparePool`);
* a **communicator rebuild plan** (:class:`CommRebuild`): either
  ``spare`` (a pre-provisioned spare adopts the lost rank id; the world
  keeps its size and decomposition) or ``shrink`` (a new, smaller world
  over the survivors, with a dense old-rank → new-rank map).

Determinism (the PR-4 discipline, applied to detection)
-------------------------------------------------------
Nothing here reads the wall clock or sleeps.  Heartbeats tick on the
*logical* clock at ``heartbeat_period``; each surviving observer suspects
a silent peer after ``suspicion_multiplier`` missed beats plus a seeded
per-link jitter (the same blake2b construction the reliable transport
uses for retransmit backoff, :func:`repro.simmpi.transport.jitter_unit`).
The loss is *declared* when a quorum of survivors suspects, and the
declaration is *agreed* after one allreduce over the survivors.  All of
these are pure functions of ``(seed, epoch, machine model, failure
time)`` — two runs with the same seed produce bit-identical detection
timelines, so recovered trajectories stay replayable.
"""
from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.simmpi.faults import RankCrash, RankLost
from repro.simmpi.machine import MachineModel
from repro.simmpi.transport import jitter_unit

logger = logging.getLogger(__name__)


class RankLossUnrecoverable(RuntimeError):
    """A permanent rank loss that the configured policy cannot absorb."""


@dataclass(frozen=True)
class MembershipConfig:
    """Knobs of the deterministic failure detector.

    Parameters
    ----------
    heartbeat_period:
        Logical seconds between the heartbeats every rank is assumed to
        emit on each link (the detector models them; the simulated ranks
        do not literally send them — heartbeat traffic is pure overhead
        accounting, exactly like the alpha-beta cost model itself).
    suspicion_multiplier:
        Missed heartbeats before an observer suspects a silent peer.
    suspicion_jitter:
        Fractional, seeded per-``(observer, lost)`` jitter on the
        suspicion timeout — models independent timers without breaking
        determinism.
    quorum:
        Fraction of survivors that must suspect before the loss is
        declared (strictly more than ``quorum * nsurvivors`` observers,
        floor-capped at 1).
    permanent_after:
        A rank whose *transient* crashes repeat this many times across
        attempts is reclassified as permanently lost ("flapping node"
        escalation); direct node-loss evidence is permanent immediately.
    seed:
        Jitter seed; resilient runs pass the fault plan's seed so one
        seed fixes the entire failure-and-recovery timeline.
    consensus_bytes_per_rank:
        Payload of the agreement allreduce: one suspicion bitmap entry
        per world rank.
    """

    heartbeat_period: float = 5.0e-4
    suspicion_multiplier: float = 3.0
    suspicion_jitter: float = 0.1
    quorum: float = 0.5
    permanent_after: int = 2
    seed: int = 0
    consensus_bytes_per_rank: int = 1

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.suspicion_multiplier < 1:
            raise ValueError("suspicion_multiplier must be >= 1")
        if not 0.0 <= self.suspicion_jitter <= 1.0:
            raise ValueError("suspicion_jitter must lie in [0, 1]")
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError("quorum must lie in (0, 1]")
        if self.permanent_after < 1:
            raise ValueError("permanent_after must be >= 1")


@dataclass(frozen=True)
class RankFailureEvidence:
    """One observed failure of one rank, extracted from a failed attempt."""

    rank: int
    #: "node-loss" (explicit RankLost / injected loss event),
    #: "process-death" (rank OS process died without reporting),
    #: "crash" (transient injected crash)
    kind: str
    t: float = 0.0
    detail: str = ""

    @property
    def directly_permanent(self) -> bool:
        return self.kind in ("node-loss", "process-death")


def evidence_from_failure(exc: BaseException) -> tuple[RankFailureEvidence, ...]:
    """Extract per-rank failure evidence from a chunk failure.

    Understands :class:`~repro.simmpi.launcher.SpmdError` (per-rank
    exceptions plus fault events in the attached stats), bare
    :class:`RankCrash`/:class:`RankLost`, and returns evidence sorted by
    rank.  Survivor-side ``DeadlockError``s are *not* evidence — they are
    the wake-up of the abort broadcast, not a failure of that rank.
    """
    from repro.simmpi.launcher import SpmdError

    by_rank: dict[int, RankFailureEvidence] = {}

    def _add(rank: int, kind: str, t: float, detail: str) -> None:
        prev = by_rank.get(rank)
        # strongest evidence wins: node-loss > process-death > crash
        order = {"node-loss": 2, "process-death": 1, "crash": 0}
        if prev is None or order[kind] > order[prev.kind]:
            by_rank[rank] = RankFailureEvidence(rank, kind, t, detail)

    if isinstance(exc, SpmdError):
        # logical death times, where the victim managed to report them
        death_t: dict[int, float] = {}
        for s in exc.stats or ():
            for ev in s.fault_events:
                if ev.kind in ("crash", "node-loss"):
                    death_t[ev.rank] = max(death_t.get(ev.rank, 0.0), ev.t)
        for rank, e in exc.exceptions.items():
            if rank < 0:
                continue
            t = death_t.get(rank, 0.0)
            if isinstance(e, RankLost):
                _add(rank, "node-loss", t, str(e))
            elif isinstance(e, RankCrash):
                _add(rank, "crash", t, str(e))
            elif isinstance(e, ChildProcessError):
                # the rank's OS process died without reporting: on the
                # process backend this is what a node loss looks like
                _add(rank, "process-death", t, str(e))
        # a SIGKILLed process-backend victim reports nothing, but its
        # injected loss may still be recorded in surviving ranks' stats
        for s in exc.stats or ():
            for ev in s.fault_events:
                if ev.kind == "node-loss":
                    _add(ev.rank, "node-loss", ev.t, ev.detail)
    elif isinstance(exc, RankLost):
        _add(exc.rank, "node-loss", 0.0, str(exc))
    elif isinstance(exc, RankCrash):
        _add(exc.rank, "crash", 0.0, str(exc))
    return tuple(by_rank[r] for r in sorted(by_rank))


@dataclass(frozen=True)
class MembershipDecision:
    """The agreed outcome of one detection round.

    All times are logical seconds on the failed attempt's clock.  The
    ``overhead`` (consensus completion minus failure time) is what the
    resilient driver charges to the makespan for having *detected* the
    loss — rebuild and migration costs are charged separately.
    """

    epoch: int
    permanent: tuple[int, ...]
    transient: tuple[int, ...]
    t_fail: float
    #: per lost rank: logical time the survivor quorum was reached
    declared_at: dict[int, float]
    #: logical completion time of the survivors' agreement allreduce
    consensus_at: float
    nsurvivors: int
    quorum_votes: int

    @property
    def lost(self) -> tuple[int, ...]:
        return tuple(sorted(set(self.permanent) | set(self.transient)))

    @property
    def overhead(self) -> float:
        return max(0.0, self.consensus_at - self.t_fail)


class FailureDetector:
    """Classify failed ranks and charge a deterministic detection timeline.

    One detector serves one resilient run: it keeps the per-rank crash
    history (for the flapping-node escalation) and the membership epoch
    used to seed the per-link suspicion jitter.
    """

    def __init__(
        self,
        nranks: int,
        config: MembershipConfig | None = None,
        machine: MachineModel | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.config = config or MembershipConfig()
        self.machine = machine or MachineModel()
        self.crash_counts: dict[int, int] = {}
        self.epoch = 0

    # ---- classification --------------------------------------------------
    def classify(
        self, evidence: tuple[RankFailureEvidence, ...]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(permanent, transient)`` rank tuples for this evidence set.

        Updates the crash history: a rank reaching ``permanent_after``
        observed crashes is escalated to permanent even without direct
        node-loss evidence.
        """
        permanent: set[int] = set()
        transient: set[int] = set()
        for ev in evidence:
            if ev.directly_permanent:
                permanent.add(ev.rank)
                continue
            count = self.crash_counts.get(ev.rank, 0) + 1
            self.crash_counts[ev.rank] = count
            if count >= self.config.permanent_after:
                logger.warning(
                    "rank %d crashed %d time(s) — escalating to permanent "
                    "loss (flapping node)", ev.rank, count,
                )
                permanent.add(ev.rank)
            else:
                transient.add(ev.rank)
        return tuple(sorted(permanent)), tuple(sorted(transient - permanent))

    # ---- deterministic detection timeline --------------------------------
    def suspicion_time(self, observer: int, lost: int, t_fail: float) -> float:
        """Logical time ``observer`` suspects ``lost``, given death at
        ``t_fail``: the last heartbeat it saw, plus the suspicion timeout
        with this link's seeded jitter."""
        cfg = self.config
        period = cfg.heartbeat_period
        last_beat = (t_fail // period) * period
        u = jitter_unit(cfg.seed, self.epoch + 1, observer, lost, 0)
        timeout = cfg.suspicion_multiplier * period * (
            1.0 + cfg.suspicion_jitter * u
        )
        return last_beat + timeout

    def decide(
        self, evidence: tuple[RankFailureEvidence, ...]
    ) -> MembershipDecision:
        """Run one detection round over ``evidence``; bumps the epoch.

        The returned decision carries the full logical timeline:
        per-rank quorum declaration times and the completion time of the
        survivors' agreement allreduce.
        """
        permanent, transient = self.classify(evidence)
        lost = sorted(set(permanent) | set(transient))
        t_fail = max((ev.t for ev in evidence), default=0.0)
        survivors = [r for r in range(self.nranks) if r not in lost]
        nsurv = len(survivors)
        votes = max(1, int(self.config.quorum * nsurv + 1e-12))
        declared_at: dict[int, float] = {}
        for lr in lost:
            times = sorted(
                self.suspicion_time(s, lr, t_fail) for s in survivors
            )
            declared_at[lr] = times[votes - 1] if times else t_fail
        declared = max(declared_at.values(), default=t_fail)
        agree_cost = self.machine.allreduce_time(
            max(1, nsurv),
            self.nranks * self.config.consensus_bytes_per_rank,
        )
        self.epoch += 1
        decision = MembershipDecision(
            epoch=self.epoch,
            permanent=tuple(permanent),
            transient=tuple(transient),
            t_fail=t_fail,
            declared_at=declared_at,
            consensus_at=declared + agree_cost,
            nsurvivors=nsurv,
            quorum_votes=votes,
        )
        logger.info(
            "membership epoch %d: lost=%s (permanent=%s) declared at "
            "t=%.6g, agreed at t=%.6g (overhead %.3g s logical)",
            decision.epoch, decision.lost, decision.permanent,
            declared, decision.consensus_at, decision.overhead,
        )
        return decision


# ---------------------------------------------------------------------------
# rebuild plans
# ---------------------------------------------------------------------------
@dataclass
class SparePool:
    """Capacity accounting of pre-provisioned hot-spare ranks.

    A spare is a standby host that can *adopt* a lost rank's id, keeping
    the communicator size and decomposition unchanged.  On the process
    backend the adopting worker is physically instantiated by the next
    chunk's fork (the launcher forks one process per rank each chunk, so
    provisioning is the fork itself); the pool tracks how many adoptions
    the run is allowed before it must shrink instead.
    """

    size: int
    used: int = 0
    adopted: list[tuple[int, int]] = field(default_factory=list)

    @property
    def available(self) -> int:
        return max(0, self.size - self.used)

    def adopt(self, lost_rank: int) -> int:
        """Consume one spare for ``lost_rank``; returns the spare's id."""
        if self.available <= 0:
            raise RankLossUnrecoverable(
                f"no hot spare left to adopt rank {lost_rank} "
                f"({self.used}/{self.size} used)"
            )
        spare_id = self.size - self.available  # 0-based spare index
        self.used += 1
        self.adopted.append((spare_id, lost_rank))
        return spare_id


def shrink_map(old_size: int, lost: tuple[int, ...]) -> dict[int, int]:
    """Dense old-rank → new-rank map over the survivors (order-preserving)."""
    lost_set = set(lost)
    if len(lost_set) >= old_size:
        raise ValueError(
            f"cannot shrink: all {old_size} rank(s) would be lost"
        )
    mapping: dict[int, int] = {}
    new = 0
    for old in range(old_size):
        if old in lost_set:
            continue
        mapping[old] = new
        new += 1
    return mapping


@dataclass(frozen=True)
class CommRebuild:
    """One communicator reconstruction: how the world continues.

    ``kind == "spare"``: the world keeps ``old_size`` ranks; each lost
    rank id is re-hosted by a spare (``adopted`` maps lost rank →
    spare id) and ``rank_map`` is the identity over survivors.

    ``kind == "shrink"``: the world continues with ``new_size =
    old_size - len(lost)`` ranks; ``rank_map`` maps every survivor's old
    rank to its dense new rank.
    """

    kind: str
    old_size: int
    new_size: int
    lost: tuple[int, ...]
    survivors: tuple[int, ...]
    rank_map: dict[int, int]
    adopted: dict[int, int] = field(default_factory=dict)

    def describe(self) -> str:
        if self.kind == "spare":
            pairs = ", ".join(
                f"rank {lr}<-spare {sp}" for lr, sp in sorted(self.adopted.items())
            )
            return f"spare adoption ({pairs}); size stays {self.old_size}"
        return (
            f"shrink {self.old_size}->{self.new_size} "
            f"(lost {list(self.lost)})"
        )


class MembershipView:
    """Epoch-counted membership of one resilient run."""

    def __init__(self, nranks: int, spares: int = 0) -> None:
        self.nranks = nranks
        self.epoch = 0
        self.pool = SparePool(size=spares)
        self.rebuilds: list[CommRebuild] = []

    def rebuild(self, lost: tuple[int, ...], policy: str) -> CommRebuild:
        """Plan the communicator reconstruction for ``lost`` ranks.

        ``policy`` is ``"spare"`` (falls back to shrink when the pool
        runs dry) or ``"shrink"``.  Raises
        :class:`RankLossUnrecoverable` when no viable world remains.
        """
        if policy not in ("spare", "shrink"):
            raise ValueError(f"unknown rank-loss policy {policy!r}")
        lost = tuple(sorted(set(lost)))
        if not lost:
            raise ValueError("rebuild called without lost ranks")
        survivors = tuple(
            r for r in range(self.nranks) if r not in set(lost)
        )
        if not survivors:
            raise RankLossUnrecoverable(
                f"all {self.nranks} rank(s) lost — nothing to rebuild on"
            )
        if policy == "spare" and self.pool.available >= len(lost):
            adopted = {lr: self.pool.adopt(lr) for lr in lost}
            plan = CommRebuild(
                kind="spare",
                old_size=self.nranks,
                new_size=self.nranks,
                lost=lost,
                survivors=survivors,
                rank_map={r: r for r in survivors},
                adopted=adopted,
            )
        else:
            if policy == "spare":
                logger.warning(
                    "spare pool exhausted (%d/%d used, %d lost) — "
                    "falling back to shrink",
                    self.pool.used, self.pool.size, len(lost),
                )
            plan = CommRebuild(
                kind="shrink",
                old_size=self.nranks,
                new_size=len(survivors),
                lost=lost,
                survivors=survivors,
                rank_map=shrink_map(self.nranks, lost),
            )
            self.nranks = plan.new_size
        self.epoch += 1
        self.rebuilds.append(plan)
        logger.info(
            "membership epoch %d: %s", self.epoch, plan.describe()
        )
        return plan
