"""A simulated distributed-memory message-passing substrate.

The paper evaluates on 1024 MPI ranks of Tianhe-2; neither the machine nor
mpi4py is available here, so this package provides the substitute described
in DESIGN.md: an SPMD runtime where every rank is a Python thread (or,
with ``run_spmd(..., backend="process")``, an OS process communicating
over shared-memory rings — see :mod:`repro.simmpi.shm`) with a
private mailbox, tag-matched point-to-point messages, sub-communicators and
collectives — plus a deterministic **logical clock** driven by an
alpha-beta machine model.  All reported "times" come from the logical
clock, never from wall-clock, so results are reproducible and independent
of the host machine; the communication *structure* (message counts, bytes,
synchronisations) is exactly that of the real algorithms.

Public API
----------
:func:`run_spmd`
    Launch ``fn(comm, *args)`` on ``nranks`` simulated ranks.
:class:`SimComm`
    The per-rank communicator handle (p2p, collectives, sub-communicators).
:class:`MachineModel`
    The alpha-beta-compute cost model.
:class:`CommStats`
    Per-rank communication/computation accounting.
"""
from repro.simmpi.machine import MachineModel, TIANHE2_LIKE, LAPTOP_LIKE
from repro.simmpi.stats import CommStats
from repro.simmpi.network import DeadlockError, Message, MessageLost
from repro.simmpi.transport import LinkHealth, TransportConfig
from repro.simmpi.faults import (
    CorruptedMessage,
    CrashSpec,
    DegradedWindow,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeLoss,
    RankCrash,
    RankLost,
    Straggler,
)
from repro.simmpi.comm import SimComm, Request
from repro.simmpi.launcher import BACKENDS, run_spmd, SpmdResult, SpmdError
from repro.simmpi.membership import (
    CommRebuild,
    FailureDetector,
    MembershipConfig,
    MembershipDecision,
    MembershipView,
    RankFailureEvidence,
    RankLossUnrecoverable,
    SparePool,
    evidence_from_failure,
    shrink_map,
)

__all__ = [
    "BACKENDS",
    "run_spmd",
    "SpmdResult",
    "SpmdError",
    "SimComm",
    "Request",
    "MachineModel",
    "TIANHE2_LIKE",
    "LAPTOP_LIKE",
    "CommStats",
    "DeadlockError",
    "Message",
    "MessageLost",
    "TransportConfig",
    "LinkHealth",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "CrashSpec",
    "LinkFault",
    "DegradedWindow",
    "Straggler",
    "NodeLoss",
    "RankCrash",
    "RankLost",
    "CorruptedMessage",
    "CommRebuild",
    "FailureDetector",
    "MembershipConfig",
    "MembershipDecision",
    "MembershipView",
    "RankFailureEvidence",
    "RankLossUnrecoverable",
    "SparePool",
    "evidence_from_failure",
    "shrink_map",
]
