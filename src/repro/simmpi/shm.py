"""Shared-memory transport: the process backend of the simulated cluster.

``run_spmd(..., backend="process")`` launches one OS process per rank, so
rank compute genuinely runs in parallel (no GIL serialization).  This
module provides the world object behind that backend: :class:`ShmWorld`
duck-types :class:`~repro.simmpi.comm.SimWorld` — per-rank mailboxes with
``deliver``/``collect``, ``group()`` collectives, a fail-fast ``abort`` —
but moves every payload through preallocated per-link ring buffers in one
``multiprocessing.shared_memory`` segment instead of in-process queues.

Design notes
------------
* **Per-link byte rings.**  Every directed pair ``(src, dst)`` owns a ring
  (monotonic 64-bit head/tail counters + data area).  A send packs a fixed
  record header plus the raw payload bytes into the ring; the receiver
  unpacks into a freshly allocated array.  One copy on each side, no
  pickling for plain ndarrays; everything else (collective contributions,
  object payloads) travels pickled.
* **Streaming writes.**  A message larger than the ring is written in
  chunks as the reader drains; while blocked on ring space a sender also
  drains its *own* incoming rings into its local pending lists, so the
  buffered-send semantics of the thread backend (send-send-then-recv-recv
  never deadlocks) carry over to bounded rings.
* **One global condition variable.**  All ring head/tail updates happen
  under a single fork-inherited ``multiprocessing.Condition``; waiters use
  short timed waits and also poll the abort flag, so a crashed peer never
  leaves a rank blocked forever.
* **Root-based collectives.**  :class:`ShmGroupContext` mirrors the thread
  backend's rendezvous semantics: members ship ``(generation,
  contribution, clock, duration)`` to the group's first rank over reserved
  negative tags; the root combines contributions keyed by world rank (the
  same sorted-rank order as the thread backend) and broadcasts ``(result,
  t_end)`` with ``t_end = max(clocks) + max(durations)``.  Logical clocks
  are therefore bit-identical between backends.

Fault injection stays on the thread backend (deterministic in-process
delivery) with one exception: *node-loss-only* plans, whose victims
SIGKILL their own OS process (see ``SimComm._die_hard``) — the genuine
kill-the-process failure mode the membership layer
(:mod:`repro.simmpi.membership`) detects and recovers from.
:func:`~repro.simmpi.launcher.run_spmd` enforces the restriction.

Segment lifetime: segments are *named* (``repro-shm-<pid>-<token>-*``)
and tracked in a live registry with an atexit hook, so clean exits,
exceptions and normal interpreter shutdown all unlink them; a launcher
that dies by SIGKILL leaves segments that the next launch (or the serve
supervisor) reclaims via :func:`sweep_stale_segments`.
"""
from __future__ import annotations

import atexit
import os
import pickle
import re
import secrets
import struct
import time
import zlib
from collections import deque
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any

import numpy as np

from repro.simmpi.machine import MachineModel
from repro.simmpi.network import DeadlockError, Message, _summarize_pending
from repro.simmpi.transport import TransportConfig

#: payload encodings of one ring record
KIND_ARRAY = 0   # raw ndarray bytes (dtype/shape in the header)
KIND_PICKLE = 1  # pickled Python object (collectives, exotic payloads)

#: per-record header: kind, source, tag, seq, arrival, has_checksum,
#: checksum, ndim, dtype string, shape (4 axes max), payload nbytes
_REC = struct.Struct("<BiqQdBIB16s4qQ")

#: per-ring header: monotonic bytes-written (head) and bytes-read (tail)
_RING_HDR = 16

#: control segment: abort flag byte + reason length + reason text
_CTRL_REASON_OFF = 8
_CTRL_SIZE = 8 + 4 + 1024

#: default ring capacity per directed link (clamped so huge worlds do not
#: reserve quadratic memory; messages beyond capacity stream in chunks)
DEFAULT_LINK_BYTES = 2 * 1024 * 1024


def default_link_bytes(nranks: int) -> int:
    """Ring capacity per directed link, bounded to ~64 MB per world."""
    budget = (64 * 1024 * 1024) // max(1, nranks * nranks)
    return max(256 * 1024, min(DEFAULT_LINK_BYTES, budget))


# ---------------------------------------------------------------------------
# segment lifetime: named segments, a live registry, and a stale sweep
# ---------------------------------------------------------------------------
#: all segments carry this prefix plus the creating pid, so a sweep can
#: tell "owned by a live launcher" from "leaked by a dead one"
SEGMENT_PREFIX = "repro-shm"

#: worlds created by this process whose segments are not yet unlinked;
#: the atexit hook below destroys whatever a crashing caller left behind
_live_worlds: set["ShmWorld"] = set()


def _destroy_live_worlds() -> None:
    for world in list(_live_worlds):
        world.destroy()


atexit.register(_destroy_live_worlds)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def live_segment_names(shm_dir: str = "/dev/shm") -> list[str]:
    """The repro-owned segment files currently present (diagnostics)."""
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(SEGMENT_PREFIX + "-"))


def sweep_stale_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink segments whose creating process is dead; returns the names.

    The guaranteed-cleanup backstop: ``ShmWorld.destroy`` handles the
    clean path and the atexit hook handles an exiting parent, but a
    SIGKILLed launcher can still leave segments behind — any later
    launcher (or the serve supervisor's reap path) calls this to reclaim
    them.  Segments of *live* pids are never touched.
    """
    removed: list[str] = []
    pat = re.compile(rf"^{re.escape(SEGMENT_PREFIX)}-(\d+)-")
    for name in live_segment_names(shm_dir):
        m = pat.match(name)
        if m is None or _pid_alive(int(m.group(1))):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
            removed.append(name)
        except OSError:
            pass
    return removed


def _encode_payload(payload: Any) -> tuple[int, int, bytes, tuple[int, ...], Any]:
    """(kind, ndim, dtype bytes, shape, flat byte buffer) of a payload."""
    if (
        isinstance(payload, np.ndarray)
        and payload.ndim <= 4
        and not payload.dtype.hasobject
    ):
        arr = np.ascontiguousarray(payload)
        body = arr.reshape(-1).view(np.uint8) if arr.nbytes else b""
        return KIND_ARRAY, arr.ndim, arr.dtype.str.encode(), arr.shape, body
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return KIND_PICKLE, 0, b"", (), body


class _RecordReader:
    """Per-source reassembly state of one incoming ring (partial records)."""

    __slots__ = ("hdr", "meta", "out", "view", "filled")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hdr = bytearray()
        self.meta = None       # unpacked header tuple once complete
        self.out = None        # ndarray (KIND_ARRAY) or bytearray (KIND_PICKLE)
        self.view = None       # flat uint8 view of ``out``
        self.filled = 0

    def begin_payload(self) -> None:
        """Allocate the destination buffer from the completed header."""
        kind, _src, _tag, _seq, _arr, _hc, _ck, ndim, dtype_b, *rest = self.meta
        shape = tuple(rest[:4])[:ndim]
        nbytes = rest[4]
        if kind == KIND_ARRAY:
            dtype = np.dtype(dtype_b.rstrip(b"\x00").decode())
            self.out = np.empty(shape, dtype=dtype)
            self.view = (
                memoryview(self.out.reshape(-1).view(np.uint8))
                if nbytes
                else memoryview(b"")
            )
        else:
            self.out = bytearray(nbytes)
            self.view = memoryview(self.out)
        self.filled = 0

    def finish(self, dest: int) -> Message:
        """Build the Message of a fully reassembled record and reset."""
        kind, src, tag, seq, arrival, has_ck, ck, *_ = self.meta
        payload = self.out if kind == KIND_ARRAY else pickle.loads(bytes(self.out))
        msg = Message(
            source=src,
            dest=dest,
            tag=tag,
            payload=payload,
            arrival=arrival,
            checksum=ck if has_ck else None,
            seq=seq,
        )
        self.reset()
        return msg


class ShmMailbox:
    """Per-rank mailbox view over the shared rings.

    ``deliver`` runs in the *sender's* process and packs into the ring for
    link ``(source, dest)``; ``collect`` runs in the owning rank's process
    and drains all of its incoming rings into local pending lists, then
    matches FIFO per ``(source, tag)`` — the same matching rule as the
    thread backend's :class:`~repro.simmpi.network.Mailbox`.
    """

    def __init__(self, world: "ShmWorld", rank: int) -> None:
        self.rank = rank
        self._world = world
        self._pending: dict[tuple[int, int], deque[Message]] = {}
        self._readers = {
            src: _RecordReader()
            for src in range(world.nranks)
            if src != rank
        }

    # ---- sender side -------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Pack ``msg`` into the ring of link (msg.source -> this rank)."""
        kind, ndim, dtype_b, shape, body = _encode_payload(msg.payload)
        shape4 = tuple(shape) + (0,) * (4 - len(shape))
        nbytes = body.nbytes if isinstance(body, np.ndarray) else len(body)
        header = _REC.pack(
            kind,
            msg.source,
            msg.tag,
            msg.seq,
            msg.arrival,
            msg.checksum is not None,
            msg.checksum or 0,
            ndim,
            dtype_b,
            *shape4,
            nbytes,
        )
        self._world._stream_write(msg.source, self.rank, (header, body))

    # ---- receiver side -----------------------------------------------------
    def _drain_locked(self) -> int:
        """Move complete records from the rings to pending (lock held)."""
        w = self._world
        completed = 0
        for src, reader in self._readers.items():
            while True:
                if reader.meta is None:
                    got = w._ring_read(src, self.rank, _REC.size - len(reader.hdr))
                    if got:
                        reader.hdr += got
                        w.cond.notify_all()  # freed ring space for the writer
                    if len(reader.hdr) < _REC.size:
                        break
                    reader.meta = _REC.unpack(bytes(reader.hdr))
                    reader.begin_payload()
                need = len(reader.view) - reader.filled
                if need:
                    n = w._ring_read_into(
                        src, self.rank, reader.view[reader.filled:]
                    )
                    if n:
                        reader.filled += n
                        w.cond.notify_all()
                    if reader.filled < len(reader.view):
                        break
                msg = reader.finish(self.rank)
                self._pending.setdefault((msg.source, msg.tag), deque()).append(msg)
                completed += 1
        return completed

    def collect(self, source: int, tag: int, timeout: float) -> Message:
        """Block until the first message matching ``(source, tag)`` arrives."""
        w = self._world
        key = (source, tag)
        deadline = None
        with w.cond:
            while True:
                q = self._pending.get(key)
                if q:
                    return q.popleft()
                if self._drain_locked():
                    continue
                w._check_abort(
                    f"rank {self.rank}: recv(source={source}, tag={tag})"
                )
                if deadline is None:
                    deadline = time.monotonic() + timeout
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {self.rank}: recv(source={source}, tag={tag}) "
                        f"timed out after {timeout}s; mailbox holds "
                        f"{self.pending_summary()}"
                    )
                # timed wait: peers notify on every ring write, but a
                # SIGKILLed peer cannot, so never sleep unbounded
                w.cond.wait(min(remaining, 0.05))

    def try_collect(self, source: int, tag: int) -> Message | None:
        """Nonblocking :meth:`collect`: drain the incoming rings once and
        pop the first match, or return ``None``.

        Draining here matters beyond the poll itself: pulling completed
        records out of the rings frees space, so a peer blocked in
        ``_stream_write`` on a full link can make progress even while this
        rank is busy computing between polls.
        """
        w = self._world
        key = (source, tag)
        with w.cond:
            q = self._pending.get(key)
            if q:
                return q.popleft()
            self._drain_locked()
            q = self._pending.get(key)
            if q:
                return q.popleft()
        return None

    def wait_any(self, timeout: float) -> None:
        """Block until a ring write (or wake) notifies, at most ``timeout``
        seconds; drains once before sleeping so a ready record is never
        slept on.  Spurious wakeups are fine — callers re-poll."""
        w = self._world
        with w.cond:
            if self._drain_locked():
                return
            w.cond.wait(timeout)

    def wake(self) -> None:
        """Wake blocked collectors (fail-fast abort)."""
        with self._world.cond:
            self._world.cond.notify_all()

    def pending_count(self) -> int:
        with self._world.cond:
            return sum(len(q) for q in self._pending.values())

    def pending_summary(self) -> str:
        """Local pending messages plus undrained ring bytes (diagnostics)."""
        local = _summarize_pending(
            [m for q in self._pending.values() for m in q]
        )
        residue = []
        for src in range(self._world.nranks):
            if src == self.rank:
                continue
            n = self._world._ring_used(src, self.rank)
            if n:
                residue.append(f"{n}B from rank {src}")
        if residue:
            return f"{local}; undrained ring bytes: {', '.join(residue)}"
        return local


class ShmGroupContext:
    """Root-based rendezvous collective over the shared rings.

    Same ``execute`` signature and result semantics as the thread
    backend's :class:`~repro.simmpi.collectives.GroupContext`.
    """

    def __init__(self, world: "ShmWorld", ranks: tuple[int, ...]) -> None:
        self.world = world
        self.ranks = ranks
        self.root = ranks[0]
        # reserved negative tag space: app tags are non-negative
        digest = zlib.crc32(("group:" + ",".join(map(str, ranks))).encode())
        self.systag = -(1 + digest)

    def _mismatch(self, rank: int, got: int, want: int) -> DeadlockError:
        return DeadlockError(
            f"collective generation mismatch on group {self.ranks}: "
            f"rank {rank} at generation {got}, expected {want} — "
            "members issued different collective sequences"
        )

    def execute(
        self,
        generation: int,
        rank: int,
        clock: float,
        contribution: Any,
        combine,
        duration: float,
        timeout: float,
    ) -> tuple[Any, float]:
        w = self.world
        inbox = w.mailboxes[rank]
        if rank != self.root:
            w.mailboxes[self.root].deliver(Message(
                rank, self.root, self.systag,
                (generation, contribution, clock, duration), 0.0,
            ))
            msg = inbox.collect(self.root, self.systag, timeout)
            gen, result, t_end = msg.payload
            if gen != generation:
                raise self._mismatch(self.root, gen, generation)
            return result, t_end
        contribs = {rank: contribution}
        clocks = {rank: clock}
        durations = {rank: duration}
        for r in self.ranks[1:]:
            msg = inbox.collect(r, self.systag, timeout)
            gen, c, ck, d = msg.payload
            if gen != generation:
                raise self._mismatch(r, gen, generation)
            contribs[r] = c
            clocks[r] = ck
            durations[r] = d
        result = combine(contribs)
        t_end = max(clocks.values()) + max(durations.values())
        for r in self.ranks[1:]:
            w.mailboxes[r].deliver(Message(
                rank, r, self.systag, (generation, result, t_end), 0.0,
            ))
        return result, t_end


class ShmWorld:
    """Shared state of one process-backed cluster run.

    Created (and eventually unlinked) by the parent; child processes get
    it through ``fork`` inheritance and call :meth:`attach` with their
    rank.  Duck-types :class:`~repro.simmpi.comm.SimWorld` for
    :class:`~repro.simmpi.comm.SimComm`.
    """

    #: deliver() copies payload bytes into the ring before returning, so
    #: SimComm may skip its defensive payload copy (see ``_as_payload``)
    copies_on_deliver = True

    #: a node-loss fault on this backend kills the victim's OS process
    #: outright (SIGKILL) instead of raising — the real failure mode the
    #: membership layer exists to detect (see ``SimComm._die_hard``)
    hard_kill_on_node_loss = True

    def __init__(
        self,
        nranks: int,
        machine: MachineModel,
        timeout: float = 120.0,
        verify_checksums: bool = False,
        transport: TransportConfig | None = None,
        link_bytes: int | None = None,
        ctx=None,
    ) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.machine = machine
        self.timeout = timeout
        self.injector = None  # fault injection is thread-backend only
        self.verify_checksums = verify_checksums
        self.transport = transport
        self.link_bytes = int(link_bytes or default_link_bytes(nranks))
        self.ctx = ctx if ctx is not None else get_context("fork")
        self.cond = self.ctx.Condition()
        self.rank = -1  # parent; children set this in attach()
        stride = _RING_HDR + self.link_bytes
        self._stride = stride
        # Named segments: the creating pid in the name lets a stale sweep
        # identify leaked segments; the live registry plus its atexit hook
        # guarantees cleanup even when the caller never reaches destroy().
        base = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._rings = self._ctrl = None
        try:
            # POSIX shared memory is zero-filled on creation, which is
            # exactly the initial ring state (head == tail == 0, abort
            # flag clear)
            self._rings = SharedMemory(
                name=f"{base}-rings", create=True,
                size=nranks * nranks * stride,
            )
            self._ctrl = SharedMemory(
                name=f"{base}-ctrl", create=True, size=_CTRL_SIZE
            )
        except BaseException:
            # partial construction (e.g. the ctrl segment failed after the
            # rings were created) must not leak the rings segment
            self.destroy()
            raise
        _live_worlds.add(self)
        self.mailboxes = [ShmMailbox(self, r) for r in range(nranks)]
        self._groups: dict[tuple[int, ...], ShmGroupContext] = {}

    # ---- lifecycle ---------------------------------------------------------
    def attach(self, rank: int) -> None:
        """Adopt ``rank`` in a child process (after fork)."""
        self.rank = rank

    def destroy(self) -> None:
        """Release and unlink the shared segments (idempotent).

        Runs on the clean parent-after-join path, from the launcher's
        ``finally``, and — for callers that never got there — from the
        module's atexit hook.  Forked children never run this: they leave
        through ``os._exit`` (multiprocessing's bootstrap), which skips
        atexit, so only the creating parent unlinks.
        """
        _live_worlds.discard(self)
        for shm in (self._rings, self._ctrl):
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._rings = self._ctrl = None

    # ---- SimWorld surface --------------------------------------------------
    def group(self, ranks: tuple[int, ...]) -> ShmGroupContext:
        ctx = self._groups.get(ranks)
        if ctx is None:
            ctx = self._groups[ranks] = ShmGroupContext(self, ranks)
        return ctx

    def abort(self, reason: str) -> None:
        """Fail fast: set the shared abort flag and wake every waiter."""
        buf = self._ctrl.buf
        with self.cond:
            if not buf[0]:
                data = reason.encode(errors="replace")[: _CTRL_SIZE - 12]
                struct.pack_into("<I", buf, _CTRL_REASON_OFF, len(data))
                buf[12 : 12 + len(data)] = data
                buf[0] = 1
            self.cond.notify_all()

    def abort_reason(self) -> str | None:
        buf = self._ctrl.buf
        if not buf[0]:
            return None
        (n,) = struct.unpack_from("<I", buf, _CTRL_REASON_OFF)
        return bytes(buf[12 : 12 + n]).decode(errors="replace")

    def _check_abort(self, what: str) -> None:
        if self._ctrl.buf[0]:
            raise DeadlockError(f"{what} aborted — {self.abort_reason()}")

    # ---- ring primitives (caller holds ``self.cond``) ----------------------
    def _ring_off(self, src: int, dst: int) -> int:
        return (src * self.nranks + dst) * self._stride

    def _counters(self, off: int) -> tuple[int, int]:
        return struct.unpack_from("<QQ", self._rings.buf, off)

    def _ring_used(self, src: int, dst: int) -> int:
        head, tail = self._counters(self._ring_off(src, dst))
        return head - tail

    def _ring_write(self, src: int, dst: int, mv: memoryview) -> int:
        """Copy up to ``len(mv)`` bytes into the ring; returns bytes written."""
        off = self._ring_off(src, dst)
        head, tail = self._counters(off)
        cap = self.link_bytes
        n = min(len(mv), cap - (head - tail))
        if n <= 0:
            return 0
        buf = self._rings.buf
        data0 = off + _RING_HDR
        pos = head % cap
        first = min(n, cap - pos)
        buf[data0 + pos : data0 + pos + first] = mv[:first]
        if n > first:
            buf[data0 : data0 + n - first] = mv[first:n]
        struct.pack_into("<Q", buf, off, head + n)
        return n

    def _ring_read_into(self, src: int, dst: int, out: memoryview) -> int:
        """Copy up to ``len(out)`` available bytes out of the ring."""
        off = self._ring_off(src, dst)
        head, tail = self._counters(off)
        cap = self.link_bytes
        n = min(len(out), head - tail)
        if n <= 0:
            return 0
        buf = self._rings.buf
        data0 = off + _RING_HDR
        pos = tail % cap
        first = min(n, cap - pos)
        out[:first] = buf[data0 + pos : data0 + pos + first]
        if n > first:
            out[first:n] = buf[data0 : data0 + n - first]
        struct.pack_into("<Q", buf, off + 8, tail + n)
        return n

    def _ring_read(self, src: int, dst: int, nmax: int) -> bytes:
        out = bytearray(nmax)
        n = self._ring_read_into(src, dst, memoryview(out))
        return bytes(out[:n])

    def _stream_write(self, src: int, dst: int, pieces) -> None:
        """Write all ``pieces`` into link (src, dst), streaming on full rings.

        While blocked on ring space the caller drains its *own* incoming
        rings (into its pending lists), which is what keeps mutual bulk
        sends deadlock-free on bounded rings.
        """
        deadline = time.monotonic() + self.timeout
        with self.cond:
            for piece in pieces:
                mv = memoryview(piece)
                if mv.nbytes and mv.ndim != 1:
                    mv = mv.cast("B")
                pos = 0
                total = mv.nbytes
                while pos < total:
                    wrote = self._ring_write(src, dst, mv[pos:])
                    if wrote:
                        pos += wrote
                        self.cond.notify_all()
                        continue
                    self._check_abort(f"rank {src}: send to rank {dst}")
                    if self.rank >= 0 and self.mailboxes[self.rank]._drain_locked():
                        continue  # made room on our side; the peer may now progress
                    if time.monotonic() > deadline:
                        raise DeadlockError(
                            f"rank {src}: send to rank {dst} stalled for "
                            f"{self.timeout}s — ring full "
                            f"({self._ring_used(src, dst)}B undrained of "
                            f"{self.link_bytes}B) and the receiver is not "
                            "collecting"
                        )
                    self.cond.wait(0.05)
