"""Alpha-beta machine model used by the logical clocks.

The standard two-parameter point-to-point cost ``T(n) = alpha + beta * n``
(latency + inverse bandwidth) plus a per-point compute rate.  Collective
costs are derived from these in :mod:`repro.simmpi.collectives` using the
algorithms of Thakur, Rabenseifner & Gropp (2005), the paper's reference
[19] for optimal collectives.
"""
from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated cluster.

    Parameters
    ----------
    alpha:
        Per-message latency [s].
    beta:
        Per-byte transfer time [s/B] (inverse bandwidth).
    gamma:
        Per-byte reduction-compute time [s/B] for collectives with
        arithmetic (allreduce).
    seconds_per_point:
        Baseline cost of one stencil point-update [s]; the dynamical-core
        layer multiplies this by a per-operator weight (see
        :mod:`repro.perf.costs`).
    """

    alpha: float = 2.0e-6
    beta: float = 1.0e-9
    gamma: float = 0.5e-9
    seconds_per_point: float = 2.0e-8
    #: allreduce algorithm: "ring" (bandwidth-optimal, Rabenseifner) or
    #: "recursive_doubling" (latency-optimal for short messages) — the
    #: trade-off analyzed by Thakur, Rabenseifner & Gropp (2005), the
    #: paper's reference [19]
    allreduce_algorithm: str = "ring"

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.gamma, self.seconds_per_point) < 0:
            raise ValueError("machine parameters must be non-negative")
        if self.allreduce_algorithm not in ("ring", "recursive_doubling"):
            raise ValueError(
                f"unknown allreduce algorithm {self.allreduce_algorithm!r}"
            )

    # ---- point-to-point --------------------------------------------------
    def p2p_time(self, nbytes: int) -> float:
        """Transfer time of one ``nbytes`` message."""
        return self.alpha + self.beta * nbytes

    # ---- collectives (Thakur et al. 2005 cost formulas) --------------------
    def allreduce_time(self, q: int, nbytes: int) -> float:
        """Allreduce over ``q`` ranks of ``nbytes``.

        Ring (Rabenseifner): ``2 (q-1) alpha + 2 (q-1)/q n beta +
        (q-1)/q n gamma`` — bandwidth-optimal, matching the data-movement
        lower bound Theorem 4.2 cites.  Recursive doubling:
        ``ceil(log2 q) (alpha + n beta + n gamma)`` — latency-optimal,
        preferable for short messages.
        """
        if q <= 1:
            return 0.0
        if self.allreduce_algorithm == "recursive_doubling":
            return math.ceil(math.log2(q)) * (
                self.alpha + nbytes * (self.beta + self.gamma)
            )
        return (
            2.0 * (q - 1) * self.alpha
            + 2.0 * (q - 1) / q * nbytes * self.beta
            + (q - 1) / q * nbytes * self.gamma
        )

    def allreduce_crossover_bytes(self, q: int) -> float:
        """Message size at which ring and recursive doubling cost the same.

        Below this size recursive doubling wins (latency-bound); above it
        the ring wins (bandwidth-bound) — the [19] selection rule.
        """
        if q <= 2:
            return 0.0
        lg = math.ceil(math.log2(q))
        alpha_gap = (2.0 * (q - 1) - lg) * self.alpha
        beta_gap = (lg - 2.0 * (q - 1) / q) * self.beta + (
            lg - (q - 1) / q
        ) * self.gamma
        if beta_gap <= 0:
            return float("inf")
        return alpha_gap / beta_gap

    def reduce_time(self, q: int, nbytes: int) -> float:
        """Binomial-tree reduce."""
        if q <= 1:
            return 0.0
        return math.ceil(math.log2(q)) * (
            self.alpha + nbytes * (self.beta + self.gamma)
        )

    def bcast_time(self, q: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        if q <= 1:
            return 0.0
        return math.ceil(math.log2(q)) * (self.alpha + nbytes * self.beta)

    def allgather_time(self, q: int, nbytes_each: int) -> float:
        """Ring allgather; every rank contributes ``nbytes_each``."""
        if q <= 1:
            return 0.0
        return (q - 1) * (self.alpha + nbytes_each * self.beta)

    def alltoall_time(self, q: int, nbytes_each_pair: int) -> float:
        """Pairwise-exchange all-to-all."""
        if q <= 1:
            return 0.0
        return (q - 1) * (self.alpha + nbytes_each_pair * self.beta)

    def scan_time(self, q: int, nbytes: int) -> float:
        """Linear-pipeline (ex)scan."""
        if q <= 1:
            return 0.0
        return (q - 1) * (self.alpha + nbytes * (self.beta + self.gamma))

    def barrier_time(self, q: int) -> float:
        """Dissemination barrier."""
        if q <= 1:
            return 0.0
        return math.ceil(math.log2(q)) * self.alpha


#: Parameters resembling Tianhe-2's TH Express-2 fabric and Ivy Bridge
#: cores running this (memory-bound) finite-difference code:
#: ~2 us latency, ~6 GB/s effective per-rank bandwidth, and a per-point
#: update cost calibrated in :mod:`repro.perf.calibration`.
TIANHE2_LIKE = MachineModel(
    alpha=2.0e-6, beta=1.7e-10, gamma=1.0e-10, seconds_per_point=1.6e-8
)

#: A single multicore box with shared-memory "messages" — used by tests
#: to keep simulated numbers small and by the quickstart example.
LAPTOP_LIKE = MachineModel(
    alpha=5.0e-7, beta=5.0e-11, gamma=5.0e-11, seconds_per_point=5.0e-9
)
