"""Terrain-following sigma vertical coordinate (Phillips 1957).

``sigma = (p - p_t) / p_es`` with ``p_es = p_s - p_t``; ``sigma = 0`` at the
model top and ``sigma = 1`` at the surface.  The dynamical core needs the
mid-level values ``sigma_k`` (where the prognostic variables live), the
interface values ``sigma_{k+1/2}`` (where the vertical velocity
``sigma-dot`` lives) and the layer thicknesses ``Delta sigma_k`` used by the
vertical summation operator ``C`` (Sec. 4.1).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SigmaLevels:
    """Vertical sigma levels.

    Parameters
    ----------
    interfaces:
        Monotonically increasing interface values, shape ``(nz + 1,)``,
        with ``interfaces[0] == 0`` (top) and ``interfaces[-1] == 1``
        (surface).
    """

    interfaces: np.ndarray

    mid: np.ndarray = field(init=False, repr=False, compare=False)
    dsigma: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        iface = np.asarray(self.interfaces, dtype=np.float64)
        if iface.ndim != 1 or iface.size < 2:
            raise ValueError("interfaces must be a 1-D array of >= 2 values")
        if not np.isclose(iface[0], 0.0) or not np.isclose(iface[-1], 1.0):
            raise ValueError("interfaces must run from 0 (top) to 1 (surface)")
        if np.any(np.diff(iface) <= 0):
            raise ValueError("interfaces must be strictly increasing")
        object.__setattr__(self, "interfaces", iface)
        object.__setattr__(self, "mid", 0.5 * (iface[:-1] + iface[1:]))
        object.__setattr__(self, "dsigma", np.diff(iface))

    @property
    def nz(self) -> int:
        """Number of full levels."""
        return self.mid.size

    @classmethod
    def uniform(cls, nz: int) -> "SigmaLevels":
        """``nz`` equally thick layers."""
        return cls(np.linspace(0.0, 1.0, nz + 1))

    @classmethod
    def stretched(cls, nz: int, stretch: float = 2.0) -> "SigmaLevels":
        """Levels refined toward the surface (where the atmosphere is dense).

        ``stretch > 1`` concentrates levels near ``sigma = 1``; this mirrors
        the level placement of production AGCMs.  ``stretch = 1`` is uniform.
        """
        if stretch <= 0:
            raise ValueError("stretch must be positive")
        s = np.linspace(0.0, 1.0, nz + 1)
        return cls(s**(1.0 / stretch))

    def thickness_weights(self) -> np.ndarray:
        """``Delta sigma_k`` as the quadrature weights of the vertical sum.

        These are exactly the weights of the summation
        ``sum_k Delta sigma_k * D(P)_k`` in the fourth component of the
        adaptation function (the operator ``C``).
        """
        return self.dsigma.copy()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SigmaLevels(nz={self.nz})"
