"""Latitude-longitude mesh, vertical coordinate and domain decomposition.

The horizontal mesh is the regular latitude-longitude grid of Section 2.2
(Arakawa C staggering), the vertical coordinate is the terrain-following
sigma coordinate.  :mod:`repro.grid.decomposition` provides the X-Y, Y-Z and
general 3-D block decompositions that Section 4.2 reasons about.
"""
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.grid.decomposition import (
    Decomposition,
    BlockExtent,
    xy_decomposition,
    yz_decomposition,
    best_2d_factorization,
)
from repro.grid.cfl import CflReport, cfl_report, polar_clustering_ratio

__all__ = [
    "LatLonGrid",
    "SigmaLevels",
    "Decomposition",
    "BlockExtent",
    "xy_decomposition",
    "yz_decomposition",
    "best_2d_factorization",
    "CflReport",
    "cfl_report",
    "polar_clustering_ratio",
]
