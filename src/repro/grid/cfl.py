"""CFL and pole-clustering diagnostics of the latitude-longitude mesh.

Section 2.2 motivates the Fourier polar filter: grid lines cluster at the
poles, so the physical zonal spacing ``dx = a * sin(theta) * dlambda``
collapses and an unfiltered explicit scheme would need a prohibitively
small time step.  These helpers quantify that restriction and are used by
the examples and by the tests of the filter's stabilizing effect.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.grid.latlon import LatLonGrid


@dataclass(frozen=True)
class CflReport:
    """Summary of advective/gravity-wave CFL numbers on a mesh."""

    dt: float
    max_wind: float
    gravity_wave_speed: float
    min_dx: float
    max_dx: float
    dy: float
    cfl_zonal_worst: float
    cfl_zonal_equator: float
    cfl_meridional: float

    @property
    def stable_unfiltered(self) -> bool:
        """Whether the worst-case (polar) zonal CFL is below 1."""
        return self.cfl_zonal_worst < 1.0

    @property
    def stable_filtered(self) -> bool:
        """Whether the equatorial zonal and meridional CFL are below 1.

        The polar filter removes the high zonal wavenumbers near the poles,
        so the effective zonal resolution there matches the equator; the
        relevant stability numbers are then the equatorial zonal CFL and the
        meridional CFL.
        """
        return self.cfl_zonal_equator < 1.0 and self.cfl_meridional < 1.0


def polar_clustering_ratio(grid: LatLonGrid) -> float:
    """``max dx / min dx`` over latitude rows — the pole-clustering severity."""
    dx = grid.cell_dx()
    return float(dx.max() / dx.min())


def cfl_report(
    grid: LatLonGrid,
    dt: float,
    max_wind: float = 100.0,
    gravity_wave_speed: float = 300.0,
) -> CflReport:
    """Compute CFL numbers for time step ``dt`` [s].

    ``max_wind`` is the assumed maximum advective wind [m/s];
    ``gravity_wave_speed`` the fastest gravity-wave phase speed [m/s].  The
    signal speed used is their sum (worst case).
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    speed = max_wind + gravity_wave_speed
    dx = grid.cell_dx()
    dy = grid.cell_dy()
    return CflReport(
        dt=dt,
        max_wind=max_wind,
        gravity_wave_speed=gravity_wave_speed,
        min_dx=float(dx.min()),
        max_dx=float(dx.max()),
        dy=float(dy),
        cfl_zonal_worst=float(speed * dt / dx.min()),
        cfl_zonal_equator=float(speed * dt / dx.max()),
        cfl_meridional=float(speed * dt / dy),
    )


def max_stable_dt(
    grid: LatLonGrid,
    filtered: bool = True,
    max_wind: float = 100.0,
    gravity_wave_speed: float = 300.0,
    safety: float = 0.7,
) -> float:
    """Largest stable explicit time step [s] with/without the polar filter."""
    speed = max_wind + gravity_wave_speed
    dx = grid.cell_dx()
    dy = grid.cell_dy()
    limit = min(dx.max() if filtered else dx.min(), dy)
    return safety * limit / speed
