"""The 3-D latitude-longitude mesh with Arakawa C-grid staggering.

Index conventions used throughout the package
---------------------------------------------

Arrays are laid out ``(nz, ny, nx)`` in C order so that the longitude axis
``x`` is contiguous: under the Y-Z decomposition every rank owns complete
latitude circles and the per-latitude FFTs of the polar filter touch
contiguous memory.

* ``x`` (longitude, index ``i``): periodic, ``lambda_i = 2*pi*i/nx``.
* ``y`` (latitude, index ``j``): the paper writes the metric terms with the
  colatitude ``theta`` (so ``f* = 2*Omega*cos(theta)``); ``j = 0`` is the
  row of cell centres next to the north pole, ``j = ny-1`` next to the
  south pole, ``theta_j = (j + 1/2) * pi / ny``.
* ``z`` (vertical, index ``k``): sigma levels, ``k = 0`` at the model top.

Arakawa C staggering (Sec. 2.2): scalars (``Phi``, ``p'_sa``) live at cell
centres ``(i, j)``; the zonal wind ``U`` lives at ``(i - 1/2, j)``; the
meridional wind ``V`` at ``(i, j + 1/2)``.  ``V`` is stored on the ``ny``
interior latitude interfaces plus the two pole interfaces where it is
identically zero, i.e. with the same ``(nz, ny, nx)`` shape where row ``j``
holds the interface between centre rows ``j`` and ``j + 1``; the last row
(the south-pole interface) is forced to zero.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants


@dataclass(frozen=True)
class LatLonGrid:
    """A regular latitude-longitude mesh of ``nx x ny x nz`` nodes.

    Parameters
    ----------
    nx, ny, nz:
        Number of nodes along longitude, latitude, vertical.
    radius:
        Sphere radius [m]; defaults to the earth radius.
    """

    nx: int
    ny: int
    nz: int
    radius: float = constants.EARTH_RADIUS

    # Derived coordinate arrays, filled in __post_init__ (frozen dataclass ->
    # object.__setattr__).  They are documented as read-only attributes.
    lon: np.ndarray = field(init=False, repr=False, compare=False)
    theta_c: np.ndarray = field(init=False, repr=False, compare=False)
    theta_v: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 3 or self.nz < 1:
            raise ValueError(
                f"grid too small: nx={self.nx} ny={self.ny} nz={self.nz}"
            )
        if self.nx % 2 != 0:
            raise ValueError("nx must be even (FFT polar filter, pole pairing)")
        lon = 2.0 * np.pi * np.arange(self.nx) / self.nx
        theta_c = (np.arange(self.ny) + 0.5) * np.pi / self.ny
        # interface colatitudes for V rows: row j is the interface between
        # centre rows j and j+1; row ny-1 is the south pole interface.
        theta_v = (np.arange(self.ny) + 1.0) * np.pi / self.ny
        object.__setattr__(self, "lon", lon)
        object.__setattr__(self, "theta_c", theta_c)
        object.__setattr__(self, "theta_v", theta_v)

    # ---- spacings ----------------------------------------------------
    @property
    def dlambda(self) -> float:
        """Longitude spacing [rad]."""
        return 2.0 * np.pi / self.nx

    @property
    def dtheta(self) -> float:
        """Latitude spacing [rad]."""
        return np.pi / self.ny

    # ---- metric terms ------------------------------------------------
    @property
    def sin_theta_c(self) -> np.ndarray:
        """sin(colatitude) at cell-centre rows, shape ``(ny,)``."""
        return np.sin(self.theta_c)

    @property
    def cos_theta_c(self) -> np.ndarray:
        """cos(colatitude) at cell-centre rows, shape ``(ny,)``."""
        return np.cos(self.theta_c)

    @property
    def sin_theta_v(self) -> np.ndarray:
        """sin(colatitude) at V (interface) rows, shape ``(ny,)``.

        The last row is the south-pole interface where ``sin == 0``; the
        operators never divide by it because ``V`` vanishes there.
        """
        return np.sin(self.theta_v)

    @property
    def cos_theta_v(self) -> np.ndarray:
        """cos(colatitude) at V (interface) rows, shape ``(ny,)``."""
        return np.cos(self.theta_v)

    def coriolis_centre(self) -> np.ndarray:
        """The planetary part ``2*Omega*cos(theta)`` of ``f*`` at centres."""
        return 2.0 * constants.EARTH_OMEGA * self.cos_theta_c

    # ---- geometry ----------------------------------------------------
    def cell_dx(self) -> np.ndarray:
        """Physical zonal grid spacing per centre row [m], shape ``(ny,)``."""
        return self.radius * self.sin_theta_c * self.dlambda

    def cell_dy(self) -> float:
        """Physical meridional grid spacing [m] (uniform)."""
        return self.radius * self.dtheta

    def cell_area(self) -> np.ndarray:
        """Spherical cell areas per centre row [m^2], shape ``(ny,)``.

        Exact integral of the area element over the cell so the global sum
        equals ``4*pi*a^2`` to round-off (used by the conservation
        diagnostics).
        """
        j = np.arange(self.ny)
        theta_n = j * self.dtheta
        theta_s = (j + 1) * self.dtheta
        band = np.cos(theta_n) - np.cos(theta_s)
        return self.radius**2 * self.dlambda * band

    def total_area(self) -> float:
        """Total sphere area ``4*pi*a^2`` [m^2]."""
        return 4.0 * np.pi * self.radius**2

    # ---- convenience -------------------------------------------------
    @property
    def shape3d(self) -> tuple[int, int, int]:
        """Array shape ``(nz, ny, nx)`` of a full-level 3-D field."""
        return (self.nz, self.ny, self.nx)

    @property
    def shape2d(self) -> tuple[int, int]:
        """Array shape ``(ny, nx)`` of a surface field."""
        return (self.ny, self.nx)

    @property
    def npoints(self) -> int:
        """Total number of mesh points ``nx*ny*nz``."""
        return self.nx * self.ny * self.nz

    def latitude_degrees(self) -> np.ndarray:
        """Geographic latitude of centre rows in degrees (north positive)."""
        return 90.0 - np.degrees(self.theta_c)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatLonGrid({self.nx}x{self.ny}x{self.nz})"


#: The paper's evaluation mesh: 720 x 360 x 30 (~50 km resolution).
PAPER_GRID_SHAPE = (720, 360, 30)


def paper_grid() -> LatLonGrid:
    """The 50 km mesh of the paper's evaluation (Sec. 5.1)."""
    nx, ny, nz = PAPER_GRID_SHAPE
    return LatLonGrid(nx=nx, ny=ny, nz=nz)
