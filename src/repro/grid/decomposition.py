"""Block domain decompositions of the latitude-longitude mesh.

Section 4.2 of the paper compares three decomposition families:

* **X-Y decomposition** (``p_z = 1``): avoids the z-collective of the
  summation operator ``C`` but pays for the x-collective of the Fourier
  filter ``F``.
* **Y-Z decomposition** (``p_x = 1``): makes the polar filter
  communication-free (every rank owns complete latitude circles) at the
  price of the z-collective; this is the paper's choice and the basis of
  the communication-avoiding algorithm.
* general 3-D decomposition: both collectives live; kept as a baseline.

A :class:`Decomposition` maps ranks to :class:`BlockExtent` sub-blocks, and
provides the neighbour tables (including the diagonal "corner" neighbours
of Figure 4) and gather/scatter helpers used by the distributed cores and
by the tests that compare against the serial reference.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


def balanced_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous chunks of near-equal size.

    Returns a list of ``(start, stop)`` pairs.  The first ``n % parts``
    chunks get one extra element, matching the usual MPI block distribution.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if n < parts:
        raise ValueError(f"cannot split {n} points over {parts} parts")
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for c in range(parts):
        size = base + (1 if c < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class BlockExtent:
    """The global index ranges owned by one rank: ``[x0, x1) x [y0, y1) x [z0, z1)``."""

    x0: int
    x1: int
    y0: int
    y1: int
    z0: int
    z1: int

    @property
    def nx(self) -> int:
        return self.x1 - self.x0

    @property
    def ny(self) -> int:
        return self.y1 - self.y0

    @property
    def nz(self) -> int:
        return self.z1 - self.z0

    @property
    def shape3d(self) -> tuple[int, int, int]:
        """Local array shape ``(nz, ny, nx)``."""
        return (self.nz, self.ny, self.nx)

    @property
    def shape2d(self) -> tuple[int, int]:
        """Local surface-array shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    def slices3d(self) -> tuple[slice, slice, slice]:
        """Slices selecting this block out of a global ``(nz, ny, nx)`` array."""
        return (
            slice(self.z0, self.z1),
            slice(self.y0, self.y1),
            slice(self.x0, self.x1),
        )

    def slices2d(self) -> tuple[slice, slice]:
        """Slices selecting this block out of a global ``(ny, nx)`` array."""
        return (slice(self.y0, self.y1), slice(self.x0, self.x1))

    @property
    def cells(self) -> int:
        """Number of 3-D grid cells in this extent."""
        return self.nx * self.ny * self.nz

    def overlap(self, other: "BlockExtent") -> "BlockExtent | None":
        """The index intersection with ``other``, or ``None`` if disjoint."""
        x0, x1 = max(self.x0, other.x0), min(self.x1, other.x1)
        y0, y1 = max(self.y0, other.y0), min(self.y1, other.y1)
        z0, z1 = max(self.z0, other.z0), min(self.z1, other.z1)
        if x0 >= x1 or y0 >= y1 or z0 >= z1:
            return None
        return BlockExtent(x0, x1, y0, y1, z0, z1)

    def local3d(self, within: "BlockExtent") -> tuple[slice, slice, slice]:
        """Slices selecting this extent out of ``within``'s local block."""
        return (
            slice(self.z0 - within.z0, self.z1 - within.z0),
            slice(self.y0 - within.y0, self.y1 - within.y0),
            slice(self.x0 - within.x0, self.x1 - within.x0),
        )

    def local2d(self, within: "BlockExtent") -> tuple[slice, slice]:
        """2-D (surface) variant of :meth:`local3d`."""
        return (
            slice(self.y0 - within.y0, self.y1 - within.y0),
            slice(self.x0 - within.x0, self.x1 - within.x0),
        )


@dataclass(frozen=True)
class Decomposition:
    """A ``p_x x p_y x p_z`` block decomposition of an ``nx x ny x nz`` mesh.

    Rank numbering is x-fastest: ``rank = cx + px * (cy + py * cz)`` with
    ``cx``, ``cy``, ``cz`` the block coordinates along each axis.
    """

    nx: int
    ny: int
    nz: int
    px: int
    py: int
    pz: int

    def __post_init__(self) -> None:
        for n, p, name in (
            (self.nx, self.px, "x"),
            (self.ny, self.py, "y"),
            (self.nz, self.pz, "z"),
        ):
            if p < 1:
                raise ValueError(f"p{name} must be >= 1")
            if n < p:
                raise ValueError(f"p{name}={p} exceeds n{name}={n}")

    # ---- basic queries -------------------------------------------------
    @property
    def nranks(self) -> int:
        """Total number of ranks ``px * py * pz``."""
        return self.px * self.py * self.pz

    @property
    def kind(self) -> str:
        """``"xy"``, ``"yz"``, ``"3d"`` or ``"serial"``."""
        if self.nranks == 1:
            return "serial"
        if self.pz == 1 and self.px > 1:
            return "xy"
        if self.px == 1 and (self.py > 1 or self.pz > 1):
            return "yz"
        return "3d"

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Block coordinates ``(cx, cy, cz)`` of ``rank``."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        cx = rank % self.px
        cy = (rank // self.px) % self.py
        cz = rank // (self.px * self.py)
        return cx, cy, cz

    def rank_of(self, cx: int, cy: int, cz: int) -> int:
        """Inverse of :meth:`coords`."""
        if not (0 <= cx < self.px and 0 <= cy < self.py and 0 <= cz < self.pz):
            raise ValueError(f"coords ({cx},{cy},{cz}) out of range")
        return cx + self.px * (cy + self.py * cz)

    def extent(self, rank: int) -> BlockExtent:
        """The global index block owned by ``rank``."""
        cx, cy, cz = self.coords(rank)
        xb = balanced_partition(self.nx, self.px)[cx]
        yb = balanced_partition(self.ny, self.py)[cy]
        zb = balanced_partition(self.nz, self.pz)[cz]
        return BlockExtent(xb[0], xb[1], yb[0], yb[1], zb[0], zb[1])

    def extents(self) -> list[BlockExtent]:
        """Extents of all ranks, indexed by rank."""
        return [self.extent(r) for r in range(self.nranks)]

    # ---- neighbours -----------------------------------------------------
    def neighbour(self, rank: int, dx: int, dy: int, dz: int) -> int | None:
        """Rank offset by block steps ``(dx, dy, dz)``; ``None`` if outside.

        The x axis is periodic (longitude); y and z are not (poles, model
        top/surface).
        """
        cx, cy, cz = self.coords(rank)
        nx_, ny_, nz_ = cx + dx, cy + dy, cz + dz
        nx_ %= self.px  # periodic longitude
        if not 0 <= ny_ < self.py or not 0 <= nz_ < self.pz:
            return None
        return self.rank_of(nx_, ny_, nz_)

    def plane_neighbours(self, rank: int) -> dict[tuple[int, int], int]:
        """The up-to-8 neighbours in the decomposed plane (Figure 4).

        For a Y-Z decomposition the plane axes are ``(dy, dz)``; for an X-Y
        decomposition ``(dx, dy)``; for a 3-D decomposition all 26 block
        neighbours are returned keyed by ``(dx, dy, dz)``.  Keys map to the
        neighbour rank; missing keys mean the block borders the domain
        boundary (pole / top / surface).
        """
        out: dict[tuple, int] = {}
        if self.kind in ("yz", "serial"):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dy == dz == 0:
                        continue
                    nb = self.neighbour(rank, 0, dy, dz)
                    if nb is not None and nb != rank:
                        out[(dy, dz)] = nb
        elif self.kind == "xy":
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    if dx == dy == 0:
                        continue
                    nb = self.neighbour(rank, dx, dy, 0)
                    if nb is not None and nb != rank:
                        out[(dx, dy)] = nb
        else:  # 3d
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        if dx == dy == dz == 0:
                            continue
                        nb = self.neighbour(rank, dx, dy, dz)
                        if nb is not None and nb != rank:
                            out[(dx, dy, dz)] = nb
        return out

    # ---- sub-communicator rank groups ------------------------------------
    def ranks_along(self, axis: str, rank: int) -> list[int]:
        """All ranks sharing this rank's block line along ``axis`` ('x','y','z').

        These are the participants of the collective along that axis (the
        FFT gather along x, the vertical summation along z).
        """
        cx, cy, cz = self.coords(rank)
        if axis == "x":
            return [self.rank_of(i, cy, cz) for i in range(self.px)]
        if axis == "y":
            return [self.rank_of(cx, j, cz) for j in range(self.py)]
        if axis == "z":
            return [self.rank_of(cx, cy, k) for k in range(self.pz)]
        raise ValueError(f"unknown axis {axis!r}")

    # ---- gather / scatter -------------------------------------------------
    def scatter(self, global_array: np.ndarray, rank: int) -> np.ndarray:
        """Copy of this rank's block of a global 3-D or ``(ny, nx)`` array."""
        ext = self.extent(rank)
        if global_array.ndim == 3:
            return np.ascontiguousarray(global_array[ext.slices3d()])
        if global_array.ndim == 2:
            return np.ascontiguousarray(global_array[ext.slices2d()])
        raise ValueError("expected a 2-D or 3-D global array")

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Assemble per-rank blocks back into a global array."""
        if len(locals_) != self.nranks:
            raise ValueError(f"expected {self.nranks} blocks, got {len(locals_)}")
        ndim = locals_[0].ndim
        if ndim == 3:
            out = np.empty((self.nz, self.ny, self.nx), dtype=locals_[0].dtype)
            for r, block in enumerate(locals_):
                ext = self.extent(r)
                if block.shape != ext.shape3d:
                    raise ValueError(
                        f"rank {r}: block shape {block.shape} != extent {ext.shape3d}"
                    )
                out[ext.slices3d()] = block
            return out
        if ndim == 2:
            out = np.empty((self.ny, self.nx), dtype=locals_[0].dtype)
            for r, block in enumerate(locals_):
                ext = self.extent(r)
                out[ext.slices2d()] = block
            return out
        raise ValueError("expected 2-D or 3-D blocks")

    def __iter__(self) -> Iterator[BlockExtent]:
        return iter(self.extents())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Decomposition({self.kind}: {self.px}x{self.py}x{self.pz} over "
            f"{self.nx}x{self.ny}x{self.nz})"
        )


def _factor_pairs(p: int) -> list[tuple[int, int]]:
    """All ordered factorizations ``p = a * b``."""
    out = []
    for a in range(1, p + 1):
        if p % a == 0:
            out.append((a, p // a))
    return out


def best_2d_factorization(
    p: int, n1: int, n2: int, max_frac: float = 0.5
) -> tuple[int, int]:
    """Pick ``(p1, p2)`` with ``p1*p2 = p`` minimizing block surface.

    ``p1 <= max_frac * n1`` and ``p2 <= max_frac * n2`` (the paper's
    ``p_y <= n_y / 2`` etc. constraint), and among feasible pairs the one
    minimizing the halo surface ``n1/p1 + n2/p2`` is chosen.
    """
    feasible = [
        (a, b)
        for a, b in _factor_pairs(p)
        if a <= max(1, int(max_frac * n1)) and b <= max(1, int(max_frac * n2))
    ]
    if not feasible:
        raise ValueError(
            f"no feasible factorization of p={p} with n1={n1}, n2={n2}"
        )
    return min(feasible, key=lambda ab: n1 / ab[0] + n2 / ab[1])


def xy_decomposition(nx: int, ny: int, nz: int, p: int) -> Decomposition:
    """Best X-Y decomposition (``p_z = 1``) of ``p`` ranks (Sec. 4.2)."""
    px, py = best_2d_factorization(p, nx, ny)
    return Decomposition(nx, ny, nz, px, py, 1)


def yz_decomposition(nx: int, ny: int, nz: int, p: int) -> Decomposition:
    """Best Y-Z decomposition (``p_x = 1``) of ``p`` ranks (Sec. 4.2.1)."""
    py, pz = best_2d_factorization(p, ny, nz)
    return Decomposition(nx, ny, nz, 1, py, pz)


# ---------------------------------------------------------------------------
# live re-decomposition (elastic rank-loss recovery)
# ---------------------------------------------------------------------------
def redecompose(old: Decomposition, nranks: int) -> Decomposition:
    """Repartition ``old``'s mesh onto ``nranks`` ranks, same family.

    The elastic-recovery path of :mod:`repro.core.resilience` calls this
    after a communicator shrink: the surviving ranks need a fresh block
    layout of the *same* decomposition family (Y-Z stays Y-Z, so the
    communication-avoiding algorithm's polar-filter locality is
    preserved), re-balanced over the new count.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks == 1:
        return Decomposition(old.nx, old.ny, old.nz, 1, 1, 1)
    kind = old.kind
    if kind in ("yz", "serial"):
        return yz_decomposition(old.nx, old.ny, old.nz, nranks)
    if kind == "xy":
        return xy_decomposition(old.nx, old.ny, old.nz, nranks)
    # 3-D: keep the z split when it still divides the rank count
    pz = old.pz if old.pz >= 1 and nranks % old.pz == 0 else 1
    px, py = best_2d_factorization(nranks // pz, old.nx, old.ny)
    return Decomposition(old.nx, old.ny, old.nz, px, py, pz)


@dataclass(frozen=True)
class BlockTransfer:
    """One region move of a live re-decomposition: the cells of
    ``region`` leave ``old_owner``'s block (old layout) for
    ``new_owner``'s block (new layout)."""

    region: BlockExtent
    old_owner: int
    new_owner: int


def plan_migration(
    old: Decomposition, new: Decomposition
) -> list[BlockTransfer]:
    """Every region that must move to turn ``old``'s layout into ``new``'s.

    Covers the whole mesh exactly once: for each (old rank, new rank)
    pair whose extents intersect, one transfer of the intersection.  The
    plan is canonical (sorted by new owner, then old owner), so every
    rank of a migration program iterates transfers in the same global
    order — which is what makes tag assignment and message matching
    deterministic.
    """
    if (old.nx, old.ny, old.nz) != (new.nx, new.ny, new.nz):
        raise ValueError(
            f"cannot migrate between meshes "
            f"{old.nx}x{old.ny}x{old.nz} and {new.nx}x{new.ny}x{new.nz}"
        )
    old_exts = old.extents()
    new_exts = new.extents()
    plan: list[BlockTransfer] = []
    for j, next_ in enumerate(new_exts):
        for o, oext in enumerate(old_exts):
            region = oext.overlap(next_)
            if region is not None:
                plan.append(BlockTransfer(region, o, j))
    plan.sort(key=lambda t: (t.new_owner, t.old_owner))
    covered = sum(t.region.cells for t in plan)
    if covered != old.nx * old.ny * old.nz:
        raise AssertionError(
            f"migration plan covers {covered} cells of "
            f"{old.nx * old.ny * old.nz}"
        )
    return plan
