"""Automatic stencil-footprint extraction by perturbation probing.

To verify our discrete operators against the paper's Tables 1-3 we measure
which input offsets actually influence an output point: perturb the input
field at a single mesh point, re-evaluate the operator, and record every
output point whose value changed.  The set of (output - input) offsets is
the measured footprint (transposed: we report which *inputs* an output
depends on, i.e. the negated influence offsets).

Probing is done away from poles and vertical boundaries so the generic
stencil is measured, not the boundary treatment.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Footprint:
    """Measured dependency offsets of one operator output."""

    x: tuple[int, ...]
    y: tuple[int, ...]
    z: tuple[int, ...]

    def within(
        self, x: tuple[int, ...], y: tuple[int, ...], z: tuple[int, ...]
    ) -> bool:
        """Whether this footprint is contained in the declared offsets."""
        return (
            set(self.x) <= set(x) and set(self.y) <= set(y) and set(self.z) <= set(z)
        )

    @property
    def radii(self) -> tuple[int, int, int]:
        return (
            max((abs(o) for o in self.x), default=0),
            max((abs(o) for o in self.y), default=0),
            max((abs(o) for o in self.z), default=0),
        )


def probe_footprint(
    op: Callable[[np.ndarray], np.ndarray],
    shape: tuple[int, int, int],
    probe_point: tuple[int, int, int] | None = None,
    base: np.ndarray | None = None,
    eps: float = 1e-6,
    rel_tol: float = 1e-10,
) -> Footprint:
    """Measure which input offsets influence each output point of ``op``.

    ``op`` maps an input array of ``shape`` ``(nz, ny, nx)`` to an output
    of the same shape.  ``base`` is the linearization point (defaults to a
    fixed smooth field so nonlinear operators are probed at a generic
    state).  Returns the union of dependencies over output points, as
    input-relative offsets.
    """
    nz, ny, nx = shape
    if probe_point is None:
        probe_point = (nz // 2, ny // 2, nx // 2)
    kp, jp, ip = probe_point
    if base is None:
        k, j, i = np.meshgrid(
            np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
        )
        base = 1.0 + 0.1 * np.sin(0.3 * i + 0.5 * j + 0.7 * k)
    out0 = op(base.copy())
    bumped = base.copy()
    bumped[kp, jp, ip] += eps
    out1 = op(bumped)
    delta = np.abs(out1 - out0)
    if delta.max() == 0.0:
        return Footprint(x=(), y=(), z=())
    # relative threshold: offsets whose influence is many orders below the
    # dominant one are numerical noise, not stencil dependencies
    hits = np.argwhere(delta > rel_tol * float(delta.max()))
    xs, ys, zs = set(), set(), set()
    for kq, jq, iq in hits:
        # output at (kq,jq,iq) depends on the input at the probe point:
        # as an input-relative offset, input = output + (probe - output)
        dz, dy, dx = kp - kq, jp - jq, ip - iq
        # normalize periodic x to the short way around
        if dx > nx // 2:
            dx -= nx
        elif dx < -(nx // 2):
            dx += nx
        xs.add(int(dx))
        ys.add(int(dy))
        zs.add(int(dz))
    return Footprint(
        x=tuple(sorted(xs)), y=tuple(sorted(ys)), z=tuple(sorted(zs))
    )
