"""The advection operator ``L`` (Eq. 3): flux-form advection terms.

``L1`` (zonal), ``L2`` (meridional) and ``L3`` (vertical) in the IAP
"2F - F" antisymmetric flux form

.. math::

    L(F) = \\frac{1}{2}\\left( 2 \\nabla\\cdot(F c) - F \\nabla\\cdot c \\right)

which conserves both the mean of ``F`` and of ``F^2`` in the continuum —
the property behind the model's energy conservation.  Each prognostic
field is advected in its own staggered frame with the advecting physical
velocities averaged to its points.

``L3`` consumes the interface ``sigma-dot`` diagnosed by the last
application of the ``C`` operator; the advection process itself therefore
needs no z-collective, matching the paper's operator form where no ``C``
appears in the advection block of Eq. (8).
"""
from __future__ import annotations

import numpy as np

from repro.obs.spans import traced
from repro.operators.geometry import WorkingGeometry
from repro.operators.shifts import sx_into, sy_into
from repro.operators.staggering import (
    ddx_c2c,
    ddy_c2v,
    ddy_v2c,
    from_u,
    from_v,
    to_u,
    to_v,
    u_to_v,
)
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import ModelState


def _l1(F: np.ndarray, u_phys: np.ndarray, sin_row: np.ndarray,
        geom: WorkingGeometry) -> np.ndarray:
    """Zonal advection ``L1(F)`` at F's own points."""
    dlam = geom.grid.dlambda
    a = geom.grid.radius
    pre = 1.0 / (2.0 * a * sin_row)
    return pre * (
        2.0 * ddx_c2c(F * u_phys, dlam) - F * ddx_c2c(u_phys, dlam)
    )


def _l2_centre_rows(
    F: np.ndarray,
    v_iface: np.ndarray,
    sin_iface: np.ndarray,
    sin_own: np.ndarray,
    geom: WorkingGeometry,
) -> np.ndarray:
    """Meridional advection ``L2(F)`` for a field on centre rows.

    C-grid flux form: the flux ``to_v(F) * v * sin(theta)`` lives on the
    V (interface) rows, so the theta-difference back to centre rows spans
    only ``j - 1 .. j + 1`` — exactly the Table 2 extent.  ``v_iface`` is
    the physical meridional velocity on the V rows (at F's x staggering).
    """
    dth = geom.grid.dtheta
    a = geom.grid.radius
    vs = v_iface * sin_iface
    flux = to_v(F) * vs
    return (2.0 * ddy_v2c(flux, dth) - F * ddy_v2c(vs, dth)) / (
        2.0 * a * sin_own
    )


def _l2_v_rows(
    F: np.ndarray,
    v_centre: np.ndarray,
    sin_centre: np.ndarray,
    sin_own: np.ndarray,
    geom: WorkingGeometry,
) -> np.ndarray:
    """Meridional advection ``L2(F)`` for a field on V rows.

    The interface rows of the V family are the centre rows; the flux
    ``from_v(F) * v * sin(theta)`` lives there.
    """
    dth = geom.grid.dtheta
    a = geom.grid.radius
    vs = v_centre * sin_centre
    flux = from_v(F) * vs
    return (2.0 * ddy_c2v(flux, dth) - F * ddy_c2v(vs, dth)) / (
        2.0 * a * sin_own
    )


def _l3(F: np.ndarray, sdot_iface: np.ndarray, geom: WorkingGeometry) -> np.ndarray:
    """Vertical convection ``L3(F)``.

    ``sdot_iface`` has one more level than ``F`` (interface ``w`` above
    level ``w``); at the physical model top/surface the interface values
    vanish by construction of the ``C`` diagnostics, which is what closes
    the flux form there.
    """
    nz_w = F.shape[0]
    fbar = np.empty_like(sdot_iface)
    fbar[1:nz_w] = 0.5 * (F[:-1] + F[1:])
    fbar[0] = F[0]
    fbar[nz_w] = F[-1]
    flux = sdot_iface * fbar
    dsig = geom.lev3(geom.dsigma)
    dflux = (flux[1:] - flux[:-1]) / dsig
    dsdot = (sdot_iface[1:] - sdot_iface[:-1]) / dsig
    return dflux - 0.5 * F * dsdot


class AdvectionGeomCache:
    """Geometry-derived constant rows of ``L``, computed once.

    Each cached value is produced by the same expression the seed path
    evaluates per call, keeping the workspace fast path bit-identical.
    """

    def __init__(self, geom: WorkingGeometry) -> None:
        a = geom.grid.radius
        self.sin_c3 = geom.row3(geom.sin_c)
        self.sin_v3 = geom.row3(geom.sin_v)
        self.pre_c3 = 1.0 / (2.0 * a * self.sin_c3)
        self.pre_v3 = 1.0 / (2.0 * a * self.sin_v3)
        self.two_a_sin_c3 = 2.0 * a * self.sin_c3
        self.two_a_sin_v3 = 2.0 * a * self.sin_v3
        self.dsig3 = geom.lev3(geom.dsigma)


@traced("advection-op", "operator")
def advection_tendency(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
    ws=None,
    out: ModelState | None = None,
    cache: AdvectionGeomCache | None = None,
) -> ModelState:
    """Evaluate ``L-tilde(xi)``: the tendency ``-(L1 + L2 + L3)`` for
    ``U``, ``V``, ``Phi`` and zero for ``p'_sa`` (Sec. 3).

    With ``ws`` and ``out`` given, temporaries come from the workspace
    pool and the tendency lands in ``out`` (bit-identical; ``out`` must
    not alias ``state``)."""
    if ws is not None:
        return _advection_tendency_ws(
            state, vd, geom, ws, out, cache or AdvectionGeomCache(geom)
        )
    U, V, Phi = state.U, state.V, state.Phi
    # P is local and fresh; only sigma-dot is taken from the frozen bundle.
    from repro import constants
    from repro.state.transforms import p_factor

    p_fac = p_factor(state.psa + constants.P_REFERENCE)
    sin_c3 = geom.row3(geom.sin_c)
    sin_v3 = geom.row3(geom.sin_v)

    # physical advecting velocities at each field's points
    p_u = to_u(p_fac)[None]
    p_v = to_v(p_fac)[None]
    u_at_u = U / p_u
    u_at_v = u_to_v(U) / p_v
    u_at_c = from_u(U) / p_fac[None]
    # meridional velocity on the interface rows of each family
    v_iface_c = V / p_v                      # V rows, centre x (for Phi)
    v_iface_u = to_u(V) / to_u(p_v)          # V rows, U x-points (for U)
    v_centre = from_v(V) / p_fac[None]       # centre rows (for V itself)

    sdot_c = vd.sdot_iface
    # average interface sigma-dot to U / V horizontal staggering
    sdot_u = to_u(sdot_c)
    sdot_v = to_v(sdot_c)

    tend_u = -(
        _l1(U, u_at_u, sin_c3, geom)
        + _l2_centre_rows(U, v_iface_u, sin_v3, sin_c3, geom)
        + _l3(U, sdot_u, geom)
    )
    tend_v = -(
        _l1(V, u_at_v, sin_v3, geom)
        + _l2_v_rows(V, v_centre, sin_c3, sin_v3, geom)
        + _l3(V, sdot_v, geom)
    )
    tend_phi = -(
        _l1(Phi, u_at_c, sin_c3, geom)
        + _l2_centre_rows(Phi, v_iface_c, sin_v3, sin_c3, geom)
        + _l3(Phi, sdot_c, geom)
    )
    return ModelState(
        U=tend_u, V=tend_v, Phi=tend_phi, psa=np.zeros_like(state.psa)
    )


# ---- workspace fast path ---------------------------------------------------
# Bit-identical transcriptions of the helpers above into preallocated
# buffers: the same binary-operation sequence, with only scalar-factor
# multiplies commuted (bitwise-exact in IEEE arithmetic).

def _l1_ws(F, u_phys, pre_row, dlam, ws, out):
    """``out := L1(F)``."""
    tA = ws.take(F.shape)
    tC = ws.take(F.shape)
    np.multiply(F, u_phys, out=tA)
    sx_into(tA, 1, out)
    sx_into(tA, -1, tC)
    np.subtract(out, tC, out=out)
    np.divide(out, 2.0 * dlam, out=out)
    np.multiply(out, 2.0, out=out)
    sx_into(u_phys, 1, tA)
    sx_into(u_phys, -1, tC)
    np.subtract(tA, tC, out=tA)
    np.divide(tA, 2.0 * dlam, out=tA)
    np.multiply(F, tA, out=tA)
    np.subtract(out, tA, out=out)
    np.multiply(out, pre_row, out=out)
    ws.give(tA, tC)


def _l2_centre_ws(F, v_iface, sin_iface, denom_row, dth, ws, out):
    """``out := L2(F)`` for a centre-row field."""
    tA = ws.take(F.shape)
    tB = ws.take(F.shape)
    np.multiply(v_iface, sin_iface, out=tA)            # vs
    sy_into(F, 1, tB)
    np.add(F, tB, out=tB)
    np.multiply(tB, 0.5, out=tB)                       # to_v(F)
    np.multiply(tB, tA, out=tB)                        # flux
    sy_into(tB, -1, out)
    np.subtract(tB, out, out=out)
    np.divide(out, dth, out=out)
    np.multiply(out, 2.0, out=out)                     # 2 ddy_v2c(flux)
    sy_into(tA, -1, tB)
    np.subtract(tA, tB, out=tB)
    np.divide(tB, dth, out=tB)
    np.multiply(F, tB, out=tB)                         # F ddy_v2c(vs)
    np.subtract(out, tB, out=out)
    np.divide(out, denom_row, out=out)
    ws.give(tA, tB)


def _l2_v_ws(F, v_centre, sin_centre, denom_row, dth, ws, out):
    """``out := L2(F)`` for a V-row field."""
    tA = ws.take(F.shape)
    tB = ws.take(F.shape)
    np.multiply(v_centre, sin_centre, out=tA)          # vs
    sy_into(F, -1, tB)
    np.add(tB, F, out=tB)
    np.multiply(tB, 0.5, out=tB)                       # from_v(F)
    np.multiply(tB, tA, out=tB)                        # flux
    sy_into(tB, 1, out)
    np.subtract(out, tB, out=out)
    np.divide(out, dth, out=out)
    np.multiply(out, 2.0, out=out)                     # 2 ddy_c2v(flux)
    sy_into(tA, 1, tB)
    np.subtract(tB, tA, out=tB)
    np.divide(tB, dth, out=tB)
    np.multiply(F, tB, out=tB)                         # F ddy_c2v(vs)
    np.subtract(out, tB, out=out)
    np.divide(out, denom_row, out=out)
    ws.give(tA, tB)


def _l3_ws(F, sdot_iface, dsig3, ws, out):
    """``out := L3(F)``."""
    nz_w = F.shape[0]
    fbar = ws.take(sdot_iface.shape)
    np.add(F[:-1], F[1:], out=fbar[1:nz_w])
    np.multiply(fbar[1:nz_w], 0.5, out=fbar[1:nz_w])
    fbar[0] = F[0]
    fbar[nz_w] = F[-1]
    np.multiply(sdot_iface, fbar, out=fbar)            # flux
    np.subtract(fbar[1:], fbar[:-1], out=out)
    np.divide(out, dsig3, out=out)                     # dflux
    tz2 = ws.take(F.shape)
    tz3 = ws.take(F.shape)
    np.subtract(sdot_iface[1:], sdot_iface[:-1], out=tz2)
    np.divide(tz2, dsig3, out=tz2)                     # dsdot
    np.multiply(F, 0.5, out=tz3)
    np.multiply(tz3, tz2, out=tz3)
    np.subtract(out, tz3, out=out)
    ws.give(fbar, tz2, tz3)


def _advection_tendency_ws(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
    ws,
    out: ModelState,
    cache: AdvectionGeomCache,
) -> ModelState:
    """Pool-backed ``L-tilde``, bit-identical to the allocating path."""
    from repro import constants

    U, V, Phi = state.U, state.V, state.Phi
    dlam, dth = geom.grid.dlambda, geom.grid.dtheta
    shape3 = U.shape
    shape2 = state.psa.shape
    sdot_c = vd.sdot_iface

    # P = sqrt((psa + p0 - pt) / p0), same op chain as p_factor(psa + p0)
    pf = ws.take(shape2)
    np.add(state.psa, constants.P_REFERENCE, out=pf)
    np.subtract(pf, constants.P_TOP, out=pf)
    if np.any(pf <= 0):
        raise ValueError("surface pressure must exceed the model-top pressure")
    np.divide(pf, constants.P_REFERENCE, out=pf)
    np.sqrt(pf, out=pf)

    p_u2 = ws.take(shape2)
    sx_into(pf, -1, p_u2)
    np.add(p_u2, pf, out=p_u2)
    np.multiply(p_u2, 0.5, out=p_u2)                   # to_u(P)
    p_v2 = ws.take(shape2)
    sy_into(pf, 1, p_v2)
    np.add(pf, p_v2, out=p_v2)
    np.multiply(p_v2, 0.5, out=p_v2)                   # to_v(P)

    sdot_u = ws.take(sdot_c.shape)
    sx_into(sdot_c, -1, sdot_u)
    np.add(sdot_u, sdot_c, out=sdot_u)
    np.multiply(sdot_u, 0.5, out=sdot_u)               # to_u(sdot)
    sdot_v = ws.take(sdot_c.shape)
    sy_into(sdot_c, 1, sdot_v)
    np.add(sdot_c, sdot_v, out=sdot_v)
    np.multiply(sdot_v, 0.5, out=sdot_v)               # to_v(sdot)

    vel = ws.take(shape3)
    term = ws.take(shape3)
    b2a = ws.take(shape2)

    # ---- U ------------------------------------------------------------------
    np.divide(U, p_u2[None], out=vel)                  # u_at_u
    _l1_ws(U, vel, cache.pre_c3, dlam, ws, out.U)
    sx_into(V, -1, vel)
    np.add(vel, V, out=vel)
    np.multiply(vel, 0.5, out=vel)                     # to_u(V)
    sx_into(p_v2, -1, b2a)
    np.add(b2a, p_v2, out=b2a)
    np.multiply(b2a, 0.5, out=b2a)                     # to_u(p_v)
    np.divide(vel, b2a[None], out=vel)                 # v_iface_u
    _l2_centre_ws(U, vel, cache.sin_v3, cache.two_a_sin_c3, dth, ws, term)
    np.add(out.U, term, out=out.U)
    _l3_ws(U, sdot_u, cache.dsig3, ws, term)
    np.add(out.U, term, out=out.U)
    np.negative(out.U, out=out.U)

    # ---- V ------------------------------------------------------------------
    t5 = ws.take(shape3)
    t6 = ws.take(shape3)
    sx_into(U, 1, t5)
    sy_into(t5, 1, t6)
    np.add(U, t5, out=vel)
    sy_into(U, 1, t5)
    np.add(vel, t5, out=vel)
    np.add(vel, t6, out=vel)
    np.multiply(vel, 0.25, out=vel)                    # u_to_v(U)
    ws.give(t5, t6)
    np.divide(vel, p_v2[None], out=vel)                # u_at_v
    _l1_ws(V, vel, cache.pre_v3, dlam, ws, out.V)
    sy_into(V, -1, vel)
    np.add(vel, V, out=vel)
    np.multiply(vel, 0.5, out=vel)                     # from_v(V)
    np.divide(vel, pf[None], out=vel)                  # v_centre
    _l2_v_ws(V, vel, cache.sin_c3, cache.two_a_sin_v3, dth, ws, term)
    np.add(out.V, term, out=out.V)
    _l3_ws(V, sdot_v, cache.dsig3, ws, term)
    np.add(out.V, term, out=out.V)
    np.negative(out.V, out=out.V)

    # ---- Phi ----------------------------------------------------------------
    sx_into(U, 1, vel)
    np.add(U, vel, out=vel)
    np.multiply(vel, 0.5, out=vel)                     # from_u(U)
    np.divide(vel, pf[None], out=vel)                  # u_at_c
    _l1_ws(Phi, vel, cache.pre_c3, dlam, ws, out.Phi)
    np.divide(V, p_v2[None], out=vel)                  # v_iface_c
    _l2_centre_ws(Phi, vel, cache.sin_v3, cache.two_a_sin_c3, dth, ws, term)
    np.add(out.Phi, term, out=out.Phi)
    _l3_ws(Phi, sdot_c, cache.dsig3, ws, term)
    np.add(out.Phi, term, out=out.Phi)
    np.negative(out.Phi, out=out.Phi)

    out.psa[...] = 0.0
    ws.give(pf, p_u2, p_v2, sdot_u, sdot_v, vel, term, b2a)
    return out
