"""The advection operator ``L`` (Eq. 3): flux-form advection terms.

``L1`` (zonal), ``L2`` (meridional) and ``L3`` (vertical) in the IAP
"2F - F" antisymmetric flux form

.. math::

    L(F) = \\frac{1}{2}\\left( 2 \\nabla\\cdot(F c) - F \\nabla\\cdot c \\right)

which conserves both the mean of ``F`` and of ``F^2`` in the continuum —
the property behind the model's energy conservation.  Each prognostic
field is advected in its own staggered frame with the advecting physical
velocities averaged to its points.

``L3`` consumes the interface ``sigma-dot`` diagnosed by the last
application of the ``C`` operator; the advection process itself therefore
needs no z-collective, matching the paper's operator form where no ``C``
appears in the advection block of Eq. (8).
"""
from __future__ import annotations

import numpy as np

from repro.operators.geometry import WorkingGeometry
from repro.operators.staggering import (
    ddx_c2c,
    ddy_c2v,
    ddy_v2c,
    from_u,
    from_v,
    to_u,
    to_v,
    u_to_v,
)
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import ModelState


def _l1(F: np.ndarray, u_phys: np.ndarray, sin_row: np.ndarray,
        geom: WorkingGeometry) -> np.ndarray:
    """Zonal advection ``L1(F)`` at F's own points."""
    dlam = geom.grid.dlambda
    a = geom.grid.radius
    pre = 1.0 / (2.0 * a * sin_row)
    return pre * (
        2.0 * ddx_c2c(F * u_phys, dlam) - F * ddx_c2c(u_phys, dlam)
    )


def _l2_centre_rows(
    F: np.ndarray,
    v_iface: np.ndarray,
    sin_iface: np.ndarray,
    sin_own: np.ndarray,
    geom: WorkingGeometry,
) -> np.ndarray:
    """Meridional advection ``L2(F)`` for a field on centre rows.

    C-grid flux form: the flux ``to_v(F) * v * sin(theta)`` lives on the
    V (interface) rows, so the theta-difference back to centre rows spans
    only ``j - 1 .. j + 1`` — exactly the Table 2 extent.  ``v_iface`` is
    the physical meridional velocity on the V rows (at F's x staggering).
    """
    dth = geom.grid.dtheta
    a = geom.grid.radius
    vs = v_iface * sin_iface
    flux = to_v(F) * vs
    return (2.0 * ddy_v2c(flux, dth) - F * ddy_v2c(vs, dth)) / (
        2.0 * a * sin_own
    )


def _l2_v_rows(
    F: np.ndarray,
    v_centre: np.ndarray,
    sin_centre: np.ndarray,
    sin_own: np.ndarray,
    geom: WorkingGeometry,
) -> np.ndarray:
    """Meridional advection ``L2(F)`` for a field on V rows.

    The interface rows of the V family are the centre rows; the flux
    ``from_v(F) * v * sin(theta)`` lives there.
    """
    dth = geom.grid.dtheta
    a = geom.grid.radius
    vs = v_centre * sin_centre
    flux = from_v(F) * vs
    return (2.0 * ddy_c2v(flux, dth) - F * ddy_c2v(vs, dth)) / (
        2.0 * a * sin_own
    )


def _l3(F: np.ndarray, sdot_iface: np.ndarray, geom: WorkingGeometry) -> np.ndarray:
    """Vertical convection ``L3(F)``.

    ``sdot_iface`` has one more level than ``F`` (interface ``w`` above
    level ``w``); at the physical model top/surface the interface values
    vanish by construction of the ``C`` diagnostics, which is what closes
    the flux form there.
    """
    nz_w = F.shape[0]
    fbar = np.empty_like(sdot_iface)
    fbar[1:nz_w] = 0.5 * (F[:-1] + F[1:])
    fbar[0] = F[0]
    fbar[nz_w] = F[-1]
    flux = sdot_iface * fbar
    dsig = geom.lev3(geom.dsigma)
    dflux = (flux[1:] - flux[:-1]) / dsig
    dsdot = (sdot_iface[1:] - sdot_iface[:-1]) / dsig
    return dflux - 0.5 * F * dsdot


def advection_tendency(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
) -> ModelState:
    """Evaluate ``L-tilde(xi)``: the tendency ``-(L1 + L2 + L3)`` for
    ``U``, ``V``, ``Phi`` and zero for ``p'_sa`` (Sec. 3)."""
    U, V, Phi = state.U, state.V, state.Phi
    # P is local and fresh; only sigma-dot is taken from the frozen bundle.
    from repro import constants
    from repro.state.transforms import p_factor

    p_fac = p_factor(state.psa + constants.P_REFERENCE)
    sin_c3 = geom.row3(geom.sin_c)
    sin_v3 = geom.row3(geom.sin_v)

    # physical advecting velocities at each field's points
    p_u = to_u(p_fac)[None]
    p_v = to_v(p_fac)[None]
    u_at_u = U / p_u
    u_at_v = u_to_v(U) / p_v
    u_at_c = from_u(U) / p_fac[None]
    # meridional velocity on the interface rows of each family
    v_iface_c = V / p_v                      # V rows, centre x (for Phi)
    v_iface_u = to_u(V) / to_u(p_v)          # V rows, U x-points (for U)
    v_centre = from_v(V) / p_fac[None]       # centre rows (for V itself)

    sdot_c = vd.sdot_iface
    # average interface sigma-dot to U / V horizontal staggering
    sdot_u = to_u(sdot_c)
    sdot_v = to_v(sdot_c)

    tend_u = -(
        _l1(U, u_at_u, sin_c3, geom)
        + _l2_centre_rows(U, v_iface_u, sin_v3, sin_c3, geom)
        + _l3(U, sdot_u, geom)
    )
    tend_v = -(
        _l1(V, u_at_v, sin_v3, geom)
        + _l2_v_rows(V, v_centre, sin_c3, sin_v3, geom)
        + _l3(V, sdot_v, geom)
    )
    tend_phi = -(
        _l1(Phi, u_at_c, sin_c3, geom)
        + _l2_centre_rows(Phi, v_iface_c, sin_v3, sin_c3, geom)
        + _l3(Phi, sdot_c, geom)
    )
    return ModelState(
        U=tend_u, V=tend_v, Phi=tend_phi, psa=np.zeros_like(state.psa)
    )
