"""The collection operator ``C``: vertical-integral diagnostics.

The fourth component of the adaptation function sums ``Delta sigma_k *
D(P)`` over the whole column (Sec. 4.1); the same column integrals also
yield the interface vertical velocities (``PW``, ``W``, ``sigma-dot``) used
by ``Omega^(1)`` and ``L3``, and the hydrostatic geopotential perturbation
``phi'`` used by the pressure-gradient terms.  Under a decomposition with
``p_z > 1`` all of them require one collective along the z direction — this
is exactly the communication the paper's operator ``C`` stands for, and the
one whose frequency the approximate nonlinear iteration (Sec. 4.2.2)
reduces.

The collective is implemented as a single allgather along the z
sub-communicator of the per-level contributions (two stacked fields), after
which each rank holds the full column and computes all integrals locally.
Ring allgather matches the data-movement lower bound of Theorem 4.2.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import constants
from repro.operators.geometry import WorkingGeometry
from repro.operators.staggering import ddx_u2c, ddy_v2c, to_u, to_v
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import p_factor

#: Default reference stratification shared by every operator call.
DEFAULT_REFERENCE = StandardAtmosphere()


#: Type of the z-direction gather hook: maps the owned-level contribution
#: stack ``(2, nz_own, ny_w, nx_w)`` to the full-column stack
#: ``(2, nz, ny_w, nx_w)``.  ``None`` means the caller owns the full column.
GatherFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class VerticalDiagnostics:
    """Output bundle of one application of the ``C`` operator.

    All arrays are sized to the *working* (ghost-extended) shapes.

    Attributes
    ----------
    div_p:
        ``D(P)`` at centres, ``(nz_w, ny_w, nx_w)`` (reused by the
        adaptation stencil terms).
    column_sum:
        ``S_T = sum_k Delta sigma_k D(P)_k`` over the full column,
        ``(ny_w, nx_w)``.
    pw_iface, w_iface, sdot_iface:
        ``PW``, ``W = PW / P`` and ``sigma-dot = PW / P^2`` on the working
        z interfaces, ``(nz_w + 1, ny_w, nx_w)``; interface ``w`` sits above
        level ``w`` (i.e. at global interface ``z0 - gz + w``).
    phi_prime:
        Hydrostatic geopotential perturbation at mid-levels,
        ``(nz_w, ny_w, nx_w)``.
    p_fac:
        The transform factor ``P`` at centres, ``(ny_w, nx_w)``.
    """

    div_p: np.ndarray
    column_sum: np.ndarray
    pw_iface: np.ndarray
    w_iface: np.ndarray
    sdot_iface: np.ndarray
    phi_prime: np.ndarray
    p_fac: np.ndarray


def divergence_dp(
    U: np.ndarray, V: np.ndarray, p_fac: np.ndarray, geom: WorkingGeometry
) -> np.ndarray:
    """``D(P) = (1/(a sin theta)) (d(PU)/dlambda + d(PV sin theta)/dtheta)``.

    Eq. (6), evaluated at cell centres with the natural C-grid flux
    differences (U fluxes at zonal interfaces, V fluxes at meridional
    interfaces).
    """
    a = geom.grid.radius
    flux_x = to_u(p_fac)[None] * U
    dflux_x = ddx_u2c(flux_x, geom.grid.dlambda)
    flux_y = (to_v(p_fac) * geom.row2(geom.sin_v))[None] * V
    dflux_y = ddy_v2c(flux_y, geom.grid.dtheta)
    return (dflux_x + dflux_y) / (a * geom.row3(geom.sin_c))


def compute_vertical_diagnostics(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    geom: WorkingGeometry,
    gather: GatherFn | None = None,
    reference: StandardAtmosphere = DEFAULT_REFERENCE,
) -> VerticalDiagnostics:
    """Apply the ``C`` operator.

    Parameters
    ----------
    U, V, Phi, psa:
        Working arrays (ghosts filled to at least width 1 in y).
    geom:
        Working geometry; its extent defines which z levels are *owned*
        (ghost levels are excluded from the column contributions so they
        are never double counted).
    gather:
        The z-collective hook; ``None`` for serial / ``p_z = 1``.
    """
    ps = psa + constants.P_REFERENCE
    p_fac = p_factor(ps)

    div_p = divergence_dp(U, V, p_fac, geom)

    gz = geom.gz
    nz_w = U.shape[0]
    nz_own = geom.extent.nz
    owned = slice(gz, gz + nz_own)

    # per-level contributions on owned levels
    dsig_own = geom.lev3(geom.dsigma[owned])
    sig_own = geom.lev3(geom.sigma_mid[owned])
    contrib_div = dsig_own * div_p[owned]               # for PW / column sum
    contrib_phi = (dsig_own / sig_own) * Phi[owned]     # for phi'

    stack = np.stack([contrib_div, contrib_phi])
    if gather is not None:
        stack = gather(stack)
    if stack.shape[1] != geom.grid.nz:
        raise ValueError(
            f"column stack has {stack.shape[1]} levels, expected {geom.grid.nz}"
        )
    col_div, col_phi = stack[0], stack[1]

    # global prefix sums at interfaces: S_iface[k] = sum_{l<k} contrib[l]
    ny_w, nx_w = p_fac.shape
    s_iface = np.zeros((geom.grid.nz + 1, ny_w, nx_w))
    np.cumsum(col_div, axis=0, out=s_iface[1:])
    column_sum = s_iface[-1]

    # suffix sums of the phi' contributions: H_suffix[k] = sum_{l>=k} h_l
    h_suffix = np.zeros((geom.grid.nz + 1, ny_w, nx_w))
    h_suffix[:-1] = np.cumsum(col_phi[::-1], axis=0)[::-1]

    # slice the global interface/level ranges down to the working window
    k_if = np.clip(
        np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz + 1), 0, geom.grid.nz
    )
    k_lev = np.clip(
        np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz), 0, geom.grid.nz - 1
    )

    sig_if = geom.sigma_iface[:, None, None]
    pw_iface = sig_if * column_sum[None] - s_iface[k_if]
    w_iface = pw_iface / p_fac[None]
    sdot_iface = pw_iface / (p_fac[None] ** 2)

    # phi'_k = (b / P) * (suffix_k - h_k / 2)   (half-level centring).
    # This is the perturbation integral of T'' = T - T~(p_local); the
    # reference part of the sigma-coordinate pressure-gradient force does
    # NOT vanish but collapses to the barotropic term
    # R T~(p_s) grad(ln p_es), which lives in the adaptation operator's
    # pressure-gradient terms (see repro.operators.adaptation).
    h_lev = col_phi[k_lev]
    phi_prime = (
        constants.B_GRAVITY_WAVE / p_fac[None]
        * (h_suffix[k_lev] - 0.5 * h_lev)
    )

    if nz_w != phi_prime.shape[0]:  # pragma: no cover - internal consistency
        raise AssertionError("working level count mismatch")

    return VerticalDiagnostics(
        div_p=div_p,
        column_sum=column_sum,
        pw_iface=pw_iface,
        w_iface=w_iface,
        sdot_iface=sdot_iface,
        phi_prime=phi_prime,
        p_fac=p_fac,
    )


def compute_vertical_diagnostics_scan(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    geom: WorkingGeometry,
    exscan: Callable[[np.ndarray], np.ndarray],
    allreduce: Callable[[np.ndarray], np.ndarray],
    reference: StandardAtmosphere = DEFAULT_REFERENCE,
) -> VerticalDiagnostics:
    """The ``C`` operator via exscan + allreduce (volume-optimal variant).

    The allgather implementation moves ``(p_z - 1) * n`` words per rank;
    prefix sums only need each rank's *partial sums*, so an exclusive scan
    plus an allreduce of the column totals moves ``O(n)`` — matching the
    Theorem 4.2 lower bound's ring constant.  Identical results to
    :func:`compute_vertical_diagnostics` (up to summation order round-off).

    ``exscan(x)`` must return the sum of ``x`` over all z-ranks *before*
    this one (zeros on the first); ``allreduce(x)`` the sum over all
    z-ranks.  Both operate on arrays of shape ``(2, ny_w, nx_w)`` — the
    stacked divergence and phi' contributions.
    """
    ps = psa + constants.P_REFERENCE
    p_fac = p_factor(ps)
    div_p = divergence_dp(U, V, p_fac, geom)

    gz = geom.gz
    nz_w = U.shape[0]
    nz_own = geom.extent.nz
    owned = slice(gz, gz + nz_own)

    # contributions on ALL working levels (D(P) has no z-stencil, so ghost
    # levels are locally computable); ghost rows use clipped sigma values
    dsig_w = geom.lev3(geom.dsigma)
    sig_w = geom.lev3(geom.sigma_mid)
    contrib_div_w = dsig_w * div_p
    contrib_phi_w = (dsig_w / sig_w) * Phi
    # zero the ghost contributions that fall outside the physical column
    # (edge-replicated sigma would otherwise double-count at the domain
    # top/bottom)
    for k in range(gz):
        if geom.extent.z0 - gz + k < 0:
            contrib_div_w[k] = 0.0
            contrib_phi_w[k] = 0.0
        kk = nz_w - 1 - k
        if geom.extent.z1 + gz - 1 - k >= geom.grid.nz:
            contrib_div_w[kk] = 0.0
            contrib_phi_w[kk] = 0.0

    own_sum = np.stack(
        [
            contrib_div_w[owned].sum(axis=0),
            contrib_phi_w[owned].sum(axis=0),
        ]
    )
    prefix = exscan(own_sum)      # sums over ranks below (smaller z0)
    total = allreduce(own_sum)
    column_sum = total[0]
    h_total = total[1]

    # S at the top interface of the working window: the prefix over all
    # earlier ranks minus this rank's ghost-below contributions
    ghost_below_div = contrib_div_w[:gz].sum(axis=0)
    ghost_below_phi = contrib_phi_w[:gz].sum(axis=0)
    s_start = prefix[0] - ghost_below_div
    h_start = prefix[1] - ghost_below_phi

    ny_w, nx_w = p_fac.shape
    s_iface_w = np.empty((nz_w + 1, ny_w, nx_w))
    s_iface_w[0] = s_start
    np.cumsum(contrib_div_w, axis=0, out=s_iface_w[1:])
    s_iface_w[1:] += s_start

    # suffix sums of phi contributions: H_suffix[k] = sum_{l >= k} h_l
    h_prefix_w = np.empty((nz_w + 1, ny_w, nx_w))
    h_prefix_w[0] = h_start
    np.cumsum(contrib_phi_w, axis=0, out=h_prefix_w[1:])
    h_prefix_w[1:] += h_start
    h_suffix_w = h_total[None] - h_prefix_w  # at interfaces

    sig_if = geom.sigma_iface[:, None, None]
    pw_iface = sig_if * column_sum[None] - s_iface_w
    w_iface = pw_iface / p_fac[None]
    sdot_iface = pw_iface / (p_fac[None] ** 2)
    phi_prime = (
        constants.B_GRAVITY_WAVE / p_fac[None]
        * (h_suffix_w[:-1] - 0.5 * contrib_phi_w)
    )

    return VerticalDiagnostics(
        div_p=div_p,
        column_sum=column_sum,
        pw_iface=pw_iface,
        w_iface=w_iface,
        sdot_iface=sdot_iface,
        phi_prime=phi_prime,
        p_fac=p_fac,
    )
