"""The collection operator ``C``: vertical-integral diagnostics.

The fourth component of the adaptation function sums ``Delta sigma_k *
D(P)`` over the whole column (Sec. 4.1); the same column integrals also
yield the interface vertical velocities (``PW``, ``W``, ``sigma-dot``) used
by ``Omega^(1)`` and ``L3``, and the hydrostatic geopotential perturbation
``phi'`` used by the pressure-gradient terms.  Under a decomposition with
``p_z > 1`` all of them require one collective along the z direction — this
is exactly the communication the paper's operator ``C`` stands for, and the
one whose frequency the approximate nonlinear iteration (Sec. 4.2.2)
reduces.

The collective is implemented as a single allgather along the z
sub-communicator of the per-level contributions (two stacked fields), after
which each rank holds the full column and computes all integrals locally.
Ring allgather matches the data-movement lower bound of Theorem 4.2.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import constants
from repro.obs.spans import traced
from repro.operators.geometry import WorkingGeometry
from repro.operators.shifts import sx_into, sy_into
from repro.operators.staggering import ddx_u2c, ddy_v2c, to_u, to_v
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import p_factor

#: Default reference stratification shared by every operator call.
DEFAULT_REFERENCE = StandardAtmosphere()


#: Type of the z-direction gather hook: maps the owned-level contribution
#: stack ``(2, nz_own, ny_w, nx_w)`` to the full-column stack
#: ``(2, nz, ny_w, nx_w)``.  ``None`` means the caller owns the full column.
GatherFn = Callable[[np.ndarray], np.ndarray]


class VerticalGeomCache:
    """Geometry-derived constants of the ``C`` operator, computed once.

    The seed path rebuilds these small arrays (owned-level slices, clipped
    interface/level index maps, broadcast metric rows) on every call; the
    workspace fast path hoists them here.  All values are bit-identical to
    what the seed expressions produce.
    """

    def __init__(self, geom: WorkingGeometry) -> None:
        gz = geom.gz
        nz = geom.grid.nz
        nz_own = geom.extent.nz
        self.owned = slice(gz, gz + nz_own)
        dsig_own = geom.dsigma[self.owned]
        sig_own = geom.sigma_mid[self.owned]
        self.dsig_own3 = geom.lev3(dsig_own)
        self.ratio_own3 = geom.lev3(dsig_own / sig_own)
        self.k_if = np.clip(
            np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz + 1), 0, nz
        )
        self.k_lev = np.clip(
            np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz), 0, nz - 1
        )
        self.k_if_identity = bool(np.array_equal(self.k_if, np.arange(nz + 1)))
        self.k_lev_identity = bool(np.array_equal(self.k_lev, np.arange(nz)))
        self.sig_if3 = geom.sigma_iface[:, None, None]
        self.a_sin_c3 = geom.grid.radius * geom.row3(geom.sin_c)
        self.sin_v_fac2 = geom.row2(geom.sin_v)


@dataclass
class VerticalDiagnostics:
    """Output bundle of one application of the ``C`` operator.

    All arrays are sized to the *working* (ghost-extended) shapes.

    Attributes
    ----------
    div_p:
        ``D(P)`` at centres, ``(nz_w, ny_w, nx_w)`` (reused by the
        adaptation stencil terms).
    column_sum:
        ``S_T = sum_k Delta sigma_k D(P)_k`` over the full column,
        ``(ny_w, nx_w)``.
    pw_iface, w_iface, sdot_iface:
        ``PW``, ``W = PW / P`` and ``sigma-dot = PW / P^2`` on the working
        z interfaces, ``(nz_w + 1, ny_w, nx_w)``; interface ``w`` sits above
        level ``w`` (i.e. at global interface ``z0 - gz + w``).
    phi_prime:
        Hydrostatic geopotential perturbation at mid-levels,
        ``(nz_w, ny_w, nx_w)``.
    p_fac:
        The transform factor ``P`` at centres, ``(ny_w, nx_w)``.
    """

    div_p: np.ndarray
    column_sum: np.ndarray
    pw_iface: np.ndarray
    w_iface: np.ndarray
    sdot_iface: np.ndarray
    phi_prime: np.ndarray
    p_fac: np.ndarray


def divergence_dp(
    U: np.ndarray, V: np.ndarray, p_fac: np.ndarray, geom: WorkingGeometry
) -> np.ndarray:
    """``D(P) = (1/(a sin theta)) (d(PU)/dlambda + d(PV sin theta)/dtheta)``.

    Eq. (6), evaluated at cell centres with the natural C-grid flux
    differences (U fluxes at zonal interfaces, V fluxes at meridional
    interfaces).
    """
    a = geom.grid.radius
    flux_x = to_u(p_fac)[None] * U
    dflux_x = ddx_u2c(flux_x, geom.grid.dlambda)
    flux_y = (to_v(p_fac) * geom.row2(geom.sin_v))[None] * V
    dflux_y = ddy_v2c(flux_y, geom.grid.dtheta)
    return (dflux_x + dflux_y) / (a * geom.row3(geom.sin_c))


@traced("vertical", "operator")
def compute_vertical_diagnostics(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    geom: WorkingGeometry,
    gather: GatherFn | None = None,
    reference: StandardAtmosphere = DEFAULT_REFERENCE,
    ws=None,
    cache: VerticalGeomCache | None = None,
) -> VerticalDiagnostics:
    """Apply the ``C`` operator.

    Parameters
    ----------
    U, V, Phi, psa:
        Working arrays (ghosts filled to at least width 1 in y).
    geom:
        Working geometry; its extent defines which z levels are *owned*
        (ghost levels are excluded from the column contributions so they
        are never double counted).
    gather:
        The z-collective hook; ``None`` for serial / ``p_z = 1``.
    ws:
        Optional :class:`~repro.core.workspace.Workspace`; when given, all
        temporaries and the returned bundle's arrays come from the pool
        (recycle them with ``ws.give_vd`` when the bundle dies) and the
        results are bit-identical to the allocating path.
    """
    if ws is not None:
        return _compute_vertical_diagnostics_ws(
            U, V, Phi, psa, geom, gather, ws, cache or VerticalGeomCache(geom)
        )
    ps = psa + constants.P_REFERENCE
    p_fac = p_factor(ps)

    div_p = divergence_dp(U, V, p_fac, geom)

    gz = geom.gz
    nz_w = U.shape[0]
    nz_own = geom.extent.nz
    owned = slice(gz, gz + nz_own)

    # per-level contributions on owned levels
    dsig_own = geom.lev3(geom.dsigma[owned])
    sig_own = geom.lev3(geom.sigma_mid[owned])
    contrib_div = dsig_own * div_p[owned]               # for PW / column sum
    contrib_phi = (dsig_own / sig_own) * Phi[owned]     # for phi'

    stack = np.stack([contrib_div, contrib_phi])
    if gather is not None:
        stack = gather(stack)
    if stack.shape[1] != geom.grid.nz:
        raise ValueError(
            f"column stack has {stack.shape[1]} levels, expected {geom.grid.nz}"
        )
    col_div, col_phi = stack[0], stack[1]

    # global prefix sums at interfaces: S_iface[k] = sum_{l<k} contrib[l]
    ny_w, nx_w = p_fac.shape
    s_iface = np.zeros((geom.grid.nz + 1, ny_w, nx_w))
    np.cumsum(col_div, axis=0, out=s_iface[1:])
    column_sum = s_iface[-1]

    # suffix sums of the phi' contributions: H_suffix[k] = sum_{l>=k} h_l
    h_suffix = np.zeros((geom.grid.nz + 1, ny_w, nx_w))
    h_suffix[:-1] = np.cumsum(col_phi[::-1], axis=0)[::-1]

    # slice the global interface/level ranges down to the working window
    k_if = np.clip(
        np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz + 1), 0, geom.grid.nz
    )
    k_lev = np.clip(
        np.arange(geom.extent.z0 - gz, geom.extent.z1 + gz), 0, geom.grid.nz - 1
    )

    sig_if = geom.sigma_iface[:, None, None]
    pw_iface = sig_if * column_sum[None] - s_iface[k_if]
    w_iface = pw_iface / p_fac[None]
    sdot_iface = pw_iface / (p_fac[None] ** 2)

    # phi'_k = (b / P) * (suffix_k - h_k / 2)   (half-level centring).
    # This is the perturbation integral of T'' = T - T~(p_local); the
    # reference part of the sigma-coordinate pressure-gradient force does
    # NOT vanish but collapses to the barotropic term
    # R T~(p_s) grad(ln p_es), which lives in the adaptation operator's
    # pressure-gradient terms (see repro.operators.adaptation).
    h_lev = col_phi[k_lev]
    phi_prime = (
        constants.B_GRAVITY_WAVE / p_fac[None]
        * (h_suffix[k_lev] - 0.5 * h_lev)
    )

    if nz_w != phi_prime.shape[0]:  # pragma: no cover - internal consistency
        raise AssertionError("working level count mismatch")

    return VerticalDiagnostics(
        div_p=div_p,
        column_sum=column_sum,
        pw_iface=pw_iface,
        w_iface=w_iface,
        sdot_iface=sdot_iface,
        phi_prime=phi_prime,
        p_fac=p_fac,
    )


def _compute_vertical_diagnostics_ws(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    geom: WorkingGeometry,
    gather: GatherFn | None,
    ws,
    cache: VerticalGeomCache,
) -> VerticalDiagnostics:
    """Pool-backed ``C`` operator, bit-identical to the allocating path.

    Every floating-point operation below reproduces the exact binary-op
    sequence of :func:`compute_vertical_diagnostics` (only output buffers
    are preallocated; scalar-factor multiplies commute bitwise in IEEE
    arithmetic), so results match the seed path to the last bit.
    """
    dlam = geom.grid.dlambda
    dth = geom.grid.dtheta
    nz = geom.grid.nz
    nz_w = U.shape[0]
    ny_w, nx_w = psa.shape

    # P = sqrt((psa + p0 - pt) / p0), same op chain as p_factor(psa + p0)
    p_fac = ws.take((ny_w, nx_w))
    np.add(psa, constants.P_REFERENCE, out=p_fac)
    np.subtract(p_fac, constants.P_TOP, out=p_fac)
    if np.any(p_fac <= 0):
        raise ValueError("surface pressure must exceed the model-top pressure")
    np.divide(p_fac, constants.P_REFERENCE, out=p_fac)
    np.sqrt(p_fac, out=p_fac)

    # D(P), following divergence_dp term by term
    div_p = ws.take((nz_w, ny_w, nx_w))
    t3a = ws.take((nz_w, ny_w, nx_w))
    t3b = ws.take((nz_w, ny_w, nx_w))
    t2a = ws.take((ny_w, nx_w))
    # flux_x = to_u(p_fac)[None] * U ; dflux_x = ddx_u2c(flux_x)
    sx_into(p_fac, -1, t2a)
    np.add(t2a, p_fac, out=t2a)
    np.multiply(t2a, 0.5, out=t2a)
    np.multiply(t2a[None], U, out=t3a)
    sx_into(t3a, 1, t3b)
    np.subtract(t3b, t3a, out=t3b)
    np.divide(t3b, dlam, out=t3b)                      # dflux_x
    # flux_y = (to_v(p_fac) * sin_v)[None] * V ; dflux_y = ddy_v2c(flux_y)
    sy_into(p_fac, 1, t2a)
    np.add(p_fac, t2a, out=t2a)
    np.multiply(t2a, 0.5, out=t2a)
    np.multiply(t2a, cache.sin_v_fac2, out=t2a)
    np.multiply(t2a[None], V, out=t3a)                 # flux_y
    sy_into(t3a, -1, div_p)
    np.subtract(t3a, div_p, out=div_p)
    np.divide(div_p, dth, out=div_p)                   # dflux_y
    np.add(t3b, div_p, out=div_p)
    np.divide(div_p, cache.a_sin_c3, out=div_p)

    # per-level contributions on owned levels, stacked for the z-collective
    nz_own = geom.extent.nz
    owned = cache.owned
    stack = ws.take((2, nz_own, ny_w, nx_w))
    np.multiply(cache.dsig_own3, div_p[owned], out=stack[0])
    np.multiply(cache.ratio_own3, Phi[owned], out=stack[1])

    gathered = None
    if gather is not None:
        gathered = gather(stack)
        ws.give(stack)
        stack = None
    col = gathered if gathered is not None else stack
    if col.shape[1] != nz:
        raise ValueError(
            f"column stack has {col.shape[1]} levels, expected {nz}"
        )
    col_div, col_phi = col[0], col[1]

    # interface prefix sums of D(P) contributions
    s_iface = ws.take((nz + 1, ny_w, nx_w))
    s_iface[0] = 0.0
    np.cumsum(col_div, axis=0, out=s_iface[1:])
    column_sum = ws.take((ny_w, nx_w))
    np.copyto(column_sum, s_iface[-1])

    # suffix sums of the phi' contributions
    h_suffix = ws.take((nz + 1, ny_w, nx_w))
    tz = ws.take((nz, ny_w, nx_w))
    np.cumsum(col_phi[::-1], axis=0, out=tz)
    h_suffix[:-1] = tz[::-1]
    h_suffix[-1] = 0.0

    pw_iface = ws.take((nz_w + 1, ny_w, nx_w))
    np.multiply(cache.sig_if3, column_sum[None], out=pw_iface)
    full_column = s_iface.shape[0] == nz_w + 1
    if cache.k_if_identity and full_column:
        np.subtract(pw_iface, s_iface, out=pw_iface)
    else:
        tif = ws.take((nz_w + 1, ny_w, nx_w))
        np.take(s_iface, cache.k_if, axis=0, out=tif)
        np.subtract(pw_iface, tif, out=pw_iface)
        ws.give(tif)

    w_iface = ws.take((nz_w + 1, ny_w, nx_w))
    np.divide(pw_iface, p_fac[None], out=w_iface)
    np.power(p_fac, 2, out=t2a)
    sdot_iface = ws.take((nz_w + 1, ny_w, nx_w))
    np.divide(pw_iface, t2a[None], out=sdot_iface)

    # phi'_k = (b / P) * (H_suffix[k] - h_k / 2)
    phi_prime = ws.take((nz_w, ny_w, nx_w))
    lev_identity = cache.k_lev_identity and nz_w == nz
    if lev_identity:
        h_lev = col_phi
        hs_lev = h_suffix[:-1]
    else:
        h_lev = ws.take((nz_w, ny_w, nx_w))
        np.take(col_phi, cache.k_lev, axis=0, out=h_lev)
        hs_lev = ws.take((nz_w, ny_w, nx_w))
        np.take(h_suffix, cache.k_lev, axis=0, out=hs_lev)
    np.multiply(h_lev, 0.5, out=phi_prime)
    np.subtract(hs_lev, phi_prime, out=phi_prime)
    np.divide(constants.B_GRAVITY_WAVE, p_fac, out=t2a)
    np.multiply(phi_prime, t2a[None], out=phi_prime)
    if not lev_identity:
        ws.give(h_lev, hs_lev)

    ws.give(stack, t3a, t3b, t2a, s_iface, h_suffix, tz)

    return VerticalDiagnostics(
        div_p=div_p,
        column_sum=column_sum,
        pw_iface=pw_iface,
        w_iface=w_iface,
        sdot_iface=sdot_iface,
        phi_prime=phi_prime,
        p_fac=p_fac,
    )


@traced("vertical-scan", "operator")
def compute_vertical_diagnostics_scan(
    U: np.ndarray,
    V: np.ndarray,
    Phi: np.ndarray,
    psa: np.ndarray,
    geom: WorkingGeometry,
    exscan: Callable[[np.ndarray], np.ndarray],
    allreduce: Callable[[np.ndarray], np.ndarray],
    reference: StandardAtmosphere = DEFAULT_REFERENCE,
) -> VerticalDiagnostics:
    """The ``C`` operator via exscan + allreduce (volume-optimal variant).

    The allgather implementation moves ``(p_z - 1) * n`` words per rank;
    prefix sums only need each rank's *partial sums*, so an exclusive scan
    plus an allreduce of the column totals moves ``O(n)`` — matching the
    Theorem 4.2 lower bound's ring constant.  Identical results to
    :func:`compute_vertical_diagnostics` (up to summation order round-off).

    ``exscan(x)`` must return the sum of ``x`` over all z-ranks *before*
    this one (zeros on the first); ``allreduce(x)`` the sum over all
    z-ranks.  Both operate on arrays of shape ``(2, ny_w, nx_w)`` — the
    stacked divergence and phi' contributions.
    """
    ps = psa + constants.P_REFERENCE
    p_fac = p_factor(ps)
    div_p = divergence_dp(U, V, p_fac, geom)

    gz = geom.gz
    nz_w = U.shape[0]
    nz_own = geom.extent.nz
    owned = slice(gz, gz + nz_own)

    # contributions on ALL working levels (D(P) has no z-stencil, so ghost
    # levels are locally computable); ghost rows use clipped sigma values
    dsig_w = geom.lev3(geom.dsigma)
    sig_w = geom.lev3(geom.sigma_mid)
    contrib_div_w = dsig_w * div_p
    contrib_phi_w = (dsig_w / sig_w) * Phi
    # zero the ghost contributions that fall outside the physical column
    # (edge-replicated sigma would otherwise double-count at the domain
    # top/bottom)
    for k in range(gz):
        if geom.extent.z0 - gz + k < 0:
            contrib_div_w[k] = 0.0
            contrib_phi_w[k] = 0.0
        kk = nz_w - 1 - k
        if geom.extent.z1 + gz - 1 - k >= geom.grid.nz:
            contrib_div_w[kk] = 0.0
            contrib_phi_w[kk] = 0.0

    own_sum = np.stack(
        [
            contrib_div_w[owned].sum(axis=0),
            contrib_phi_w[owned].sum(axis=0),
        ]
    )
    prefix = exscan(own_sum)      # sums over ranks below (smaller z0)
    total = allreduce(own_sum)
    column_sum = total[0]
    h_total = total[1]

    # S at the top interface of the working window: the prefix over all
    # earlier ranks minus this rank's ghost-below contributions
    ghost_below_div = contrib_div_w[:gz].sum(axis=0)
    ghost_below_phi = contrib_phi_w[:gz].sum(axis=0)
    s_start = prefix[0] - ghost_below_div
    h_start = prefix[1] - ghost_below_phi

    ny_w, nx_w = p_fac.shape
    s_iface_w = np.empty((nz_w + 1, ny_w, nx_w))
    s_iface_w[0] = s_start
    np.cumsum(contrib_div_w, axis=0, out=s_iface_w[1:])
    s_iface_w[1:] += s_start

    # suffix sums of phi contributions: H_suffix[k] = sum_{l >= k} h_l
    h_prefix_w = np.empty((nz_w + 1, ny_w, nx_w))
    h_prefix_w[0] = h_start
    np.cumsum(contrib_phi_w, axis=0, out=h_prefix_w[1:])
    h_prefix_w[1:] += h_start
    h_suffix_w = h_total[None] - h_prefix_w  # at interfaces

    sig_if = geom.sigma_iface[:, None, None]
    pw_iface = sig_if * column_sum[None] - s_iface_w
    w_iface = pw_iface / p_fac[None]
    sdot_iface = pw_iface / (p_fac[None] ** 2)
    phi_prime = (
        constants.B_GRAVITY_WAVE / p_fac[None]
        * (h_suffix_w[:-1] - 0.5 * contrib_phi_w)
    )

    return VerticalDiagnostics(
        div_p=div_p,
        column_sum=column_sum,
        pw_iface=pw_iface,
        w_iface=w_iface,
        sdot_iface=sdot_iface,
        phi_prime=phi_prime,
        p_fac=p_fac,
    )
