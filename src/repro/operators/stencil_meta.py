"""Machine-readable Tables 1-3: the paper's declared stencil footprints.

Each term of the adaptation process (Table 1), advection process (Table 2)
and smoothing (Table 3) is recorded with the exact index offsets the paper
lists.  Two uses:

* the halo machinery sizes ghost zones by the *maxima* of these extents
  (so the communication model is faithful to the paper even where our
  discretization is narrower), and
* the footprint tests verify that our discrete operators' *measured*
  dependencies (see :mod:`repro.operators.footprint`) stay within the
  declared extents.

Offsets are relative to the updated point: ``x`` offsets in units of
``i``, ``y`` of ``j``, ``z`` of ``k``.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StencilEntry:
    """Declared dependency offsets of one term."""

    term: str
    x: tuple[int, ...]
    y: tuple[int, ...]
    z: tuple[int, ...]

    @property
    def radius_x(self) -> int:
        return max(abs(o) for o in self.x)

    @property
    def radius_y(self) -> int:
        return max(abs(o) for o in self.y)

    @property
    def radius_z(self) -> int:
        return max(abs(o) for o in self.z)


#: Table 1 — stencil computation in the adaptation process.
TABLE1_ADAPTATION: tuple[StencilEntry, ...] = (
    StencilEntry("P_lambda_1", (0, 1, -1, -2), (0,), (0, 1)),
    StencilEntry("P_lambda_2", (0, 1, -1, -2), (0,), (0,)),
    StencilEntry("f_star_V", (0, -1), (0, -1), (0,)),
    StencilEntry("P_theta_1", (0,), (0, 1), (0, 1)),
    StencilEntry("P_theta_2", (0,), (0, 1), (0,)),
    StencilEntry("f_star_U", (0, 1), (0, 1), (0,)),
    StencilEntry("Omega_1", (0,), (0,), (0, 1)),
    StencilEntry("Omega_2_theta", (0,), (0, 1, -1), (0,)),
    StencilEntry("Omega_2_lambda", (0, 1, -1, -2, 3, -3), (0,), (0,)),
    StencilEntry("D_P", (0, -1, 2, 3, -3), (0, -1), (0,)),
    StencilEntry("D_sa", (0, 1, -1), (0, 1, -1), (0,)),
)

#: Table 2 — stencil computation in the advection process.
TABLE2_ADVECTION: tuple[StencilEntry, ...] = (
    StencilEntry("L1_U", (0, 1, -1, 2, -2, 3, -3), (0,), (0, 1)),
    StencilEntry("L2_U", (0, -1), (0, 1, -1), (0,)),
    StencilEntry("L3_U", (0, -1), (0,), (0, 1, -1)),
    StencilEntry("L1_V", (0, 1, -1, 2, 3, -3), (0, 1), (0,)),
    StencilEntry("L2_V", (0,), (0, 1, -1), (0,)),
    StencilEntry("L3_V", (0,), (0, 1), (0, 1, -1)),
    StencilEntry("L1_Phi", (0, 1, -1, 2, 3, -3), (0,), (0,)),
    StencilEntry("L2_Phi", (0,), (0, 1, -1), (0,)),
    StencilEntry("L3_Phi", (0,), (0,), (0, 1, -1)),
)

#: Table 3 — stencil computation in the smoothing.
TABLE3_SMOOTHING: tuple[StencilEntry, ...] = (
    StencilEntry("P1", (0, 1, -1, 2, -2), (0,), (0,)),
    StencilEntry("P2", (0, 1, -1, 2, -2), (0, 1, -1, 2, -2), (0,)),
)


def max_radii(entries: tuple[StencilEntry, ...]) -> tuple[int, int, int]:
    """``(rx, ry, rz)`` maxima over a table."""
    return (
        max(e.radius_x for e in entries),
        max(e.radius_y for e in entries),
        max(e.radius_z for e in entries),
    )


#: Paper-faithful per-update halo radii used by the communication model.
ADAPTATION_RADII = max_radii(TABLE1_ADAPTATION)  # (3, 1, 1)
ADVECTION_RADII = max_radii(TABLE2_ADVECTION)    # (3, 1, 1)
SMOOTHING_RADII = max_radii(TABLE3_SMOOTHING)    # (2, 2, 0)


def render_table(entries: tuple[StencilEntry, ...], title: str) -> str:
    """Human-readable rendering (the ``figures tables`` target)."""
    def fmt(offs: tuple[int, ...], sym: str) -> str:
        parts = []
        for o in sorted(set(offs)):
            if o == 0:
                parts.append(sym)
            else:
                parts.append(f"{sym}{o:+d}")
        return ", ".join(parts)

    lines = [title, "-" * len(title)]
    lines.append(
        f"{'Term':<16} {'x direction':<26} "
        f"{'y direction':<20} {'z direction'}"
    )
    for e in entries:
        lines.append(
            f"{e.term:<16} {fmt(e.x, 'i'):<26} {fmt(e.y, 'j'):<20} {fmt(e.z, 'k')}"
        )
    return "\n".join(lines)
