"""Discrete operators of the dynamical core.

Section 4.1 of the paper factors one model step into five operators; this
package implements each of them plus the shared stencil machinery:

* :mod:`repro.operators.geometry` / :mod:`repro.operators.shifts` — working
  arrays with ghost zones, pole mirror conditions, metric terms;
* :mod:`repro.operators.vertical` — the **C** operator: vertical-integral
  diagnostics (column divergence sum, sigma-dot / W, hydrostatic
  geopotential), the only place a z-direction collective is required;
* :mod:`repro.operators.adaptation` — the **A** operator: pressure
  gradient, Coriolis and Omega terms plus the surface dissipation
  (pure stencil given the C diagnostics);
* :mod:`repro.operators.advection` — the **L** operator: the flux-form
  advection terms L1, L2, L3 of Eq. (3);
* :mod:`repro.operators.filter` — the **F** operator: per-latitude Fourier
  polar filtering;
* :mod:`repro.operators.smoothing` — the **S** operator: the 4th-order
  smoothers P1/P2 and their former/later split ``S = S2 o S1``
  (Sec. 4.3.2);
* :mod:`repro.operators.stencil_meta` / ``footprint`` — machine-readable
  Tables 1-3 and automatic footprint extraction.
"""
from repro.operators.geometry import WorkingGeometry
from repro.operators.shifts import (
    sx, sy, sz,
    fill_pole_ghosts, fill_z_edge_ghosts,
)
from repro.operators.vertical import VerticalDiagnostics, compute_vertical_diagnostics
from repro.operators.adaptation import adaptation_tendency
from repro.operators.advection import advection_tendency
from repro.operators.filter import PolarFilter
from repro.operators.smoothing import (
    FieldSmoother,
    smooth_full,
    smooth_state,
    smoothers_for,
)

__all__ = [
    "WorkingGeometry",
    "sx", "sy", "sz",
    "fill_pole_ghosts", "fill_z_edge_ghosts",
    "VerticalDiagnostics", "compute_vertical_diagnostics",
    "adaptation_tendency",
    "advection_tendency",
    "PolarFilter",
    "FieldSmoother", "smooth_full", "smooth_state", "smoothers_for",
]
