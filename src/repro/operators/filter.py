"""The Fourier polar filter ``F`` (Sec. 2.2 / 4.2.1).

Grid lines of the latitude-longitude mesh cluster at the poles, so
explicit time stepping would be CFL-limited by the tiny physical zonal
spacing there.  The classical cure (Umscheid & Sankar-Rao 1971, the
paper's [21]) is to damp, on every latitude circle poleward of a filter
latitude, the zonal wavenumbers that the local physical resolution cannot
support: wavenumber ``m`` is damped by ``min(1, (m_c / m)^2)`` with the
cutoff ``m_c(theta) = (nx/2) * sin(theta) / cos(lat_f)``, which makes the
effective zonal resolution at the filtered rows no finer than at the
filter boundary.

Under ``p_x > 1`` the per-row FFTs require a collective along x — the
dominant communication term by Theorem 4.1; under the Y-Z decomposition
each rank owns full rows and the filter is communication-free.  The filter
object precomputes its damping factors once per geometry; applying it is
one rfft / scale / irfft per filtered row family.
"""
from __future__ import annotations

import numpy as np

from repro.constants import ModelParameters
from repro.operators.geometry import WorkingGeometry
from repro.state.variables import ModelState


#: available damping profiles (see :func:`damping_factors`)
FILTER_PROFILES = ("quadratic", "sharp", "exponential")


def damping_factors(
    sin_rows: np.ndarray,
    nx: int,
    filter_latitude: float,
    profile: str = "quadratic",
) -> tuple[np.ndarray, np.ndarray]:
    """(row mask, per-row factor matrix) for one row family.

    ``sin_rows`` are the |sin(colatitude)| of the (possibly ghost-extended)
    rows.  Returns ``mask`` of rows where any damping applies and
    ``factors`` of shape ``(n_masked_rows, nx // 2 + 1)``.

    The per-wavenumber damping beyond the local cutoff
    ``m_c(theta) = (nx/2) sin(theta)/cos(lat_f)`` follows ``profile``:

    * ``"quadratic"`` — ``min(1, (m_c/m)^2)``: gentle roll-off (default);
    * ``"sharp"`` — hard cutoff: 1 for ``m <= m_c``, 0 above;
    * ``"exponential"`` — Gaussian taper ``exp(-((m-m_c)/m_c)^2)`` above
      the cutoff: the smoothest transition, least Gibbs ringing.
    """
    if profile not in FILTER_PROFILES:
        raise ValueError(
            f"unknown filter profile {profile!r}; pick from {FILTER_PROFILES}"
        )
    sin_f = float(np.cos(filter_latitude))
    mask = sin_rows < sin_f
    m = np.arange(nx // 2 + 1, dtype=np.float64)
    m_c = np.maximum(1.0, (nx / 2.0) * sin_rows[mask] / sin_f)
    if profile == "sharp":
        factors = (m[None, :] <= m_c[:, None]).astype(np.float64)
    elif profile == "exponential":
        over = np.maximum(0.0, m[None, :] - m_c[:, None]) / m_c[:, None]
        factors = np.exp(-(over**2))
    else:  # quadratic
        with np.errstate(divide="ignore"):
            ratio = m_c[:, None] / np.where(m > 0, m, 1.0)[None, :]
        factors = np.minimum(1.0, ratio**2)
    factors[:, 0] = 1.0  # never touch the zonal mean
    return mask, factors


#: memoised (mask, factors) pairs keyed by the full damping_factors input
_PLAN_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_PLAN_STATS = {"hits": 0, "misses": 0}


def filter_plan(
    sin_rows: np.ndarray,
    nx: int,
    filter_latitude: float,
    profile: str = "quadratic",
) -> tuple[np.ndarray, np.ndarray]:
    """Cached :func:`damping_factors`.

    Every distributed rank builds the same per-geometry damping tables at
    construction time — under the thread backend that is ``nranks``
    identical trig/power evaluations per run, and benchmark sweeps rebuild
    them for every repeat.  Plans are memoised on the exact inputs
    (``sin_rows`` bytes, ``nx``, latitude, profile) and returned as
    read-only arrays shared between all users; callers never mutate them
    (the filter multiplies into the spectrum, not into the factors).
    """
    key = (sin_rows.tobytes(), int(nx), float(filter_latitude), profile)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _PLAN_STATS["hits"] += 1
        return cached
    _PLAN_STATS["misses"] += 1
    mask, factors = damping_factors(sin_rows, nx, filter_latitude, profile)
    mask.setflags(write=False)
    factors.setflags(write=False)
    _PLAN_CACHE[key] = (mask, factors)
    return mask, factors


def plan_cache_stats() -> dict[str, int]:
    """Current filter-plan cache counters (``hits``, ``misses``, ``size``)."""
    return {**_PLAN_STATS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Drop all cached filter plans and reset the counters (tests/benchmarks)."""
    _PLAN_CACHE.clear()
    _PLAN_STATS["hits"] = 0
    _PLAN_STATS["misses"] = 0


class PolarFilter:
    """Per-geometry polar filter over full latitude circles.

    Requires ``geom.full_x`` (serial or Y-Z decomposition); the X-Y
    distributed core gathers rows along its x sub-communicator and calls
    :func:`apply_filter_rows` on the assembled circles instead.
    """

    def __init__(self, geom: WorkingGeometry, params: ModelParameters) -> None:
        if not geom.full_x:
            raise ValueError(
                "PolarFilter needs full latitude circles; "
                "use apply_filter_rows after an x-gather instead"
            )
        self.geom = geom
        self.params = params
        nx = geom.grid.nx
        profile = getattr(params, "filter_profile", "quadratic")
        self.mask_c, self.factors_c = filter_plan(
            geom.sin_c, nx, params.filter_latitude, profile
        )
        self.mask_v, self.factors_v = filter_plan(
            geom.sin_v, nx, params.filter_latitude, profile
        )

    @property
    def active(self) -> bool:
        """Whether any working row is filtered."""
        return bool(self.mask_c.any() or self.mask_v.any())

    @property
    def n_filtered_rows(self) -> int:
        """Number of filtered rows across both row families."""
        return int(self.mask_c.sum() + self.mask_v.sum())

    def apply(self, arr: np.ndarray, rows: str = "c") -> None:
        """Filter ``arr`` in place along x on its filtered rows.

        ``rows`` selects the row family: ``"c"`` for centre-row fields
        (U, Phi, p'_sa), ``"v"`` for V-row fields.
        """
        mask, factors = (
            (self.mask_c, self.factors_c)
            if rows == "c"
            else (self.mask_v, self.factors_v)
        )
        if not mask.any():
            return
        apply_filter_rows(arr, mask, factors)

    def apply_state(self, state: ModelState) -> ModelState:
        """Filter all four components of a state/tendency in place; returns it."""
        self.apply(state.U, rows="c")
        self.apply(state.V, rows="v")
        self.apply(state.Phi, rows="c")
        self.apply(state.psa, rows="c")
        return state


def apply_filter_rows(
    arr: np.ndarray, mask: np.ndarray, factors: np.ndarray
) -> None:
    """rfft / damp / irfft the masked rows of ``arr`` in place.

    ``arr`` is ``(..., ny_w, nx)`` with the *full* longitude circle on the
    last axis; ``factors`` matches :func:`damping_factors` output.
    """
    rows = arr[..., mask, :]
    spec = np.fft.rfft(rows, axis=-1)
    spec *= factors
    arr[..., mask, :] = np.fft.irfft(spec, n=arr.shape[-1], axis=-1)
