"""The smoothing operator ``S`` and its former/later split (Sec. 4.3.2).

``S(xi) = (P1(U), P1(V), P2(Phi), P2(p'_sa))`` with the 4th-difference
smoothers

.. math::

    P_1(\\varphi) = \\varphi - \\frac{\\beta}{2^4} \\delta_\\lambda^4 \\varphi,
    \\qquad
    P_2(\\varphi) = \\varphi - \\frac{\\beta}{2^4}
        (\\delta_\\lambda^4 + \\delta_\\theta^4) \\varphi
        + \\frac{\\beta^2}{2^8} \\delta_\\theta^4 \\delta_\\lambda^4 \\varphi .

Both are linear in the contributions of the five y-offsets ``m = -2..2``
(Eq. 14), which is what enables the split ``S = S2 o S1``: *former
smoothing* applies, before the halo exchange, the offsets whose rows are
locally available; *later smoothing* adds the deferred offsets once the
exchanged rows arrive.  :class:`FieldSmoother` provides the full operator
and arbitrary offset subsets; the communication-avoiding core composes the
two stages from them.

Stability extension (documented in DESIGN.md): the paper's ``P1`` damps
``U``/``V`` along longitude only, which leaves meridional 2-grid noise in
the winds undamped; with our (non-IAP) advection discretization that noise
grows in long Held-Suarez runs.  ``FieldSmoother`` therefore supports an
optional ``beta_y`` 4th-difference term for the wind family
(``ModelParameters.smoothing_beta_y_uv``; set it to 0 for the paper-exact
operator).  The stencil extent stays within +-2 in x and y, so halo sizing
and the communication model are unchanged.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ModelParameters
from repro.obs.spans import traced
from repro.operators.shifts import sx, sx_into, sy, sy_into
from repro.state.variables import ModelState

#: 4th-difference weights for offsets -2..+2.
DELTA4_COEFFS = (1.0, -4.0, 6.0, -4.0, 1.0)

#: Offset subsets of the split (paper notation; ``m`` = contribution of
#: row ``j + m``):  S_L needs only north (smaller-j) rows, S_R only south.
OFFSETS_FULL = (-2, -1, 0, 1, 2)
OFFSETS_L = (0, -1, -2)       # S~_L:  own + north rows
OFFSETS_L_PRIME = (1, 2)      # S~'_L: the deferred south rows
OFFSETS_R = (0, 1, 2)         # S~_R:  own + south rows
OFFSETS_R_PRIME = (-1, -2)    # S~'_R: the deferred north rows


def delta4_x(a: np.ndarray) -> np.ndarray:
    """4th difference along longitude."""
    return sx(a, -2) - 4.0 * sx(a, -1) + 6.0 * a - 4.0 * sx(a, 1) + sx(a, 2)


def delta4_y(a: np.ndarray) -> np.ndarray:
    """4th difference along latitude."""
    return sy(a, -2) - 4.0 * sy(a, -1) + 6.0 * a - 4.0 * sy(a, 1) + sy(a, 2)


def _delta4_into(a: np.ndarray, out: np.ndarray, tmp: np.ndarray, shift) -> np.ndarray:
    """``delta4_x`` / ``delta4_y`` into ``out`` using scratch ``tmp``.

    Same binary-operation sequence as the allocating form, hence
    bit-identical; ``shift`` is :func:`~repro.operators.shifts.sx_into` or
    :func:`~repro.operators.shifts.sy_into`.
    """
    shift(a, -2, out)
    shift(a, -1, tmp)
    np.multiply(tmp, 4.0, out=tmp)
    np.subtract(out, tmp, out=out)
    np.multiply(a, 6.0, out=tmp)
    np.add(out, tmp, out=out)
    shift(a, 1, tmp)
    np.multiply(tmp, 4.0, out=tmp)
    np.subtract(out, tmp, out=out)
    shift(a, 2, tmp)
    np.add(out, tmp, out=out)
    return out


def delta4_x_into(a: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`delta4_x` (bit-identical)."""
    return _delta4_into(a, out, tmp, sx_into)


def delta4_y_into(a: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`delta4_y` (bit-identical)."""
    return _delta4_into(a, out, tmp, sy_into)


@dataclass(frozen=True)
class FieldSmoother:
    """One field family's smoother, decomposable by y-offset.

    ``cross=True`` gives the paper's ``P2`` (with the
    ``beta^2/2^8 delta_theta^4 delta_lambda^4`` cross term); ``cross=False``
    with ``beta_y=0`` gives the paper's ``P1``.
    """

    beta_x: float
    beta_y: float
    cross: bool

    def full(self, a: np.ndarray) -> np.ndarray:
        """Apply the complete smoother."""
        out = a - (self.beta_x / 16.0) * delta4_x(a)
        if self.beta_y:
            out = out - (self.beta_y / 16.0) * delta4_y(a)
        if self.cross:
            out = out + (
                self.beta_x * self.beta_y / 256.0
            ) * delta4_y(delta4_x(a))
        return out

    def full_into(self, a: np.ndarray, out: np.ndarray, ws) -> np.ndarray:
        """Allocation-free :meth:`full` into ``out`` (bit-identical).

        Reuses the ``delta4_x`` evaluation for the cross term — the seed
        path computes it twice; the value (and therefore the result) is
        identical, only the redundant work is dropped.
        """
        dx = ws.take(a.shape)
        tmp = ws.take(a.shape)
        t2 = ws.take(a.shape)
        delta4_x_into(a, dx, tmp)
        np.multiply(dx, self.beta_x / 16.0, out=out)
        np.subtract(a, out, out=out)
        if self.beta_y:
            delta4_y_into(a, t2, tmp)
            np.multiply(t2, self.beta_y / 16.0, out=t2)
            np.subtract(out, t2, out=out)
        if self.cross:
            delta4_y_into(dx, t2, tmp)
            np.multiply(t2, self.beta_x * self.beta_y / 256.0, out=t2)
            np.add(out, t2, out=out)
        ws.give(dx, tmp, t2)
        return out

    def offset_term(self, a: np.ndarray, m: int) -> np.ndarray:
        """The contribution ``S~_m`` of row ``j + m`` (Eq. 14).

        Summing over all five offsets reproduces :meth:`full` exactly
        (the x-operator commutes with row shifts).
        """
        c = DELTA4_COEFFS[m + 2]
        shifted = sy(a, m) if m else a
        term = np.zeros_like(a)
        if self.beta_y:
            term = term - (self.beta_y / 16.0) * c * shifted
        if self.cross:
            term = term + (
                self.beta_x * self.beta_y / 256.0
            ) * c * delta4_x(shifted)
        if m == 0:
            term = term + a - (self.beta_x / 16.0) * delta4_x(a)
        return term

    def partial(self, a: np.ndarray, offsets: tuple[int, ...]) -> np.ndarray:
        """``sum_{m in offsets} S~_m(a)`` — one partial smoothing stage."""
        if not offsets:
            raise ValueError("offsets must be non-empty")
        out = None
        for m in offsets:
            term = self.offset_term(a, m)
            out = term if out is None else out + term
        return out

    @property
    def has_y_stencil(self) -> bool:
        """Whether any deferred (non-zero-offset) contribution exists."""
        return bool(self.beta_y)


def smoothers_for(params: ModelParameters) -> dict[str, FieldSmoother]:
    """Per-field smoothers matching ``S`` (plus the stability extension)."""
    beta = params.smoothing_beta
    beta_uv = getattr(params, "smoothing_beta_y_uv", 0.0)
    wind = FieldSmoother(beta_x=beta, beta_y=beta_uv, cross=False)
    scalar = FieldSmoother(beta_x=beta, beta_y=beta, cross=True)
    return {"U": wind, "V": wind, "Phi": scalar, "psa": scalar}


# ---- convenience for the paper-exact standalone operators ------------------

def p1(a: np.ndarray, beta: float) -> np.ndarray:
    """The paper's zonal-only smoother (``U``/``V`` family)."""
    return FieldSmoother(beta_x=beta, beta_y=0.0, cross=False).full(a)


def p2(a: np.ndarray, beta: float) -> np.ndarray:
    """The paper's full smoother (``Phi``/``p'_sa`` family)."""
    return FieldSmoother(beta_x=beta, beta_y=beta, cross=True).full(a)


def smooth_full(
    state: ModelState, beta: float, beta_y_uv: float = 0.0
) -> ModelState:
    """The whole operator ``S`` applied to a state.

    ``beta_y_uv = 0`` reproduces the paper's definition exactly.
    """
    wind = FieldSmoother(beta_x=beta, beta_y=beta_y_uv, cross=False)
    scalar = FieldSmoother(beta_x=beta, beta_y=beta, cross=True)
    return ModelState(
        U=wind.full(state.U),
        V=wind.full(state.V),
        Phi=scalar.full(state.Phi),
        psa=scalar.full(state.psa),
    )


@traced("smoothing", "operator")
def smooth_state(state: ModelState, params: ModelParameters) -> ModelState:
    """``S`` with the per-field smoothers of ``params``."""
    sm = smoothers_for(params)
    return ModelState(
        U=sm["U"].full(state.U),
        V=sm["V"].full(state.V),
        Phi=sm["Phi"].full(state.Phi),
        psa=sm["psa"].full(state.psa),
    )


@traced("smoothing", "operator")
def smooth_state_into(
    state: ModelState,
    params: ModelParameters,
    out: ModelState,
    ws,
    smoothers: dict[str, FieldSmoother] | None = None,
) -> ModelState:
    """Allocation-free :func:`smooth_state` into ``out`` (bit-identical).

    ``out`` must not alias ``state`` (the smoother stencils read
    neighbours of every point they write).
    """
    sm = smoothers or smoothers_for(params)
    sm["U"].full_into(state.U, out.U, ws)
    sm["V"].full_into(state.V, out.V, ws)
    sm["Phi"].full_into(state.Phi, out.Phi, ws)
    sm["psa"].full_into(state.psa, out.psa, ws)
    return out
