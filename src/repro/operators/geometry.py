"""Working-array geometry: local (or global) extents, ghosts and metrics.

A :class:`WorkingGeometry` describes the arrays one rank (or the serial
core) operates on: the owned index block, the ghost widths, and metric
arrays (``sin``/``cos`` of colatitude, sigma-level thicknesses) extended
over the ghost rows with the physically correct mirror values.

The cross-pole extension uses that for a ghost colatitude ``theta``
outside ``[0, pi]`` the mirrored physical point has
``sin(theta_phys) = |sin(theta)|`` and ``cos(theta_phys) = cos(theta)``
(cosine is even about both poles), so the metric arrays can simply be
evaluated on the extended colatitudes.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.decomposition import BlockExtent
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels


@dataclass(frozen=True)
class WorkingGeometry:
    """Geometry of one rank's ghost-extended working arrays.

    Build with :meth:`build`; for the serial reference use
    :meth:`build_global`.
    """

    grid: LatLonGrid
    sigma: SigmaLevels
    extent: BlockExtent
    gy: int
    gz: int
    gx: int

    # extended metric arrays, filled by build()
    theta_c: np.ndarray = field(init=False, repr=False, compare=False)
    theta_v: np.ndarray = field(init=False, repr=False, compare=False)
    sin_c: np.ndarray = field(init=False, repr=False, compare=False)
    cos_c: np.ndarray = field(init=False, repr=False, compare=False)
    sin_v: np.ndarray = field(init=False, repr=False, compare=False)
    cos_v: np.ndarray = field(init=False, repr=False, compare=False)
    sigma_mid: np.ndarray = field(init=False, repr=False, compare=False)
    dsigma: np.ndarray = field(init=False, repr=False, compare=False)
    sigma_iface: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ext, gy, gz = self.extent, self.gy, self.gz
        grid = self.grid
        dth = grid.dtheta
        # extended centre-row colatitudes (may leave [0, pi]; see module doc)
        j = np.arange(ext.y0 - gy, ext.y1 + gy)
        theta_c = (j + 0.5) * dth
        theta_v = (j + 1.0) * dth
        sin_c = np.abs(np.sin(theta_c))
        cos_c = np.cos(theta_c)
        sin_v = np.abs(np.sin(theta_v))
        cos_v = np.cos(theta_v)
        # guard: |sin| can be exactly 0 only on a pole *interface* row,
        # where V vanishes identically; centre rows never hit 0 because
        # theta_c is offset by dth/2 from the poles.
        sin_v = np.where(sin_v == 0.0, np.sin(0.5 * dth), sin_v)

        # extended sigma levels: edge-replicated ghosts
        k = np.arange(ext.z0 - gz, ext.z1 + gz)
        kc = np.clip(k, 0, grid.nz - 1)
        sigma_mid = self.sigma.mid[kc]
        dsigma = self.sigma.dsigma[kc]
        ki = np.arange(ext.z0 - gz, ext.z1 + gz + 1)
        kic = np.clip(ki, 0, grid.nz)
        sigma_iface = self.sigma.interfaces[kic]

        object.__setattr__(self, "theta_c", theta_c)
        object.__setattr__(self, "theta_v", theta_v)
        object.__setattr__(self, "sin_c", sin_c)
        object.__setattr__(self, "cos_c", cos_c)
        object.__setattr__(self, "sin_v", sin_v)
        object.__setattr__(self, "cos_v", cos_v)
        object.__setattr__(self, "sigma_mid", sigma_mid)
        object.__setattr__(self, "dsigma", dsigma)
        object.__setattr__(self, "sigma_iface", sigma_iface)

    # ---- constructors ----------------------------------------------------
    @classmethod
    def build(
        cls,
        grid: LatLonGrid,
        sigma: SigmaLevels,
        extent: BlockExtent,
        gy: int,
        gz: int,
        gx: int = 0,
    ) -> "WorkingGeometry":
        """Geometry for a rank owning ``extent`` with the given ghost widths."""
        if sigma.nz != grid.nz:
            raise ValueError("sigma levels inconsistent with grid nz")
        if gx > 0 and extent.nx == grid.nx:
            raise ValueError("full-longitude blocks must use gx = 0")
        return cls(grid=grid, sigma=sigma, extent=extent, gy=gy, gz=gz, gx=gx)

    @classmethod
    def build_global(
        cls, grid: LatLonGrid, sigma: SigmaLevels, gy: int, gz: int
    ) -> "WorkingGeometry":
        """Geometry of the serial reference core (whole mesh, x full)."""
        ext = BlockExtent(0, grid.nx, 0, grid.ny, 0, grid.nz)
        return cls.build(grid, sigma, ext, gy=gy, gz=gz, gx=0)

    # ---- shapes -----------------------------------------------------------
    @property
    def shape3d(self) -> tuple[int, int, int]:
        """Working 3-D array shape ``(nz_w, ny_w, nx_w)``."""
        return (
            self.extent.nz + 2 * self.gz,
            self.extent.ny + 2 * self.gy,
            self.extent.nx + 2 * self.gx,
        )

    @property
    def shape2d(self) -> tuple[int, int]:
        """Working surface-array shape ``(ny_w, nx_w)``."""
        return self.shape3d[1:]

    @property
    def full_x(self) -> bool:
        """Whether this block owns complete latitude circles."""
        return self.extent.nx == self.grid.nx and self.gx == 0

    # ---- boundary flags ------------------------------------------------------
    @property
    def touches_north(self) -> bool:
        return self.extent.y0 == 0

    @property
    def touches_south(self) -> bool:
        return self.extent.y1 == self.grid.ny

    @property
    def touches_top(self) -> bool:
        return self.extent.z0 == 0

    @property
    def touches_bottom(self) -> bool:
        return self.extent.z1 == self.grid.nz

    # ---- broadcast helpers ------------------------------------------------------
    def row3(self, row_array: np.ndarray) -> np.ndarray:
        """Reshape a per-row array ``(ny_w,)`` for 3-D broadcasting."""
        return row_array[None, :, None]

    def row2(self, row_array: np.ndarray) -> np.ndarray:
        """Reshape a per-row array ``(ny_w,)`` for 2-D broadcasting."""
        return row_array[:, None]

    def lev3(self, level_array: np.ndarray) -> np.ndarray:
        """Reshape a per-level array ``(nz_w,)`` for 3-D broadcasting."""
        return level_array[:, None, None]

    # ---- physical spacings -----------------------------------------------------
    @property
    def a_dlambda(self) -> float:
        """``a * dlambda`` — the zonal spacing before the sin(theta) factor."""
        return self.grid.radius * self.grid.dlambda

    @property
    def a_dtheta(self) -> float:
        """``a * dtheta`` — the meridional spacing."""
        return self.grid.radius * self.grid.dtheta

    def interior3d(self, a: np.ndarray) -> np.ndarray:
        """Interior view of a 3-D working array."""
        nz_w, ny_w, nx_w = a.shape
        return a[
            self.gz: nz_w - self.gz or None,
            self.gy: ny_w - self.gy or None,
            self.gx: nx_w - self.gx or None,
        ]

    def interior2d(self, a: np.ndarray) -> np.ndarray:
        """Interior view of a 2-D working array."""
        ny_w, nx_w = a.shape
        return a[self.gy: ny_w - self.gy or None, self.gx: nx_w - self.gx or None]
