"""Shift primitives and boundary ghost fills for working arrays.

Working arrays carry ghost zones: ``g_y`` rows at each latitude end,
``g_z`` levels at top/bottom, and (only under an X-Y decomposition)
``g_x`` columns at each longitude end.  All stencil shifts are implemented
with :func:`numpy.roll`; with ghost zones present the wrap-around only ever
moves *ghost* entries into *ghost* positions, so interior results are
correct as long as the ghost width covers the accumulated stencil radius —
the validity-margin discipline described in DESIGN.md.

Shift convention: ``sx(a, d)[..., i] == a[..., i + d]`` (and likewise
``sy``/``sz``), i.e. a positive ``d`` reads from larger indices.
"""
from __future__ import annotations

import numpy as np


def roll_into(a: np.ndarray, shift: int, out: np.ndarray, axis: int) -> np.ndarray:
    """``out[...] = np.roll(a, shift, axis)`` without allocating.

    Pure data movement (two slice copies), therefore bit-identical to
    ``np.roll``.  ``out`` must not alias ``a``.
    """
    n = a.shape[axis]
    k = shift % n if n else 0
    if k == 0:
        out[...] = a
        return out
    nd = a.ndim
    ax = axis % nd
    lo = [slice(None)] * nd
    hi = [slice(None)] * nd
    lo[ax] = slice(0, k)
    hi[ax] = slice(k, None)
    src_lo = [slice(None)] * nd
    src_hi = [slice(None)] * nd
    src_lo[ax] = slice(n - k, None)
    src_hi[ax] = slice(0, n - k)
    out[tuple(lo)] = a[tuple(src_lo)]
    out[tuple(hi)] = a[tuple(src_hi)]
    return out


def sx(a: np.ndarray, d: int) -> np.ndarray:
    """Longitude shift: ``out[..., i] = a[..., i + d]``."""
    if d == 0:
        return a
    return np.roll(a, -d, axis=-1)


def sx_into(a: np.ndarray, d: int, out: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`sx` into ``out`` (bit-identical)."""
    return roll_into(a, -d, out, axis=-1)


def sy_into(a: np.ndarray, d: int, out: np.ndarray) -> np.ndarray:
    """Allocation-free :func:`sy` into ``out`` (bit-identical)."""
    return roll_into(a, -d, out, axis=-2)


def sy(a: np.ndarray, d: int) -> np.ndarray:
    """Latitude shift: ``out[..., j, :] = a[..., j + d, :]``."""
    if d == 0:
        return a
    return np.roll(a, -d, axis=-2)


def sz(a: np.ndarray, d: int) -> np.ndarray:
    """Vertical shift (3-D arrays only): ``out[k] = a[k + d]``."""
    if d == 0:
        return a
    if a.ndim != 3:
        raise ValueError("sz requires a 3-D array")
    return np.roll(a, -d, axis=0)


def _mirror_row_into(
    dst: np.ndarray, src: np.ndarray, half: int, negate: bool
) -> None:
    """``dst = (+/-) roll(src, half)`` along x, without the roll temporary.

    The rolled row's left half is the source's right half and vice versa,
    so two slice copies (or :func:`np.negative` writes, an exact sign
    flip) reproduce ``sign * np.roll(src, half, axis=-1)`` bit for bit.
    ``dst`` and ``src`` are distinct rows, so the slices never alias.
    """
    if negate:
        np.negative(src[..., half:], out=dst[..., :half])
        np.negative(src[..., :half], out=dst[..., half:])
    else:
        dst[..., :half] = src[..., half:]
        dst[..., half:] = src[..., :half]


def fill_pole_ghosts(
    a: np.ndarray,
    gy: int,
    vector: bool,
    north: bool = True,
    south: bool = True,
) -> None:
    """Fill latitude ghost rows by the cross-pole mirror condition, in place.

    A point "beyond" the pole at colatitude ``-eps`` is physically the
    point at colatitude ``+eps`` on the meridian shifted by 180 degrees.
    Scalars copy the mirrored value; horizontal vector components flip
    sign (both unit vectors reverse when the meridian flips).

    Requires the full longitude circle in the array (serial, Y-Z
    decomposition, or after the antipodal exchange of the X-Y core).

    Parameters
    ----------
    a:
        Working array ``(..., ny_w, nx)`` whose first ``gy`` and last
        ``gy`` rows are ghosts.
    gy:
        Ghost width; 0 is a no-op.
    vector:
        Apply the sign flip of vector components.
    north, south:
        Whether this array's y-range actually touches the north/south
        pole (interior-block ghosts are filled by exchange instead).
    """
    if gy == 0:
        return
    nx = a.shape[-1]
    if nx % 2 != 0:
        raise ValueError("pole mirror requires even nx")
    half = nx // 2
    if north:
        for m in range(gy):
            # ghost row (gy-1-m) mirrors interior row (gy+m)
            src = a[..., gy + m, :]
            _mirror_row_into(a[..., gy - 1 - m, :], src, half, vector)
    if south:
        ny_w = a.shape[-2]
        for m in range(gy):
            src = a[..., ny_w - 1 - gy - m, :]
            _mirror_row_into(a[..., ny_w - gy + m, :], src, half, vector)


def fill_pole_ghosts_vrow(
    a: np.ndarray,
    gy: int,
    north: bool = True,
    south: bool = True,
) -> None:
    """Pole conditions for fields stored on V (interface) rows, in place.

    V-row ``j`` holds the interface between centre rows ``j`` and ``j+1``,
    so for a north-touching block the *ghost row* ``gy - 1`` is exactly the
    north-pole interface (colatitude 0) and for a south-touching block the
    *last interior row* is the south-pole interface (colatitude pi).  The
    meridional wind is antisymmetric across a pole: it vanishes on the pole
    interface itself and mirror rows pick up a sign flip and the usual
    half-circle longitude shift.
    """
    if gy == 0:
        return
    nx = a.shape[-1]
    half = nx // 2
    if north:
        pole = gy - 1  # the theta = 0 interface row
        a[..., pole, :] = 0.0
        for m in range(1, gy):
            src = a[..., pole + m, :]
            _mirror_row_into(a[..., pole - m, :], src, half, True)
    if south:
        ny_w = a.shape[-2]
        pole = ny_w - 1 - gy  # the theta = pi interface row (last interior)
        a[..., pole, :] = 0.0
        for m in range(1, gy + 1):
            src = a[..., pole - m, :]
            _mirror_row_into(a[..., pole + m, :], src, half, True)


def fill_z_edge_ghosts(
    a: np.ndarray, gz: int, top: bool = True, bottom: bool = True
) -> None:
    """Fill vertical ghost levels by edge replication, in place.

    The vertical operators are written so that the physically meaningful
    boundary conditions (vanishing ``sigma-dot`` at the model top and
    surface) are applied through the interface arrays; the replicated
    ghost level values only enter terms that are multiplied by those zero
    fluxes, so replication is the natural neutral fill.
    """
    if gz == 0:
        return
    if a.ndim != 3:
        raise ValueError("z ghosts only exist on 3-D arrays")
    nz_w = a.shape[0]
    if top:
        a[:gz] = a[gz]
    if bottom:
        a[nz_w - gz:] = a[nz_w - 1 - gz]


def interior3d(a: np.ndarray, gy: int, gz: int, gx: int = 0) -> np.ndarray:
    """View of the interior (ghost-stripped) part of a 3-D working array."""
    nz_w, ny_w, nx_w = a.shape
    return a[gz:nz_w - gz or None, gy:ny_w - gy or None, gx:nx_w - gx or None]


def interior2d(a: np.ndarray, gy: int, gx: int = 0) -> np.ndarray:
    """View of the interior part of a 2-D working array."""
    ny_w, nx_w = a.shape
    return a[gy:ny_w - gy or None, gx:nx_w - gx or None]
