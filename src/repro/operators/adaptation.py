"""The adaptation stencil operator ``A-hat`` (Sec. 4.1).

``A-tilde = C-hat + A-hat``: given the vertical-integral diagnostics
produced by :func:`repro.operators.vertical.compute_vertical_diagnostics`
(the ``C`` part), everything that remains — the pressure-gradient terms
(Eq. 4), the Coriolis terms, the ``Omega`` terms (Eq. 5) and the surface
dissipation ``D_sa`` (Eq. 6) — is a pure stencil computation.  This module
evaluates exactly those terms.

The paper's Eq. (2) writes the Coriolis pair as ``-f* V`` and ``-f* U``;
a symmetric pair does not conserve kinetic energy, so (as in the IAP
formulation it abbreviates) we implement the antisymmetric pair
``dU/dt = -f* V``, ``dV/dt = +f* U`` appropriate for colatitude
coordinates with V positive toward increasing colatitude (southward).

All switches of Eq. (2) are evaluated under the standard-stratification
approximation the paper states the model uses: ``delta = delta_p =
delta_c = 0``, so the ``Phi`` tendency coefficient reduces to ``b``.
"""
from __future__ import annotations

import numpy as np

from repro import constants
from repro.constants import ModelParameters
from repro.obs.spans import traced
from repro.operators.geometry import WorkingGeometry
from repro.operators.staggering import (
    ddx_c2c,
    ddx_c2u,
    ddy_c2c,
    ddy_c2v,
    from_u,
    from_v,
    to_u,
    to_v,
    u_to_v,
    v_to_u,
)
from repro.operators.shifts import sx, sy
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import ModelState


def surface_dissipation(psa: np.ndarray, geom: WorkingGeometry) -> np.ndarray:
    """``D_sa`` of Eq. (6): spherical diffusion of the surface-pressure
    perturbation.

    With the constant standard-atmosphere density the divergence form
    collapses to ``(k_sa nu / p0) Laplacian(p'_sa)`` on the sphere; the
    diffusivity scale ``nu`` is :data:`repro.constants.NU_SA` (see its
    docstring for the substitution note).
    """
    a = geom.grid.radius
    dlam, dth = geom.grid.dlambda, geom.grid.dtheta
    sin_c = geom.row2(geom.sin_c)
    sin_v = geom.row2(geom.sin_v)
    # d/dtheta ( sin theta * d psa / dtheta ) via interface fluxes
    grad_y = ddy_c2v(psa, dth) * sin_v
    lap_y = (grad_y - sy(grad_y, -1)) / dth
    lap_x = (sx(psa, 1) - 2.0 * psa + sx(psa, -1)) / dlam**2
    lap = lap_y / (a**2 * sin_c) + lap_x / (a**2 * sin_c**2)
    return constants.K_SA * constants.NU_SA / constants.P_REFERENCE * lap


class AdaptationGeomCache:
    """Geometry-derived constant rows of ``A-hat``, computed once.

    The seed path rebuilds these broadcastable metric rows on every call;
    each cached value is produced by the very same expression, so the
    workspace fast path stays bit-identical.
    """

    def __init__(self, geom: WorkingGeometry) -> None:
        a = geom.grid.radius
        self.a_sin_c3 = a * geom.row3(geom.sin_c)
        self.two_omega_cos_c3 = 2.0 * constants.EARTH_OMEGA * geom.row3(geom.cos_c)
        self.cot_c3 = geom.row3(geom.cos_c / geom.sin_c)
        self.two_omega_cos_v3 = 2.0 * constants.EARTH_OMEGA * geom.row3(geom.cos_v)
        self.cot_v3 = geom.row3(geom.cos_v / geom.sin_v)
        self.sig_mid3 = geom.lev3(geom.sigma_mid)


@traced("adaptation-op", "operator")
def adaptation_tendency(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
    params: ModelParameters,
    ws=None,
    out: ModelState | None = None,
    cache: AdaptationGeomCache | None = None,
) -> ModelState:
    """Evaluate ``A-tilde(xi) = C-hat + A-hat`` given the ``C`` diagnostics.

    Returns the adaptation tendency as a :class:`ModelState` on the working
    shapes (valid on the interior minus one stencil radius; callers manage
    ghost margins).  With ``ws`` and ``out`` given, all temporaries come
    from the workspace pool and the tendency is written into ``out``
    (bit-identical to the allocating path; ``out`` must not alias
    ``state``).
    """
    if ws is not None:
        return _adaptation_tendency_ws(
            state, vd, geom, params, ws, out, cache or AdaptationGeomCache(geom)
        )
    U, V, Phi, psa = state.U, state.V, state.Phi, state.psa
    grid = geom.grid
    a = grid.radius
    dlam, dth = grid.dlambda, grid.dtheta
    b = constants.B_GRAVITY_WAVE

    # P and p_es are local (no z-collective) and therefore always fresh,
    # even under the approximate nonlinear iteration; only the
    # vertical-integral quantities (phi', W, column sum) may be stale.
    from repro.state.transforms import p_factor

    p_fac = p_factor(psa + constants.P_REFERENCE)
    pes = p_fac**2 * constants.P_REFERENCE
    phi_p = vd.phi_prime

    # Barotropic reference pressure force.  Decomposing the sigma-coordinate
    # pressure gradient about the standard stratification at *local*
    # pressure leaves, besides P_(1) (from phi') and the T'-part P_(2), the
    # exact residual  P * R * T~(p_s) * grad(ln p_es)  — the restoring
    # force of the external (Lamb) mode, with wave speed sqrt(R T~_s).
    # It is local (no vertical integral) so it belongs to the stencil
    # operator A-hat.  We fold it into the P_(2) terms below by replacing
    # b*Phi with (b*Phi + P * R * T~(p_s)).
    from repro.operators.vertical import DEFAULT_REFERENCE

    t_ref_surf = DEFAULT_REFERENCE.temperature(psa + constants.P_REFERENCE)
    baro = (p_fac * constants.R_DRY * t_ref_surf)[None]

    sin_c3 = geom.row3(geom.sin_c)
    cos_c = geom.cos_c
    cos_v = geom.cos_v

    # ---- U tendency (U-points) -------------------------------------------
    p_u = to_u(p_fac)[None]
    pes_u = to_u(pes)[None]
    p_lambda_1 = p_u * ddx_c2u(phi_p, dlam) / (a * sin_c3)
    p_lambda_2 = (
        (b * to_u(Phi) + to_u(baro[0])[None])
        / pes_u * ddx_c2u(pes, dlam)[None] / (a * sin_c3)
    )
    u_phys_u = U / p_u
    f_star_u = (
        2.0 * constants.EARTH_OMEGA * geom.row3(cos_c)
        + u_phys_u * geom.row3(cos_c / geom.sin_c) / a
    )
    v_bar_u = v_to_u(V)
    tend_u = -p_lambda_1 - p_lambda_2 - f_star_u * v_bar_u

    # ---- V tendency (V-rows) ----------------------------------------------
    p_v = to_v(p_fac)[None]
    pes_v = to_v(pes)[None]
    p_theta_1 = p_v * ddy_c2v(phi_p, dth) / a
    p_theta_2 = (
        (b * to_v(Phi) + to_v(baro[0])[None])
        / pes_v * ddy_c2v(pes, dth)[None] / a
    )
    u_bar_v = u_to_v(U)
    f_star_v = (
        2.0 * constants.EARTH_OMEGA * geom.row3(cos_v)
        + (u_bar_v / p_v) * geom.row3(cos_v / geom.sin_v) / a
    )
    tend_v = -p_theta_1 - p_theta_2 + f_star_v * u_bar_v

    # ---- Phi tendency (centres) ----------------------------------------------
    w_mid = 0.5 * (vd.w_iface[:-1] + vd.w_iface[1:])
    omega_1 = w_mid / geom.lev3(geom.sigma_mid) - vd.column_sum[None] / p_fac[None]
    omega_2_theta = (
        from_v(V) / pes[None] * ddy_c2c(pes, dth)[None] / a
    )
    omega_2_lambda = (
        from_u(U) / pes[None] * ddx_c2c(pes, dlam)[None] / (a * sin_c3)
    )
    coeff = b * (1.0 + params.delta_c)  # delta_p = delta = 0 (std. stratification)
    tend_phi = coeff * (omega_1 + omega_2_theta + omega_2_lambda)

    # ---- p'_sa tendency (surface) -----------------------------------------------
    d_sa = surface_dissipation(psa, geom)
    tend_psa = constants.P_REFERENCE * (
        constants.KAPPA_STAR * d_sa - vd.column_sum
    )

    return ModelState(U=tend_u, V=tend_v, Phi=tend_phi, psa=tend_psa)


def _adaptation_tendency_ws(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
    params: ModelParameters,
    ws,
    out: ModelState,
    cache: AdaptationGeomCache,
) -> ModelState:
    """Pool-backed ``A-tilde``, bit-identical to the allocating path.

    Transcribes :func:`adaptation_tendency` binary operation by binary
    operation into preallocated buffers; only scalar-factor multiplies are
    commuted (bitwise-exact in IEEE arithmetic).
    """
    from repro.operators.shifts import sx_into, sy_into
    from repro.operators.vertical import DEFAULT_REFERENCE

    U, V, Phi, psa = state.U, state.V, state.Phi, state.psa
    grid = geom.grid
    a = grid.radius
    dlam, dth = grid.dlambda, grid.dtheta
    b = constants.B_GRAVITY_WAVE
    phi_p = vd.phi_prime

    shape3 = U.shape
    shape2 = psa.shape
    t1 = ws.take(shape3)
    t2 = ws.take(shape3)
    t3 = ws.take(shape3)
    t4 = ws.take(shape3)
    t5 = ws.take(shape3)
    t6 = ws.take(shape3)
    pf = ws.take(shape2)       # P
    pes_b = ws.take(shape2)    # p_es
    baro_b = ws.take(shape2)   # P R T~(p_s)
    pstag = ws.take(shape2)    # P averaged to U-points / V-rows
    b2a = ws.take(shape2)      # rotating 2-D scratch
    b2b = ws.take(shape2)

    # P = sqrt((psa + p0 - pt) / p0);  p_es = P^2 * p0
    np.add(psa, constants.P_REFERENCE, out=pf)
    np.subtract(pf, constants.P_TOP, out=pf)
    if np.any(pf <= 0):
        raise ValueError("surface pressure must exceed the model-top pressure")
    np.divide(pf, constants.P_REFERENCE, out=pf)
    np.sqrt(pf, out=pf)
    np.power(pf, 2, out=pes_b)
    np.multiply(pes_b, constants.P_REFERENCE, out=pes_b)

    t_ref_surf = DEFAULT_REFERENCE.temperature(psa + constants.P_REFERENCE)
    np.multiply(pf, constants.R_DRY, out=baro_b)
    np.multiply(baro_b, t_ref_surf, out=baro_b)

    # ---- U tendency (U-points) -------------------------------------------
    # p_lambda_1 = p_u * ddx_c2u(phi', dlam) / (a sin)
    sx_into(pf, -1, pstag)
    np.add(pstag, pf, out=pstag)
    np.multiply(pstag, 0.5, out=pstag)                 # p_u
    sx_into(phi_p, -1, t1)
    np.subtract(phi_p, t1, out=t1)
    np.divide(t1, dlam, out=t1)
    np.multiply(t1, pstag[None], out=t1)
    np.divide(t1, cache.a_sin_c3, out=t1)
    # p_lambda_2 = (b to_u(Phi) + to_u(baro)) / pes_u * ddx_c2u(pes) / (a sin)
    sx_into(Phi, -1, t2)
    np.add(t2, Phi, out=t2)
    np.multiply(t2, 0.5, out=t2)
    np.multiply(t2, b, out=t2)
    sx_into(baro_b, -1, b2a)
    np.add(b2a, baro_b, out=b2a)
    np.multiply(b2a, 0.5, out=b2a)                     # baro_u
    np.add(t2, b2a[None], out=t2)
    sx_into(pes_b, -1, b2a)
    np.add(b2a, pes_b, out=b2a)
    np.multiply(b2a, 0.5, out=b2a)                     # pes_u
    np.divide(t2, b2a[None], out=t2)
    sx_into(pes_b, -1, b2a)
    np.subtract(pes_b, b2a, out=b2a)
    np.divide(b2a, dlam, out=b2a)                      # ddx_c2u(pes)
    np.multiply(t2, b2a[None], out=t2)
    np.divide(t2, cache.a_sin_c3, out=t2)
    # f_star_u, v_bar_u
    np.divide(U, pstag[None], out=t3)                  # u_phys at U-points
    np.multiply(t3, cache.cot_c3, out=t4)
    np.divide(t4, a, out=t4)
    np.add(cache.two_omega_cos_c3, t4, out=t4)         # f_star_u
    sx_into(V, -1, t5)
    sy_into(t5, -1, t6)
    sy_into(V, -1, t3)
    np.add(t6, t3, out=t6)
    np.add(t6, t5, out=t6)
    np.add(t6, V, out=t6)
    np.multiply(t6, 0.25, out=t6)                      # v_bar_u = v_to_u(V)
    np.multiply(t4, t6, out=t4)
    np.negative(t1, out=out.U)
    np.subtract(out.U, t2, out=out.U)
    np.subtract(out.U, t4, out=out.U)

    # ---- V tendency (V-rows) ----------------------------------------------
    sy_into(pf, 1, pstag)
    np.add(pf, pstag, out=pstag)
    np.multiply(pstag, 0.5, out=pstag)                 # p_v
    sy_into(phi_p, 1, t1)
    np.subtract(t1, phi_p, out=t1)
    np.divide(t1, dth, out=t1)
    np.multiply(t1, pstag[None], out=t1)
    np.divide(t1, a, out=t1)                           # p_theta_1
    sy_into(Phi, 1, t2)
    np.add(Phi, t2, out=t2)
    np.multiply(t2, 0.5, out=t2)
    np.multiply(t2, b, out=t2)
    sy_into(baro_b, 1, b2a)
    np.add(baro_b, b2a, out=b2a)
    np.multiply(b2a, 0.5, out=b2a)                     # baro_v
    np.add(t2, b2a[None], out=t2)
    sy_into(pes_b, 1, b2a)
    np.add(pes_b, b2a, out=b2a)
    np.multiply(b2a, 0.5, out=b2a)                     # pes_v
    np.divide(t2, b2a[None], out=t2)
    sy_into(pes_b, 1, b2a)
    np.subtract(b2a, pes_b, out=b2a)
    np.divide(b2a, dth, out=b2a)                       # ddy_c2v(pes)
    np.multiply(t2, b2a[None], out=t2)
    np.divide(t2, a, out=t2)                           # p_theta_2
    sx_into(U, 1, t5)
    sy_into(t5, 1, t6)
    np.add(U, t5, out=t3)
    sy_into(U, 1, t5)
    np.add(t3, t5, out=t3)
    np.add(t3, t6, out=t3)
    np.multiply(t3, 0.25, out=t3)                      # u_bar_v = u_to_v(U)
    np.divide(t3, pstag[None], out=t4)
    np.multiply(t4, cache.cot_v3, out=t4)
    np.divide(t4, a, out=t4)
    np.add(cache.two_omega_cos_v3, t4, out=t4)         # f_star_v
    np.multiply(t4, t3, out=t4)
    np.negative(t1, out=out.V)
    np.subtract(out.V, t2, out=out.V)
    np.add(out.V, t4, out=out.V)

    # ---- Phi tendency (centres) ----------------------------------------------
    np.add(vd.w_iface[:-1], vd.w_iface[1:], out=t1)
    np.multiply(t1, 0.5, out=t1)                       # w_mid
    np.divide(t1, cache.sig_mid3, out=t1)
    np.divide(vd.column_sum, pf, out=b2a)
    np.subtract(t1, b2a[None], out=t1)                 # omega_1
    sy_into(V, -1, t2)
    np.add(t2, V, out=t2)
    np.multiply(t2, 0.5, out=t2)                       # from_v(V)
    np.divide(t2, pes_b[None], out=t2)
    sy_into(pes_b, 1, b2a)
    sy_into(pes_b, -1, b2b)
    np.subtract(b2a, b2b, out=b2a)
    np.divide(b2a, 2.0 * dth, out=b2a)                 # ddy_c2c(pes)
    np.multiply(t2, b2a[None], out=t2)
    np.divide(t2, a, out=t2)                           # omega_2_theta
    sx_into(U, 1, t3)
    np.add(U, t3, out=t3)
    np.multiply(t3, 0.5, out=t3)                       # from_u(U)
    np.divide(t3, pes_b[None], out=t3)
    sx_into(pes_b, 1, b2a)
    sx_into(pes_b, -1, b2b)
    np.subtract(b2a, b2b, out=b2a)
    np.divide(b2a, 2.0 * dlam, out=b2a)                # ddx_c2c(pes)
    np.multiply(t3, b2a[None], out=t3)
    np.divide(t3, cache.a_sin_c3, out=t3)              # omega_2_lambda
    coeff = b * (1.0 + params.delta_c)
    np.add(t1, t2, out=out.Phi)
    np.add(out.Phi, t3, out=out.Phi)
    np.multiply(out.Phi, coeff, out=out.Phi)

    # ---- p'_sa tendency (surface) -----------------------------------------------
    d_sa = surface_dissipation(psa, geom)
    np.multiply(d_sa, constants.KAPPA_STAR, out=d_sa)
    np.subtract(d_sa, vd.column_sum, out=d_sa)
    np.multiply(d_sa, constants.P_REFERENCE, out=d_sa)
    np.copyto(out.psa, d_sa)

    ws.give(t1, t2, t3, t4, t5, t6, pf, pes_b, baro_b, pstag, b2a, b2b)
    return out
