"""The adaptation stencil operator ``A-hat`` (Sec. 4.1).

``A-tilde = C-hat + A-hat``: given the vertical-integral diagnostics
produced by :func:`repro.operators.vertical.compute_vertical_diagnostics`
(the ``C`` part), everything that remains — the pressure-gradient terms
(Eq. 4), the Coriolis terms, the ``Omega`` terms (Eq. 5) and the surface
dissipation ``D_sa`` (Eq. 6) — is a pure stencil computation.  This module
evaluates exactly those terms.

The paper's Eq. (2) writes the Coriolis pair as ``-f* V`` and ``-f* U``;
a symmetric pair does not conserve kinetic energy, so (as in the IAP
formulation it abbreviates) we implement the antisymmetric pair
``dU/dt = -f* V``, ``dV/dt = +f* U`` appropriate for colatitude
coordinates with V positive toward increasing colatitude (southward).

All switches of Eq. (2) are evaluated under the standard-stratification
approximation the paper states the model uses: ``delta = delta_p =
delta_c = 0``, so the ``Phi`` tendency coefficient reduces to ``b``.
"""
from __future__ import annotations

import numpy as np

from repro import constants
from repro.constants import ModelParameters
from repro.operators.geometry import WorkingGeometry
from repro.operators.staggering import (
    ddx_c2c,
    ddx_c2u,
    ddy_c2c,
    ddy_c2v,
    from_u,
    from_v,
    to_u,
    to_v,
    u_to_v,
    v_to_u,
)
from repro.operators.shifts import sx, sy
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import ModelState


def surface_dissipation(psa: np.ndarray, geom: WorkingGeometry) -> np.ndarray:
    """``D_sa`` of Eq. (6): spherical diffusion of the surface-pressure
    perturbation.

    With the constant standard-atmosphere density the divergence form
    collapses to ``(k_sa nu / p0) Laplacian(p'_sa)`` on the sphere; the
    diffusivity scale ``nu`` is :data:`repro.constants.NU_SA` (see its
    docstring for the substitution note).
    """
    a = geom.grid.radius
    dlam, dth = geom.grid.dlambda, geom.grid.dtheta
    sin_c = geom.row2(geom.sin_c)
    sin_v = geom.row2(geom.sin_v)
    # d/dtheta ( sin theta * d psa / dtheta ) via interface fluxes
    grad_y = ddy_c2v(psa, dth) * sin_v
    lap_y = (grad_y - sy(grad_y, -1)) / dth
    lap_x = (sx(psa, 1) - 2.0 * psa + sx(psa, -1)) / dlam**2
    lap = lap_y / (a**2 * sin_c) + lap_x / (a**2 * sin_c**2)
    return constants.K_SA * constants.NU_SA / constants.P_REFERENCE * lap


def adaptation_tendency(
    state: ModelState,
    vd: VerticalDiagnostics,
    geom: WorkingGeometry,
    params: ModelParameters,
) -> ModelState:
    """Evaluate ``A-tilde(xi) = C-hat + A-hat`` given the ``C`` diagnostics.

    Returns the adaptation tendency as a :class:`ModelState` on the working
    shapes (valid on the interior minus one stencil radius; callers manage
    ghost margins).
    """
    U, V, Phi, psa = state.U, state.V, state.Phi, state.psa
    grid = geom.grid
    a = grid.radius
    dlam, dth = grid.dlambda, grid.dtheta
    b = constants.B_GRAVITY_WAVE

    # P and p_es are local (no z-collective) and therefore always fresh,
    # even under the approximate nonlinear iteration; only the
    # vertical-integral quantities (phi', W, column sum) may be stale.
    from repro.state.transforms import p_factor

    p_fac = p_factor(psa + constants.P_REFERENCE)
    pes = p_fac**2 * constants.P_REFERENCE
    phi_p = vd.phi_prime

    # Barotropic reference pressure force.  Decomposing the sigma-coordinate
    # pressure gradient about the standard stratification at *local*
    # pressure leaves, besides P_(1) (from phi') and the T'-part P_(2), the
    # exact residual  P * R * T~(p_s) * grad(ln p_es)  — the restoring
    # force of the external (Lamb) mode, with wave speed sqrt(R T~_s).
    # It is local (no vertical integral) so it belongs to the stencil
    # operator A-hat.  We fold it into the P_(2) terms below by replacing
    # b*Phi with (b*Phi + P * R * T~(p_s)).
    from repro.operators.vertical import DEFAULT_REFERENCE

    t_ref_surf = DEFAULT_REFERENCE.temperature(psa + constants.P_REFERENCE)
    baro = (p_fac * constants.R_DRY * t_ref_surf)[None]

    sin_c3 = geom.row3(geom.sin_c)
    cos_c = geom.cos_c
    cos_v = geom.cos_v

    # ---- U tendency (U-points) -------------------------------------------
    p_u = to_u(p_fac)[None]
    pes_u = to_u(pes)[None]
    p_lambda_1 = p_u * ddx_c2u(phi_p, dlam) / (a * sin_c3)
    p_lambda_2 = (
        (b * to_u(Phi) + to_u(baro[0])[None])
        / pes_u * ddx_c2u(pes, dlam)[None] / (a * sin_c3)
    )
    u_phys_u = U / p_u
    f_star_u = (
        2.0 * constants.EARTH_OMEGA * geom.row3(cos_c)
        + u_phys_u * geom.row3(cos_c / geom.sin_c) / a
    )
    v_bar_u = v_to_u(V)
    tend_u = -p_lambda_1 - p_lambda_2 - f_star_u * v_bar_u

    # ---- V tendency (V-rows) ----------------------------------------------
    p_v = to_v(p_fac)[None]
    pes_v = to_v(pes)[None]
    p_theta_1 = p_v * ddy_c2v(phi_p, dth) / a
    p_theta_2 = (
        (b * to_v(Phi) + to_v(baro[0])[None])
        / pes_v * ddy_c2v(pes, dth)[None] / a
    )
    u_bar_v = u_to_v(U)
    f_star_v = (
        2.0 * constants.EARTH_OMEGA * geom.row3(cos_v)
        + (u_bar_v / p_v) * geom.row3(cos_v / geom.sin_v) / a
    )
    tend_v = -p_theta_1 - p_theta_2 + f_star_v * u_bar_v

    # ---- Phi tendency (centres) ----------------------------------------------
    w_mid = 0.5 * (vd.w_iface[:-1] + vd.w_iface[1:])
    omega_1 = w_mid / geom.lev3(geom.sigma_mid) - vd.column_sum[None] / p_fac[None]
    omega_2_theta = (
        from_v(V) / pes[None] * ddy_c2c(pes, dth)[None] / a
    )
    omega_2_lambda = (
        from_u(U) / pes[None] * ddx_c2c(pes, dlam)[None] / (a * sin_c3)
    )
    coeff = b * (1.0 + params.delta_c)  # delta_p = delta = 0 (std. stratification)
    tend_phi = coeff * (omega_1 + omega_2_theta + omega_2_lambda)

    # ---- p'_sa tendency (surface) -----------------------------------------------
    d_sa = surface_dissipation(psa, geom)
    tend_psa = constants.P_REFERENCE * (
        constants.KAPPA_STAR * d_sa - vd.column_sum
    )

    return ModelState(U=tend_u, V=tend_v, Phi=tend_phi, psa=tend_psa)
