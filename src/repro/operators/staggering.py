"""Arakawa C-grid staggering and finite-difference primitives.

Point naming (Sec. 2.2): scalars at cell centres ``(i, j)``; ``U`` at the
zonal interface ``(i - 1/2, j)`` stored with index ``i``; ``V`` at the
meridional interface ``(i, j + 1/2)`` stored with index ``j``.  All
helpers are shape-preserving (see :mod:`repro.operators.shifts` for the
ghost/validity discipline).

Derivatives are divided by the *coordinate* spacings ``dlambda`` /
``dtheta``; the metric factors ``1/(a sin theta)`` and ``1/a`` are applied
by the calling operators because they differ between U-rows and V-rows.
"""
from __future__ import annotations

import numpy as np

from repro.operators.shifts import sx, sy


# ---- averaging between staggered points ----------------------------------

def to_u(a: np.ndarray) -> np.ndarray:
    """Centre field -> U-points: ``out[i] = (a[i-1] + a[i]) / 2``."""
    return 0.5 * (sx(a, -1) + a)


def from_u(a: np.ndarray) -> np.ndarray:
    """U-point field -> centres: ``out[i] = (a[i] + a[i+1]) / 2``."""
    return 0.5 * (a + sx(a, 1))


def to_v(a: np.ndarray) -> np.ndarray:
    """Centre field -> V-rows: ``out[j] = (a[j] + a[j+1]) / 2``."""
    return 0.5 * (a + sy(a, 1))


def from_v(a: np.ndarray) -> np.ndarray:
    """V-row field -> centres: ``out[j] = (a[j-1] + a[j]) / 2``."""
    return 0.5 * (sy(a, -1) + a)


def v_to_u(a: np.ndarray) -> np.ndarray:
    """V-point field -> U-points (4-point average).

    ``out[j, i] = (a[j-1, i-1] + a[j-1, i] + a[j, i-1] + a[j, i]) / 4``.
    """
    return 0.25 * (sy(sx(a, -1), -1) + sy(a, -1) + sx(a, -1) + a)


def u_to_v(a: np.ndarray) -> np.ndarray:
    """U-point field -> V-points (4-point average).

    ``out[j, i] = (a[j, i] + a[j, i+1] + a[j+1, i] + a[j+1, i+1]) / 4``.
    """
    return 0.25 * (a + sx(a, 1) + sy(a, 1) + sy(sx(a, 1), 1))


# ---- coordinate derivatives ------------------------------------------------

def ddx_c2u(a: np.ndarray, dlam: float) -> np.ndarray:
    """d/dlambda of a centre field, at U-points."""
    return (a - sx(a, -1)) / dlam


def ddx_u2c(a: np.ndarray, dlam: float) -> np.ndarray:
    """d/dlambda of a U-point field, at centres."""
    return (sx(a, 1) - a) / dlam


def ddx_c2c(a: np.ndarray, dlam: float) -> np.ndarray:
    """Centred d/dlambda of a centre field, at centres."""
    return (sx(a, 1) - sx(a, -1)) / (2.0 * dlam)


def ddy_c2v(a: np.ndarray, dth: float) -> np.ndarray:
    """d/dtheta of a centre field, at V-rows."""
    return (sy(a, 1) - a) / dth


def ddy_v2c(a: np.ndarray, dth: float) -> np.ndarray:
    """d/dtheta of a V-row field, at centres."""
    return (a - sy(a, -1)) / dth


def ddy_c2c(a: np.ndarray, dth: float) -> np.ndarray:
    """Centred d/dtheta of a centre field, at centres."""
    return (sy(a, 1) - sy(a, -1)) / (2.0 * dth)
