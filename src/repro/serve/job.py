"""Job and result types of the multi-tenant job runner.

A :class:`JobSpec` is the *entire* client-visible contract: pure data
describing one simulation (mesh, algorithm, steps, physics knobs) plus an
optional declarative chaos clause used by tests and the load-test driver
to inject worker misbehavior deterministically.  Because the spec is
pure data it canonicalizes: :func:`job_key` hashes the canonical JSON
form together with the code version into the content address under which
the job's artifact is cached — identical requests on identical code are
served without recompute.

A :class:`JobResult` is the typed outcome.  Jobs never resolve by raising
out of the server: a poison job that exhausts its retries completes with
``status="failed"`` and a typed ``error_type``, and only admission
control itself raises (:class:`~repro.serve.queue.ServerBusy`).
"""
from __future__ import annotations

import hashlib
import json
import struct
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

import repro

#: bump when the artifact layout or job semantics change — part of every
#: cache key, so stale artifacts from older layouts can never be served
JOB_SCHEMA_VERSION = 1

#: chaos kinds understood by the worker (see ``repro.serve.worker``)
CHAOS_KINDS = ("crash", "wedge", "poison", "rankloss")


class JobPoisoned(RuntimeError):
    """Deterministic per-job failure injected by a ``poison`` chaos clause."""


@dataclass
class JobSpec:
    """One simulation job: config in, trajectory artifact out.

    Parameters
    ----------
    name:
        Free-form client label (part of the cache key: two tenants
        submitting identical physics under different names get their own
        entries, so one tenant can never observe another's timing).
    algorithm / nprocs / backend:
        Passed through to :class:`~repro.core.driver.DynamicalCore`;
        ``backend`` selects the *inner* SPMD backend of the simulation
        (the job itself already runs in its own worker process).
    nx, ny, nz, nsteps:
        Mesh and length of the integration.
    dt_adaptation / dt_advection / m_iterations:
        Time-stepping parameters (see ``repro.constants``).
    amplitude_k:
        Initial warm-bump amplitude in kelvin.
    checkpoint_interval:
        Steps per resilience chunk; each committed chunk writes a
        checkpoint (the job resumes from it after a crash) and emits a
        heartbeat.
    rank_loss_policy / spare_ranks:
        Elastic rank-loss recovery of the inner simulation (see
        :class:`~repro.core.resilience.ResilienceConfig`): with
        ``"spare"`` or ``"shrink"``, a permanent loss of a simulated
        rank is healed *inside the running job* — no worker retry is
        consumed — instead of failing the attempt.
    chaos:
        ``None`` for production jobs.  Tests/load tests set
        ``{"kind": "crash" | "wedge" | "poison", "attempts": [1],
        "after_chunks": 1, "wedge_seconds": 3600.0}`` to misbehave
        deterministically on the listed attempts (1-based).  The
        ``"rankloss"`` kind instead injects a *permanent node loss* of
        one simulated rank (``{"kind": "rankloss", "rank": 1,
        "at_call": 30}``) into the job's fault plan; it requires
        ``nprocs >= 2`` and is normally paired with a non-abort
        ``rank_loss_policy``.
    """

    name: str = "job"
    algorithm: str = "serial"
    nx: int = 16
    ny: int = 8
    nz: int = 4
    nsteps: int = 2
    nprocs: int = 1
    backend: str = "thread"
    dt_adaptation: float = 60.0
    dt_advection: float = 180.0
    m_iterations: int = 3
    amplitude_k: float = 1.0
    checkpoint_interval: int = 1
    rank_loss_policy: str = "abort"
    spare_ranks: int = 0
    chaos: dict | None = None

    def __post_init__(self) -> None:
        if self.nsteps < 1:
            raise ValueError("nsteps must be >= 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.rank_loss_policy not in ("abort", "spare", "shrink"):
            raise ValueError(
                f"rank_loss_policy must be 'abort', 'spare' or 'shrink', "
                f"got {self.rank_loss_policy!r}"
            )
        if self.spare_ranks < 0:
            raise ValueError("spare_ranks must be >= 0")
        if self.chaos is not None:
            kind = self.chaos.get("kind")
            if kind not in CHAOS_KINDS:
                raise ValueError(
                    f"chaos kind {kind!r} not in {CHAOS_KINDS}"
                )
            if kind == "rankloss" and self.nprocs < 2:
                raise ValueError(
                    "rankloss chaos needs a distributed job (nprocs >= 2)"
                )

    def canonical(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        payload = asdict(self)
        payload["schema"] = JOB_SCHEMA_VERSION
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def physics_key(self) -> str:
        """Hash of the physics-relevant fields only (chaos excluded).

        Two jobs with equal physics keys must produce bit-identical
        artifacts regardless of injected chaos — the cross-job leakage
        assertion of the load test compares along this key.
        """
        payload = asdict(self)
        payload.pop("chaos")
        payload.pop("name")
        payload["schema"] = JOB_SCHEMA_VERSION
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode()
        ).hexdigest()


def code_version() -> str:
    """Version string folded into every cache key.

    The git commit when available (results must not survive a code
    change), else the package version.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parents[3]
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=root, capture_output=True, text=True, timeout=10,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            sha = ""
        _CODE_VERSION = sha or f"pkg-{repro.__version__}"
    return _CODE_VERSION


_CODE_VERSION: str | None = None


def job_key(spec: JobSpec) -> str:
    """Content address of one job: SHA-256 of canonical spec + code."""
    h = hashlib.sha256()
    h.update(spec.canonical().encode())
    h.update(b"\0")
    h.update(code_version().encode())
    return h.hexdigest()


def state_digest(state) -> str:
    """Hex SHA-256 over a :class:`ModelState`'s raw field bytes.

    File-format independent (unlike hashing the ``.npz``, whose zip
    metadata varies), so cold-run and cache-hit artifacts can be
    compared bit-for-bit at the array level.
    """
    h = hashlib.sha256()
    for fname in ("U", "V", "Phi", "psa"):
        a = np.ascontiguousarray(getattr(state, fname))
        h.update(fname.encode())
        h.update(struct.pack("<q", a.ndim))
        h.update(struct.pack(f"<{a.ndim}q", *a.shape))
        h.update(a.tobytes())
    return h.hexdigest()


def seeded_unit(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one retry of one job.

    Used for retry-backoff jitter: decorrelated across jobs and attempts
    but exactly reproducible under one server seed.
    """
    digest = hashlib.blake2b(
        struct.pack("<q", seed) + key.encode() + struct.pack("<q", attempt),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


def backoff_delay(
    base: float, factor: float, cap: float,
    seed: int, key: str, attempt: int,
) -> float:
    """Jittered exponential backoff before retry ``attempt`` (1-based).

    ``min(base * factor**(attempt-1), cap)`` scaled into
    ``[0.5x, 1.5x)`` by the deterministic :func:`seeded_unit` draw, so
    simultaneous failures across jobs don't retry in lock-step.
    """
    if base <= 0.0:
        return 0.0
    delay = min(base * factor ** (attempt - 1), cap)
    return delay * (0.5 + seeded_unit(seed, key, attempt))


@dataclass
class JobResult:
    """Typed outcome of one job.

    ``status`` is ``"ok"`` or ``"failed"`` — a shed job never gets a
    result (admission raises :class:`~repro.serve.queue.ServerBusy`
    instead).  ``cache_hit`` marks results served without recompute;
    ``coalesced`` marks hits that piggybacked on an identical in-flight
    job rather than a cache file.
    """

    job_id: int
    key: str
    status: str
    spec: JobSpec | None = None
    cache_hit: bool = False
    coalesced: bool = False
    attempts: int = 0
    latency_s: float = 0.0
    artifact: Path | None = None
    state_digest: str | None = None
    resumed_from_step: int = 0
    restarts: int = 0
    #: permanent simulated-rank losses healed in place (no retry consumed)
    rank_losses: int = 0
    membership_epoch: int = 0
    final_nranks: int = 0
    watchdog_kills: int = 0
    makespan: float = 0.0
    error_type: str | None = None
    error: str | None = None
    worker: int | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"
