"""Load-test driver of the job runner: mixed traffic + injected faults.

``python -m repro.serve.loadtest --jobs 120 --out /tmp/serve-loadtest``
stands up one :class:`~repro.serve.supervisor.JobServer` and drives a
mixed workload through it:

* repeated submissions of a small set of distinct physics configs
  (exercising the content-addressed cache and in-flight coalescing),
* chaos jobs that crash their worker mid-job (must retry to success,
  resuming from checkpoints), wedge it (the heartbeat watchdog must
  kill-and-reap within its deadline), or poison every attempt (must
  exhaust retries into a *typed* failure while the pool stays healthy),
* a burst past the admission bound (typed :class:`ServerBusy` shedding),
* one forced-corrupt cache entry (must be quarantined and recomputed
  bit-identically).

The driver then audits the results — every handle resolved (zero server
hangs), crashed jobs retried-to-success, cache hits bit-identical by
state digest, and **zero cross-job state leakage**: every result whose
spec shares a physics key must carry the same digest, chaos or not —
and writes ``report.json``, ``metrics.prom`` and ``trace.json``
artifacts.  Exit code 0 iff every assertion holds.
"""
from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

from repro.obs.exporters import chrome_trace, write_chrome_trace
from repro.obs.flightrec import load_dump
from repro.obs.profile import SamplingProfiler
from repro.serve.job import JobSpec
from repro.serve.queue import ServerBusy
from repro.serve.supervisor import JobServer, ServeConfig

logger = logging.getLogger("repro.serve.loadtest")


def build_workload(njobs: int) -> list[JobSpec]:
    """``njobs`` mixed specs: clean repeats + crash/wedge/poison chaos."""
    base = [
        JobSpec(name="tenant-a", nsteps=2, amplitude_k=1.0),
        JobSpec(name="tenant-a", nsteps=3, amplitude_k=1.0),
        JobSpec(name="tenant-b", nsteps=2, amplitude_k=2.0),
        JobSpec(name="tenant-b", nsteps=2, amplitude_k=1.0,
                checkpoint_interval=2),
        JobSpec(name="tenant-c", nsteps=2, algorithm="original-yz",
                nprocs=2, backend="thread"),
        JobSpec(name="tenant-c", nsteps=2, algorithm="ca", ny=32,
                nprocs=2, backend="thread"),
        JobSpec(name="tenant-c", nsteps=2, amplitude_k=0.5),
    ]
    chaos = [
        # crash attempt 1 mid-job -> retry resumes from checkpoint
        JobSpec(name="chaos-crash-1", nsteps=3,
                chaos={"kind": "crash", "attempts": [1]}),
        JobSpec(name="chaos-crash-2", nsteps=3, amplitude_k=2.0,
                chaos={"kind": "crash", "attempts": [1], "after_chunks": 2}),
        # stop heartbeating without dying -> watchdog must kill-and-reap
        JobSpec(name="chaos-wedge", nsteps=3, amplitude_k=0.5,
                chaos={"kind": "wedge", "attempts": [1]}),
        # fails every attempt -> typed permanent failure
        JobSpec(name="chaos-poison-1", nsteps=2,
                chaos={"kind": "poison"}),
        JobSpec(name="chaos-poison-2", nsteps=2, amplitude_k=2.0,
                chaos={"kind": "poison"}),
    ]
    jobs = list(chaos)
    i = 0
    while len(jobs) < njobs:
        jobs.append(base[i % len(base)])
        i += 1
    return jobs


def submit_with_client_backoff(server: JobServer, spec: JobSpec,
                               deadline_s: float = 120.0):
    """Submit, backing off on :class:`ServerBusy`; returns (handle, sheds)."""
    sheds = 0
    pause = 0.02
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return server.submit(spec), sheds
        except ServerBusy:
            sheds += 1
            if time.monotonic() > deadline:
                raise
            time.sleep(pause)
            pause = min(pause * 2, 0.5)


def percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def run_loadtest(
    out_dir: str | Path,
    njobs: int = 120,
    workers: int = 2,
    max_queue: int = 8,
    executor: str = "process",
    heartbeat_timeout: float = 5.0,
    result_timeout: float = 120.0,
    seed: int = 0,
) -> dict:
    """Drive the workload; returns the report dict (see ``checks``)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    cfg = ServeConfig(
        workers=workers,
        max_queue=max_queue,
        max_retries=2,
        heartbeat_timeout=heartbeat_timeout,
        job_timeout=90.0,
        backoff_base=0.02,
        backoff_max=0.2,
        executor=executor,
        seed=seed,
    )
    specs = build_workload(njobs)
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, bool(ok), detail))
        logger.log(
            logging.INFO if ok else logging.ERROR,
            "check %-38s %s %s", name, "PASS" if ok else "FAIL", detail,
        )

    t0 = time.monotonic()
    server = JobServer(out / "cache", config=cfg)
    profiler = SamplingProfiler().start()
    try:
        handles = []
        sheds_seen = 0
        for spec in specs:
            handle, sheds = submit_with_client_backoff(server, spec)
            handles.append((spec, handle))
            sheds_seen += sheds
        # Zero server hangs: every handle must resolve within the deadline.
        results, hangs = [], 0
        for spec, handle in handles:
            try:
                results.append((spec, handle.result(timeout=result_timeout)))
            except TimeoutError:
                hangs += 1
        check("no_server_hangs", hangs == 0, f"{hangs} unresolved handles")

        # Forced cache corruption: flip bytes of one cached artifact and
        # resubmit — the server must quarantine and recompute it.
        victim_spec, victim_res = next(
            (s, r) for s, r in results if r.ok and s.chaos is None
        )
        server.cache.corrupt_entry_for_test(victim_res.key)
        redo = server.submit(victim_spec).result(timeout=result_timeout)
        results.append((victim_spec, redo))
        check(
            "corruption_quarantined",
            len(server.cache.quarantined()) >= 1
            and server.counter_value("serve_cache_corrupt_total") >= 1,
            f"{len(server.cache.quarantined())} quarantined",
        )
        check(
            "corruption_recomputed_identically",
            redo.ok and not redo.cache_hit
            and redo.state_digest == victim_res.state_digest,
            f"{redo.status}, digest match="
            f"{redo.state_digest == victim_res.state_digest}",
        )

        # Pool health after every injected fault: a fresh clean job runs.
        probe = server.submit(
            JobSpec(name="post-chaos-probe", nsteps=2, amplitude_k=3.0)
        ).result(timeout=result_timeout)
        check("pool_healthy_after_chaos", probe.ok, probe.error or "")

        wall = time.monotonic() - t0

        # ---- audits over the full result set ----------------------------
        ok_results = [r for _, r in results if r.ok]
        failed = [r for _, r in results if not r.ok]
        crashy = [r for s, r in results
                  if s.chaos is not None and s.chaos["kind"] in
                  ("crash", "wedge")]
        poison = [r for s, r in results
                  if s.chaos is not None and s.chaos["kind"] == "poison"]
        check(
            "crashed_jobs_retried_to_success",
            all(r.ok and r.attempts >= 2 for r in crashy),
            f"{sum(r.ok for r in crashy)}/{len(crashy)} ok",
        )
        check(
            "poison_jobs_typed_failure",
            all(
                (not r.ok) and r.error_type == "JobPoisoned"
                and r.attempts == cfg.max_retries + 1
                for r in poison
            ),
            f"{len(poison)} poison jobs",
        )
        check(
            "only_poison_failed",
            all(r.error_type == "JobPoisoned" for r in failed),
            f"failures: {sorted({r.error_type for r in failed})}",
        )
        check(
            "watchdog_fired",
            server.counter_value("serve_watchdog_kills_total") >= 1,
            f"{server.counter_value('serve_watchdog_kills_total'):g} kills",
        )
        check("load_shedding_observed", sheds_seen >= 1,
              f"{sheds_seen} ServerBusy rejections")

        # Cache hits must be bit-identical to the cold computation: every
        # result under one cache key carries one digest.
        by_key: dict[str, set] = {}
        for r in ok_results:
            by_key.setdefault(r.key, set()).add(r.state_digest)
        check(
            "cache_hits_bit_identical",
            all(len(d) == 1 for d in by_key.values()),
            f"{len(by_key)} keys",
        )

        # Zero cross-job state leakage: results that share a physics key
        # (chaos and name excluded) must share a digest — a crashed,
        # killed, resumed or degraded job yields the same bits as a clean
        # one, and no job ever sees another's state.
        by_phys: dict[str, set] = {}
        for s, r in results:
            if r.ok:
                by_phys.setdefault(s.physics_key(), set()).add(
                    r.state_digest
                )
        leaks = {k[:12]: sorted(d) for k, d in by_phys.items()
                 if len(d) != 1}
        check("zero_cross_job_leakage", not leaks,
              f"{len(by_phys)} physics groups, leaks={leaks}")

        # ---- causal trace audit -----------------------------------------
        # Every process-executed SPMD job must export as ONE tree: the
        # supervisor's job span at the root, the worker's attempt span
        # under it, and every simulated rank's spans chained below —
        # all under the job's single trace_id.  (Thread-degraded
        # executors skip worker tracing by design: set_active is
        # process-global.)
        spans = server.tracer.spans if server.tracer is not None else []
        by_trace: dict[str, list] = {}
        for s in spans:
            by_trace.setdefault(s.trace_id, []).append(s)
        if server.executor == "process" and server.tracer is not None:
            by_id = {s.span_id: s for s in spans if s.span_id}

            def root_of(s):
                seen = set()
                while (s.parent_id and s.parent_id in by_id
                       and s.span_id not in seen):
                    seen.add(s.span_id)
                    s = by_id[s.parent_id]
                return s

            spmd_traces = [
                t for t in by_trace.values()
                if {x.rank for x in t if x.rank >= 0} >= {0, 1}
            ]
            causal = bool(spmd_traces) and all(
                root_of(x).name.startswith("job:")
                for t in spmd_traces for x in t if x.rank >= 0
            )
            check(
                "causal_trace_spmd_ranks", causal,
                f"{len(spmd_traces)} SPMD traces of {len(by_trace)} total",
            )
            dangling = [
                s for s in spans if s.parent_id and s.parent_id not in by_id
            ]
            check(
                "no_dangling_span_parents", not dangling,
                f"{len(dangling)} orphaned of {len(spans)} spans",
            )

        # ---- post-mortem audit ------------------------------------------
        # The wedged job was killed by the watchdog; the reap path must
        # have left a flight-recorder dump naming the kill.
        flight_dumps = (
            sorted(server.flight_dir.glob("*.json"))
            if server.flight_dir.exists() else []
        )
        wedge_dumps = []
        for p in flight_dumps:
            try:
                doc = load_dump(p)
            except (ValueError, json.JSONDecodeError):
                continue
            if "watchdog" in str(doc.get("reason", "")):
                wedge_dumps.append(p.name)
        check(
            "wedge_leaves_flight_dump", len(wedge_dumps) >= 1,
            f"{len(flight_dumps)} dumps, watchdog-kill in {wedge_dumps}",
        )
        # surface the dumps next to the other artifacts for CI upload
        dump_dir = out / "flightrec"
        dump_dir.mkdir(exist_ok=True)
        for p in flight_dumps:
            (dump_dir / p.name).write_bytes(p.read_bytes())

        lat = sorted(r.latency_s for _, r in results)
        hits = server.counter_value("serve_cache_hits_total")
        coalesced = server.counter_value("serve_coalesced_total")
        lookups = hits + coalesced + server.counter_value(
            "serve_cache_misses_total"
        ) + server.counter_value("serve_cache_corrupt_total")
        report = {
            "config": {
                "jobs": len(specs), "workers": workers,
                "max_queue": max_queue, "executor_requested": executor,
                "executor_final": server.executor, "seed": seed,
                "heartbeat_timeout": heartbeat_timeout,
            },
            "wall_seconds": round(wall, 3),
            "jobs": {
                "submitted": int(
                    server.counter_value("serve_jobs_submitted_total")
                ),
                "ok": len(ok_results),
                "failed": len(failed),
                "cache_hits": int(hits),
                "coalesced": int(coalesced),
                "hit_rate": round((hits + coalesced) / lookups, 3)
                if lookups else 0.0,
            },
            "latency_seconds": {
                "p50": round(percentile(lat, 0.50), 4),
                "p99": round(percentile(lat, 0.99), 4),
                "max": round(lat[-1], 4) if lat else 0.0,
            },
            "counters": {
                "retries": server.counter_total("serve_retries_total"),
                "watchdog_kills": server.counter_value(
                    "serve_watchdog_kills_total"
                ),
                "worker_restarts": server.counter_value(
                    "serve_worker_restarts_total"
                ),
                "shed_total": server.counter_value("serve_shed_total"),
                "client_sheds_seen": sheds_seen,
                "cache_corrupt": server.counter_value(
                    "serve_cache_corrupt_total"
                ),
                "downgrades": server.counter_value(
                    "serve_downgrades_total"
                ),
            },
            "trace": {
                "spans": len(spans),
                "traces": len(by_trace),
                "flight_dumps": len(flight_dumps),
            },
            "checks": [
                {"name": n, "ok": ok, "detail": d} for n, ok, d in checks
            ],
            "passed": all(ok for _, ok, _ in checks),
        }
        (out / "report.json").write_text(json.dumps(report, indent=2))
        (out / "metrics.prom").write_text(server.metrics_text())
        if server.tracer is not None:
            write_chrome_trace(
                out / "trace.json", chrome_trace(spans=server.tracer.spans)
            )
        profiler.stop()
        profiler.write(out / "profile.collapsed")
        return report
    finally:
        profiler.stop()
        server.close(drain=False, timeout=10.0)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="serve load test: mixed jobs + injected faults"
    )
    ap.add_argument("--jobs", type=int, default=120)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--queue", type=int, default=8)
    ap.add_argument("--executor", default="process",
                    choices=("process", "thread"))
    ap.add_argument("--heartbeat-timeout", type=float, default=5.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="serve-loadtest")
    args = ap.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    report = run_loadtest(
        args.out,
        njobs=args.jobs,
        workers=args.workers,
        max_queue=args.queue,
        executor=args.executor,
        heartbeat_timeout=args.heartbeat_timeout,
        seed=args.seed,
    )
    print(json.dumps(report, indent=2))
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
