"""The job-runner supervisor: scheduling, watchdogs, retries, degradation.

Architecture (one :class:`JobServer`):

* **admission** — ``submit()`` pushes onto a
  :class:`~repro.serve.queue.BoundedJobQueue`; a full queue sheds the
  job with a typed :class:`~repro.serve.queue.ServerBusy` instead of
  queueing unboundedly.
* **dispatch thread** — pops jobs, probes the
  :class:`~repro.serve.cache.ResultCache` (hits complete immediately,
  corrupt entries are quarantined and recomputed), coalesces duplicates
  of an in-flight key, and assigns the rest to idle workers.
* **worker pool** — one crash-isolated worker *process* per slot
  (``fork`` start method, the PR-5 process-backend idiom); each slot is
  owned by a **monitor thread** that relays assignments, consumes
  heartbeats, and acts as the per-job watchdog: a worker that stops
  heartbeating (wedged) is killed-and-reaped via
  :func:`repro.simmpi.launcher.reap_processes` (TERM → KILL — a hung
  child must never hang the server) and the slot respawned.
* **retries** — a failed attempt (worker crash, watchdog kill, job
  exception) is requeued with bounded exponential backoff and
  deterministic per-job jitter; retries resume from the job's resilience
  checkpoints.  Exhausted jobs complete with a typed ``failed`` result —
  the pool stays healthy.
* **degradation ladder** — if worker processes cannot be started, or a
  slot keeps faulting past ``max_worker_restarts``, the pool falls back
  to thread-mode workers with a logged, metered downgrade (watchdogs
  then detect but cannot kill; the server never crashes because its
  substrate misbehaves).

Every decision is metered into a :class:`~repro.obs.metrics.
MetricsRegistry` and spanned per job through :mod:`repro.obs.spans`.
"""
from __future__ import annotations

import heapq
import itertools
import logging
import queue as stdqueue
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    SpanTracer,
    format_traceparent,
    new_trace_id,
    trace_context,
)
from repro.serve.cache import CORRUPT, HIT, ResultCache
from repro.serve.job import JobResult, JobSpec, backoff_delay, job_key, state_digest
from repro.serve.queue import BoundedJobQueue, Empty, ServerBusy
from repro.serve.worker import worker_main, worker_process_entry
from repro.simmpi.launcher import reap_processes
from repro.simmpi.shm import sweep_stale_segments
from repro.state.io import load_state

logger = logging.getLogger(__name__)

EXECUTORS = ("process", "thread")


@dataclass
class ServeConfig:
    """Knobs of the :class:`JobServer`.

    Parameters
    ----------
    workers:
        Pool slots (concurrent jobs).
    max_queue:
        Admission bound; a submit beyond it raises
        :class:`~repro.serve.queue.ServerBusy`.
    max_retries:
        Job-level retries after the first attempt (so a job runs at most
        ``max_retries + 1`` times) before it completes as ``failed``.
    heartbeat_timeout:
        Watchdog: seconds without a worker heartbeat (chunk commit)
        before the attempt is declared wedged and the worker killed.
    job_timeout:
        Hard per-attempt wall-clock ceiling (``None`` disables).
    backoff_base / backoff_factor / backoff_max:
        Exponential retry backoff, scaled into ``[0.5x, 1.5x)`` by a
        deterministic per-(job, attempt) jitter draw seeded by ``seed``.
    executor:
        ``"process"`` (default: crash-isolated workers) or ``"thread"``
        (the degraded mode — also reachable automatically).
    max_worker_restarts:
        Per-slot process respawns before the pool degrades to threads.
    seed:
        Seed of the deterministic backoff jitter.
    poll_interval:
        Monitor-thread poll granularity in seconds.
    """

    workers: int = 2
    max_queue: int = 16
    max_retries: int = 2
    heartbeat_timeout: float = 15.0
    job_timeout: float | None = 300.0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    executor: str = "process"
    max_worker_restarts: int = 8
    seed: int = 0
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )


class JobHandle:
    """Client-side future of one submitted job."""

    def __init__(self, job_id: int, key: str, spec: JobSpec) -> None:
        self.job_id = job_id
        self.key = key
        self.spec = spec
        self._event = threading.Event()
        self._result: JobResult | None = None

    def _complete(self, result: JobResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """The :class:`JobResult` (typed, never raises for job failures)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not complete within {timeout}s"
            )
        assert self._result is not None
        return self._result


@dataclass
class _Job:
    job_id: int
    spec: JobSpec
    key: str
    handle: JobHandle
    submitted_at: float
    attempt: int = 0
    watchdog_kills: int = 0
    notes: list[str] = field(default_factory=list)
    followers: list["_Job"] = field(default_factory=list)
    trace_id: str = ""   # causal tree of this job (minted at submit)
    span_id: int = 0     # the supervisor-side job span (absorb parent)


class _Worker:
    """One pool slot: transport + underlying process/thread."""

    __slots__ = ("slot", "kind", "proc", "thread", "conn", "mailbox",
                 "restarts")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.kind = "none"
        self.proc = None
        self.thread = None
        self.conn = None
        self.mailbox: stdqueue.Queue = stdqueue.Queue()
        self.restarts = 0


# --------------------------------------------------------------------------
# thread-mode transport: an in-process stand-in for a duplex Pipe
# --------------------------------------------------------------------------
_CLOSE = object()


class _QueueConn:
    """Duplex-``Pipe``-shaped connection over two ``queue.Queue``s."""

    def __init__(self, rx: stdqueue.Queue, tx: stdqueue.Queue) -> None:
        self._rx = rx
        self._tx = tx
        self._pending: deque = deque()
        self._closed = False

    def send(self, obj) -> None:
        if self._closed:
            raise OSError("connection closed")
        self._tx.put(obj)

    def poll(self, timeout: float = 0.0) -> bool:
        if self._pending:
            return True
        try:
            self._pending.append(self._rx.get(timeout=max(timeout, 1e-4)))
            return True
        except stdqueue.Empty:
            return False

    def recv(self):
        obj = self._pending.popleft() if self._pending else self._rx.get()
        if obj is _CLOSE:
            raise EOFError
        return obj

    def close(self) -> None:
        self._closed = True
        self._tx.put(_CLOSE)  # EOF for the peer


def _queue_conn_pair() -> tuple[_QueueConn, _QueueConn]:
    a2b: stdqueue.Queue = stdqueue.Queue()
    b2a: stdqueue.Queue = stdqueue.Queue()
    return _QueueConn(b2a, a2b), _QueueConn(a2b, b2a)


class JobServer:
    """Multi-tenant simulation job runner (see module docstring).

    Usable as a context manager; ``close()`` drains by default.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        work_dir: str | Path | None = None,
        config: ServeConfig | None = None,
        observe: bool = True,
        **overrides,
    ) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either config or keyword overrides")
        self.config = config
        self.cache = ResultCache(cache_dir)
        self.work_root = Path(work_dir) if work_dir is not None else (
            Path(cache_dir) / "work"
        )
        self.work_root.mkdir(parents=True, exist_ok=True)
        #: post-mortem dumps land here: worker-side SIGTERM dumps plus
        #: the supervisor's own kill/crash records (reap paths)
        self.flight_dir = self.work_root / "flightrec"
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer() if observe else None
        self.executor = config.executor
        self.queue = BoundedJobQueue(config.max_queue)
        self._retryq: list = []
        self._seq = itertools.count()
        self._next_id = itertools.count(1)
        self._lock = threading.RLock()
        self._inflight: dict[str, _Job] = {}
        self._idle: stdqueue.Queue = stdqueue.Queue()
        self._stop = threading.Event()
        self._accepting = True
        self._closed = False

        self._ctx = None
        if self.executor == "process":
            try:
                import multiprocessing

                self._ctx = multiprocessing.get_context("fork")
            except (ImportError, ValueError) as exc:
                self._degrade(f"fork context unavailable: {exc!r}")

        self._workers = {
            slot: _Worker(slot) for slot in range(config.workers)
        }
        for w in self._workers.values():
            self._attach_transport(w)
        self._monitors = [
            threading.Thread(
                target=self._monitor_loop, args=(w,), daemon=True,
                name=f"serve-monitor-{w.slot}",
            )
            for w in self._workers.values()
        ]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="serve-dispatch"
        )
        for t in self._monitors:
            t.start()
        self._dispatcher.start()
        logger.info(
            "serve: %d %s worker(s), queue bound %d, %d retries, "
            "heartbeat timeout %.1fs",
            config.workers, self.executor, config.max_queue,
            config.max_retries, config.heartbeat_timeout,
        )

    # ---- public API ------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; raises :class:`ServerBusy` when the queue is full."""
        if not self._accepting:
            raise RuntimeError("server is closed")
        key = job_key(spec)
        job_id = next(self._next_id)
        handle = JobHandle(job_id, key, spec)
        job = _Job(
            job_id=job_id, spec=spec, key=key, handle=handle,
            submitted_at=time.monotonic(), trace_id=new_trace_id(),
        )
        try:
            self.queue.put_nowait(job)
        except ServerBusy:
            self._count("serve_shed_total",
                        "jobs rejected by admission control")
            raise
        self._count("serve_jobs_submitted_total", "jobs admitted")
        return job.handle

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter (0 if never incremented)."""
        return self.registry.counter(name, **labels).value

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all of its label sets."""
        family = self.registry.as_dict().get(name)
        if family is None:
            return 0.0
        return sum(s["value"] for s in family["samples"])

    def metrics_text(self) -> str:
        """Prometheus text dump of every serve metric."""
        return self.registry.to_prometheus_text()

    def close(self, drain: bool = True, timeout: float = 120.0) -> None:
        """Stop the server; with ``drain`` (default) finish queued work."""
        if self._closed:
            return
        self._accepting = False
        deadline = time.monotonic() + timeout
        if drain:
            while time.monotonic() < deadline:
                with self._lock:
                    idle = not self._retryq and not self._inflight
                if idle and len(self.queue) == 0:
                    break
                time.sleep(0.02)
        self._stop.set()
        self._dispatcher.join(timeout=5.0)
        for w in self._workers.values():
            w.mailbox.put(None)
        for t in self._monitors:
            t.join(timeout=5.0)
        for w in self._workers.values():
            try:
                w.conn.send(("stop",))
            except (OSError, ValueError, AttributeError):
                pass
        reap_processes(
            [w.proc for w in self._workers.values() if w.proc is not None]
        )
        for w in self._workers.values():
            if w.conn is not None:
                try:
                    w.conn.close()
                except OSError:
                    pass
        # Reaped workers may have died holding inner SPMD shm worlds open
        # (process-backend jobs); unlink whatever their dead pids left.
        sweep_stale_segments()
        self._closed = True

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---- dispatch --------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            item = self._next_job()
            if item is None:
                continue
            job, is_retry = item
            if not is_retry and not self._admit_to_pool(job):
                continue
            self._assign(job)

    def _next_job(self) -> tuple[_Job, bool] | None:
        with self._lock:
            if self._retryq and self._retryq[0][0] <= time.monotonic():
                return heapq.heappop(self._retryq)[2], True
        try:
            return self.queue.get(timeout=0.05), False
        except Empty:
            return None

    def _admit_to_pool(self, job: _Job) -> bool:
        """Cache probe + coalescing; True when the job needs a worker."""
        path, verdict = self.cache.probe(job.key)
        if verdict == HIT:
            self._count("serve_cache_hits_total", "results served from cache")
            self._complete_from_cache(job, path)
            return False
        if verdict == CORRUPT:
            self._count(
                "serve_cache_corrupt_total",
                "corrupt cache entries quarantined and recomputed",
            )
        else:
            self._count("serve_cache_misses_total", "cache misses")
        with self._lock:
            running = self._inflight.get(job.key)
            if running is not None:
                running.followers.append(job)
                self._count(
                    "serve_coalesced_total",
                    "duplicate submissions coalesced onto in-flight jobs",
                )
                return False
            self._inflight[job.key] = job
        return True

    def _assign(self, job: _Job) -> None:
        while not self._stop.is_set():
            try:
                slot = self._idle.get(timeout=0.2)
            except stdqueue.Empty:
                continue
            self._workers[slot].mailbox.put(job)
            return
        # shutting down mid-assign: fail it so no handle hangs forever
        self._finish_failure(job, "ServerClosed", "server shut down")

    # ---- monitor / watchdog ---------------------------------------------
    def _monitor_loop(self, w: _Worker) -> None:
        while True:
            self._idle.put(w.slot)
            job = w.mailbox.get()
            if job is None:
                return
            if self.tracer is None:
                self._run_attempt(w, job)
                continue
            # the job span roots the job's causal tree: the worker's
            # attempt span (shipped back and absorbed) parents under it
            with trace_context(job.trace_id):
                with self.tracer.span(f"job:{job.job_id}", "serve") as jspan:
                    job.span_id = jspan.span_id
                    self._run_attempt(w, job)

    def _run_attempt(self, w: _Worker, job: _Job) -> None:
        cfg = self.config
        job.attempt += 1
        payload = {
            "job_id": job.job_id, "attempt": job.attempt, "key": job.key,
            "spec": asdict(job.spec),
        }
        if self.tracer is not None:
            # traceparent header + the shared perf_counter epoch: the
            # worker records spans on this tracer's timeline, under the
            # job span, and ships them back with its result
            payload["obs"] = {
                "traceparent": format_traceparent(job.trace_id, job.span_id),
                "epoch": self.tracer.epoch,
            }
        try:
            w.conn.send(("job", payload))
        except (OSError, ValueError):
            self._handle_crash(w, job, "worker pipe closed on assignment")
            return
        started = last_beat = time.monotonic()
        while True:
            got = False
            try:
                if w.conn.poll(cfg.poll_interval):
                    msg = w.conn.recv()
                    got = True
            except (EOFError, OSError):
                self._handle_crash(w, job, self._death_detail(w))
                return
            if got:
                kind = msg[0]
                if kind in ("start", "hb") and msg[1] == job.job_id:
                    last_beat = time.monotonic()
                elif kind == "done" and msg[1] == job.job_id:
                    self._absorb_worker_spans(job, msg[3].pop("spans", None))
                    self._finish_success(w, job, msg[3])
                    return
                elif kind == "fail" and msg[1] == job.job_id:
                    if len(msg) > 6:
                        self._absorb_worker_spans(job, msg[6])
                    self._retry_or_fail(w, job, msg[3], msg[4])
                    return
                continue  # drain any queued messages before timing out
            now = time.monotonic()
            wedged = None
            if now - last_beat > cfg.heartbeat_timeout:
                wedged = (
                    f"no heartbeat for {cfg.heartbeat_timeout:.1f}s "
                    f"(attempt {job.attempt})"
                )
            elif cfg.job_timeout is not None and now - started > cfg.job_timeout:
                wedged = (
                    f"attempt exceeded the {cfg.job_timeout:.1f}s "
                    "job timeout"
                )
            if wedged is not None:
                self._handle_wedged(w, job, wedged)
                return

    def _absorb_worker_spans(self, job: _Job, spans) -> None:
        """Merge the worker's shipped-back spans under the job span."""
        if self.tracer is not None and spans:
            self.tracer.absorb(
                spans, trace_id=job.trace_id, parent_id=job.span_id
            )

    def _write_flight_record(
        self, kind: str, reason: str, job: _Job, w: _Worker
    ) -> None:
        """Supervisor-side post-mortem record for a reaped worker.

        A SIGKILL'd or hard-crashed worker cannot dump its own ring, so
        the supervisor writes what *it* knows from the reap path — the
        artifact exists for every killed job, not just cooperative ones.
        """
        from repro.obs.flightrec import FlightRecorder

        try:
            rec = FlightRecorder(
                self.flight_dir
                / f"{kind}-job{job.job_id}-attempt{job.attempt}.json",
                meta={
                    "job_id": job.job_id, "attempt": job.attempt,
                    "worker": w.slot, "trace_id": job.trace_id,
                    "kind": kind,
                },
            )
            rec.note(kind, reason=reason, notes=list(job.notes))
            rec.dump(reason)
        except OSError as exc:  # observability must not fail the job path
            logger.warning("serve: could not write flight record: %s", exc)

    def _death_detail(self, w: _Worker) -> str:
        code = None
        if w.proc is not None:
            w.proc.join(timeout=1.0)
            code = w.proc.exitcode
        return f"worker {w.slot} died mid-job (exit code {code})"

    def _handle_crash(self, w: _Worker, job: _Job, detail: str) -> None:
        logger.warning("serve: %s", detail)
        job.notes.append(detail)
        self._write_flight_record("worker-crash", detail, job, w)
        self._respawn(w, detail)
        self._retry_or_fail(w, job, "WorkerCrash", detail)

    def _handle_wedged(self, w: _Worker, job: _Job, detail: str) -> None:
        job.watchdog_kills += 1
        job.notes.append(f"watchdog: {detail}")
        self._count(
            "serve_watchdog_kills_total",
            "wedged workers killed by the heartbeat watchdog",
        )
        logger.warning(
            "serve: watchdog killing worker %d — %s", w.slot, detail
        )
        self._write_flight_record(
            "watchdog-kill", f"watchdog kill: {detail}", job, w
        )
        if w.kind == "process":
            reap_processes([w.proc], join_timeout=0.1)
        else:
            # degraded thread mode cannot kill: abandon the thread (its
            # sends land in a closed conn) and account for it honestly
            try:
                w.conn.close()
            except OSError:
                pass
            logger.warning(
                "serve: thread-mode worker %d wedged — abandoned "
                "(no kill isolation in degraded mode)", w.slot,
            )
        self._respawn(w, detail)
        self._retry_or_fail(w, job, "WorkerWedged", detail)

    # ---- worker lifecycle -----------------------------------------------
    def _start_worker_process(self, w: _Worker) -> None:
        """Fork one worker process for ``w`` (overridable for tests)."""
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_process_entry,
            args=(child, w.slot, str(self.work_root)),
            daemon=False,  # jobs may fork their own SPMD rank processes
            name=f"serve-worker-{w.slot}",
        )
        proc.start()
        child.close()
        w.kind, w.proc, w.thread, w.conn = "process", proc, None, parent

    def _attach_transport(self, w: _Worker) -> None:
        if self.executor == "process":
            try:
                self._start_worker_process(w)
                return
            except Exception as exc:
                self._degrade(f"cannot start a worker process: {exc!r}")
        sup_conn, wrk_conn = _queue_conn_pair()
        t = threading.Thread(
            target=worker_main,
            args=(wrk_conn, w.slot, str(self.work_root)),
            kwargs={"allow_exit": False},
            daemon=True,
            name=f"serve-worker-{w.slot}",
        )
        t.start()
        w.kind, w.proc, w.thread, w.conn = "thread", None, t, sup_conn

    def _respawn(self, w: _Worker, reason: str) -> None:
        w.restarts += 1
        self._count("serve_worker_restarts_total", "worker slots respawned")
        if w.proc is not None:
            reap_processes([w.proc], join_timeout=0.5)
            try:
                w.conn.close()
            except OSError:
                pass
            # a killed worker cannot clean up its inner SPMD shm worlds
            sweep_stale_segments()
        if (
            self.executor == "process"
            and w.restarts > self.config.max_worker_restarts
        ):
            self._degrade(
                f"worker slot {w.slot} faulted {w.restarts} times "
                f"(> {self.config.max_worker_restarts})"
            )
        self._attach_transport(w)

    def _degrade(self, reason: str) -> None:
        """Process pool unusable: fall back to thread workers, loudly."""
        if self.executor != "process":
            return
        self.executor = "thread"
        self._count(
            "serve_downgrades_total",
            "executor downgrades (process pool -> thread pool)",
        )
        logger.warning(
            "serve DEGRADED to thread-mode workers: %s — jobs keep "
            "running without kill isolation", reason,
        )

    # ---- completion ------------------------------------------------------
    def _count(self, name: str, help: str = "", **labels) -> None:
        self.registry.counter(name, help, **labels).inc()

    def _retry_or_fail(
        self, w: _Worker, job: _Job, error_type: str, detail: str
    ) -> None:
        if self._stop.is_set():
            self._finish_failure(job, "ServerClosed", "server shut down")
            return
        cfg = self.config
        if job.attempt <= cfg.max_retries:
            delay = backoff_delay(
                cfg.backoff_base, cfg.backoff_factor, cfg.backoff_max,
                cfg.seed, job.key, job.attempt,
            )
            self._count("serve_retries_total", "job attempts retried",
                        reason=error_type)
            logger.warning(
                "serve: job %d attempt %d failed (%s) — retrying in "
                "%.3fs", job.job_id, job.attempt, error_type, delay,
            )
            with self._lock:
                heapq.heappush(
                    self._retryq,
                    (time.monotonic() + delay, next(self._seq), job),
                )
        else:
            self._finish_failure(job, error_type, detail)

    def _record_completion(
        self, result: JobResult, trace_id: str = ""
    ) -> None:
        self._count("serve_jobs_total", "completed jobs",
                    status=result.status)
        self.registry.histogram(
            "serve_job_latency_seconds", "submit-to-result latency"
        ).observe(result.latency_s, trace_id=trace_id or None)
        self.registry.gauge(
            "serve_job_latency_last_seconds", "per-job latency",
            job=str(result.job_id),
        ).set(result.latency_s)
        if result.makespan:
            self.registry.gauge(
                "serve_job_makespan_logical_seconds",
                "per-job simulated makespan", job=str(result.job_id),
            ).set(result.makespan)

    def _pop_inflight(self, job: _Job) -> list[_Job]:
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            followers, job.followers = job.followers, []
        return followers

    def _finish_success(self, w: _Worker, job: _Job, out: dict) -> None:
        path = self.cache.put(job.key, out["data"])
        result = JobResult(
            job_id=job.job_id, key=job.key, status="ok", spec=job.spec,
            attempts=job.attempt,
            latency_s=time.monotonic() - job.submitted_at,
            artifact=path, state_digest=out["digest"],
            resumed_from_step=out["resumed_from_step"],
            restarts=out["restarts"],
            rank_losses=out.get("rank_losses", 0),
            membership_epoch=out.get("membership_epoch", 0),
            final_nranks=out.get("final_nranks", 0),
            watchdog_kills=job.watchdog_kills,
            makespan=out["makespan"], worker=w.slot, notes=list(job.notes),
        )
        self._record_completion(result, trace_id=job.trace_id)
        job.handle._complete(result)
        for f in self._pop_inflight(job):
            fres = JobResult(
                job_id=f.job_id, key=f.key, status="ok", spec=f.spec,
                cache_hit=True, coalesced=True,
                latency_s=time.monotonic() - f.submitted_at,
                artifact=path, state_digest=out["digest"],
            )
            self._record_completion(fres, trace_id=f.trace_id)
            f.handle._complete(fres)

    def _finish_failure(
        self, job: _Job, error_type: str, detail: str
    ) -> None:
        result = JobResult(
            job_id=job.job_id, key=job.key, status="failed", spec=job.spec,
            attempts=job.attempt,
            latency_s=time.monotonic() - job.submitted_at,
            watchdog_kills=job.watchdog_kills,
            error_type=error_type, error=detail, notes=list(job.notes),
        )
        self._record_completion(result, trace_id=job.trace_id)
        logger.error(
            "serve: job %d failed permanently after %d attempt(s): %s: %s",
            job.job_id, job.attempt, error_type, detail,
        )
        job.handle._complete(result)
        for f in self._pop_inflight(job):
            fres = JobResult(
                job_id=f.job_id, key=f.key, status="failed", spec=f.spec,
                coalesced=True,
                latency_s=time.monotonic() - f.submitted_at,
                error_type=error_type, error=detail,
            )
            self._record_completion(fres, trace_id=f.trace_id)
            f.handle._complete(fres)

    def _complete_from_cache(self, job: _Job, path: Path) -> None:
        state, _ = load_state(path)
        result = JobResult(
            job_id=job.job_id, key=job.key, status="ok", spec=job.spec,
            cache_hit=True,
            latency_s=time.monotonic() - job.submitted_at,
            artifact=path, state_digest=state_digest(state),
        )
        self._record_completion(result, trace_id=job.trace_id)
        job.handle._complete(result)
