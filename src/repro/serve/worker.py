"""Worker side of the job runner: execute one job, report over a pipe.

A worker is a long-lived loop (one per pool slot, normally its own OS
process) that receives job assignments from the supervisor, executes
them through the resilient driver, and streams progress heartbeats back.
Everything the supervisor learns about a worker travels over the duplex
connection: ``start`` and ``hb`` messages feed the per-job watchdog,
``done``/``fail`` resolve the attempt, and an EOF on the pipe means the
worker process died mid-job (crash isolation: the *server* never shares
a fate with a job).

Execution always goes through :func:`repro.core.resilience.run_resilient`
with ``resume=True`` against a per-job checkpoint directory, so a retry
after a crash or a watchdog kill resumes from the last committed chunk
instead of restarting — and each committed chunk emits a heartbeat, so
a job that stops committing chunks is, by definition, wedged.

Chaos clauses (tests and the load-test driver only) make a worker
misbehave deterministically: ``crash`` hard-exits the process mid-job,
``wedge`` stops heartbeating without dying, ``poison`` raises a typed
error on every attempt.  ``rankloss`` is different: it injects a
permanent node loss of one *simulated* rank into the job's fault plan —
the elastic tier of the resilient driver heals it inside the running
attempt (spare adoption or communicator shrink), so the job completes
without consuming a worker retry.
"""
from __future__ import annotations

import logging
import os
import time
import traceback
from pathlib import Path

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore
from repro.core.resilience import ResilienceConfig
from repro.grid.latlon import LatLonGrid
from repro.obs import flightrec
from repro.obs.spans import (
    NULL_SPAN,
    SpanTracer,
    parse_traceparent,
    set_active,
    set_trace_context,
)
from repro.physics import perturbed_rest_state
from repro.serve.job import JobPoisoned, JobSpec, state_digest
from repro.state.io import state_npz_bytes

logger = logging.getLogger(__name__)

#: exit code of a chaos-injected hard crash (distinguishable in waitpid)
CRASH_EXIT_CODE = 13


class _Chaos:
    """Deterministic misbehavior bound to one attempt of one job."""

    def __init__(self, clause: dict | None, attempt: int,
                 allow_exit: bool) -> None:
        clause = clause or {}
        self.kind = clause.get("kind")
        self.attempts = set(clause.get("attempts", [1]))
        self.after_chunks = int(clause.get("after_chunks", 1))
        self.wedge_seconds = float(clause.get("wedge_seconds", 3600.0))
        self.rank = int(clause.get("rank", 1))
        self.at_call = int(clause.get("at_call", 30))
        self.seed = int(clause.get("seed", 0))
        self.attempt = attempt
        self.allow_exit = allow_exit

    def fault_plan(self):
        """Fault plan of a ``rankloss`` clause (``None`` otherwise).

        Unlike the other kinds — which misbehave at the *worker* level
        and cost a retry — a rank loss fires inside the simulation and
        is healed there by the elastic tier of the resilient driver.
        """
        if self.kind != "rankloss" or not self.armed:
            return None
        from repro.simmpi import FaultPlan, NodeLoss

        return FaultPlan(
            seed=self.seed,
            node_losses=(
                NodeLoss(rank=self.rank, at_call=self.at_call),
            ),
        )

    @property
    def armed(self) -> bool:
        if self.kind == "poison":
            return True  # poison fires on every attempt: retries exhaust
        return self.kind is not None and self.attempt in self.attempts

    def at_start(self) -> None:
        if self.kind == "poison":
            raise JobPoisoned(
                f"poison job failed deterministically (attempt "
                f"{self.attempt})"
            )

    def on_chunk(self, committed: int) -> None:
        if not self.armed or committed < self.after_chunks:
            return
        if self.kind == "crash":
            if self.allow_exit:
                os._exit(CRASH_EXIT_CODE)  # hard crash: no cleanup, no report
            raise ChildProcessError(
                "simulated worker crash (thread-mode worker cannot exit "
                "the server process)"
            )
        if self.kind == "wedge":
            # stop making progress without dying: the heartbeat watchdog,
            # not this sleep, decides when the attempt ends
            time.sleep(self.wedge_seconds)


def execute_job(
    spec: JobSpec,
    attempt: int,
    workdir: str | Path,
    heartbeat=None,
    allow_exit: bool = True,
) -> dict:
    """Run one job attempt to completion; returns the result payload.

    ``workdir`` holds the job's checkpoints across attempts — attempt
    N+1 resumes from attempt N's last committed chunk.  ``heartbeat``
    (if given) is called with a small progress dict at start and after
    every committed chunk.
    """
    workdir = Path(workdir)
    ckdir = workdir / "ckpt"
    chaos = _Chaos(spec.chaos, attempt, allow_exit)

    grid = LatLonGrid(nx=spec.nx, ny=spec.ny, nz=spec.nz)
    params = ModelParameters(
        dt_adaptation=spec.dt_adaptation,
        dt_advection=spec.dt_advection,
        m_iterations=spec.m_iterations,
    )
    core = DynamicalCore(
        grid,
        algorithm=spec.algorithm,
        nprocs=spec.nprocs,
        params=params,
        backend=spec.backend,
    )
    state0 = perturbed_rest_state(grid, amplitude_k=spec.amplitude_k)

    if heartbeat is not None:
        heartbeat({"step": 0, "of": spec.nsteps, "attempt": attempt})
    chaos.at_start()

    committed = 0

    def on_chunk(step: int, nsteps: int) -> None:
        nonlocal committed
        committed += 1
        if heartbeat is not None:
            heartbeat({"step": step, "of": nsteps, "attempt": attempt})
        chaos.on_chunk(committed)

    rcfg = ResilienceConfig(
        checkpoint_dir=ckdir,
        checkpoint_interval=spec.checkpoint_interval,
        max_restarts=4,
        resume=True,          # fresh dir on attempt 1 -> starts from state0
        on_chunk=on_chunk,
        rank_loss_policy=spec.rank_loss_policy,
        spare_ranks=spec.spare_ranks,
        faults=chaos.fault_plan(),
    )
    final, diag, report = core.run_resilient(state0, spec.nsteps, rcfg)
    return {
        "data": state_npz_bytes(final, step=spec.nsteps),
        "digest": state_digest(final),
        "resumed_from_step": report.resumed_from_step,
        "restarts": report.nrestarts,
        "rank_losses": len(report.rank_losses),
        "membership_epoch": report.membership_epoch,
        "final_nranks": report.final_nranks,
        "makespan": diag.makespan,
    }


def worker_main(conn, worker_id: int, work_root: str | Path,
                allow_exit: bool = True) -> None:
    """The worker loop: recv job → execute → report, until stop/EOF.

    Runs in a dedicated OS process normally, or in a thread when the
    supervisor has degraded (``allow_exit=False`` then converts chaos
    crashes into exceptions so a test job cannot kill the server).
    """
    work_root = Path(work_root)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # supervisor is gone; nothing to report to
        if msg[0] == "stop":
            return
        payload = msg[1]
        job_id = payload["job_id"]
        attempt = payload["attempt"]
        key = payload["key"]
        spec = JobSpec(**payload["spec"])

        # Join the supervisor's causal tree: a fresh tracer on its epoch
        # (perf_counter is system-wide, so the timelines line up), with
        # the job span as this thread's context parent.  Process workers
        # only — ``set_active`` is process-global, so degraded
        # thread-mode workers sharing the server process stay untraced.
        tracer = None
        prev_ctx = None
        obs_info = payload.get("obs")
        if obs_info is not None and allow_exit:
            trace_id, parent_id = parse_traceparent(obs_info["traceparent"])
            tracer = SpanTracer()
            tracer.epoch = obs_info["epoch"]
            tracer.trace_id = trace_id
            prev_ctx = set_trace_context(trace_id, parent_id)
            set_active(tracer)

        def hb(info, _job_id=job_id):
            flightrec.note("heartbeat", job_id=_job_id, **info)
            try:
                conn.send(("hb", _job_id, info))
            except OSError:
                pass  # supervisor stopped listening; keep computing

        try:
            flightrec.note(
                "job-start", job_id=job_id, attempt=attempt, key=key,
                name=spec.name,
            )
            conn.send(("start", job_id, attempt))
            workdir = work_root / key
            workdir.mkdir(parents=True, exist_ok=True)
            with (
                tracer.span(f"attempt:{attempt}", "worker")
                if tracer is not None
                else NULL_SPAN
            ):
                out = execute_job(
                    spec, attempt, workdir, heartbeat=hb,
                    allow_exit=allow_exit,
                )
            if tracer is not None:
                out["spans"] = tracer.spans
            flightrec.note("job-done", job_id=job_id, attempt=attempt)
            conn.send(("done", job_id, attempt, out))
        except BaseException as exc:  # noqa: BLE001 - typed report to caller
            flightrec.note(
                "job-fail", job_id=job_id, attempt=attempt,
                error=type(exc).__name__, detail=str(exc),
            )
            try:
                conn.send((
                    "fail", job_id, attempt,
                    type(exc).__name__, str(exc) or type(exc).__name__,
                    traceback.format_exc(),
                    tracer.spans if tracer is not None else None,
                ))
            except (OSError, ValueError):
                return
        finally:
            if tracer is not None:
                set_active(None)
                set_trace_context(*prev_ctx)


def worker_process_entry(conn, worker_id: int, work_root: str) -> None:
    """Entry point of one worker *process* (fork start method).

    Arms the flight recorder first: recent job events ring in memory,
    and a SIGTERM (the watchdog's kill path) dumps the ring to
    ``<work_root>/flightrec/`` before the process dies — so every
    wedged-and-killed job leaves a post-mortem artifact.
    """
    pid = os.getpid()
    flightrec.install(
        Path(work_root) / "flightrec" / f"worker{worker_id}-pid{pid}.json",
        meta={"worker": worker_id, "pid": pid},
    )
    worker_main(conn, worker_id, work_root, allow_exit=True)
