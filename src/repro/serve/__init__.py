"""Simulation-as-a-service: a hardened multi-tenant job runner.

``repro.serve`` turns the dynamical core into a service: many concurrent
simulation jobs (config → trajectory artifact) are scheduled by a
supervisor across a pool of crash-isolated worker processes, watched by
per-job heartbeat watchdogs, retried with exponential backoff and
deterministic jitter, admitted through a bounded queue that sheds load
with a typed :class:`ServerBusy`, and served out of an
integrity-checked, content-addressed result cache.

>>> from repro.serve import JobServer, JobSpec
>>> with JobServer("cache/") as srv:
...     handle = srv.submit(JobSpec(nx=32, ny=16, nz=4, nsteps=2))
...     result = handle.result()

See ``docs/serve.md`` for the architecture, failure matrix and
degradation ladder, and ``python -m repro.serve.loadtest`` for the
load-test driver.
"""
from repro.serve.cache import ResultCache
from repro.serve.job import (
    JobPoisoned,
    JobResult,
    JobSpec,
    job_key,
    state_digest,
)
from repro.serve.queue import BoundedJobQueue, ServerBusy
from repro.serve.supervisor import JobHandle, JobServer, ServeConfig

__all__ = [
    "BoundedJobQueue",
    "JobHandle",
    "JobPoisoned",
    "JobResult",
    "JobServer",
    "JobSpec",
    "ResultCache",
    "ServeConfig",
    "ServerBusy",
    "job_key",
    "state_digest",
]
