"""Integrity-checked, content-addressed result cache.

Artifacts live under ``<root>/objects/<key>.npz`` with a ``.sha256``
sidecar, both written atomically (tmp+fsync+rename — see
:mod:`repro.state.io`), so a torn write can never sit under a final
name.  Reads verify the sidecar; an entry that fails — corrupted at
rest, sidecar missing, or half a crash window — is *quarantined* (moved
to ``<root>/quarantine/``) and reported as a miss, so the supervisor
recomputes it instead of ever serving bytes it cannot vouch for.
"""
from __future__ import annotations

import logging
from pathlib import Path

from repro.state.io import (
    atomic_write_bytes,
    quarantine_file,
    verify_sidecar,
)

logger = logging.getLogger(__name__)

#: verdicts of one cache probe
HIT, MISS, CORRUPT = "hit", "miss", "corrupt"


class ResultCache:
    """Content-addressed artifact store keyed by :func:`~repro.serve.job.
    job_key`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.objects / f"{key}.npz"

    def probe(self, key: str) -> tuple[Path | None, str]:
        """Look up ``key``; returns ``(path_or_None, verdict)``.

        ``verdict`` is :data:`HIT`, :data:`MISS` or :data:`CORRUPT`; a
        corrupt entry (checksum mismatch *or* missing sidecar — cache
        entries are always written with one) has already been moved to
        quarantine when this returns.
        """
        path = self.path_for(key)
        if not path.exists():
            return None, MISS
        if verify_sidecar(path) is True:
            return path, HIT
        quarantined = quarantine_file(path, self.quarantine_dir)
        logger.warning(
            "cache entry %s failed verification — quarantined to %s, "
            "recomputing", key[:12], quarantined,
        )
        return None, CORRUPT

    def put(self, key: str, data: bytes) -> Path:
        """Store ``data`` under ``key`` atomically; returns the path.

        Concurrent writers of the same key are safe: each rename is
        atomic and, the store being content-addressed, they carry
        identical bytes — last rename wins.
        """
        path = self.path_for(key)
        atomic_write_bytes(path, data)
        return path

    def get(self, key: str) -> Path | None:
        """Verified lookup: the artifact path, or ``None``."""
        path, verdict = self.probe(key)
        return path if verdict == HIT else None

    def corrupt_entry_for_test(self, key: str, offset: int = 20) -> None:
        """Flip bytes of a cached entry in place (fault injection only)."""
        path = self.path_for(key)
        raw = bytearray(path.read_bytes())
        for i in range(offset, min(offset + 8, len(raw))):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))

    def __len__(self) -> int:
        return sum(1 for _ in self.objects.glob("*.npz"))

    def quarantined(self) -> list[Path]:
        return sorted(self.quarantine_dir.glob("*.npz*"))
