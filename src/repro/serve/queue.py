"""Bounded admission queue: shed load, never queue unboundedly.

A server that accepts everything converts overload into unbounded memory
growth and unbounded latency — clients time out anyway, just later and
with the server in worse shape.  :class:`BoundedJobQueue` therefore
rejects at admission time with a typed :class:`ServerBusy` the moment
the queue is full; the client sees a prompt, classifiable signal it can
back off on.
"""
from __future__ import annotations

import threading
from collections import deque


class ServerBusy(RuntimeError):
    """Typed admission rejection: the bounded job queue is full."""

    def __init__(self, depth: int, limit: int) -> None:
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"job queue full ({depth}/{limit}) — load shed; "
            "retry with backoff"
        )


class Empty(Exception):
    """Raised by :meth:`BoundedJobQueue.get` on timeout."""


class BoundedJobQueue:
    """FIFO with a hard depth limit and typed shedding."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put_nowait(self, item) -> None:
        """Admit ``item`` or raise :class:`ServerBusy` — never blocks."""
        with self._lock:
            if len(self._items) >= self.maxsize:
                raise ServerBusy(len(self._items), self.maxsize)
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: float | None = None):
        """Pop the oldest item; raises :class:`Empty` after ``timeout``."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                raise Empty
            return self._items.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
