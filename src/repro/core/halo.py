"""Halo exchange machinery for the distributed cores.

Supports the three decomposition families:

* Y-Z plane exchange: up to 8 neighbours ``(dy, dz)`` including the corner
  blocks of Figure 4;
* X-Y plane exchange: up to 8 neighbours ``(dx, dy)`` with periodic
  longitude wrap;
* full 3-D exchange (26 neighbours) for the 3-D baseline.

Each exchange sends **one message per field per neighbour** (matching how
the paper counts communication operations: "one communication involves
about 20 MPI_Isend and MPI_Recv operations due to the length of xi").
Non-blocking start/finish pairs expose the computation-communication
overlap of Sec. 4.3.1: the caller updates the inner block between
``start`` and ``finish``.

Pole ranks additionally need the cross-pole mirror values; when the
longitude axis is distributed the mirror columns live on the *antipodal*
rank, handled by :class:`AntipodalPoleExchanger`.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import Decomposition
from repro.operators.geometry import WorkingGeometry
from repro.simmpi.comm import Request, SimComm

#: tag bases; direction index * FIELD_STRIDE + field index fits well below
DIR_STRIDE = 64
FIELD_STRIDE = 1
TAG_HALO = 1_000
TAG_POLE_N = 8_000
TAG_POLE_S = 9_000


def _axis_slices(
    n_interior: int, g: int, d: int, side: str, w: int | None = None
) -> slice:
    """Slice along one axis of the working array for direction ``d``.

    ``side="send"`` selects the ``w`` interior cells adjacent to the ``d``
    face; ``side="recv"`` selects the ``w`` ghost cells adjacent to the
    interior on the ``d`` face.  ``d`` in {-1, 0, +1}; ``d=0`` selects the
    whole interior.  ``w`` defaults to the full ghost width ``g``.
    """
    if d == 0:
        return slice(g, g + n_interior)
    if w is None:
        w = g
    if w > g or w > n_interior:
        raise ValueError(
            f"exchange width {w} exceeds ghost width {g} or block {n_interior}"
        )
    if side == "send":
        return slice(g, g + w) if d < 0 else slice(g + n_interior - w, g + n_interior)
    return slice(g - w, g) if d < 0 else slice(g + n_interior, g + n_interior + w)


class PackPool:
    """Reusable contiguous send buffers for halo/bundle packing.

    The thread backend keeps a reference to every sent payload until the
    receiver consumes it, so each send must own a private copy — there the
    pool is a no-op and strided blocks flow through ``isend`` unchanged
    (``SimComm._as_payload`` copies them as before).  The process backend
    packs payload bytes into a shared-memory ring *synchronously* inside
    ``send``/``isend`` (``SimComm.pack_in_place``), so a block can be
    staged into a reusable buffer: one ``np.copyto`` per message and zero
    per-message allocations.  Buffers are keyed by caller key + shape, so
    alternating wide/thin exchanges keep distinct buffers instead of
    reallocating.
    """

    __slots__ = ("enabled", "_bufs")

    def __init__(self, comm: SimComm) -> None:
        self.enabled = comm.pack_in_place
        self._bufs: dict[tuple, np.ndarray] = {}

    def pack(self, key: tuple, block: np.ndarray) -> np.ndarray:
        """Stage ``block`` for sending; returns the array to pass to send."""
        if not self.enabled:
            return block
        buf = self._bufs.get(key)
        if buf is None or buf.shape != block.shape or buf.dtype != block.dtype:
            buf = np.empty(block.shape, dtype=block.dtype)
            self._bufs[key] = buf
        np.copyto(buf, block)
        return buf


@dataclass
class PendingExchange:
    """In-flight non-blocking halo exchange.

    ``recv_reqs`` entries are ``(request, field_index, slices, neighbour)``;
    the neighbour rank is kept so unpack errors (e.g. a corrupted or
    truncated payload) can name the offending link.
    """

    recv_reqs: list[tuple[Request, int, tuple[slice, ...], int]]
    send_reqs: list[Request]


class HaloExchanger:
    """Plane (or 3-D) halo exchange of one rank's working arrays."""

    def __init__(
        self,
        comm: SimComm,
        decomp: Decomposition,
        geom: WorkingGeometry,
    ) -> None:
        self.comm = comm
        self.decomp = decomp
        self.geom = geom
        self.neighbours = decomp.plane_neighbours(comm.rank)
        self._pool = PackPool(comm)

    # ---- slice computation ---------------------------------------------------
    def _block_slices(
        self,
        key: tuple,
        ndim: int,
        side: str,
        wy: int | None = None,
        wz: int | None = None,
        wx: int | None = None,
    ) -> tuple[slice, ...]:
        """Working-array slices of the send/recv block toward neighbour ``key``."""
        g = self.geom
        ext = g.extent
        kind = self.decomp.kind
        if kind in ("yz", "serial"):
            dy, dz = key
            dx = 0
        elif kind == "xy":
            dx, dy = key
            dz = 0
        else:
            dx, dy, dz = key
        ys = _axis_slices(ext.ny, g.gy, dy, side, wy)
        xs = _axis_slices(ext.nx, g.gx, dx, side, wx) if g.gx else slice(None)
        if ndim == 2:
            return (ys, xs)
        zs = _axis_slices(ext.nz, g.gz, dz, side, wz)
        return (zs, ys, xs)

    def _tag(self, key: tuple, field_idx: int, receiver_view: bool) -> int:
        """Deterministic tag; sender and receiver derive the same value.

        The tag encodes the direction as seen by the *sender*; the receiver
        flips the direction of its own key.
        """
        if receiver_view:
            key = tuple(-d for d in key)
        # the direction is encoded as seen by the sender; base-3 digits of
        # (d + 1) give a canonical per-direction code both sides agree on
        enc = 0
        for d in key:
            enc = enc * 3 + (d + 1)
        return TAG_HALO + enc * DIR_STRIDE + field_idx

    # ---- exchange ------------------------------------------------------------
    def start(
        self,
        fields: list[np.ndarray],
        wy: int | None = None,
        wz: int | None = None,
        wx: int | None = None,
    ) -> PendingExchange:
        """Post all receives and sends; returns the pending handle.

        ``fields`` is a list of working arrays (3-D or 2-D).  One message
        per (field, neighbour).  ``wy``/``wz``/``wx`` narrow the exchanged
        widths below the allocated ghost widths (used by the CA core whose
        advection exchange is much thinner than its adaptation one).
        """
        recv_reqs = []
        send_reqs = []
        # post receives first (tags are direction-of-sender encoded)
        for key, nb in self.neighbours.items():
            for fi, arr in enumerate(fields):
                slc = self._block_slices(key, arr.ndim, "recv", wy, wz, wx)
                tag = self._tag(key, fi, receiver_view=True)
                req = self.comm.irecv(nb, tag=tag)
                recv_reqs.append((req, fi, slc, nb))
        for key, nb in self.neighbours.items():
            for fi, arr in enumerate(fields):
                slc = self._block_slices(key, arr.ndim, "send", wy, wz, wx)
                tag = self._tag(key, fi, receiver_view=False)
                block = arr[slc]
                payload = self._pool.pack((key, fi) + block.shape, block)
                send_reqs.append(self.comm.isend(nb, payload, tag=tag))
        return PendingExchange(recv_reqs=recv_reqs, send_reqs=send_reqs)

    def finish(self, pending: PendingExchange, fields: list[np.ndarray]) -> None:
        """Wait for all receives and unpack into the ghost zones."""
        for req, fi, slc, nb in pending.recv_reqs:
            payload = req.wait()
            target = fields[fi][slc]
            if payload.size != target.size:
                raise ValueError(
                    f"rank {self.comm.rank}: halo payload from neighbour "
                    f"rank {nb} for field {fi} has {payload.size} elements, "
                    f"expected {target.size} for ghost block {target.shape}"
                )
            fields[fi][slc] = payload.reshape(target.shape)
        for req in pending.send_reqs:
            req.wait()

    def exchange(
        self,
        fields: list[np.ndarray],
        wy: int | None = None,
        wz: int | None = None,
        wx: int | None = None,
    ) -> None:
        """Blocking halo exchange (start + finish)."""
        pending = self.start(fields, wy, wz, wx)
        self.finish(pending, fields)


class AntipodalPoleExchanger:
    """Cross-pole ghost fill when longitude is distributed.

    The mirror value for a ghost row at columns ``[x0, x1)`` lives at
    columns ``[x0 + nx/2, x1 + nx/2)`` — on the antipodal rank of the same
    (polar) block row.  Requires an even number of equal x-blocks.
    """

    def __init__(
        self, comm: SimComm, decomp: Decomposition, geom: WorkingGeometry
    ) -> None:
        self.comm = comm
        self.decomp = decomp
        self.geom = geom
        if decomp.px > 1:
            if decomp.px % 2 != 0 or decomp.nx % decomp.px != 0:
                raise ValueError(
                    "antipodal pole exchange needs an even number of "
                    "equal-width x-blocks (px even, nx % px == 0)"
                )
        cx, cy, cz = decomp.coords(comm.rank)
        self.partner = decomp.rank_of(
            (cx + decomp.px // 2) % decomp.px, cy, cz
        )
        self.local = self.partner == comm.rank
        self._pool = PackPool(comm)

    def fill(self, fields: list[tuple[np.ndarray, str]]) -> None:
        """Fill pole ghost rows of the given fields.

        ``fields`` is a list of ``(array, kind)`` with kind in
        ``{"scalar", "vector", "vrow"}``.  Must run **after** the regular
        halo exchange: full *working-width* rows (interior + x-ghost
        columns) are exchanged, so the mirror also covers the corner
        ghost columns.  Full-x blocks are handled locally by
        ``fill_physical_ghosts`` and skip this entirely.
        """
        g = self.geom
        north, south = g.touches_north, g.touches_south
        if not ((north or south) and g.gy):
            return
        if g.full_x:
            return  # local mirror handled by fill_physical_ghosts
        gy = g.gy

        def working_rows(arr: np.ndarray, rows: slice) -> np.ndarray:
            if arr.ndim == 2:
                return arr[rows, :]
            return arr[:, rows, :]

        for pole, active, tag0 in (
            ("north", north, TAG_POLE_N),
            ("south", south, TAG_POLE_S),
        ):
            if not active:
                continue
            # working rows adjacent to the pole, full working width; the
            # south block is one row deeper because V-row mirrors are
            # offset by half a cell (interface rows)
            if pole == "north":
                rows = slice(gy, 2 * gy)
            else:
                rows = slice(-(2 * gy + 1), -gy)
            for fi, (arr, _kind) in enumerate(fields):
                block = working_rows(arr, rows)
                payload = self._pool.pack((pole, fi) + block.shape, block)
                self.comm.send(self.partner, payload, tag=tag0 + fi)
            for fi, (arr, kind) in enumerate(fields):
                got = self.comm.recv(self.partner, tag=tag0 + fi)
                block = working_rows(arr, rows)
                self._apply(arr, got.reshape(block.shape), kind, pole, rows)

    def _apply(
        self,
        arr: np.ndarray,
        mirror: np.ndarray,
        kind: str,
        pole: str,
        rows: slice,
    ) -> None:
        """Write mirror rows (already column-aligned) into ghost rows.

        ``mirror`` holds the partner's working rows selected by ``rows``
        (the partner has the same extents); mirror row for working row
        ``r`` is looked up by its global working index.
        """
        g = self.geom
        gy = g.gy
        ny_w = arr.shape[-2]
        block_start = rows.start if rows.start >= 0 else ny_w + rows.start

        def put(row_w: int, src_row: np.ndarray) -> None:
            if arr.ndim == 2:
                arr[row_w, :] = src_row
            else:
                arr[:, row_w, :] = src_row

        def take(row_w: int) -> np.ndarray:
            idx = row_w - block_start
            if arr.ndim == 2:
                return mirror[idx, :]
            return mirror[:, idx, :]

        sign = -1.0 if kind in ("vector", "vrow") else 1.0
        if kind in ("scalar", "vector"):
            if pole == "north":
                for m in range(gy):  # ghost gy-1-m mirrors interior gy+m
                    put(gy - 1 - m, sign * take(gy + m))
            else:
                for m in range(gy):  # ghost ny_w-gy+m mirrors ny_w-1-gy-m
                    put(ny_w - gy + m, sign * take(ny_w - 1 - gy - m))
        else:  # vrow: the pole interface row itself is zero
            zero = np.zeros(arr.shape[:-2] + (arr.shape[-1],))
            if pole == "north":
                pole_row = gy - 1
                put(pole_row, zero)
                for m in range(1, gy):  # ghost pole-m mirrors row gy-1+m
                    put(pole_row - m, sign * take(gy - 1 + m))
            else:
                pole_row = ny_w - 1 - gy
                put(pole_row, zero)
                for m in range(1, gy + 1):  # ghost pole+m mirrors pole-m
                    put(pole_row + m, sign * take(pole_row - m))
