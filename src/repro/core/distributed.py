"""The original distributed algorithm (Algorithm 1) on any decomposition.

One rank program, ``original_rank_program``, runs Algorithm 1 with the
communication schedule of Sec. 3/4.2: a full halo refresh before *every*
internal update (``3M + 3 + 1 = 13`` exchanges per step for ``M = 3``), a
fresh z-collective for every ``C`` application (3 per nonlinear
iteration), and — when longitude is decomposed — an x-line collective for
every Fourier-filter application.

The rank programs are written against :class:`repro.simmpi.SimComm`; the
same code runs serially (``nranks = 1``) and must then agree with
:class:`repro.core.integrator.SerialCore` to round-off, which is what the
integration tests assert.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.constants import DEFAULT_PARAMETERS, ModelParameters
from repro.core.halo import AntipodalPoleExchanger, HaloExchanger
from repro.core.tendencies import TendencyEngine
from repro.core.workspace import StateRing, Workspace
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.obs.spans import span
from repro.operators.filter import filter_plan
from repro.operators.geometry import WorkingGeometry
from repro.operators.smoothing import smooth_state, smooth_state_into, smoothers_for
from repro.operators.vertical import VerticalDiagnostics
from repro.perf.costs import ComputeWeights, DEFAULT_WEIGHTS
from repro.simmpi.comm import SimComm, SubComm
from repro.state.variables import ModelState

#: phase labels used for the paper's time breakdown
PHASE_STENCIL = "stencil_comm"
PHASE_COLLECTIVE = "collective_comm"
PHASE_COMPUTE = "compute"


@dataclass
class DistributedConfig:
    """Everything a rank needs to run a distributed experiment."""

    grid: LatLonGrid
    decomp: Decomposition
    params: ModelParameters = DEFAULT_PARAMETERS
    sigma: SigmaLevels | None = None
    nsteps: int = 1
    forcing: Callable | None = None
    weights: ComputeWeights = DEFAULT_WEIGHTS
    #: set False to skip logical-clock compute charging (pure numerics tests)
    charge_compute: bool = True
    #: CA ablation switches (Sec. 4.2.2 / 4.3.1): disable to isolate the
    #: contribution of the approximate nonlinear iteration or of the
    #: computation-communication overlap
    ca_approximate_c: bool = True
    ca_overlap: bool = True
    #: z-collective implementation of the C operator: "allgather" (each
    #: rank reconstructs the full column) or "scan" (exscan + allreduce,
    #: the volume-optimal variant matching Theorem 4.2's ring constant)
    c_method: str = "allgather"
    #: distributed polar-filter implementation (X-Y / 3-D only):
    #: "allgather" (every rank assembles and FFTs the full circles,
    #: replicated work) or "transpose" (alltoall row redistribution, the
    #: work-sharing method of parallel FFT libraries; needs equal x-blocks)
    filter_method: str = "allgather"
    #: run the per-rank pool-backed fast path (bit-identical numerics;
    #: ``False`` keeps the original allocating implementation)
    use_workspace: bool = True
    #: kernel tier per rank: ``"reference"`` or ``"fused"`` (bit-identical
    #: fused kernels with per-operator fallback; requires ``use_workspace``)
    kernel_tier: str = "reference"
    #: fused-kernel backend: ``"auto"``, ``"c"``, ``"numba"`` or ``"numpy"``
    kernel_backend: str = "auto"
    #: record per-step physics-telemetry partials (local sums/maxes only —
    #: no extra communication; the driver combines them after the run)
    telemetry: bool = False
    #: step executor: ``"sync"`` (bulk-synchronous reference) or
    #: ``"taskgraph"`` (per-rank DAG executor with real comm/compute
    #: overlap; bit-identical trajectories, needs ``use_workspace``;
    #: decompositions it cannot overlap fall back to the sync path)
    executor: str = "sync"
    #: seed for the executor's poll-interleaving fuzzer (tests only;
    #: ``None`` polls deterministically once per task)
    taskgraph_fuzz_seed: int | None = None

    def validate_c_method(self) -> None:
        if self.c_method not in ("allgather", "scan"):
            raise ValueError(f"unknown c_method {self.c_method!r}")
        if self.filter_method not in ("allgather", "transpose"):
            raise ValueError(f"unknown filter_method {self.filter_method!r}")
        if self.executor not in ("sync", "taskgraph"):
            raise ValueError(f"unknown executor {self.executor!r}")

    def __post_init__(self) -> None:
        if self.sigma is None:
            self.sigma = SigmaLevels.uniform(self.grid.nz)
        d, g = self.decomp, self.grid
        if (d.nx, d.ny, d.nz) != (g.nx, g.ny, g.nz):
            raise ValueError("decomposition does not match the grid")


class RankContext:
    """Shared per-rank plumbing of the distributed cores."""

    def __init__(
        self,
        comm: SimComm,
        cfg: DistributedConfig,
        gy: int,
        gz: int,
        gx: int,
    ) -> None:
        self.comm = comm
        self.cfg = cfg
        decomp = cfg.decomp
        if comm.size != decomp.nranks:
            raise ValueError(
                f"{decomp.nranks} ranks required, got {comm.size}"
            )
        self.extent = decomp.extent(comm.rank)
        if self.extent.ny <= gy or (gz and self.extent.nz <= gz):
            raise ValueError(
                f"rank {comm.rank}: block {self.extent.shape3d} too small "
                f"for ghost widths gy={gy} gz={gz}"
            )
        self.geom = WorkingGeometry.build(
            cfg.grid, cfg.sigma, self.extent, gy=gy, gz=gz, gx=gx
        )
        self.halo = HaloExchanger(comm, decomp, self.geom)
        self.antipodal = (
            AntipodalPoleExchanger(comm, decomp, self.geom)
            if not self.geom.full_x
            and (self.geom.touches_north or self.geom.touches_south)
            else None
        )
        # z-line sub-communicator for the C collectives
        self.zsub: SubComm | None = None
        if decomp.pz > 1:
            self.zsub = comm.subcomm(decomp.ranks_along("z", comm.rank))
        # x-line sub-communicator for the distributed polar filter
        self.xsub: SubComm | None = None
        if decomp.px > 1:
            self.xsub = comm.subcomm(decomp.ranks_along("x", comm.rank))

        cfg.validate_c_method()
        self.ws = Workspace() if cfg.use_workspace else None
        self.kernels = None
        if self.ws is not None:
            from repro.kernels import kernel_set

            self.kernels = kernel_set(cfg.kernel_tier, cfg.kernel_backend)
        self.smoothers = smoothers_for(cfg.params)
        self._vd_last: VerticalDiagnostics | None = None
        if cfg.c_method == "scan" and decomp.pz > 1:
            self.engine = TendencyEngine(
                self.geom, cfg.params, scan_z=self._make_scan(), ws=self.ws,
                kernels=self.kernels,
            )
        else:
            self.engine = TendencyEngine(
                self.geom, cfg.params, gather_z=self._make_gather(), ws=self.ws,
                kernels=self.kernels,
            )
        # distributed-filter factors (X-Y / 3-D case): full-circle cutoffs
        if not self.geom.full_x:
            nx = cfg.grid.nx
            profile = cfg.params.filter_profile
            self.fmask_c, self.ffactors_c = filter_plan(
                self.geom.sin_c, nx, cfg.params.filter_latitude, profile
            )
            self.fmask_v, self.ffactors_v = filter_plan(
                self.geom.sin_v, nx, cfg.params.filter_latitude, profile
            )
        self.exchanges = 0
        self.c_calls = 0
        #: ``(step, partials)`` pairs when ``cfg.telemetry`` is on
        self.telemetry_partials: list[tuple[int, dict]] = []

    # ---- cost charging ----------------------------------------------------
    def charge(self, weight: float, npoints: int) -> None:
        if self.cfg.charge_compute:
            self.comm.compute(
                weight * npoints * self.comm.machine.seconds_per_point,
                phase=PHASE_COMPUTE,
            )

    @property
    def _wpoints(self) -> int:
        """Points of one working 3-D array."""
        nz_w, ny_w, nx_w = self.geom.shape3d
        return nz_w * ny_w * nx_w

    # ---- the z-collective hook ------------------------------------------------
    def _make_gather(self):
        if self.cfg.decomp.pz == 1:
            return None
        zsub = None

        def gather(stack: np.ndarray) -> np.ndarray:
            self.comm.set_phase(PHASE_COLLECTIVE)
            pieces = self._zsub().allgather(stack)
            self.comm.set_phase(None)
            return np.concatenate(pieces, axis=1)

        return gather

    def _make_scan(self):
        """The (exscan, allreduce) pair of the scan-based C variant."""

        def exscan(x: np.ndarray) -> np.ndarray:
            self.comm.set_phase(PHASE_COLLECTIVE)
            out = self._zsub().exscan(x)
            self.comm.set_phase(None)
            return out

        def allreduce(x: np.ndarray) -> np.ndarray:
            self.comm.set_phase(PHASE_COLLECTIVE)
            out = self._zsub().allreduce(x)
            self.comm.set_phase(None)
            return out

        return exscan, allreduce

    def _zsub(self) -> SubComm:
        assert self.zsub is not None
        return self.zsub

    # ---- boundary conditions -----------------------------------------------------
    def fill_bc(self, state: ModelState) -> None:
        """Physical boundary fill (pole mirror / z edges), local part."""
        if self.geom.full_x:
            self.engine.fill_physical_ghosts(state)
        else:
            from repro.operators.shifts import fill_z_edge_ghosts

            if self.geom.gz > 0:
                for f in (state.U, state.V, state.Phi):
                    fill_z_edge_ghosts(
                        f, self.geom.gz,
                        top=self.geom.touches_top,
                        bottom=self.geom.touches_bottom,
                    )
            if self.geom.touches_south and self.geom.gy == 0:
                state.V[..., -1, :] = 0.0

    def refresh_halos(self, state: ModelState) -> None:
        """One full halo refresh: plane exchange, antipodal pole fill, BC."""
        with span("halo-exchange", "comm"):
            self.comm.set_phase(PHASE_STENCIL)
            self.halo.exchange([state.U, state.V, state.Phi, state.psa])
            if self.antipodal is not None:
                self.antipodal.fill(
                    [
                        (state.U, "vector"),
                        (state.V, "vrow"),
                        (state.Phi, "scalar"),
                        (state.psa, "scalar"),
                    ]
                )
            self.comm.set_phase(None)
            self.fill_bc(state)
        self.exchanges += 1

    # ---- operators with charging ----------------------------------------------------
    def vertical_fresh(self, state: ModelState) -> VerticalDiagnostics:
        self.charge(self.cfg.weights.vertical, self._wpoints)
        if self.ws is not None:
            # every rank program consumes a C bundle before requesting the
            # next fresh one, so the previous bundle is dead here: recycle
            last, self._vd_last = self._vd_last, None
            self.ws.give_vd(last)
        vd = self.engine.vertical(state)
        if self.ws is not None:
            self._vd_last = vd
        self.c_calls += 1
        return vd

    def filtered_adaptation(
        self, state: ModelState, vd: VerticalDiagnostics
    ) -> ModelState:
        self.charge(self.cfg.weights.adaptation, self._wpoints)
        tend = self.engine.adaptation(state, vd)
        self._apply_filter(tend)
        return tend

    def filtered_advection(
        self, state: ModelState, vd: VerticalDiagnostics
    ) -> ModelState:
        self.charge(self.cfg.weights.advection, self._wpoints)
        tend = self.engine.advection(state, vd)
        self._apply_filter(tend)
        return tend

    def _apply_filter(self, tend: ModelState) -> None:
        """Polar filter: local under full x, x-collective otherwise."""
        g = self.geom
        if g.full_x:
            pf = self.engine.polar_filter
            if pf is not None and pf.active:
                self.charge(
                    self.cfg.weights.filter_fft
                    * math.log2(g.grid.nx)
                    * pf.n_filtered_rows,
                    g.shape3d[0] * g.grid.nx,
                )
                pf.apply_state(tend)
            return
        self._filter_distributed(tend)

    def _filter_distributed(self, tend: ModelState) -> None:
        """Gather full latitude circles along the x line, filter, scatter.

        Every rank of an x line reconstructs the full filtered rows (the
        allgather makes the circle available everywhere) and keeps its own
        columns.  Lines without polar rows skip the collective entirely —
        the polar load imbalance of the X-Y decomposition is real and is
        what Figure 6 shows.
        """
        if not (self.fmask_c.any() or self.fmask_v.any()):
            return
        assert self.xsub is not None or self.cfg.decomp.px == 1
        if (
            self.cfg.filter_method == "transpose"
            and self.cfg.decomp.px > 1
        ):
            self._filter_transpose(tend)
            return
        for arr, fam in (
            (tend.U, "c"), (tend.V, "v"), (tend.Phi, "c"), (tend.psa, "c"),
        ):
            mask, factors = (
                (self.fmask_c, self.ffactors_c)
                if fam == "c"
                else (self.fmask_v, self.ffactors_v)
            )
            if mask.any():
                self._filter_field_allgather(arr, mask, factors)

    def _filter_field_allgather(
        self, arr: np.ndarray, mask: np.ndarray, factors: np.ndarray
    ) -> None:
        """Allgather the circles along the x line and FFT them (replicated)."""
        g = self.geom
        gx, nx_i = g.gx, g.extent.nx
        nx = g.grid.nx
        x0 = g.extent.x0
        rows = np.ascontiguousarray(arr[..., mask, gx: gx + nx_i])
        if self.cfg.decomp.px > 1:
            self.comm.set_phase(PHASE_COLLECTIVE)
            pieces = self.xsub.allgather(rows)
            self.comm.set_phase(None)
            full = np.concatenate(pieces, axis=-1)
        else:
            full = rows
        nrows = int(mask.sum()) * (arr.shape[0] if arr.ndim == 3 else 1)
        self.charge(
            self.cfg.weights.filter_fft * math.log2(nx), nrows * nx
        )
        spec = np.fft.rfft(full, axis=-1)
        spec *= factors
        full = np.fft.irfft(spec, n=nx, axis=-1)
        arr[..., mask, gx: gx + nx_i] = full[..., x0: x0 + nx_i]

    def _filter_transpose(self, tend: ModelState) -> None:
        """Transpose (alltoall) distributed filter: redistribute the
        filtered row-slots over the x line so each rank FFTs only its
        share, then transpose back.  Halves neither the total volume nor
        the latency of the allgather method, but divides the FFT *work*
        by p_x — the classic parallel-FFT layout trade."""
        from repro.grid.decomposition import balanced_partition

        decomp = self.cfg.decomp
        g = self.geom
        gx, nx_i = g.gx, g.extent.nx
        nx = g.grid.nx
        if nx % decomp.px != 0:
            raise ValueError("transpose filter needs equal x-blocks")
        cx = decomp.coords(self.comm.rank)[0]
        for arr, fam in (
            (tend.U, "c"), (tend.V, "v"), (tend.Phi, "c"), (tend.psa, "c"),
        ):
            mask, factors = (
                (self.fmask_c, self.ffactors_c)
                if fam == "c"
                else (self.fmask_v, self.ffactors_v)
            )
            if not mask.any():
                continue
            rows = np.ascontiguousarray(arr[..., mask, gx: gx + nx_i])
            R = int(mask.sum())
            nlev = rows.shape[0] if rows.ndim == 3 else 1
            slots = rows.reshape(nlev * R, nx_i)
            S = slots.shape[0]
            if S < decomp.px:
                # too few row-slots to share: the whole x line falls back
                # to the replicated method for this field (S is identical
                # line-wide, so the branch is collectively consistent)
                self._filter_field_allgather(arr, mask, factors)
                continue
            bounds = balanced_partition(S, decomp.px)
            # forward transpose: send member i its slots (my columns)
            self.comm.set_phase(PHASE_COLLECTIVE)
            received = self.xsub.alltoall(
                [np.ascontiguousarray(slots[a:b]) for a, b in bounds]
            )
            self.comm.set_phase(None)
            a, b = bounds[cx]
            mine = np.concatenate(
                [blk.reshape(b - a, nx_i) for blk in received], axis=-1
            )
            # FFT only my share of the slots
            self.charge(
                self.cfg.weights.filter_fft * math.log2(nx), (b - a) * nx
            )
            slot_rows = np.arange(a, b) % R  # row family index per slot
            spec = np.fft.rfft(mine, axis=-1)
            spec *= factors[slot_rows]
            mine = np.fft.irfft(spec, n=nx, axis=-1)
            # backward transpose: return each member its columns
            col_blocks = [
                np.ascontiguousarray(mine[:, i * nx_i: (i + 1) * nx_i])
                for i in range(decomp.px)
            ]
            self.comm.set_phase(PHASE_COLLECTIVE)
            back = self.xsub.alltoall(col_blocks)
            self.comm.set_phase(None)
            for (a2, b2), blk in zip(bounds, back):
                slots[a2:b2] = blk.reshape(b2 - a2, nx_i)
            arr[..., mask, gx: gx + nx_i] = slots.reshape(rows.shape)

    # ---- state scatter/gather -----------------------------------------------
    def pad_local(self, global_state: ModelState) -> ModelState:
        """Scatter this rank's block of a global state into working arrays."""
        g = self.geom
        w = ModelState.zeros(g.shape3d)
        gz, gy, gx = g.gz, g.gy, g.gx
        sl3 = (
            slice(gz, gz + g.extent.nz),
            slice(gy, gy + g.extent.ny),
            slice(gx, gx + g.extent.nx),
        )
        for name in ("U", "V", "Phi"):
            getattr(w, name)[sl3] = self.cfg.decomp.scatter(
                getattr(global_state, name), self.comm.rank
            )
        w.psa[sl3[1:]] = self.cfg.decomp.scatter(global_state.psa, self.comm.rank)
        return w

    def record_telemetry(self, step: int, w: ModelState) -> None:
        """Record this block's physics partials after step ``step``.

        Purely local sums/maxes over the interior block — deliberately no
        communication, so the exchange/collective counts the paper argues
        about are unchanged whether telemetry is on or off.
        """
        if not self.cfg.telemetry:
            return
        from repro.obs.telemetry import block_partials

        self.telemetry_partials.append(
            (
                step,
                block_partials(
                    self.strip_local(w), self.cfg.grid, self.cfg.sigma,
                    extent=self.extent,
                ),
            )
        )

    def ws_counters(self) -> dict | None:
        """Pool counters of this rank's workspace (``None`` without one)."""
        if self.ws is None:
            return None
        return {
            "fresh_allocations": self.ws.fresh_allocations,
            "reuses": self.ws.reuses,
            "pooled_bytes": self.ws.pooled_bytes,
        }

    def strip_local(self, w: ModelState) -> ModelState:
        """Interior block of a working state."""
        g = self.geom
        gz, gy, gx = g.gz, g.gy, g.gx
        sl3 = (
            slice(gz, gz + g.extent.nz),
            slice(gy, gy + g.extent.ny),
            slice(gx, gx + g.extent.nx),
        )
        return ModelState(
            U=w.U[sl3].copy(),
            V=w.V[sl3].copy(),
            Phi=w.Phi[sl3].copy(),
            psa=w.psa[sl3[1:]].copy(),
        )


@dataclass
class RankResult:
    """What each rank program returns."""

    state: ModelState
    c_calls: int
    exchanges: int
    #: per-step local telemetry partials (``cfg.telemetry`` only)
    telemetry: list[tuple[int, dict]] | None = None
    #: workspace pool counters of this rank (``cfg.use_workspace`` only)
    ws_counters: dict | None = None
    #: task-graph executor metrics (``cfg.executor == "taskgraph"`` only)
    overlap: dict | None = None


def _update(
    psi: ModelState,
    dt: float,
    tend: ModelState,
    ctx: RankContext,
    out: ModelState | None = None,
) -> ModelState:
    ctx.charge(ctx.cfg.weights.update, ctx._wpoints)
    if out is not None:
        return psi.axpy_into(dt, tend, out)
    return psi.axpy(dt, tend)


def original_rank_program(
    comm: SimComm, cfg: DistributedConfig, initial: ModelState
) -> RankResult:
    """Algorithm 1 under ``cfg.decomp`` (X-Y, Y-Z or 3-D).

    ``initial`` is the *global* interior initial state (shared read-only
    across rank threads).  Returns the local interior block after
    ``cfg.nsteps`` steps plus communication counters.
    """
    decomp = cfg.decomp
    if (
        cfg.executor == "taskgraph"
        and cfg.use_workspace
        and decomp.px == 1
        and decomp.pz == 1
    ):
        # x- or z-decomposed runs have no overlap-safe split (the polar
        # filter is collective / the z halo refreshes mid-stencil rows):
        # they keep the synchronous schedule below
        from repro.core.taskgraph.original import original_rank_program_taskgraph

        return original_rank_program_taskgraph(comm, cfg, initial)
    gy = 2
    gz = 1 if decomp.pz > 1 else 0
    gx = 2 if decomp.px > 1 else 0
    ctx = RankContext(comm, cfg, gy=gy, gz=gz, gx=gx)
    params = cfg.params
    dt1, dt2, M = params.dt_adaptation, params.dt_advection, params.m_iterations

    psi = ctx.pad_local(initial)
    ctx.refresh_halos(psi)

    ring = StateRing(ctx.ws, ctx.geom.shape3d) if ctx.ws is not None else None

    def scr(*live: ModelState) -> ModelState | None:
        return ring.scratch(*live) if ring is not None else None

    for step_no in range(cfg.nsteps):
        with span("step", "step"):
            # ---- adaptation: M iterations x 3 internal updates ----
            for _i in range(M):
                vd = ctx.vertical_fresh(psi)
                eta1 = _update(
                    psi, dt1, ctx.filtered_adaptation(psi, vd), ctx, scr(psi)
                )
                ctx.refresh_halos(eta1)

                vd = ctx.vertical_fresh(eta1)
                eta2 = _update(
                    psi, dt1, ctx.filtered_adaptation(eta1, vd), ctx,
                    scr(psi, eta1),
                )
                ctx.refresh_halos(eta2)

                if ring is not None:
                    mid = ModelState.midpoint_into(
                        psi, eta2, ring.scratch(psi, eta2)
                    )
                else:
                    mid = ModelState.midpoint(psi, eta2)
                vd = ctx.vertical_fresh(mid)
                psi = _update(
                    psi, dt1, ctx.filtered_adaptation(mid, vd), ctx,
                    scr(psi, mid),
                )
                ctx.refresh_halos(psi)
            vd_frozen = vd

            # ---- advection: one iteration, 3 internal updates ----
            zeta1 = _update(
                psi, dt2, ctx.filtered_advection(psi, vd_frozen), ctx,
                scr(psi),
            )
            ctx.refresh_halos(zeta1)
            zeta2 = _update(
                psi, dt2, ctx.filtered_advection(zeta1, vd_frozen), ctx,
                scr(psi, zeta1),
            )
            ctx.refresh_halos(zeta2)
            if ring is not None:
                mid = ModelState.midpoint_into(
                    psi, zeta2, ring.scratch(psi, zeta2)
                )
            else:
                mid = ModelState.midpoint(psi, zeta2)
            psi = _update(
                psi, dt2, ctx.filtered_advection(mid, vd_frozen), ctx,
                scr(psi, mid),
            )
            ctx.refresh_halos(psi)

            # ---- smoothing (the 13th exchange already happened above) ----
            ctx.charge(cfg.weights.smoothing, ctx._wpoints)
            if ring is not None:
                out_s = ring.scratch(psi)
                smoothed = (
                    ctx.kernels.smooth_state_into(
                        psi, params, out_s, ctx.ws, ctx.smoothers
                    )
                    if ctx.kernels is not None
                    else None
                )
                if smoothed is None:
                    smooth_state_into(
                        psi, params, out_s, ctx.ws, ctx.smoothers
                    )
                psi = out_s
            else:
                psi = smooth_state(psi, params)

            if cfg.forcing is not None:
                cfg.forcing(psi, ctx.geom, dt2)
            ctx.refresh_halos(psi)
        ctx.record_telemetry(step_no + 1, psi)

    return RankResult(
        state=ctx.strip_local(psi),
        c_calls=ctx.c_calls,
        exchanges=ctx.exchanges,
        telemetry=ctx.telemetry_partials if cfg.telemetry else None,
        ws_counters=ctx.ws_counters(),
    )
