"""High-level facade: run any of the three cores with one call.

This is the entry point the examples and most downstream users want:

>>> core = DynamicalCore(grid, algorithm="ca", nprocs=4)
>>> final, report = core.run(initial_state, nsteps=10)

``algorithm``:

* ``"serial"`` — the reference core on one rank (no simulated cluster);
* ``"original-yz"`` / ``"original-xy"`` / ``"original-3d"`` — Algorithm 1
  on the simulated cluster under the respective decomposition;
* ``"ca"`` — the communication-avoiding Algorithm 2 (Y-Z decomposition).
"""
from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.constants import DEFAULT_PARAMETERS, ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.integrator import SerialCore
from repro.obs.config import ObsConfig, Observation
from repro.obs.metrics import (
    absorb_comm_stats,
    absorb_overlap_metrics,
    absorb_workspace_counters,
)
from repro.obs.spans import active_tracer, set_active
from repro.grid.decomposition import (
    Decomposition,
    best_2d_factorization,
    xy_decomposition,
    yz_decomposition,
)
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.simmpi import MachineModel, run_spmd
from repro.simmpi.machine import LAPTOP_LIKE
from repro.simmpi.transport import TransportConfig
from repro.state.variables import ModelState

ALGORITHMS = ("serial", "original-yz", "original-xy", "original-3d", "ca")

#: sentinel distinguishing "use the config's transport" from "explicitly None"
_UNSET = object()


@dataclass
class StepDiagnostics:
    """Summary of one distributed run (from the simulated cluster)."""

    makespan: float = 0.0
    compute_time: float = 0.0
    stencil_comm_time: float = 0.0
    collective_comm_time: float = 0.0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_ops: int = 0
    synchronizations: int = 0
    c_calls: int = 0
    exchanges: int = 0
    #: failed wire attempts healed by the reliable transport (sum over ranks)
    retransmits: int = 0
    #: wall seconds of compute executed inside open comm windows, summed
    #: over ranks (taskgraph executor only; 0.0 under the sync executor)
    overlap_seconds: float = 0.0
    #: post->wait communication windows opened (sum over ranks)
    overlap_windows: int = 0

    @property
    def comm_time(self) -> float:
        return self.stencil_comm_time + self.collective_comm_time

    @property
    def comm_fraction(self) -> float:
        total = self.comm_time + self.compute_time
        return self.comm_time / total if total > 0 else 0.0

    def accumulate(self, other: "StepDiagnostics") -> None:
        """Add another run's counters in place (chunked/resilient runs)."""
        self.makespan += other.makespan
        self.compute_time += other.compute_time
        self.stencil_comm_time += other.stencil_comm_time
        self.collective_comm_time += other.collective_comm_time
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.collective_ops += other.collective_ops
        self.synchronizations += other.synchronizations
        self.c_calls += other.c_calls
        self.exchanges += other.exchanges
        self.retransmits += other.retransmits
        self.overlap_seconds += other.overlap_seconds
        self.overlap_windows += other.overlap_windows


def default_spmd_timeout(nsteps: int) -> float:
    """Wall-clock deadlock timeout scaled with the requested work.

    ``run_spmd``'s default of 120 s is tuned for a handful of steps; long
    integrations on loaded hosts can exceed it and be misdiagnosed as
    deadlocks.  The driver therefore passes ``max(120, 5 * nsteps)``
    seconds unless :attr:`CoreConfig.timeout` overrides it.
    """
    return max(120.0, 5.0 * float(nsteps))


@dataclass
class CoreConfig:
    """Configuration of a :class:`DynamicalCore`."""

    grid: LatLonGrid
    algorithm: str = "serial"
    nprocs: int = 1
    params: ModelParameters = DEFAULT_PARAMETERS
    sigma: SigmaLevels | None = None
    forcing: Callable | None = None
    machine: MachineModel = LAPTOP_LIKE
    decomp: Decomposition | None = None
    #: wall-clock deadlock timeout for run_spmd; None → scale with nsteps
    timeout: float | None = None
    #: pool-backed fast path (bit-identical numerics; False = seed path)
    use_workspace: bool = True
    #: kernel tier: ``"reference"`` (oracle) or ``"fused"`` (the compiled/
    #: fused kernels of :mod:`repro.kernels`, bit-identical with
    #: per-operator fallback).  Env override: ``REPRO_KERNEL_TIER``.
    kernel_tier: str | None = None
    #: fused-kernel backend (``"auto"``/``"c"``/``"numba"``/``"numpy"``).
    #: Env override: ``REPRO_KERNEL_BACKEND``.
    kernel_backend: str | None = None
    #: per-rank step executor: ``"sync"`` (the literal loop) or
    #: ``"taskgraph"`` (DAG executor overlapping compute with halo/bundle
    #: exchanges; bit-identical trajectories).  Env override:
    #: ``REPRO_EXECUTOR``.
    executor: str | None = None
    #: SPMD execution backend: ``"thread"`` (default; deterministic fault
    #: injection) or ``"process"`` (one OS process per rank over
    #: shared-memory rings — true multicore, bit-identical numerics).
    #: Fault-injected attempts always run on the thread backend.
    backend: str = "thread"
    #: reliable-transport policy for plain runs (``None`` = raw network;
    #: the resilient driver supplies its own default, see
    #: :class:`repro.core.resilience.ResilienceConfig`)
    transport: TransportConfig | None = None
    #: observability: ``True``/:class:`~repro.obs.config.ObsConfig` turns
    #: on span tracing, metrics and physics telemetry (``None`` = off,
    #: near-zero overhead)
    observe: ObsConfig | bool | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; pick from {ALGORITHMS}"
            )
        if self.algorithm == "serial" and self.nprocs != 1:
            raise ValueError("the serial core runs on one rank")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "pick 'thread' or 'process'"
            )
        import os

        from repro.kernels import BACKENDS, TIERS

        if self.kernel_tier is None:
            self.kernel_tier = os.environ.get("REPRO_KERNEL_TIER", "reference")
        if self.kernel_backend is None:
            self.kernel_backend = os.environ.get(
                "REPRO_KERNEL_BACKEND", "auto"
            )
        if self.kernel_tier not in TIERS:
            raise ValueError(
                f"unknown kernel_tier {self.kernel_tier!r}; pick from {TIERS}"
            )
        if self.kernel_backend not in BACKENDS:
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"pick from {BACKENDS}"
            )
        if self.executor is None:
            self.executor = os.environ.get("REPRO_EXECUTOR", "sync")
        if self.executor not in ("sync", "taskgraph"):
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                "pick 'sync' or 'taskgraph'"
            )
        self.observe = ObsConfig.coerce(self.observe)

    def resolve_decomposition(self) -> Decomposition:
        g = self.grid
        if self.decomp is not None:
            return self.decomp
        if self.algorithm in ("serial",):
            return Decomposition(g.nx, g.ny, g.nz, 1, 1, 1)
        if self.algorithm in ("original-yz", "ca"):
            return yz_decomposition(g.nx, g.ny, g.nz, self.nprocs)
        if self.algorithm == "original-xy":
            return xy_decomposition(g.nx, g.ny, g.nz, self.nprocs)
        # 3-D: split the procs over (x, y) then z with a modest pz
        pz = 2 if self.nprocs % 2 == 0 and g.nz >= 4 else 1
        px, py = best_2d_factorization(self.nprocs // pz, g.nx, g.ny)
        return Decomposition(g.nx, g.ny, g.nz, px, py, pz)


class DynamicalCore:
    """User-facing runner over all algorithm variants."""

    def __init__(self, grid: LatLonGrid, **kwargs) -> None:
        self.config = CoreConfig(grid=grid, **kwargs)
        self._observation: Observation | None = None
        #: telemetry records of the in-flight (uncommitted) run; the
        #: resilient driver commits or discards them per chunk
        self._staged_telemetry: list = []
        #: "step" spans already folded into the step_wall_seconds histogram
        self._steps_metered = 0

    # ---- observation lifecycle -----------------------------------------------
    @property
    def observation(self) -> Observation | None:
        """The live observation bundle, or ``None`` when ``observe`` is off."""
        return self._ensure_observation()

    def _ensure_observation(self) -> Observation | None:
        if self.config.observe is None:
            return None
        if self._observation is None:
            self._observation = Observation(config=self.config.observe)
        return self._observation

    @contextmanager
    def _obs_scope(self):
        """Activate this core's span tracer for the duration of one run.

        Reentrant: a no-op when the tracer is already active, so the
        resilient driver's chunk runs compose with an outer scope.  The
        sampling profiler (``ObsConfig(profile=...)``), when configured,
        runs for exactly the span of the outermost scope.
        """
        obs = self._ensure_observation()
        if obs is None or obs.tracer is None or active_tracer() is obs.tracer:
            yield obs
            return
        prev = set_active(obs.tracer)
        prof = obs.profiler
        own_profiler = prof is not None and not prof.running
        if own_profiler:
            prof.start()
        try:
            yield obs
        finally:
            if own_profiler:
                prof.stop()
            set_active(prev)

    def _commit_observation(self) -> None:
        """Move staged telemetry into the committed series."""
        obs = self._observation
        if obs is not None and self._staged_telemetry:
            obs.telemetry.extend(self._staged_telemetry)
        self._staged_telemetry = []

    def _discard_observation(self) -> None:
        """Drop staged telemetry of a rolled-back / failed run."""
        self._staged_telemetry = []

    def run(
        self, state0: ModelState, nsteps: int
    ) -> tuple[ModelState, StepDiagnostics]:
        """Advance ``nsteps`` from the global interior ``state0``.

        Returns the gathered global final state plus run diagnostics from
        the simulated cluster (zeros for the serial core).
        """
        try:
            state, diag, _ = self._run_once(state0, nsteps)
        except BaseException:
            self._discard_observation()
            raise
        self._commit_observation()
        obs = self._observation
        if obs is not None:
            obs.finalize_outputs()
        return state, diag

    def run_resilient(
        self, state0: ModelState, nsteps: int, resilience
    ) -> tuple[ModelState, StepDiagnostics, "object"]:
        """Advance ``nsteps`` with checkpoint/restart fault tolerance.

        ``resilience`` is a :class:`repro.core.resilience.ResilienceConfig`;
        returns ``(final_state, accumulated_diagnostics, report)``.  See
        :mod:`repro.core.resilience` for the recovery semantics.
        """
        from repro.core.resilience import run_resilient

        return run_resilient(self, state0, nsteps, resilience)

    def _run_once(
        self,
        state0: ModelState,
        nsteps: int,
        *,
        faults=None,
        verify_checksums: bool = False,
        transport=_UNSET,
        timeout: float | None = None,
        step0: int = 0,
    ) -> tuple[ModelState, StepDiagnostics, list | None]:
        """One uninterrupted run; raises on any injected/organic failure.

        Returns ``(state, diagnostics, per_rank_stats_or_None)``; the
        stats list (None for the serial core) lets the resilient driver
        harvest fault events from successful chunks.  ``step0`` offsets
        the step numbers of telemetry records (chunked resilient runs).
        ``transport`` overrides :attr:`CoreConfig.transport` when given
        (the resilient driver passes its own policy, including an
        explicit ``None`` for the raw network).
        """
        if transport is _UNSET:
            transport = self.config.transport
        with self._obs_scope() as obs:
            out = self._run_once_observed(
                state0, nsteps, obs,
                faults=faults, verify_checksums=verify_checksums,
                transport=transport, timeout=timeout, step0=step0,
            )
            self._meter_step_walls(obs)
            return out

    def _meter_step_walls(self, obs: Observation | None) -> None:
        """Fold new "step" span durations into the wall-clock histogram.

        Each observation carries the span's trace id as an exemplar, so
        a p99 outlier in a scrape links back to the causal trace of the
        run (and, under serve, the job) that produced it.
        """
        if obs is None or obs.tracer is None or not obs.config.metrics:
            return
        steps = [s for s in obs.tracer.spans if s.name == "step"]
        new = steps[self._steps_metered:]
        if not new:
            return
        self._steps_metered = len(steps)
        hist = obs.registry.histogram(
            "step_wall_seconds", "wall-clock seconds per model step"
        )
        for s in new:
            hist.observe(s.duration, trace_id=s.trace_id or None)

    def _run_once_observed(
        self,
        state0: ModelState,
        nsteps: int,
        obs: Observation | None,
        *,
        faults,
        verify_checksums: bool,
        transport,
        timeout: float | None,
        step0: int,
    ) -> tuple[ModelState, StepDiagnostics, list | None]:
        cfg = self.config
        want_telemetry = obs is not None and obs.config.telemetry
        if cfg.algorithm == "serial":
            core = SerialCore(
                cfg.grid,
                sigma=cfg.sigma,
                params=cfg.params,
                forcing=cfg.forcing,
                use_workspace=cfg.use_workspace,
                kernel_tier=cfg.kernel_tier,
                kernel_backend=cfg.kernel_backend,
            )
            monitor = None
            if want_telemetry:
                from repro.obs.telemetry import record_for_state

                def monitor(k: int, interior: ModelState) -> None:
                    self._staged_telemetry.append(
                        record_for_state(
                            step0 + k, interior, cfg.grid, core.sigma
                        )
                    )

            out = core.run(state0, nsteps, monitor=monitor)
            diag = StepDiagnostics(c_calls=core.c_calls)
            if obs is not None and obs.config.metrics and core.ws is not None:
                absorb_workspace_counters(
                    obs.registry,
                    {
                        "fresh_allocations": core.ws.fresh_allocations,
                        "reuses": core.ws.reuses,
                        "pooled_bytes": core.ws.pooled_bytes,
                    },
                    rank=0,
                )
            return out, diag, None

        decomp = cfg.resolve_decomposition()
        dcfg = DistributedConfig(
            grid=cfg.grid,
            decomp=decomp,
            params=cfg.params,
            sigma=cfg.sigma,
            nsteps=nsteps,
            forcing=cfg.forcing,
            use_workspace=cfg.use_workspace,
            kernel_tier=cfg.kernel_tier,
            kernel_backend=cfg.kernel_backend,
            telemetry=want_telemetry,
            executor=cfg.executor,
        )
        program = (
            ca_rank_program if cfg.algorithm == "ca" else original_rank_program
        )
        if timeout is None:
            timeout = (
                cfg.timeout
                if cfg.timeout is not None
                else default_spmd_timeout(nsteps)
            )
        # fault-injected attempts need the thread backend's deterministic
        # in-process delivery; clean runs honour the configured backend.
        # Node-loss-only plans are the exception: the process backend
        # supports them natively (the victim's OS process is killed), and
        # the elastic-recovery tests exercise exactly that path.
        plan = getattr(faults, "plan", faults)
        backend = (
            cfg.backend
            if faults is None or getattr(plan, "node_loss_only", False)
            else "thread"
        )
        result = run_spmd(
            decomp.nranks,
            program,
            dcfg,
            state0,
            machine=cfg.machine,
            timeout=timeout,
            trace=obs is not None and obs.config.logical_trace,
            faults=faults,
            verify_checksums=verify_checksums,
            transport=transport,
            backend=backend,
        )
        blocks = [r.state for r in result.results]
        gathered = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
        crit = result.critical_stats()
        diag = StepDiagnostics(
            makespan=result.makespan,
            compute_time=crit.compute_time,
            stencil_comm_time=max(
                s.tagged_time.get("stencil_comm", 0.0) for s in result.stats
            ),
            collective_comm_time=max(
                s.collective_time for s in result.stats
            ),
            p2p_messages=sum(s.p2p_messages_sent for s in result.stats),
            p2p_bytes=sum(s.p2p_bytes_sent for s in result.stats),
            collective_ops=crit.collective_ops,
            synchronizations=crit.synchronizations,
            c_calls=result.results[0].c_calls,
            exchanges=result.results[0].exchanges,
            retransmits=sum(s.retransmits for s in result.stats),
            overlap_seconds=sum(
                r.overlap["overlap_seconds"]
                for r in result.results
                if r.overlap is not None
            ),
            overlap_windows=sum(
                r.overlap["windows"]
                for r in result.results
                if r.overlap is not None
            ),
        )
        if obs is not None:
            self._absorb_distributed(obs, result, step0)
        return gathered, diag, result.stats

    def _absorb_distributed(self, obs: Observation, result, step0: int) -> None:
        """Fold one SPMD run's observables into the observation bundle."""
        if obs.config.telemetry and result.results[0].telemetry is not None:
            from repro.obs.telemetry import combine_partials

            by_step: dict[int, list[dict]] = {}
            for r in result.results:
                for s, partials in r.telemetry:
                    by_step.setdefault(s, []).append(partials)
            for s in sorted(by_step):
                self._staged_telemetry.append(
                    combine_partials(step0 + s, by_step[s], self.config.grid)
                )
        if obs.config.metrics:
            for rank, stats in enumerate(result.stats):
                absorb_comm_stats(obs.registry, stats, rank)
            for rank, r in enumerate(result.results):
                if r.ws_counters is not None:
                    absorb_workspace_counters(
                        obs.registry, r.ws_counters, rank
                    )
                if r.overlap is not None:
                    absorb_overlap_metrics(obs.registry, r.overlap, rank)
        if obs.config.logical_trace and result.traces:
            obs.logical_traces.extend(result.traces)
