"""High-level facade: run any of the three cores with one call.

This is the entry point the examples and most downstream users want:

>>> core = DynamicalCore(grid, algorithm="ca", nprocs=4)
>>> final, report = core.run(initial_state, nsteps=10)

``algorithm``:

* ``"serial"`` — the reference core on one rank (no simulated cluster);
* ``"original-yz"`` / ``"original-xy"`` / ``"original-3d"`` — Algorithm 1
  on the simulated cluster under the respective decomposition;
* ``"ca"`` — the communication-avoiding Algorithm 2 (Y-Z decomposition).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.constants import DEFAULT_PARAMETERS, ModelParameters
from repro.core.comm_avoiding import ca_rank_program
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.integrator import SerialCore
from repro.grid.decomposition import (
    Decomposition,
    best_2d_factorization,
    xy_decomposition,
    yz_decomposition,
)
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.simmpi import MachineModel, run_spmd
from repro.simmpi.machine import LAPTOP_LIKE
from repro.state.variables import ModelState

ALGORITHMS = ("serial", "original-yz", "original-xy", "original-3d", "ca")


@dataclass
class StepDiagnostics:
    """Summary of one distributed run (from the simulated cluster)."""

    makespan: float = 0.0
    compute_time: float = 0.0
    stencil_comm_time: float = 0.0
    collective_comm_time: float = 0.0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_ops: int = 0
    synchronizations: int = 0
    c_calls: int = 0
    exchanges: int = 0

    @property
    def comm_time(self) -> float:
        return self.stencil_comm_time + self.collective_comm_time

    @property
    def comm_fraction(self) -> float:
        total = self.comm_time + self.compute_time
        return self.comm_time / total if total > 0 else 0.0

    def accumulate(self, other: "StepDiagnostics") -> None:
        """Add another run's counters in place (chunked/resilient runs)."""
        self.makespan += other.makespan
        self.compute_time += other.compute_time
        self.stencil_comm_time += other.stencil_comm_time
        self.collective_comm_time += other.collective_comm_time
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.collective_ops += other.collective_ops
        self.synchronizations += other.synchronizations
        self.c_calls += other.c_calls
        self.exchanges += other.exchanges


def default_spmd_timeout(nsteps: int) -> float:
    """Wall-clock deadlock timeout scaled with the requested work.

    ``run_spmd``'s default of 120 s is tuned for a handful of steps; long
    integrations on loaded hosts can exceed it and be misdiagnosed as
    deadlocks.  The driver therefore passes ``max(120, 5 * nsteps)``
    seconds unless :attr:`CoreConfig.timeout` overrides it.
    """
    return max(120.0, 5.0 * float(nsteps))


@dataclass
class CoreConfig:
    """Configuration of a :class:`DynamicalCore`."""

    grid: LatLonGrid
    algorithm: str = "serial"
    nprocs: int = 1
    params: ModelParameters = DEFAULT_PARAMETERS
    sigma: SigmaLevels | None = None
    forcing: Callable | None = None
    machine: MachineModel = LAPTOP_LIKE
    decomp: Decomposition | None = None
    #: wall-clock deadlock timeout for run_spmd; None → scale with nsteps
    timeout: float | None = None
    #: pool-backed fast path (bit-identical numerics; False = seed path)
    use_workspace: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; pick from {ALGORITHMS}"
            )
        if self.algorithm == "serial" and self.nprocs != 1:
            raise ValueError("the serial core runs on one rank")

    def resolve_decomposition(self) -> Decomposition:
        g = self.grid
        if self.decomp is not None:
            return self.decomp
        if self.algorithm in ("serial",):
            return Decomposition(g.nx, g.ny, g.nz, 1, 1, 1)
        if self.algorithm in ("original-yz", "ca"):
            return yz_decomposition(g.nx, g.ny, g.nz, self.nprocs)
        if self.algorithm == "original-xy":
            return xy_decomposition(g.nx, g.ny, g.nz, self.nprocs)
        # 3-D: split the procs over (x, y) then z with a modest pz
        pz = 2 if self.nprocs % 2 == 0 and g.nz >= 4 else 1
        px, py = best_2d_factorization(self.nprocs // pz, g.nx, g.ny)
        return Decomposition(g.nx, g.ny, g.nz, px, py, pz)


class DynamicalCore:
    """User-facing runner over all algorithm variants."""

    def __init__(self, grid: LatLonGrid, **kwargs) -> None:
        self.config = CoreConfig(grid=grid, **kwargs)

    def run(
        self, state0: ModelState, nsteps: int
    ) -> tuple[ModelState, StepDiagnostics]:
        """Advance ``nsteps`` from the global interior ``state0``.

        Returns the gathered global final state plus run diagnostics from
        the simulated cluster (zeros for the serial core).
        """
        state, diag, _ = self._run_once(state0, nsteps)
        return state, diag

    def run_resilient(
        self, state0: ModelState, nsteps: int, resilience
    ) -> tuple[ModelState, StepDiagnostics, "object"]:
        """Advance ``nsteps`` with checkpoint/restart fault tolerance.

        ``resilience`` is a :class:`repro.core.resilience.ResilienceConfig`;
        returns ``(final_state, accumulated_diagnostics, report)``.  See
        :mod:`repro.core.resilience` for the recovery semantics.
        """
        from repro.core.resilience import run_resilient

        return run_resilient(self, state0, nsteps, resilience)

    def _run_once(
        self,
        state0: ModelState,
        nsteps: int,
        *,
        faults=None,
        verify_checksums: bool = False,
        timeout: float | None = None,
    ) -> tuple[ModelState, StepDiagnostics, list | None]:
        """One uninterrupted run; raises on any injected/organic failure.

        Returns ``(state, diagnostics, per_rank_stats_or_None)``; the
        stats list (None for the serial core) lets the resilient driver
        harvest fault events from successful chunks.
        """
        cfg = self.config
        if cfg.algorithm == "serial":
            core = SerialCore(
                cfg.grid,
                sigma=cfg.sigma,
                params=cfg.params,
                forcing=cfg.forcing,
                use_workspace=cfg.use_workspace,
            )
            out = core.run(state0, nsteps)
            diag = StepDiagnostics(c_calls=core.c_calls)
            return out, diag, None

        decomp = cfg.resolve_decomposition()
        dcfg = DistributedConfig(
            grid=cfg.grid,
            decomp=decomp,
            params=cfg.params,
            sigma=cfg.sigma,
            nsteps=nsteps,
            forcing=cfg.forcing,
            use_workspace=cfg.use_workspace,
        )
        program = (
            ca_rank_program if cfg.algorithm == "ca" else original_rank_program
        )
        if timeout is None:
            timeout = (
                cfg.timeout
                if cfg.timeout is not None
                else default_spmd_timeout(nsteps)
            )
        result = run_spmd(
            decomp.nranks,
            program,
            dcfg,
            state0,
            machine=cfg.machine,
            timeout=timeout,
            faults=faults,
            verify_checksums=verify_checksums,
        )
        blocks = [r.state for r in result.results]
        gathered = ModelState(
            U=decomp.gather([b.U for b in blocks]),
            V=decomp.gather([b.V for b in blocks]),
            Phi=decomp.gather([b.Phi for b in blocks]),
            psa=decomp.gather([b.psa for b in blocks]),
        )
        crit = result.critical_stats()
        diag = StepDiagnostics(
            makespan=result.makespan,
            compute_time=crit.compute_time,
            stencil_comm_time=max(
                s.tagged_time.get("stencil_comm", 0.0) for s in result.stats
            ),
            collective_comm_time=max(
                s.collective_time for s in result.stats
            ),
            p2p_messages=sum(s.p2p_messages_sent for s in result.stats),
            p2p_bytes=sum(s.p2p_bytes_sent for s in result.stats),
            collective_ops=crit.collective_ops,
            synchronizations=crit.synchronizations,
            c_calls=result.results[0].c_calls,
            exchanges=result.results[0].exchanges,
        )
        return gathered, diag, result.stats
