"""Task-graph build of Algorithm 1 (the original distributed core).

The original schedule refreshes the full halo before *every* internal
update, and most refreshes are followed by a whole-array vertical
diagnostics call that reads the freshly exchanged rows — those windows
have no legally overlappable compute and stay synchronous (single tasks
calling the exact synchronous helpers).  Real overlap exists where the
next update uses the *frozen* C bundle of the advection phase: the last
adaptation refresh and the three advection refreshes each overlap the
inner rows (radius-1 stencil, so rows ``[gy+1, gy+ny_i-1)``) of the
following update, the midpoint (elementwise) runs on all interior rows
in-window, and the smoothing exchange overlaps the radius-2 inner rows of
the smoother.  Boundary rows run after the unpack.  The trajectory stays
bit-identical to :func:`repro.core.distributed.original_rank_program`
(pinned with ``==`` by the tests).

The caller guarantees ``full_x`` (one x block, local filter), ``pz == 1``
(no z halos) and a workspace; ranks whose block is too small for a split
degenerate to a fully synchronous-shaped graph.
"""
from __future__ import annotations

import math

from repro.core import distributed as dist_mod
from repro.core.distributed import PHASE_STENCIL, RankResult
from repro.core.taskgraph import GraphExecutor, TaskGraph
from repro.core.taskgraph.subdomain import RowSlab
from repro.core.workspace import StateRing
from repro.obs.spans import span
from repro.state.variables import ModelState


def _fields(s: ModelState) -> list:
    return [s.U, s.V, s.Phi, s.psa]


def original_rank_program_taskgraph(comm, cfg, initial: ModelState) -> RankResult:
    """Algorithm 1 with the per-rank task-graph executor."""
    gy = 2
    ctx = dist_mod.RankContext(comm, cfg, gy=gy, gz=0, gx=0)
    params = cfg.params
    dt1, dt2, M = params.dt_adaptation, params.dt_advection, params.m_iterations
    W = cfg.weights
    g = ctx.geom
    ny_i, ny_w = ctx.extent.ny, g.shape3d[1]
    pf = ctx.engine.polar_filter
    ex = GraphExecutor(comm, fuzz=cfg.taskgraph_fuzz_seed)

    # static slab splits (per-rank geometry, built once)
    a, b = gy + 1, gy + ny_i - 1
    a_s, b_s = gy + 2, gy + ny_i - 2
    split = b - a >= 1 and b_s - a_s >= 1
    if split:
        tend_in = RowSlab(g, a, b, 1, pf)
        tend_bd = [RowSlab(g, 0, a, 1, pf), RowSlab(g, b, ny_w, 1, pf)]
        mid_in = RowSlab(g, gy, gy + ny_i, 0)
        mid_bd = [RowSlab(g, 0, gy, 0), RowSlab(g, gy + ny_i, ny_w, 0)]
        sm_in = RowSlab(g, a_s, b_s, 2)
        sm_bd = [RowSlab(g, 0, a_s, 2), RowSlab(g, b_s, ny_w, 2)]

    def charge_filter():
        if pf is not None and pf.active:
            ctx.charge(
                W.filter_fft * math.log2(g.grid.nx) * pf.n_filtered_rows,
                g.shape3d[0] * g.grid.nx,
            )

    def pin_pole_v(state):
        # The one interior row fill_bc touches: the south-pole interface
        # (V is stored on interfaces, so a south-touching block's *last
        # interior row* is the theta = pi interface where V vanishes).
        # The synchronous schedule re-imposes the zero inside the refresh
        # that follows every update, i.e. before any read; in-window inner
        # tasks read freshly updated arrays *before* their wait + fill_bc,
        # so the producer must pin the row early.  Bit-identical: fill_bc
        # zeroes the same row unconditionally (idempotent), and the row is
        # never packed into a halo message (no rank south of the pole).
        if g.touches_south:
            state.V[..., ny_w - 1 - gy, :] = 0.0

    psi = ctx.pad_local(initial)
    ctx.refresh_halos(psi)
    ring = StateRing(ctx.ws, g.shape3d)

    for step_no in range(cfg.nsteps):
        with span("step", "step"):
            gr = TaskGraph()
            rt: dict = {}  # run-time handles (pending exchange, frozen vd)
            t_prev: int | None = None

            def dep():
                return () if t_prev is None else (t_prev,)

            # ---- adaptation: M iterations x 3 internal updates ----
            # Each refresh feeds a whole-array vertical call: synchronous.
            cur = psi
            for i in range(M):
                e1 = ring.scratch(cur)

                def adapt1(cur=cur, e1=e1):
                    vd = ctx.vertical_fresh(cur)
                    dist_mod._update(
                        cur, dt1, ctx.filtered_adaptation(cur, vd), ctx, e1
                    )

                t_prev = gr.add(f"adapt1:i{i}", adapt1, deps=dep())
                t_prev = gr.add(
                    f"refresh:eta1:i{i}",
                    lambda e1=e1: ctx.refresh_halos(e1),
                    deps=dep(),
                )

                e2 = ring.scratch(cur, e1)

                def adapt2(cur=cur, e1=e1, e2=e2):
                    vd = ctx.vertical_fresh(e1)
                    dist_mod._update(
                        cur, dt1, ctx.filtered_adaptation(e1, vd), ctx, e2
                    )

                t_prev = gr.add(f"adapt2:i{i}", adapt2, deps=dep())
                t_prev = gr.add(
                    f"refresh:eta2:i{i}",
                    lambda e2=e2: ctx.refresh_halos(e2),
                    deps=dep(),
                )

                md = ring.scratch(cur, e2)
                t_prev = gr.add(
                    f"mid:i{i}",
                    lambda cur=cur, e2=e2, md=md: ModelState.midpoint_into(
                        cur, e2, md
                    ),
                    deps=dep(),
                )
                nxt = ring.scratch(cur, md)

                def adapt3(cur=cur, md=md, out=nxt):
                    vd = ctx.vertical_fresh(md)
                    rt["vd"] = vd  # the advection phase freezes the last C
                    dist_mod._update(
                        cur, dt1, ctx.filtered_adaptation(md, vd), ctx, out
                    )

                t_prev = gr.add(f"adapt3:i{i}", adapt3, deps=dep())
                cur = nxt
                if i < M - 1:
                    t_prev = gr.add(
                        f"refresh:psi:i{i}",
                        lambda cur=cur: ctx.refresh_halos(cur),
                        deps=dep(),
                    )

            # ---- advection: overlapped chain on the frozen C bundle ----
            def make_post(name, state):
                def post(state=state):
                    comm.set_phase(PHASE_STENCIL)
                    pending = ctx.halo.start(_fields(state))
                    comm.set_phase(None)
                    rt["h"] = pending
                    return [r for (r, _f, _s, _n) in pending.recv_reqs]

                return gr.post(name, post, deps=dep())

            def make_wait(name, token, post_idx, state):
                def wait(state=state):
                    comm.set_phase(PHASE_STENCIL)
                    ctx.halo.finish(rt["h"], _fields(state))
                    comm.set_phase(None)
                    ctx.fill_bc(state)
                    ctx.exchanges += 1

                return gr.wait(name, token, wait, deps=(post_idx,))

            def advec_inner(src, base, out):
                pin_pole_v(src)
                ctx.charge(W.advection, tend_in.npoints)
                tend_in.advection_update_rows(ctx, src, base, rt["vd"], dt2, out)
                ctx.charge(W.update, tend_in.npoints)

            def advec_boundary(src, base, out):
                ctx.charge(W.advection, ctx._wpoints - tend_in.npoints)
                charge_filter()
                for sl in tend_bd:
                    sl.advection_update_rows(ctx, src, base, rt["vd"], dt2, out)
                ctx.charge(W.update, ctx._wpoints - tend_in.npoints)
                pin_pole_v(out)

            def advec_full(src, base, out):
                dist_mod._update(
                    base, dt2, ctx.filtered_advection(src, rt["vd"]), ctx, out
                )

            if not split:
                t_prev = gr.add(
                    f"refresh:psi:i{M - 1}",
                    lambda cur=cur: ctx.refresh_halos(cur),
                    deps=dep(),
                )
                z1 = ring.scratch(cur)
                t_prev = gr.add(
                    "advec1",
                    lambda cur=cur, z1=z1: advec_full(cur, cur, z1),
                    deps=dep(),
                )
                t_prev = gr.add(
                    "refresh:zeta1", lambda z1=z1: ctx.refresh_halos(z1),
                    deps=dep(),
                )
                z2 = ring.scratch(cur, z1)
                t_prev = gr.add(
                    "advec2",
                    lambda cur=cur, z1=z1, z2=z2: advec_full(z1, cur, z2),
                    deps=dep(),
                )
                t_prev = gr.add(
                    "refresh:zeta2", lambda z2=z2: ctx.refresh_halos(z2),
                    deps=dep(),
                )
                md2 = ring.scratch(cur, z2)
                t_prev = gr.add(
                    "mid:advect",
                    lambda cur=cur, z2=z2, md2=md2: ModelState.midpoint_into(
                        cur, z2, md2
                    ),
                    deps=dep(),
                )
                xi = ring.scratch(cur, md2)
                t_prev = gr.add(
                    "advec3",
                    lambda cur=cur, md2=md2, xi=xi: advec_full(md2, cur, xi),
                    deps=dep(),
                )
                t_prev = gr.add(
                    "refresh:xi", lambda xi=xi: ctx.refresh_halos(xi),
                    deps=dep(),
                )
                out_s = ring.scratch(xi)

                def smooth_full(xi=xi, out_s=out_s):
                    ctx.charge(W.smoothing, ctx._wpoints)
                    got = (
                        ctx.kernels.smooth_state_into(
                            xi, params, out_s, ctx.ws, ctx.smoothers
                        )
                        if ctx.kernels is not None
                        else None
                    )
                    if got is None:
                        from repro.operators.smoothing import smooth_state_into

                        smooth_state_into(
                            xi, params, out_s, ctx.ws, ctx.smoothers
                        )

                t_prev = gr.add("smooth", smooth_full, deps=dep())
                psi = out_s
            else:
                # last adaptation refresh || zeta1 inner rows
                p, tok = make_post("post-halo:psi", cur)
                z1 = ring.scratch(cur)
                gr.add(
                    "advec1:inner",
                    lambda cur=cur, z1=z1: advec_inner(cur, cur, z1),
                    deps=dep(),
                )
                t_prev = make_wait("wait-halo:psi", tok, p, cur)
                t_prev = gr.add(
                    "advec1:boundary",
                    lambda cur=cur, z1=z1: advec_boundary(cur, cur, z1),
                    deps=dep(),
                )

                # zeta1 refresh || zeta2 inner rows
                p, tok = make_post("post-halo:zeta1", z1)
                z2 = ring.scratch(cur, z1)
                gr.add(
                    "advec2:inner",
                    lambda cur=cur, z1=z1, z2=z2: advec_inner(z1, cur, z2),
                    deps=dep(),
                )
                t_prev = make_wait("wait-halo:zeta1", tok, p, z1)
                t_prev = gr.add(
                    "advec2:boundary",
                    lambda cur=cur, z1=z1, z2=z2: advec_boundary(z1, cur, z2),
                    deps=dep(),
                )

                # zeta2 refresh || midpoint (all interior rows) + xi inner
                p, tok = make_post("post-halo:zeta2", z2)
                md2 = ring.scratch(cur, z2)
                gr.add(
                    "mid:inner",
                    lambda cur=cur, z2=z2, md2=md2: mid_in.midpoint_rows(
                        cur, z2, md2
                    ),
                    deps=dep(),
                )
                xi = ring.scratch(cur, md2)
                gr.add(
                    "advec3:inner",
                    lambda cur=cur, md2=md2, xi=xi: advec_inner(md2, cur, xi),
                    deps=dep(),
                )
                t_prev = make_wait("wait-halo:zeta2", tok, p, z2)

                def mid_boundary(cur=cur, z2=z2, md2=md2):
                    for sl in mid_bd:
                        sl.midpoint_rows(cur, z2, md2)

                t_prev = gr.add("mid:boundary", mid_boundary, deps=dep())
                t_prev = gr.add(
                    "advec3:boundary",
                    lambda cur=cur, md2=md2, xi=xi: advec_boundary(
                        md2, cur, xi
                    ),
                    deps=dep(),
                )

                # xi refresh || smoothing inner rows (radius 2)
                p, tok = make_post("post-halo:xi", xi)
                out_s = ring.scratch(xi)

                def smooth_inner(xi=xi, out_s=out_s):
                    ctx.charge(W.smoothing, sm_in.npoints)
                    sm_in.smooth_rows(ctx, ctx.smoothers, xi, out_s)

                gr.add("smooth:inner", smooth_inner, deps=dep())
                t_prev = make_wait("wait-halo:xi", tok, p, xi)

                def smooth_boundary(xi=xi, out_s=out_s):
                    ctx.charge(W.smoothing, ctx._wpoints - sm_in.npoints)
                    for sl in sm_bd:
                        sl.smooth_rows(ctx, ctx.smoothers, xi, out_s)

                t_prev = gr.add("smooth:boundary", smooth_boundary, deps=dep())
                psi = out_s

            if cfg.forcing is not None:
                t_prev = gr.add(
                    "forcing",
                    lambda psi=psi: cfg.forcing(psi, ctx.geom, dt2),
                    deps=dep(),
                )
            gr.add(
                "refresh:final", lambda psi=psi: ctx.refresh_halos(psi),
                deps=dep(),
            )
            ex.run(gr)
        ctx.record_telemetry(step_no + 1, psi)

    return RankResult(
        state=ctx.strip_local(psi),
        c_calls=ctx.c_calls,
        exchanges=ctx.exchanges,
        telemetry=ctx.telemetry_partials if cfg.telemetry else None,
        ws_counters=ctx.ws_counters(),
        overlap=ex.metrics.as_dict(),
    )
