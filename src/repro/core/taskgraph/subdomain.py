"""Inner/boundary sub-domain invocations of the stencil passes.

The task-graph executor needs the per-step updates split into an *inner*
pass over rows whose stencils touch no halo data (runnable while the halo
exchange is in flight) and a *boundary* pass over the remaining rows
(runnable only after the unpack).  A :class:`RowSlab` owns everything one
such pass needs: a real :class:`~repro.operators.geometry.WorkingGeometry`
covering exactly the slab's view rows (so the per-row metric arrays are
the same elementwise expressions on the same global row indices as the
parent geometry — bit-identical), per-slab operator caches, a persistent
slab-shaped tendency buffer, and the polar-filter row subset restricted to
the slab's target rows.

Bit-identity contract: a slab invocation reproduces, on its target rows
``[lo, hi)``, the exact floating-point results of the corresponding
full-array pass.  Interior slabs carry a read margin equal to the stencil
radius, so every target row sees the same neighbour values as the full
pass.  Edge slabs are clipped at the working-array boundary; there the
in-slab periodic wrap of the y-shifts reads different rows than the full
array's wrap would, which can alter only the outermost working rows —
rows that are *invalid* under the halo budget of both rank programs and
are refreshed by the next exchange (or pole mirror) before any read that
reaches the interior.  ``tests/test_taskgraph.py`` pins the resulting
trajectories to the synchronous executor with exact ``==``.
"""
from __future__ import annotations

import numpy as np

from repro.operators.adaptation import AdaptationGeomCache, adaptation_tendency
from repro.operators.advection import AdvectionGeomCache, advection_tendency
from repro.operators.filter import PolarFilter, apply_filter_rows
from repro.operators.geometry import WorkingGeometry
from repro.operators.smoothing import FieldSmoother
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import FIELD_NAMES, ModelState

#: filter row family per prognostic field (centre rows vs V rows)
FIELD_FAMILY = {"U": "c", "V": "v", "Phi": "c", "psa": "c"}


def state_rows(state: ModelState, rows: slice) -> ModelState:
    """Row-slab view of a state (no copies)."""
    return ModelState(
        U=state.U[:, rows, :],
        V=state.V[:, rows, :],
        Phi=state.Phi[:, rows, :],
        psa=state.psa[rows, :],
    )


def vd_rows(vd: VerticalDiagnostics, rows: slice) -> VerticalDiagnostics:
    """Row-slab view of a ``C`` diagnostics bundle (no copies)."""
    return VerticalDiagnostics(
        div_p=vd.div_p[:, rows, :],
        column_sum=vd.column_sum[rows, :],
        pw_iface=vd.pw_iface[:, rows, :],
        w_iface=vd.w_iface[:, rows, :],
        sdot_iface=vd.sdot_iface[:, rows, :],
        phi_prime=vd.phi_prime[:, rows, :],
        p_fac=vd.p_fac[rows, :],
    )


class RowSlab:
    """One sub-domain pass over working rows ``[lo, hi)``.

    ``margin`` is the read radius of the pass (1 for the tendency
    operators, 2 for the smoother); the view extends ``margin`` rows past
    the target rows on each side, clipped at the working-array edges.
    """

    def __init__(
        self,
        parent: WorkingGeometry,
        lo: int,
        hi: int,
        margin: int,
        polar_filter: PolarFilter | None = None,
    ) -> None:
        if not 0 <= lo < hi <= parent.shape2d[0]:
            raise ValueError(f"bad slab rows [{lo}, {hi})")
        ny_w = parent.shape2d[0]
        self.lo, self.hi = lo, hi
        self.vlo = max(0, lo - margin)
        self.vhi = min(ny_w, hi + margin)
        #: working-array rows the pass reads
        self.view = slice(self.vlo, self.vhi)
        #: target rows in slab coordinates
        self.inner = slice(lo - self.vlo, hi - self.vlo)
        #: target rows in working-array coordinates
        self.rows = slice(lo, hi)
        ext = parent.extent
        # global row range of the *view*: the slab geometry has gy = 0, so
        # its metric arrays are evaluated on exactly these global rows —
        # the same indices the parent's ghost-extended arrays use.
        y0 = ext.y0 - parent.gy + self.vlo
        y1 = ext.y0 - parent.gy + self.vhi
        slab_ext = type(ext)(ext.x0, ext.x1, y0, y1, ext.z0, ext.z1)
        self.geom = WorkingGeometry.build(
            parent.grid, parent.sigma, slab_ext,
            gy=0, gz=parent.gz, gx=parent.gx,
        )
        self._adapt_cache: AdaptationGeomCache | None = None
        self._advec_cache: AdvectionGeomCache | None = None
        self._tend: ModelState | None = None
        self._smooth_tmp: dict[str, np.ndarray] = {}
        # polar-filter subset: slab-coordinate masks and the factor rows of
        # the target rows (the union over all slabs of a pass covers every
        # masked working row exactly once)
        self._filter: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        if polar_filter is not None:
            for fam, (mask, factors) in (
                ("c", (polar_filter.mask_c, polar_filter.factors_c)),
                ("v", (polar_filter.mask_v, polar_filter.factors_v)),
            ):
                sub = np.zeros_like(mask)
                sub[self.rows] = mask[self.rows]
                idx = np.flatnonzero(mask)
                keep = (idx >= lo) & (idx < hi)
                self._filter[fam] = (sub[self.view].copy(), factors[keep])

    # ---- lazy per-slab resources -----------------------------------------
    def _tendency(self) -> ModelState:
        if self._tend is None:
            self._tend = ModelState.zeros(self.geom.shape3d)
        return self._tend

    def _apply_filter(self, tend: ModelState) -> None:
        for name in FIELD_NAMES:
            got = self._filter.get(FIELD_FAMILY[name])
            if got is None:
                continue
            mask, factors = got
            if mask.any():
                apply_filter_rows(getattr(tend, name), mask, factors)

    def _axpy_rows(
        self, base: ModelState, dt: float, tend: ModelState, out: ModelState
    ) -> None:
        """``out[rows] = base[rows] + dt * tend[inner]``.

        The same two-ufunc sequence as ``ModelState.axpy_into``, applied to
        the target rows only (bit-identical per element).
        """
        for name in FIELD_NAMES:
            b = getattr(base, name)[..., self.rows, :]
            t = getattr(tend, name)[..., self.inner, :]
            o = getattr(out, name)[..., self.rows, :]
            np.multiply(t, dt, out=o)
            np.add(b, o, out=o)

    # ---- the split passes -------------------------------------------------
    def adaptation_update_rows(
        self,
        ctx,
        psi: ModelState,
        base: ModelState,
        vd: VerticalDiagnostics,
        dt: float,
        out: ModelState,
    ) -> None:
        """Rows ``[lo, hi)`` of ``base + dt * F(C-hat + A-hat)(psi)``."""
        if self._adapt_cache is None:
            self._adapt_cache = AdaptationGeomCache(self.geom)
        tend = self._tendency()
        adaptation_tendency(
            state_rows(psi, self.view), vd_rows(vd, self.view),
            self.geom, ctx.cfg.params,
            ws=ctx.ws, out=tend, cache=self._adapt_cache,
        )
        self._apply_filter(tend)
        self._axpy_rows(base, dt, tend, out)

    def advection_update_rows(
        self,
        ctx,
        psi: ModelState,
        base: ModelState,
        vd: VerticalDiagnostics,
        dt: float,
        out: ModelState,
    ) -> None:
        """Rows ``[lo, hi)`` of ``base + dt * F(L)(psi)``."""
        if self._advec_cache is None:
            self._advec_cache = AdvectionGeomCache(self.geom)
        tend = self._tendency()
        advection_tendency(
            state_rows(psi, self.view), vd_rows(vd, self.view),
            self.geom, ws=ctx.ws, out=tend, cache=self._advec_cache,
        )
        self._apply_filter(tend)
        self._axpy_rows(base, dt, tend, out)

    def midpoint_rows(
        self, a: ModelState, b: ModelState, out: ModelState
    ) -> None:
        """Rows ``[lo, hi)`` of ``(a + b) / 2`` (elementwise; margin 0)."""
        for name in FIELD_NAMES:
            x = getattr(a, name)[..., self.rows, :]
            y = getattr(b, name)[..., self.rows, :]
            t = getattr(out, name)[..., self.rows, :]
            np.add(x, y, out=t)
            np.multiply(t, 0.5, out=t)

    def smooth_rows(
        self,
        ctx,
        smoothers: dict[str, FieldSmoother],
        state: ModelState,
        out: ModelState,
    ) -> None:
        """Rows ``[lo, hi)`` of the full smoothing ``S(state)``.

        ``full_into`` writes the whole slab view (its edge rows from
        in-slab wraps), so it lands in a persistent slab temp and only the
        target rows are copied out.
        """
        for name in FIELD_NAMES:
            a = getattr(state, name)[..., self.view, :]
            tmp = self._smooth_tmp.get(name)
            if tmp is None:
                tmp = np.empty(a.shape)
                self._smooth_tmp[name] = tmp
            smoothers[name].full_into(a, tmp, ctx.ws)
            np.copyto(
                getattr(out, name)[..., self.rows, :],
                tmp[..., self.inner, :],
            )

    @property
    def npoints(self) -> int:
        """Model points of the target rows (for compute charging)."""
        nz_w, _, nx_w = self.geom.shape3d
        return nz_w * (self.hi - self.lo) * nx_w


def split_rows(
    parent: WorkingGeometry,
    a: int,
    b: int,
    margin: int,
    polar_filter: PolarFilter | None = None,
) -> tuple[RowSlab, list[RowSlab]]:
    """(inner slab ``[a, b)``, boundary slabs covering the complement).

    The boundary slabs cover ``[0, a)`` and ``[b, ny_w)`` so the union of
    all three passes writes every working row exactly once.
    """
    ny_w = parent.shape2d[0]
    if not 0 < a < b < ny_w:
        raise ValueError(f"inner rows [{a}, {b}) must be a strict sub-range")
    inner = RowSlab(parent, a, b, margin, polar_filter)
    boundary = [
        RowSlab(parent, 0, a, margin, polar_filter),
        RowSlab(parent, b, ny_w, margin, polar_filter),
    ]
    return inner, boundary
