"""Per-rank task-graph executor: real communication/compute overlap.

The synchronous rank programs are bulk-synchronous per exchange: post the
halo sends/receives, *charge* the modeled inner-block compute, then block
in ``wait`` — the overlap of Sec. 4.3.1 exists only in the logical-clock
model.  This package restructures each step into an explicit task DAG
(pack/post -> inner update -> unpack/wait -> boundary update) and executes
it so the inner-block numpy work genuinely runs while the halo is on the
wire, following the latency-tolerance task-graph transformations of
Eijkhout (arXiv 1811.05077) as realised for communication-avoiding
stencils by Charrier et al. (arXiv 1801.08682).

Determinism contract
--------------------
The executor runs tasks in a *fixed* topological order: the numerics and
every logically-effectful communication completion happen in canonical
program order on every run.  What is adaptive is purely physical:
between tasks the executor polls in-flight requests with
:meth:`repro.simmpi.comm.Request.test`, which claims arrived payloads
(draining shared-memory rings early, so senders never stall on a full
link) but applies **no** logical effects — no clock merge, no stats, no
fault-hook tick.  When a wait task is reached, any still-unclaimed
requests are claimed via ``Comm.waitany`` (also effect-free), and only
then does the task body call ``wait()`` on each request in canonical
order.  Consequence: trajectories *and* logical clocks are bit-identical
under arbitrary poll interleavings — the invariant the resilience stack
(fault schedules keyed to comm-call counts, replay, recovery) assumes,
and the one :mod:`tests.test_taskgraph` fuzzes.
"""
from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.spans import span as obs_span

__all__ = [
    "CommToken",
    "ExecutorMetrics",
    "GraphExecutor",
    "Task",
    "TaskGraph",
]


@dataclass
class CommToken:
    """In-flight communication window: posted requests plus accounting."""

    name: str
    requests: list = field(default_factory=list)
    t_posted: float = 0.0
    #: wall seconds of compute tasks executed while this window was open
    overlap_s: float = 0.0
    early_claims: int = 0

    def unclaimed(self) -> list:
        return [r for r in self.requests if not (r._done or r._claimed)]


class Task:
    """One node of the per-step DAG.

    ``kind`` is ``"compute"`` (pure numpy work), ``"post"`` (returns the
    list of receive requests it posted; opens ``token``) or ``"wait"``
    (applies the logical completions of ``token`` and unpacks).
    ``deps`` are indices of earlier tasks; list order is the execution
    order, so deps serve as builder validation and ready-depth metrics,
    not as a scheduler input.
    """

    __slots__ = ("name", "fn", "deps", "kind", "token")

    def __init__(
        self,
        name: str,
        fn: Callable[[], object],
        deps: Sequence[int] = (),
        kind: str = "compute",
        token: CommToken | None = None,
    ) -> None:
        if kind not in ("compute", "post", "wait"):
            raise ValueError(f"unknown task kind {kind!r}")
        if kind in ("post", "wait") and token is None:
            raise ValueError(f"{kind} task {name!r} needs a CommToken")
        self.name = name
        self.fn = fn
        self.deps = tuple(deps)
        self.kind = kind
        self.token = token


class TaskGraph:
    """Builder for one step's task list (topologically ordered)."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []

    def add(
        self,
        name: str,
        fn: Callable[[], object],
        deps: Sequence[int] = (),
        kind: str = "compute",
        token: CommToken | None = None,
    ) -> int:
        idx = len(self.tasks)
        for d in deps:
            if not (0 <= d < idx):
                raise ValueError(
                    f"task {name!r} depends on {d}, which is not an "
                    f"earlier task (have {idx})"
                )
        self.tasks.append(Task(name, fn, deps, kind, token))
        return idx

    def post(
        self, name: str, fn: Callable[[], list], deps: Sequence[int] = ()
    ) -> tuple[int, CommToken]:
        """Add a post task; ``fn`` must return the receive requests."""
        token = CommToken(name=name)
        idx = self.add(name, fn, deps, kind="post", token=token)
        return idx, token

    def wait(
        self,
        name: str,
        token: CommToken,
        fn: Callable[[], object],
        deps: Sequence[int] = (),
    ) -> int:
        return self.add(name, fn, deps, kind="wait", token=token)


@dataclass
class ExecutorMetrics:
    """Accumulated over every graph one rank executes."""

    tasks: int = 0
    windows: int = 0
    #: wall seconds of compute executed inside open send->wait windows
    overlap_seconds: float = 0.0
    #: wall seconds the windows were open (post end -> wait start)
    window_seconds: float = 0.0
    #: wall seconds actually blocked claiming outstanding requests
    blocked_seconds: float = 0.0
    #: requests claimed by polling before their wait task ran
    early_claims: int = 0
    poll_sweeps: int = 0
    max_ready_depth: int = 0

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the open-window time covered by real compute."""
        if self.window_seconds <= 0.0:
            return 0.0
        return min(1.0, self.overlap_seconds / self.window_seconds)

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "windows": self.windows,
            "overlap_seconds": self.overlap_seconds,
            "window_seconds": self.window_seconds,
            "blocked_seconds": self.blocked_seconds,
            "early_claims": self.early_claims,
            "poll_sweeps": self.poll_sweeps,
            "max_ready_depth": self.max_ready_depth,
            "overlap_fraction": self.overlap_fraction,
        }


class GraphExecutor:
    """Executes task graphs for one rank.

    ``fuzz`` seeds a :class:`random.Random` that perturbs *polling only*
    (how often ``test`` sweeps run and in which token order) — used by the
    determinism tests to show poll interleavings cannot reach the
    numerics or the logical clocks.
    """

    def __init__(self, comm, fuzz: int | None = None) -> None:
        self.comm = comm
        self.metrics = ExecutorMetrics()
        self._rng = random.Random(fuzz) if fuzz is not None else None

    # ---- polling (physical only; no logical effects) ---------------------
    def _poll(self, in_flight: list[CommToken]) -> None:
        tokens = [t for t in in_flight if t.unclaimed()]
        if not tokens:
            return
        sweeps = 1
        if self._rng is not None:
            sweeps = self._rng.randint(0, 2)
            self._rng.shuffle(tokens)
        for _ in range(sweeps):
            self.metrics.poll_sweeps += 1
            for token in tokens:
                for req in token.unclaimed():
                    if req.test():
                        token.early_claims += 1
                        self.metrics.early_claims += 1

    def _claim_all(self, token: CommToken) -> None:
        """Block (effect-free) until every request of ``token`` is claimed."""
        while True:
            pending = token.unclaimed()
            if not pending:
                return
            # claims at least the returned request; loop until all claimed
            self.comm.waitany(pending)

    # ---- execution -------------------------------------------------------
    def run(self, graph: TaskGraph) -> None:
        tasks = graph.tasks
        m = self.metrics
        # incremental ready-set tracking (metrics + builder validation)
        remaining = [len(t.deps) for t in tasks]
        dependents: list[list[int]] = [[] for _ in tasks]
        for i, t in enumerate(tasks):
            for d in t.deps:
                dependents[d].append(i)
        ready = sum(1 for r in remaining if r == 0)
        done = [False] * len(tasks)

        in_flight: list[CommToken] = []
        for i, task in enumerate(tasks):
            if any(not done[d] for d in task.deps):  # pragma: no cover
                raise RuntimeError(
                    f"task {task.name!r} ran before its dependencies — "
                    "builder emitted a non-topological order"
                )
            m.max_ready_depth = max(m.max_ready_depth, ready)
            self._poll(in_flight)
            cat = "taskgraph" if task.kind == "compute" else "taskgraph-comm"
            if task.kind == "post":
                with obs_span(f"tg:{task.name}", cat, args={"ready": ready}):
                    reqs = task.fn() or []
                task.token.requests = list(reqs)
                task.token.t_posted = time.perf_counter()
                in_flight.append(task.token)
            elif task.kind == "wait":
                token = task.token
                t_wait = time.perf_counter()
                window = max(0.0, t_wait - token.t_posted)
                claimed_early = not token.unclaimed()
                with obs_span(
                    f"tg:{task.name}", cat,
                    args={
                        "ready": ready,
                        "window_s": round(window, 9),
                        "overlap_s": round(min(token.overlap_s, window), 9),
                        "claimed_early": claimed_early,
                    },
                ):
                    self._claim_all(token)
                    t_claimed = time.perf_counter()
                    task.fn()
                m.windows += 1
                m.window_seconds += window
                m.overlap_seconds += min(token.overlap_s, window)
                m.blocked_seconds += max(0.0, t_claimed - t_wait)
                if token in in_flight:
                    in_flight.remove(token)
            else:
                t0 = time.perf_counter()
                with obs_span(f"tg:{task.name}", cat, args={"ready": ready}):
                    task.fn()
                dur = time.perf_counter() - t0
                for token in in_flight:
                    token.overlap_s += dur
            m.tasks += 1
            done[i] = True
            ready -= 1
            for j in dependents[i]:
                remaining[j] -= 1
                if remaining[j] == 0:
                    ready += 1
        if in_flight:  # pragma: no cover
            raise RuntimeError(
                "graph ended with open communication windows: "
                + ", ".join(t.name for t in in_flight)
            )
