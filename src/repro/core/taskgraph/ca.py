"""Task-graph build of Algorithm 2 (the communication-avoiding core).

Each step becomes one DAG: the wide adaptation exchange and the stale-C
bundle are *post* tasks, the former smoothing ``S1`` and the inner-block
rows of the first internal update run as compute tasks while those
messages are in flight, and the *wait* tasks apply the completions in the
synchronous program's order before the later smoothing ``S2`` and the
boundary rows run.  The advection exchange overlaps the inner rows of the
first ``zeta`` update the same way.  All other operations are single
tasks that call the exact synchronous helpers, so the trajectory stays
bit-identical to :func:`repro.core.comm_avoiding.ca_rank_program` (the
tests pin this with ``==``).

Inner-row eligibility (window 1): the first internal update may start
before the unpack only when its inputs cannot change at the unpack —
``psi`` rows ``[gy+STRIP, gy+ny_i-STRIP)`` are final after ``S1`` (``S2``
touches only the strips and halo rows) and the stale C bundle is reused
(``ca_approximate_c``) so no fresh vertical collective is needed.  The
update's radius-1 stencil then yields target rows
``[gy+STRIP+1, gy+ny_i-STRIP-1)``.
"""
from __future__ import annotations

from repro.core import comm_avoiding as ca_mod
from repro.core.distributed import PHASE_STENCIL, RankResult
from repro.core.taskgraph import GraphExecutor, TaskGraph
from repro.core.taskgraph.subdomain import RowSlab
from repro.core.workspace import StateRing
from repro.obs.spans import span
from repro.state.variables import ModelState


def _fields(s: ModelState) -> list:
    return [s.U, s.V, s.Phi, s.psa]


def ca_rank_program_taskgraph(comm, cfg, initial: ModelState) -> RankResult:
    """Algorithm 2 with the per-rank task-graph executor.

    Caller (``ca_rank_program``) guarantees ``cfg.use_workspace`` and
    ``pz == 1`` (no z halos), so ``gz == 0`` and the ring is available.
    """
    ctx = ca_mod.CommAvoidingRank(comm, cfg)
    params = cfg.params
    dt1, dt2, M = params.dt_adaptation, params.dt_advection, params.m_iterations
    W = cfg.weights
    g = ctx.geom
    gy, ny_i, ny_w = g.gy, ctx.extent.ny, g.shape3d[1]
    pf = ctx.engine.polar_filter
    strip = ca_mod.STRIP
    ex = GraphExecutor(comm, fuzz=cfg.taskgraph_fuzz_seed)
    overlap = cfg.ca_overlap

    # static slab splits (per-rank geometry, built once)
    a1, b1 = gy + strip + 1, gy + ny_i - strip - 1
    adapt_slabs = None
    if b1 - a1 >= 1:
        adapt_slabs = (
            RowSlab(g, a1, b1, 1, pf),
            [RowSlab(g, 0, a1, 1, pf), RowSlab(g, b1, ny_w, 1, pf)],
        )
    a2, b2 = gy + 1, gy + ny_i - 1
    advec_slabs = None
    if b2 - a2 >= 1:
        advec_slabs = (
            RowSlab(g, a2, b2, 1, pf),
            [RowSlab(g, 0, a2, 1, pf), RowSlab(g, b2, ny_w, 1, pf)],
        )

    xi_pre = ctx.pad_local(initial)
    ctx.fill_bc(xi_pre)
    first_step = True
    ring = StateRing(ctx.ws, g.shape3d)

    for _step in range(cfg.nsteps):
        with span("step", "step"):
            gr = TaskGraph()
            rt: dict = {}  # run-time handles (pending exchanges)

            pre = ring.scratch(xi_pre)
            t_prev = gr.add(
                "copy-pre", lambda s=xi_pre, d=pre: s.copy_into(d)
            )
            smoothed = None if first_step else ring.scratch(pre)
            have_bundle = ctx.vd_stale is not None

            # ---- window 1: wide state halo + stale C bundle ----
            def post_halo1():
                comm.set_phase(PHASE_STENCIL)
                pending = ctx.halo.start(_fields(pre))
                comm.set_phase(None)
                rt["h1"] = pending
                return [r for (r, _f, _s, _n) in pending.recv_reqs]

            p1, tok1 = gr.post("post-halo:adapt", post_halo1, deps=(t_prev,))
            pb1 = tokb1 = None
            if have_bundle:
                def post_bundle1():
                    rt["b1"] = ctx.start_bundle_exchange(ctx.vd_stale, wy=gy)
                    return [r for (r, _f, _s) in rt["b1"][1]]

                pb1, tokb1 = gr.post(
                    "post-bundle:adapt", post_bundle1, deps=(t_prev,)
                )

            if smoothed is not None:
                t_s1 = gr.add(
                    "smooth:former",
                    lambda: ctx.former_smoothing(pre, out=smoothed),
                    deps=(t_prev,),
                )
            else:
                t_s1 = t_prev
            psi = pre if smoothed is None else smoothed

            # eta1 is written before S2 reads all of pre, so exclude pre
            eta1 = (
                ring.scratch(smoothed, pre)
                if smoothed is not None
                else ring.scratch(pre)
            )
            inner1 = (
                overlap
                and adapt_slabs is not None
                and smoothed is not None
                and have_bundle
                and cfg.ca_approximate_c
                and cfg.forcing is None
            )
            if inner1:
                def adapt1_inner():
                    ctx.charge_inner(W.adaptation)
                    adapt_slabs[0].adaptation_update_rows(
                        ctx, psi, psi, ctx.vd_stale, dt1, eta1
                    )

                gr.add("adapt1:inner", adapt1_inner, deps=(t_s1,))
            elif overlap:
                gr.add(
                    "charge:inner-adapt",
                    lambda: ctx.charge_inner(W.adaptation),
                    deps=(t_s1,),
                )

            def wait_halo1():
                comm.set_phase(PHASE_STENCIL)
                ctx.halo.finish(rt["h1"], _fields(pre))
                comm.set_phase(None)
                ctx.exchanges += 1

            t_prev = gr.wait("wait-halo:adapt", tok1, wait_halo1, deps=(p1,))
            if have_bundle:
                t_prev = gr.wait(
                    "wait-bundle:adapt",
                    tokb1,
                    lambda: ctx.finish_bundle_exchange(
                        ctx.vd_stale, gy, rt["b1"]
                    ),
                    deps=(pb1, t_prev),
                )
            t_prev = gr.add(
                "fill-bc:pre", lambda: ctx.fill_bc(pre), deps=(t_prev,)
            )

            if smoothed is not None:
                def smooth_later():
                    ctx.later_smoothing(smoothed, pre)
                    ctx.fill_bc(smoothed)
                    if cfg.forcing is not None:
                        cfg.forcing(smoothed, ctx.geom, dt2)
                        ctx.fill_bc(smoothed)

                t_prev = gr.add("smooth:later", smooth_later, deps=(t_prev,))

            # ---- M nonlinear iterations, 3 internal updates each ----
            cur = psi
            for i in range(M):
                e1 = eta1 if i == 0 else ring.scratch(cur)
                approx = cfg.ca_approximate_c and (have_bundle or i > 0)
                if i == 0 and inner1:
                    def adapt1_boundary(cur=cur, e1=e1):
                        ctx.charge_outer(W.adaptation)
                        for sl in adapt_slabs[1]:
                            sl.adaptation_update_rows(
                                ctx, cur, cur, ctx.vd_stale, dt1, e1
                            )
                        ctx.engine.fill_physical_ghosts(e1)

                    t_prev = gr.add(
                        "adapt1:boundary", adapt1_boundary, deps=(t_prev,)
                    )
                else:
                    def adapt1_full(cur=cur, e1=e1, i=i, approx=approx):
                        if approx:
                            vd1 = ctx.vd_stale
                        else:
                            vd1 = ctx.vertical_fresh(cur)
                            ctx.vd_stale = vd1
                        if i == 0 and overlap:
                            ctx.charge_outer(W.adaptation)
                        else:
                            ctx.charge(W.adaptation, ctx._wpoints)
                        ca_mod._adaptation_update(ctx, cur, cur, vd1, dt1, e1)

                    t_prev = gr.add(
                        f"adapt1:i{i}", adapt1_full, deps=(t_prev,)
                    )

                e2 = ring.scratch(cur, e1)

                def adapt2(cur=cur, e1=e1, e2=e2):
                    vd2 = ctx.vertical_fresh(e1)
                    ctx.vd_stale = vd2
                    ctx.charge(W.adaptation, ctx._wpoints)
                    ca_mod._adaptation_update(ctx, e1, cur, vd2, dt1, e2)

                t_prev = gr.add(f"adapt2:i{i}", adapt2, deps=(t_prev,))

                md = ring.scratch(cur, e2)
                t_prev = gr.add(
                    f"mid:i{i}",
                    lambda cur=cur, e2=e2, md=md: ModelState.midpoint_into(
                        cur, e2, md
                    ),
                    deps=(t_prev,),
                )
                nxt = ring.scratch(cur, md)

                def adapt3(cur=cur, md=md, out=nxt):
                    vd3 = ctx.vertical_fresh(md)
                    ctx.vd_stale = vd3
                    ctx.charge(W.adaptation, ctx._wpoints)
                    ca_mod._adaptation_update(ctx, md, cur, vd3, dt1, out)
                    ctx.charge(W.update, 3 * ctx._wpoints)

                t_prev = gr.add(f"adapt3:i{i}", adapt3, deps=(t_prev,))
                cur = nxt

            # ---- window 2: 3-wide advection halo + frozen C bundle ----
            def post_halo2(cur=cur):
                comm.set_phase(PHASE_STENCIL)
                pending = ctx.halo.start(_fields(cur), wy=3, wz=None)
                comm.set_phase(None)
                rt["h2"] = pending
                return [r for (r, _f, _s, _n) in pending.recv_reqs]

            p2, tok2 = gr.post("post-halo:advect", post_halo2, deps=(t_prev,))

            def post_bundle2():
                rt["b2"] = ctx.start_bundle_exchange(ctx.vd_stale, wy=3)
                return [r for (r, _f, _s) in rt["b2"][1]]

            pb2, tokb2 = gr.post(
                "post-bundle:advect", post_bundle2, deps=(t_prev,)
            )

            z1 = ring.scratch(cur)
            inner2 = overlap and advec_slabs is not None
            if inner2:
                def advec1_inner(cur=cur, z1=z1):
                    ctx.charge_inner(W.advection)
                    advec_slabs[0].advection_update_rows(
                        ctx, cur, cur, ctx.vd_stale, dt2, z1
                    )

                gr.add("advec1:inner", advec1_inner, deps=(t_prev,))
            elif overlap:
                gr.add(
                    "charge:inner-advec",
                    lambda: ctx.charge_inner(W.advection),
                    deps=(t_prev,),
                )

            def wait_halo2(cur=cur):
                comm.set_phase(PHASE_STENCIL)
                ctx.halo.finish(rt["h2"], _fields(cur))
                comm.set_phase(None)
                ctx.exchanges += 1

            t_prev = gr.wait("wait-halo:advect", tok2, wait_halo2, deps=(p2,))
            t_prev = gr.wait(
                "wait-bundle:advect",
                tokb2,
                lambda: ctx.finish_bundle_exchange(ctx.vd_stale, 3, rt["b2"]),
                deps=(pb2, t_prev),
            )
            t_prev = gr.add(
                "fill-bc:psi",
                lambda cur=cur: ctx.fill_bc(cur),
                deps=(t_prev,),
            )

            if inner2:
                def advec1_boundary(cur=cur, z1=z1):
                    ctx.charge_outer(W.advection)
                    for sl in advec_slabs[1]:
                        sl.advection_update_rows(
                            ctx, cur, cur, ctx.vd_stale, dt2, z1
                        )
                    ctx.engine.fill_physical_ghosts(z1)

                t_prev = gr.add(
                    "advec1:boundary", advec1_boundary, deps=(t_prev,)
                )
            else:
                def advec1_full(cur=cur, z1=z1):
                    if overlap:
                        ctx.charge_outer(W.advection)
                    else:
                        ctx.charge(W.advection, ctx._wpoints)
                    tend = ctx.engine.apply_filter(
                        ctx.engine.advection(cur, ctx.vd_stale)
                    )
                    cur.axpy_into(dt2, tend, z1)
                    ctx.engine.fill_physical_ghosts(z1)

                t_prev = gr.add("advec1", advec1_full, deps=(t_prev,))

            z2 = ring.scratch(cur, z1)

            def advec2(cur=cur, z1=z1, z2=z2):
                ctx.charge(W.advection, ctx._wpoints)
                tend = ctx.engine.apply_filter(
                    ctx.engine.advection(z1, ctx.vd_stale)
                )
                cur.axpy_into(dt2, tend, z2)
                ctx.engine.fill_physical_ghosts(z2)

            t_prev = gr.add("advec2", advec2, deps=(t_prev,))

            md2 = ring.scratch(cur, z2)
            t_prev = gr.add(
                "mid:advect",
                lambda cur=cur, z2=z2, md2=md2: ModelState.midpoint_into(
                    cur, z2, md2
                ),
                deps=(t_prev,),
            )
            xi_new = ring.scratch(cur, md2)

            def advec3(cur=cur, md2=md2, out=xi_new):
                ctx.charge(W.advection, ctx._wpoints)
                tend = ctx.engine.apply_filter(
                    ctx.engine.advection(md2, ctx.vd_stale)
                )
                cur.axpy_into(dt2, tend, out)
                ctx.engine.fill_physical_ghosts(out)
                ctx.charge(W.update, 3 * ctx._wpoints)

            gr.add("advec3", advec3, deps=(t_prev,))

            ex.run(gr)
            xi_pre = xi_new
            first_step = False
        ctx.record_telemetry(_step + 1, xi_pre)

    # ---- final smoothing (Algorithm 2 line 30): one extra exchange ----
    with span("smoothing-exchange", "comm"):
        comm.set_phase(PHASE_STENCIL)
        ctx.halo.exchange(
            _fields(xi_pre), wy=strip, wz=min(strip, ctx.geom.gz) or None
        )
        comm.set_phase(None)
        ctx.fill_bc(xi_pre)
    ctx.charge(cfg.weights.smoothing, ctx._wpoints)
    from repro.operators.smoothing import smooth_state_into

    out = smooth_state_into(
        xi_pre, params, ring.scratch(xi_pre), ctx.ws, ctx.smoothers
    )
    ctx.fill_bc(out)
    if cfg.forcing is not None:
        cfg.forcing(out, ctx.geom, dt2)

    return RankResult(
        state=ctx.strip_local(out),
        c_calls=ctx.c_calls,
        exchanges=ctx.exchanges,
        telemetry=ctx.telemetry_partials if cfg.telemetry else None,
        ws_counters=ctx.ws_counters(),
        overlap=ex.metrics.as_dict(),
    )
