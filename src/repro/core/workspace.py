"""Per-rank preallocated scratch buffers for the numerical hot path.

The seed implementation of the cores is functional: every internal update
allocates fresh temporaries (``np.zeros`` / ``np.empty_like`` / binary
ufuncs without ``out=``), which at production step rates makes the
allocator — not the floating-point units — the bottleneck of the serial
core and of every rank program.  A :class:`Workspace` replaces those
per-step allocations with a reusable buffer pool:

* :meth:`Workspace.take` / :meth:`Workspace.give` recycle arrays by
  ``(shape, dtype)``; steady state performs **zero** heap allocations on
  the step hot path (the ``fresh_allocations`` / ``reuses`` counters make
  this measurable, and the benchmark harness reports them);
* :class:`StateRing` manages the handful of whole-:class:`ModelState`
  buffers an integrator rotates through one model step, with explicit
  liveness lists so a buffer is never handed out while its data is still
  needed;
* :func:`roll_into` is the allocation-free, bit-identical replacement for
  the ``np.roll`` calls that dominate the stencil operators.

Every workspace code path is required to be **bit-identical** to the seed
numerics: the same floating-point operations in the same order, only with
preallocated output buffers.  ``tests/test_workspace.py`` asserts exact
(``==``) equality of multi-step trajectories against the seed path for
the serial, original-yz, original-xy and CA cores.
"""
from __future__ import annotations

import numpy as np

from repro.operators.shifts import roll_into  # noqa: F401  (re-export)
from repro.state.variables import ModelState


class Workspace:
    """Reusable scratch-buffer pool keyed by ``(shape, dtype)``.

    One workspace per rank (or per serial core); buffers are taken for the
    duration of one kernel evaluation and given back when dead, so the
    pool size converges to the peak concurrent working set of a step.
    """

    def __init__(self) -> None:
        self._pool: dict[tuple, list[np.ndarray]] = {}
        self._pooled_ids: set[int] = set()
        self.fresh_allocations = 0
        self.reuses = 0

    @staticmethod
    def _key(shape: tuple[int, ...], dtype) -> tuple:
        return (tuple(shape), np.dtype(dtype).str)

    def take(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A buffer of the given shape; recycled when one is free."""
        bucket = self._pool.get(self._key(shape, dtype))
        if bucket:
            arr = bucket.pop()
            self._pooled_ids.discard(id(arr))
            self.reuses += 1
            return arr
        self.fresh_allocations += 1
        return np.empty(shape, dtype)

    def give(self, *arrays: np.ndarray | None) -> None:
        """Return buffers to the pool.  ``None`` entries are skipped."""
        for arr in arrays:
            if arr is None:
                continue
            if arr.base is not None:
                raise ValueError("only owning arrays may be pooled (got a view)")
            if id(arr) in self._pooled_ids:
                raise ValueError("double give of the same buffer")
            self._pooled_ids.add(id(arr))
            self._pool.setdefault(self._key(arr.shape, arr.dtype), []).append(arr)

    # ---- whole-state helpers ------------------------------------------------
    def take_state(self, shape3d: tuple[int, int, int]) -> ModelState:
        """A pooled :class:`ModelState` of working shape ``shape3d``."""
        nz, ny, nx = shape3d
        return ModelState(
            U=self.take((nz, ny, nx)),
            V=self.take((nz, ny, nx)),
            Phi=self.take((nz, ny, nx)),
            psa=self.take((ny, nx)),
        )

    def give_state(self, state: ModelState) -> None:
        self.give(state.U, state.V, state.Phi, state.psa)

    def give_vd(self, vd) -> None:
        """Recycle a dead :class:`VerticalDiagnostics` bundle's buffers.

        Tolerates bundles produced by the allocating paths (e.g. the scan
        variant of ``C``), whose members may be views: only owning arrays
        are pooled.
        """
        if vd is None:
            return
        for arr in (
            vd.div_p, vd.column_sum, vd.pw_iface, vd.w_iface,
            vd.sdot_iface, vd.phi_prime, vd.p_fac,
        ):
            if arr.base is None:
                self.give(arr)

    @property
    def pooled_bytes(self) -> int:
        """Total bytes currently parked in the pool."""
        return sum(a.nbytes for bucket in self._pool.values() for a in bucket)


class StateRing:
    """A fixed rotation of working :class:`ModelState` buffers.

    The integrators' internal updates need at most four concurrently live
    states (base, two iterates, output); ``scratch(*live)`` returns a ring
    member that is not among the live ones, so the rotation reuses dead
    iterates' storage with no allocation and no aliasing.
    """

    def __init__(self, ws: Workspace, shape3d: tuple[int, int, int], size: int = 6):
        self._states = [ws.take_state(shape3d) for _ in range(size)]

    def scratch(self, *live: ModelState | None) -> ModelState:
        for s in self._states:
            if all(s is not l for l in live):
                return s
        raise RuntimeError("state ring exhausted; widen the ring")
