"""Composition of the five operators into the tendency evaluations of
Algorithm 1 / Algorithm 2.

One :class:`TendencyEngine` owns a working geometry, the polar filter and
the (optional) z-collective hook, and exposes the two composite
evaluations the integrators need:

* ``F (C-hat + A-hat)`` — the adaptation tendency (optionally with a
  *cached* ``C`` bundle, the approximate nonlinear iteration of
  Sec. 4.2.2);
* ``F L`` — the advection tendency (with the ``sigma-dot`` diagnostics
  frozen from the adaptation process, matching the operator form's absence
  of ``C`` in the advection block).

Ghost filling here covers only the *physical* boundaries (pole mirrors,
vertical edges); rank-to-rank halo exchange is the distributed cores'
job and happens before these evaluations are called.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.constants import ModelParameters
from repro.obs.spans import traced
from repro.operators.adaptation import AdaptationGeomCache, adaptation_tendency
from repro.operators.advection import AdvectionGeomCache, advection_tendency
from repro.operators.filter import PolarFilter
from repro.operators.geometry import WorkingGeometry
from repro.operators.shifts import (
    fill_pole_ghosts,
    fill_pole_ghosts_vrow,
    fill_z_edge_ghosts,
)
from repro.operators.vertical import (
    DEFAULT_REFERENCE,
    GatherFn,
    VerticalDiagnostics,
    VerticalGeomCache,
    compute_vertical_diagnostics,
    compute_vertical_diagnostics_scan,
)
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.variables import ModelState


@dataclass
class TendencyEngine:
    """Operator composition for one rank (or the serial core)."""

    geom: WorkingGeometry
    params: ModelParameters
    polar_filter: PolarFilter | None = None
    gather_z: GatherFn | None = None
    #: alternative volume-optimal C collective: (exscan_fn, allreduce_fn)
    #: on the z line; takes precedence over ``gather_z`` when set
    scan_z: tuple | None = None
    reference: StandardAtmosphere = DEFAULT_REFERENCE
    #: optional per-rank workspace; when set, the operator evaluations run
    #: their pool-backed fast paths (bit-identical to the allocating seed
    #: paths) and tendencies land in one engine-owned buffer
    ws: object | None = None
    #: optional fused kernel tier (:class:`repro.kernels.KernelSet`); each
    #: operator call it cannot fuse falls back to the reference path below,
    #: so results are identical either way
    kernels: object | None = None

    def __post_init__(self) -> None:
        if self.polar_filter is None and self.geom.full_x:
            self.polar_filter = PolarFilter(self.geom, self.params)
        if self.ws is not None:
            self._vert_cache = VerticalGeomCache(self.geom)
            self._adapt_cache = AdaptationGeomCache(self.geom)
            self._advec_cache = AdvectionGeomCache(self.geom)
            self._tend = ModelState.zeros(self.geom.shape3d)

    # ---- boundary conditions -----------------------------------------------
    def fill_physical_ghosts(self, state: ModelState) -> None:
        """Pole mirror + vertical edge ghost fill (no communication).

        Also (re)imposes V = 0 on pole interface rows owned by this block.
        Call after every state update and before any stencil evaluation.
        """
        g = self.geom
        n, s = g.touches_north, g.touches_south
        if g.gy > 0 and (n or s):
            fill_pole_ghosts(state.U, g.gy, vector=True, north=n, south=s)
            fill_pole_ghosts(state.Phi, g.gy, vector=False, north=n, south=s)
            fill_pole_ghosts(state.psa, g.gy, vector=False, north=n, south=s)
            fill_pole_ghosts_vrow(state.V, g.gy, north=n, south=s)
        elif s and g.gy == 0:
            # even without ghosts the south-pole interface row exists
            state.V[..., -1, :] = 0.0
        if g.gz > 0:
            for f in (state.U, state.V, state.Phi):
                fill_z_edge_ghosts(f, g.gz, top=g.touches_top, bottom=g.touches_bottom)

    # ---- the C operator ------------------------------------------------------
    @traced("C", "tendency")
    def vertical(self, state: ModelState) -> VerticalDiagnostics:
        """Apply ``C``: the vertical-integral diagnostics bundle.

        This is the only tendency ingredient that needs the z-collective.
        Uses the scan-based variant when ``scan_z`` is configured, the
        allgather variant otherwise.
        """
        if self.scan_z is not None:
            exscan, allreduce = self.scan_z
            return compute_vertical_diagnostics_scan(
                state.U, state.V, state.Phi, state.psa, self.geom,
                exscan, allreduce, self.reference,
            )
        if self.kernels is not None and self.ws is not None:
            vd = self.kernels.vertical(
                state.U, state.V, state.Phi, state.psa, self.geom,
                self.gather_z, self.ws, self._vert_cache,
            )
            if vd is not None:
                return vd
        if self.ws is not None:
            return compute_vertical_diagnostics(
                state.U, state.V, state.Phi, state.psa, self.geom,
                self.gather_z, self.reference,
                ws=self.ws, cache=self._vert_cache,
            )
        return compute_vertical_diagnostics(
            state.U, state.V, state.Phi, state.psa, self.geom,
            self.gather_z, self.reference,
        )

    # ---- composite tendencies ----------------------------------------------------
    @traced("adaptation", "tendency")
    def adaptation(
        self, state: ModelState, vd: VerticalDiagnostics
    ) -> ModelState:
        """``C-hat + A-hat``: the (unfiltered) adaptation tendency.

        ``vd`` may be the *fresh* diagnostics of ``state`` (original
        algorithm) or a cached bundle from an earlier iterate (the
        approximate nonlinear iteration): the caller decides, which is the
        whole point of the Sec. 4.2.2 optimization.  The caller applies
        the ``F`` operator (:meth:`apply_filter` locally, or the x-line
        collective of the distributed X-Y core).

        With a workspace configured, the tendency is written into the
        engine-owned buffer (valid until the next tendency evaluation).
        """
        if self.kernels is not None and self.ws is not None:
            out = self.kernels.adaptation(
                state, vd, self.geom, self.params,
                self.ws, self._tend, self._adapt_cache,
            )
            if out is not None:
                return out
        if self.ws is not None:
            return adaptation_tendency(
                state, vd, self.geom, self.params,
                ws=self.ws, out=self._tend, cache=self._adapt_cache,
            )
        return adaptation_tendency(state, vd, self.geom, self.params)

    @traced("advection", "tendency")
    def advection(
        self, state: ModelState, vd: VerticalDiagnostics
    ) -> ModelState:
        """``L``: the (unfiltered) advection tendency with frozen
        ``sigma-dot``."""
        if self.kernels is not None and self.ws is not None:
            out = self.kernels.advection(
                state, vd, self.geom, self.ws, self._tend, self._advec_cache,
            )
            if out is not None:
                return out
        if self.ws is not None:
            return advection_tendency(
                state, vd, self.geom,
                ws=self.ws, out=self._tend, cache=self._advec_cache,
            )
        return advection_tendency(state, vd, self.geom)

    @traced("polar-filter", "tendency")
    def apply_filter(self, tend: ModelState) -> ModelState:
        """The ``F`` operator, local full-circle variant (requires
        ``geom.full_x``)."""
        if self.polar_filter is None:
            raise RuntimeError("no local polar filter on a split-x geometry")
        return self.polar_filter.apply_state(tend)
