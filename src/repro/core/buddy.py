"""In-memory buddy checkpointing: diskless, partner-redundant state.

Disk checkpoints survive anything but cost a full serialize/deserialize
round trip per chunk and a rollback re-reads the whole state.  The
standard in-memory alternative (Zheng et al.'s double in-memory
checkpointing, as in Charm++/FTC-Charm++) keeps two copies of every
rank's block: the *primary* on the owner and a *mirror* on its buddy
rank.  A single rank crash then recovers by fetching the lost block from
its buddy — no disk involved; only a simultaneous loss of a block's
owner *and* its buddy (a double fault) forces the escalation to disk.

:class:`BuddyStore` models that scheme at the driver level, mirroring
how the resilient driver already owns disk checkpoints: it splits the
gathered global state into per-rank blocks (the owner's primary copy)
plus one mirror per block hosted on ``buddy_of(rank)``, and
``drop_ranks`` simulates the memory loss of a crash — the crashed
rank's primary *and* every mirror it hosted vanish.  ``restore`` then
reassembles the global state from whatever copies survive, raising
:class:`BuddyLost` when neither copy of some block exists.
"""
from __future__ import annotations

import numpy as np

from repro.grid.decomposition import Decomposition
from repro.state.variables import ModelState


class BuddyLost(RuntimeError):
    """Both copies of some rank's block are gone — escalate to disk."""


def buddy_of(rank: int, nranks: int) -> int:
    """The partner hosting ``rank``'s mirror (next rank, ring order)."""
    return (rank + 1) % nranks


class BuddyStore:
    """Per-rank block state with a mirror on each rank's buddy.

    One store serves one resilient run; ``store`` overwrites the held
    snapshot (only the last committed chunk boundary is recoverable,
    matching the disk-checkpoint cadence).  A world of one rank has no
    distinct buddy, so the store is inert there (``restore`` always
    raises and the driver falls through to disk).
    """

    def __init__(self, decomp: Decomposition) -> None:
        self.decomp = decomp
        self.nranks = decomp.nranks
        self.step: int | None = None
        #: owner rank -> primary block fields (lost when the owner dies)
        self._primary: dict[int, dict[str, np.ndarray]] = {}
        #: owner rank -> mirror block fields (lost when buddy_of(owner) dies)
        self._mirror: dict[int, dict[str, np.ndarray]] = {}

    @property
    def enabled(self) -> bool:
        """Buddy redundancy needs at least two distinct hosts."""
        return self.nranks >= 2

    def _block(self, state: ModelState, rank: int) -> dict[str, np.ndarray]:
        d = self.decomp
        return {
            "U": d.scatter(state.U, rank),
            "V": d.scatter(state.V, rank),
            "Phi": d.scatter(state.Phi, rank),
            "psa": d.scatter(state.psa, rank),
        }

    def store(self, step: int, state: ModelState) -> None:
        """Snapshot ``state`` at chunk boundary ``step`` (primary + mirror)."""
        if not self.enabled:
            return
        self.step = step
        self._primary = {
            r: self._block(state, r) for r in range(self.nranks)
        }
        self._mirror = {
            r: {k: v.copy() for k, v in self._primary[r].items()}
            for r in range(self.nranks)
        }

    def drop_ranks(self, crashed: tuple[int, ...]) -> None:
        """Simulate the memory loss of crashed ranks: their primaries and
        every mirror they hosted are gone."""
        for k in crashed:
            self._primary.pop(k, None)
            for owner in range(self.nranks):
                if buddy_of(owner, self.nranks) == k:
                    self._mirror.pop(owner, None)

    def restore(self, step: int) -> ModelState:
        """Reassemble the global state for ``step`` from surviving copies.

        Raises
        ------
        BuddyLost
            When the store holds no snapshot, holds one for a different
            step, or some block lost both its primary and its mirror.
        """
        if not self.enabled or self.step is None:
            raise BuddyLost("no buddy snapshot held")
        if self.step != step:
            raise BuddyLost(
                f"buddy snapshot is for step {self.step}, needed {step}"
            )
        blocks: list[dict[str, np.ndarray]] = []
        for r in range(self.nranks):
            block = self._primary.get(r) or self._mirror.get(r)
            if block is None:
                raise BuddyLost(
                    f"block of rank {r} lost on both its owner and its "
                    f"buddy (rank {buddy_of(r, self.nranks)})"
                )
            blocks.append(block)
        d = self.decomp
        return ModelState(
            U=d.gather([b["U"] for b in blocks]),
            V=d.gather([b["V"] for b in blocks]),
            Phi=d.gather([b["Phi"] for b in blocks]),
            psa=d.gather([b["psa"] for b in blocks]),
        )
