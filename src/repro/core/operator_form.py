"""The operator form of the calculating flow (Sec. 4.1, Eq. 8; Figure 2).

One model step of the dynamical core is

.. math::

    \\xi^{(k)} = S\\, (F L)^3\\, (F C A)^{3M}\\, \\xi^{(k-1)}

where each operator involves exactly one kind of communication:

========  =========================  ===================================
operator  computation                communication
========  =========================  ===================================
``A``     adaptation stencil         halo exchange (local)
``C``     vertical summation         collective along z
``L``     advection stencil          halo exchange (local)
``F``     Fourier filtering          collective along x
``S``     smoothing stencil          halo exchange (local)
========  =========================  ===================================

This module makes that abstraction executable: :func:`step_schedule`
expands Eq. 8 into the exact operator sequence of one step, annotates each
application with the communication it costs under a given decomposition
and algorithm, and derives the per-step totals — the same numbers the
instrumented simulated-MPI cores report, which the tests verify.
:func:`render_flow` prints the Figure 2 diagram.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: communication classes of Figure 2
COMM_NONE = "none"
COMM_HALO = "halo"
COMM_COLLECTIVE_X = "collective_x"
COMM_COLLECTIVE_Z = "collective_z"


@dataclass(frozen=True)
class OperatorApplication:
    """One operator application inside a step."""

    operator: str           # "A" | "C" | "L" | "F" | "S"
    index: int              # position in the step's sequence
    communication: str      # one of the COMM_* classes
    note: str = ""

    @property
    def is_stencil(self) -> bool:
        return self.operator in ("A", "L", "S")

    @property
    def is_collective(self) -> bool:
        return self.communication in (COMM_COLLECTIVE_X, COMM_COLLECTIVE_Z)


@dataclass(frozen=True)
class StepSchedule:
    """The fully expanded operator sequence of one model step."""

    algorithm: str
    decomposition: str       # "xy" | "yz" | "3d"
    m_iterations: int
    applications: tuple[OperatorApplication, ...]

    # ---- derived totals -------------------------------------------------
    @property
    def halo_exchanges(self) -> int:
        """Point-to-point exchange rounds per step."""
        return sum(
            1 for a in self.applications if a.communication == COMM_HALO
        )

    @property
    def z_collectives(self) -> int:
        return sum(
            1 for a in self.applications
            if a.communication == COMM_COLLECTIVE_Z
        )

    @property
    def x_collectives(self) -> int:
        return sum(
            1 for a in self.applications
            if a.communication == COMM_COLLECTIVE_X
        )

    @property
    def synchronizations(self) -> int:
        """Events that force a rank to wait on others (the latency cost S
        of Sec. 5.3): every collective and every exchange round."""
        return self.halo_exchanges + self.z_collectives + self.x_collectives

    def count(self, operator: str) -> int:
        return sum(1 for a in self.applications if a.operator == operator)

    def __iter__(self) -> Iterator[OperatorApplication]:
        return iter(self.applications)


def step_schedule(
    algorithm: str, decomposition: str, m_iterations: int = 3
) -> StepSchedule:
    """Expand Eq. 8 for one step of ``algorithm`` under ``decomposition``.

    ``algorithm``: ``"original"`` (Algorithm 1: exchange before every
    stencil update, fresh ``C`` everywhere) or ``"ca"`` (Algorithm 2:
    2 fused exchanges, stale first ``C`` per iteration).
    ``decomposition``: ``"xy"``, ``"yz"`` or ``"3d"`` — decides which
    collectives actually cost communication (``F`` is free when the x axis
    is whole; ``C`` is free when the z axis is whole).
    """
    if algorithm not in ("original", "ca"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if decomposition not in ("xy", "yz", "3d"):
        raise ValueError(f"unknown decomposition {decomposition!r}")
    if algorithm == "ca" and decomposition != "yz":
        raise ValueError("Algorithm 2 is defined on the Y-Z decomposition")
    M = m_iterations
    f_comm = COMM_COLLECTIVE_X if decomposition in ("xy", "3d") else COMM_NONE
    c_comm = COMM_COLLECTIVE_Z if decomposition in ("yz", "3d") else COMM_NONE

    apps: list[OperatorApplication] = []

    def add(op: str, comm: str, note: str = "") -> None:
        apps.append(OperatorApplication(op, len(apps), comm, note))

    if algorithm == "original":
        # (F C A)^{3M}: each internal update = exchange + C + A + F
        for i in range(M):
            for u in range(3):
                add("A", COMM_HALO, f"iter {i + 1} update {u + 1}: exchange")
                add("C", c_comm, "fresh vertical collective")
                add("F", f_comm)
        # (F L)^3
        for u in range(3):
            add("L", COMM_HALO, f"advection update {u + 1}: exchange")
            add("F", f_comm)
        # S with its own exchange
        add("S", COMM_HALO, "smoothing exchange")
    else:
        # Algorithm 2: one wide exchange covers S (fused) + all 3M updates
        add("S", COMM_HALO, "fused: smoothing + 3M-wide adaptation halo")
        for i in range(M):
            for u in range(3):
                if u == 0:
                    add("C", COMM_NONE, "stale bundle (approx. iteration)")
                else:
                    add("C", c_comm, "fresh vertical collective")
                add("A", COMM_NONE, "batched on block + halo")
                add("F", COMM_NONE, "x whole: filter is local")
        # one thin exchange covers the 3 advection updates
        add("L", COMM_HALO, "advection exchange (width 3)")
        for u in range(3):
            if u > 0:
                add("L", COMM_NONE, "batched")
            add("F", COMM_NONE)
    return StepSchedule(
        algorithm=algorithm,
        decomposition=decomposition,
        m_iterations=M,
        applications=tuple(apps),
    )


def render_flow(schedule: StepSchedule, per_line: int = 9) -> str:
    """Figure 2 as text: the operator string of one step with its
    communication classes marked."""
    marks = {
        COMM_NONE: " ",
        COMM_HALO: "h",
        COMM_COLLECTIVE_X: "x",
        COMM_COLLECTIVE_Z: "z",
    }
    ops = [a.operator for a in schedule.applications]
    comm = [marks[a.communication] for a in schedule.applications]
    lines = [
        f"one step of {schedule.algorithm} on {schedule.decomposition} "
        f"(M = {schedule.m_iterations}); read left to right:",
    ]
    for start in range(0, len(ops), per_line):
        seg_ops = ops[start:start + per_line]
        seg_comm = comm[start:start + per_line]
        lines.append("  " + "  ".join(f"{o}" for o in seg_ops))
        lines.append("  " + "  ".join(f"{c}" for c in seg_comm))
    lines.append(
        "legend: h halo exchange  z z-collective  x x-collective  "
        "(blank: no communication)"
    )
    lines.append(
        f"totals: {schedule.halo_exchanges} exchanges, "
        f"{schedule.z_collectives} z-collectives, "
        f"{schedule.x_collectives} x-collectives, "
        f"{schedule.synchronizations} synchronizations"
    )
    return "\n".join(lines)
