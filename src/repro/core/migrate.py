"""Live block migration: move state onto a rebuilt rank layout.

After a permanent rank loss the resilient driver rebuilds the
communicator (spare adoption or shrink, see
:mod:`repro.simmpi.membership`) and must then place every block of the
restored chunk-boundary state onto its *new* owner.  This module runs
that movement as a real SPMD program over the simulated transport — the
same substrate the dynamical core communicates through — so the
migration's message counts, bytes and logical makespan are measured by
the same cost model as everything else and feed the MTTR accounting.

The data plane mirrors where the bytes physically live at recovery time:

* after a **buddy restore**, each surviving old rank still holds its own
  block, and a lost rank's block exists only as the mirror its buddy
  hosts — so those are the *carriers* the transfers depart from;
* after a **disk rollback**, no rank holds anything; the state was
  re-read by the driver, so rank 0 carries every block and the migration
  degenerates to a root scatter.

Each migration transfer moves one region of :func:`repro.grid.
decomposition.plan_migration`'s canonical plan from its carrier to its
new owner, one message per model field, tagged by the transfer's global
plan index — fully deterministic, so a recovered run's logical clocks
replay bit-identically.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.decomposition import (
    BlockTransfer,
    Decomposition,
    plan_migration,
)
from repro.simmpi.launcher import run_spmd
from repro.simmpi.machine import MachineModel
from repro.state.variables import ModelState

#: tag base of migration messages (application tags; one distinct tag
#: per (transfer, field) pair keeps matching unambiguous)
MIGRATE_TAG_BASE = 7_000_000

#: the migrated model fields, in wire order
_FIELDS_3D = ("U", "V", "Phi")
_FIELD_2D = "psa"
_NFIELDS = len(_FIELDS_3D) + 1


@dataclass
class MigrationReport:
    """Cost accounting of one live migration."""

    ntransfers: int = 0
    #: transfers that crossed ranks (the rest were local pastes)
    nmoves: int = 0
    moved_cells: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    #: logical seconds of the migration program (slowest rank)
    makespan: float = 0.0
    transfers: list[BlockTransfer] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"migration: {self.nmoves}/{self.ntransfers} region(s) moved "
            f"({self.moved_cells} cells, {self.p2p_messages} msg, "
            f"{self.p2p_bytes} B) in {self.makespan:.3g} s logical"
        )


def _migration_program(comm, old, new, transfers, cargo_by_rank, carrier_of):
    """Rank program of the migration world (``new.nranks`` ranks).

    ``cargo_by_rank[me]`` maps old-rank ids to the field blocks this
    rank carries at start; each transfer is sent from its carrier to its
    new owner (or pasted locally).  Plain ``send`` is buffered on this
    substrate, so the canonical all-sends-then-receives order cannot
    deadlock.
    """
    me = comm.rank
    cargo = cargo_by_rank.get(me, {})
    ext = new.extent(me)
    out3 = {
        name: np.empty(ext.shape3d, dtype=np.float64) for name in _FIELDS_3D
    }
    out2 = np.empty(ext.shape2d, dtype=np.float64)
    for idx, t in enumerate(transfers):
        src = carrier_of[t.old_owner]
        if src != me:
            continue
        block = cargo[t.old_owner]
        oext = old.extent(t.old_owner)
        rel3 = t.region.local3d(oext)
        rel2 = t.region.local2d(oext)
        if t.new_owner == me:
            for name in _FIELDS_3D:
                out3[name][t.region.local3d(ext)] = block[name][rel3]
            out2[t.region.local2d(ext)] = block[_FIELD_2D][rel2]
            continue
        base = MIGRATE_TAG_BASE + idx * _NFIELDS
        for fi, name in enumerate(_FIELDS_3D):
            comm.send(
                t.new_owner,
                np.ascontiguousarray(block[name][rel3]),
                tag=base + fi,
            )
        comm.send(
            t.new_owner,
            np.ascontiguousarray(block[_FIELD_2D][rel2]),
            tag=base + len(_FIELDS_3D),
        )
    for idx, t in enumerate(transfers):
        if t.new_owner != me:
            continue
        src = carrier_of[t.old_owner]
        if src == me:
            continue
        base = MIGRATE_TAG_BASE + idx * _NFIELDS
        for fi, name in enumerate(_FIELDS_3D):
            out3[name][t.region.local3d(ext)] = comm.recv(src, tag=base + fi)
        out2[t.region.local2d(ext)] = comm.recv(
            src, tag=base + len(_FIELDS_3D)
        )
    return {**out3, _FIELD_2D: out2}


def migrate_state(
    state: ModelState,
    old: Decomposition,
    new: Decomposition,
    carrier_of: dict[int, int],
    *,
    machine: MachineModel | None = None,
    timeout: float = 60.0,
) -> tuple[ModelState, MigrationReport]:
    """Move ``state`` from ``old``'s layout to ``new``'s over the transport.

    ``carrier_of`` maps every *old* rank to the *new* rank that holds its
    block's bytes when the migration starts (survivor, buddy-mirror host,
    or rank 0 after a disk rollback).  Returns the reassembled global
    state (bit-identical to ``state`` — the caller should verify and use
    it) plus the :class:`MigrationReport` whose logical makespan feeds
    the MTTR accounting.
    """
    missing = [o for o in range(old.nranks) if o not in carrier_of]
    if missing:
        raise ValueError(f"no carrier for old rank(s) {missing}")
    bad = sorted(set(carrier_of.values()) - set(range(new.nranks)))
    if bad:
        raise ValueError(f"carriers {bad} outside the new world of {new.nranks}")
    transfers = plan_migration(old, new)
    # carve the carried cargo out of the restored global state, keyed by
    # the old rank whose block it is
    cargo_by_rank: dict[int, dict[int, dict[str, np.ndarray]]] = {}
    for o in range(old.nranks):
        host = carrier_of[o]
        cargo_by_rank.setdefault(host, {})[o] = {
            "U": old.scatter(state.U, o),
            "V": old.scatter(state.V, o),
            "Phi": old.scatter(state.Phi, o),
            _FIELD_2D: old.scatter(state.psa, o),
        }
    result = run_spmd(
        new.nranks,
        _migration_program,
        old,
        new,
        transfers,
        cargo_by_rank,
        carrier_of,
        machine=machine,
        timeout=timeout,
    )
    blocks = result.results
    migrated = ModelState(
        U=new.gather([b["U"] for b in blocks]),
        V=new.gather([b["V"] for b in blocks]),
        Phi=new.gather([b["Phi"] for b in blocks]),
        psa=new.gather([b[_FIELD_2D] for b in blocks]),
    )
    moves = [t for t in transfers if carrier_of[t.old_owner] != t.new_owner]
    report = MigrationReport(
        ntransfers=len(transfers),
        nmoves=len(moves),
        moved_cells=sum(t.region.cells for t in moves),
        p2p_messages=sum(s.p2p_messages_sent for s in result.stats),
        p2p_bytes=sum(s.p2p_bytes_sent for s in result.stats),
        makespan=result.makespan,
        transfers=transfers,
    )
    return migrated, report
