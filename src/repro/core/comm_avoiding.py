"""The communication-avoiding algorithm (Algorithm 2, Sec. 4.4).

Runs only on the Y-Z decomposition (``p_x = 1``), which makes the Fourier
filter communication-free (Sec. 4.2.1).  Per model step it performs
exactly **two** halo exchanges instead of the original thirteen:

1. the *adaptation exchange* — wide halos (``3M + 2`` rows in y, ``3M``
   levels in z, Figure 4) carrying the pre-smoothing state ``xi^(k-1)``
   plus the stale ``C`` bundle, fused with the smoothing data (Sec.
   4.3.2) and overlapped with the former smoothing and the inner-block
   part of the first internal update (Sec. 4.3.1);
2. the *advection exchange* — 3-wide halos for the three advection
   updates, also overlapped with the inner-block update.

All ``3M`` adaptation updates then run on block + (shrinking) halo with
redundant computation and zero additional point-to-point communication;
the approximate nonlinear iteration (Sec. 4.2.2) reuses the cached ``C``
bundle for the first internal update of every iteration, so only ``2M``
z-collectives happen per step instead of ``3M``.

Deviation noted in DESIGN.md: the stale ``C`` bundle must be valid on the
fresh halo rows for the first internal update; the exchange therefore
carries the bundle's y-slabs (``phi'``, ``PW``, column sum, ``P``) in
addition to the state — engineering the paper glosses over, covered by
its "a little more communication volume" remark.
"""
from __future__ import annotations

import numpy as np

from repro.core.distributed import (
    DistributedConfig,
    PHASE_STENCIL,
    RankContext,
    RankResult,
)
from repro.core.halo import PackPool
from repro.core.workspace import StateRing
from repro.obs.spans import span
from repro.operators.smoothing import (
    OFFSETS_L,
    OFFSETS_L_PRIME,
    OFFSETS_R,
    OFFSETS_R_PRIME,
    smoothers_for,
)
from repro.operators.vertical import VerticalDiagnostics
from repro.simmpi.comm import SimComm
from repro.state.variables import ModelState

#: tag base of the stale-bundle y-messages (distinct from halo tags)
TAG_BUNDLE = 30_000

#: strip width of the former/later smoothing split (the smoother radius)
STRIP = 2


class CommAvoidingRank(RankContext):
    """Per-rank state of the communication-avoiding core."""

    def __init__(self, comm: SimComm, cfg: DistributedConfig) -> None:
        decomp = cfg.decomp
        if decomp.kind not in ("yz", "serial"):
            raise ValueError("Algorithm 2 requires the Y-Z decomposition")
        M = cfg.params.m_iterations
        gy = 3 * M + STRIP
        gz = 3 * M if decomp.pz > 1 else 0
        super().__init__(comm, cfg, gy=gy, gz=gz, gx=0)
        self.halo_updates = 3 * M  # usable y/z halo after smoothing
        self.smoothers = smoothers_for(cfg.params)
        self.vd_stale: VerticalDiagnostics | None = None
        # y-neighbour ranks for the bundle messages
        self.north_nb = decomp.neighbour(comm.rank, 0, -1, 0)
        self.south_nb = decomp.neighbour(comm.rank, 0, +1, 0)
        self._bundle_pool = PackPool(comm)

    # ------------------------------------------------------------------
    # stale-bundle exchange (y-direction only; bundles are z-complete)
    # ------------------------------------------------------------------
    def _bundle_fields(self, vd: VerticalDiagnostics) -> list[np.ndarray]:
        return [vd.phi_prime, vd.pw_iface, vd.column_sum, vd.p_fac]

    def start_bundle_exchange(self, vd: VerticalDiagnostics, wy: int):
        """Post the y-slab sends/recvs of the stale ``C`` bundle."""
        gy = self.geom.gy
        ny_i = self.extent.ny
        sends, recvs = [], []
        self.comm.set_phase(PHASE_STENCIL)
        for nb, side in ((self.north_nb, "n"), (self.south_nb, "s")):
            if nb is None or nb == self.comm.rank:
                continue
            for fi, arr in enumerate(self._bundle_fields(vd)):
                tag = TAG_BUNDLE + (0 if side == "n" else 100) + fi
                recvs.append((self.comm.irecv(nb, tag=tag), fi, side))
        for nb, side, tag_off in (
            (self.north_nb, "n", 100),  # my north slab arrives as their south
            (self.south_nb, "s", 0),
        ):
            if nb is None or nb == self.comm.rank:
                continue
            for fi, arr in enumerate(self._bundle_fields(vd)):
                rows = (
                    slice(gy, gy + wy)
                    if side == "n"
                    else slice(gy + ny_i - wy, gy + ny_i)
                )
                slab = arr[..., rows, :]
                payload = self._bundle_pool.pack((side, fi) + slab.shape, slab)
                sends.append(
                    self.comm.isend(nb, payload, tag=TAG_BUNDLE + tag_off + fi)
                )
        self.comm.set_phase(None)
        return sends, recvs

    def finish_bundle_exchange(self, vd: VerticalDiagnostics, wy: int, pending) -> None:
        """Unpack bundle slabs and rebuild the derived interface fields."""
        sends, recvs = pending
        gy = self.geom.gy
        ny_i = self.extent.ny
        self.comm.set_phase(PHASE_STENCIL)
        fields = self._bundle_fields(vd)
        for req, fi, side in recvs:
            payload = req.wait()
            rows = (
                slice(gy - wy, gy) if side == "n"
                else slice(gy + ny_i, gy + ny_i + wy)
            )
            target = fields[fi][..., rows, :]
            fields[fi][..., rows, :] = payload.reshape(target.shape)
        for req in sends:
            req.wait()
        self.comm.set_phase(None)
        # rebuild w / sigma-dot on the refreshed rows (cheap: whole array)
        if self.ws is not None:
            t2 = self.ws.take(vd.p_fac.shape)
            np.divide(vd.pw_iface, vd.p_fac[None], out=vd.w_iface)
            np.power(vd.p_fac, 2, out=t2)
            np.divide(vd.pw_iface, t2[None], out=vd.sdot_iface)
            self.ws.give(t2)
        else:
            vd.w_iface[...] = vd.pw_iface / vd.p_fac[None]
            vd.sdot_iface[...] = vd.pw_iface / (vd.p_fac[None] ** 2)

    # ------------------------------------------------------------------
    # the fused smoothing (Sec. 4.3.2)
    # ------------------------------------------------------------------
    def former_smoothing(
        self, pre: ModelState, out: ModelState | None = None
    ) -> ModelState:
        """``S1``: full smoothing away from rank-boundary strips, partial
        (locally computable offsets) on the strips.

        Pole-side edges have valid mirror ghosts, so they are smoothed
        fully; only true rank boundaries need the split.  With a workspace
        an ``out`` state may be supplied; the full smoothing then runs in
        place in pooled buffers (bit-identical).
        """
        g = self.geom
        gy = g.gy
        ny_i = self.extent.ny
        self.charge(self.cfg.weights.smoothing, self._wpoints)
        if out is not None and self.ws is not None:
            for name in ("U", "V", "Phi", "psa"):
                self.smoothers[name].full_into(
                    getattr(pre, name), getattr(out, name), self.ws
                )
        else:
            out = ModelState(
                U=self.smoothers["U"].full(pre.U),
                V=self.smoothers["V"].full(pre.V),
                Phi=self.smoothers["Phi"].full(pre.Phi),
                psa=self.smoothers["psa"].full(pre.psa),
            )
        north_strip = not g.touches_north
        south_strip = not g.touches_south
        for name in ("U", "V", "Phi", "psa"):
            sm = self.smoothers[name]
            if not sm.has_y_stencil:
                continue
            a_pre = getattr(pre, name)
            a_out = getattr(out, name)
            if north_strip:
                rows = slice(gy, gy + STRIP)
                a_out[..., rows, :] = sm.partial(a_pre, OFFSETS_R)[..., rows, :]
            if south_strip:
                rows = slice(gy + ny_i - STRIP, gy + ny_i)
                a_out[..., rows, :] = sm.partial(a_pre, OFFSETS_L)[..., rows, :]
        return out

    def later_smoothing(self, smoothed: ModelState, pre: ModelState) -> None:
        """``S2``: complete the strips with the deferred offsets and smooth
        the freshly received halo regions, in place on ``smoothed``."""
        g = self.geom
        gy, gz = g.gy, g.gz
        ny_i, nz_i = self.extent.ny, self.extent.nz
        # deferred offsets on the strips
        self.charge(
            self.cfg.weights.smoothing,
            (g.shape3d[0] * g.shape3d[2])
            * (2 * STRIP + 2 * (gy - STRIP) + 2 * gz),
        )
        north_strip = not g.touches_north
        south_strip = not g.touches_south
        for name in ("U", "V", "Phi", "psa"):
            sm = self.smoothers[name]
            a_pre = getattr(pre, name)
            a_out = getattr(smoothed, name)
            if sm.has_y_stencil:
                if north_strip:
                    rows = slice(gy, gy + STRIP)
                    a_out[..., rows, :] += sm.partial(a_pre, OFFSETS_R_PRIME)[
                        ..., rows, :
                    ]
                if south_strip:
                    rows = slice(gy + ny_i - STRIP, gy + ny_i)
                    a_out[..., rows, :] += sm.partial(a_pre, OFFSETS_L_PRIME)[
                        ..., rows, :
                    ]
            # full smoothing of the received halo rows / levels
            if self.ws is not None:
                full = self.ws.take(a_pre.shape)
                sm.full_into(a_pre, full, self.ws)
            else:
                full = sm.full(a_pre)
            if north_strip:
                a_out[..., :gy, :] = full[..., :gy, :]
            if south_strip:
                a_out[..., gy + ny_i:, :] = full[..., gy + ny_i:, :]
            if a_pre.ndim == 3 and gz > 0:
                if not g.touches_top:
                    a_out[:gz] = full[:gz]
                if not g.touches_bottom:
                    a_out[nz_i + gz:] = full[nz_i + gz:]
            if self.ws is not None:
                self.ws.give(full)

    # ------------------------------------------------------------------
    # overlap helper: charge the inner-block compute before the wait
    # ------------------------------------------------------------------
    def charge_inner(self, weight: float) -> None:
        """Charge the inner-part update (Sec. 4.3.1 overlap): the region
        whose stencils need no halo data."""
        nz_w, ny_w, nx_w = self.geom.shape3d
        inner_y = max(0, self.extent.ny - 2)
        inner_z = max(1, self.extent.nz - (2 if self.geom.gz else 0))
        self.charge(weight, inner_z * inner_y * nx_w)

    def charge_outer(self, weight: float) -> None:
        """Charge the remaining (outer + halo) part of a full-array update."""
        nz_w, ny_w, nx_w = self.geom.shape3d
        inner_y = max(0, self.extent.ny - 2)
        inner_z = max(1, self.extent.nz - (2 if self.geom.gz else 0))
        self.charge(weight, nz_w * ny_w * nx_w - inner_z * inner_y * nx_w)


def _adaptation_update(
    ctx: CommAvoidingRank,
    psi: ModelState,
    base: ModelState,
    vd: VerticalDiagnostics,
    dt1: float,
    out: ModelState | None = None,
) -> ModelState:
    """One internal update ``base + dt1 * F(C + A)(psi)`` on block+halo."""
    tend = ctx.engine.adaptation(psi, vd)
    ctx.engine.apply_filter(tend)
    if out is not None:
        out = base.axpy_into(dt1, tend, out)
    else:
        out = base.axpy(dt1, tend)
    ctx.engine.fill_physical_ghosts(out)
    return out


def ca_rank_program(
    comm: SimComm, cfg: DistributedConfig, initial: ModelState
) -> RankResult:
    """Algorithm 2 on one rank.  Same contract as
    :func:`repro.core.distributed.original_rank_program`."""
    if (
        cfg.executor == "taskgraph"
        and cfg.use_workspace
        and cfg.decomp.pz == 1
    ):
        from repro.core.taskgraph.ca import ca_rank_program_taskgraph

        return ca_rank_program_taskgraph(comm, cfg, initial)
    ctx = CommAvoidingRank(comm, cfg)
    params = cfg.params
    dt1, dt2, M = params.dt_adaptation, params.dt_advection, params.m_iterations
    W = cfg.weights
    state_fields = lambda s: [s.U, s.V, s.Phi, s.psa]  # noqa: E731

    # xi_pre is the *unsmoothed* advected state zeta_3 of the previous step
    xi_pre = ctx.pad_local(initial)
    ctx.fill_bc(xi_pre)
    first_step = True

    ring = StateRing(ctx.ws, ctx.geom.shape3d) if ctx.ws is not None else None

    def scr(*live: ModelState) -> ModelState | None:
        return ring.scratch(*live) if ring is not None else None

    for _step in range(cfg.nsteps):
        with span("step", "step"):
            # ---- fused smoothing + adaptation exchange (1st of 2 per step) ----
            # Algorithm 2 lines 4-12: the smoothing belongs to the *previous*
            # step and is skipped on the first one (k = 1).
            if ring is not None:
                pre = xi_pre.copy_into(ring.scratch(xi_pre))
            else:
                pre = xi_pre.copy()
            smoothed = (
                None if first_step else ctx.former_smoothing(pre, out=scr(pre))
            )

            with span("halo-exchange", "comm"):
                comm.set_phase(PHASE_STENCIL)
                pending = ctx.halo.start(state_fields(pre))
                comm.set_phase(None)
                bundle_pending = None
                if ctx.vd_stale is not None:
                    bundle_pending = ctx.start_bundle_exchange(
                        ctx.vd_stale, wy=ctx.geom.gy
                    )

                # overlap: the inner-block part of the first internal update is
                # computed while the exchange is in flight (Sec. 4.3.1)
                overlap = cfg.ca_overlap
                if overlap:
                    ctx.charge_inner(W.adaptation)

                comm.set_phase(PHASE_STENCIL)
                ctx.halo.finish(pending, state_fields(pre))
                comm.set_phase(None)
                ctx.exchanges += 1
                if bundle_pending is not None:
                    ctx.finish_bundle_exchange(
                        ctx.vd_stale, ctx.geom.gy, bundle_pending
                    )
                ctx.fill_bc(pre)

            if smoothed is None:
                psi = pre
            else:
                ctx.later_smoothing(smoothed, pre)
                ctx.fill_bc(smoothed)
                psi = smoothed
                if cfg.forcing is not None:
                    # forcing of the *previous* step, applied after its smoothing
                    cfg.forcing(psi, ctx.geom, dt2)
                    ctx.fill_bc(psi)

            # ---- M nonlinear iterations, 3 internal updates each ----
            for i in range(M):
                if cfg.ca_approximate_c and ctx.vd_stale is not None:
                    vd1 = ctx.vd_stale  # C(psi^{i-2}) + O(dt1): no collective
                else:
                    vd1 = ctx.vertical_fresh(psi)  # fresh (cold start / ablation)
                    ctx.vd_stale = vd1
                if i == 0 and overlap:
                    # the overlapped inner part was charged before the wait;
                    # charge only the remainder here
                    ctx.charge_outer(W.adaptation)
                else:
                    ctx.charge(W.adaptation, ctx._wpoints)
                eta1 = _adaptation_update(ctx, psi, psi, vd1, dt1, scr(psi))

                vd2 = ctx.vertical_fresh(eta1)
                ctx.vd_stale = vd2
                ctx.charge(W.adaptation, ctx._wpoints)
                eta2 = _adaptation_update(
                    ctx, eta1, psi, vd2, dt1, scr(psi, eta1)
                )

                if ring is not None:
                    mid = ModelState.midpoint_into(
                        psi, eta2, ring.scratch(psi, eta2)
                    )
                else:
                    mid = ModelState.midpoint(psi, eta2)
                vd3 = ctx.vertical_fresh(mid)
                ctx.vd_stale = vd3
                ctx.charge(W.adaptation, ctx._wpoints)
                psi = _adaptation_update(ctx, mid, psi, vd3, dt1, scr(psi, mid))
                ctx.charge(W.update, 3 * ctx._wpoints)

            vd_frozen = ctx.vd_stale

            # ---- advection exchange (2nd of 2 per step) ----
            with span("halo-exchange", "comm"):
                comm.set_phase(PHASE_STENCIL)
                pending = ctx.halo.start(
                    state_fields(psi), wy=3, wz=3 if ctx.geom.gz else None
                )
                comm.set_phase(None)
                bundle_pending = ctx.start_bundle_exchange(vd_frozen, wy=3)

                if overlap:  # overlap with the first zeta update
                    ctx.charge_inner(W.advection)

                comm.set_phase(PHASE_STENCIL)
                ctx.halo.finish(pending, state_fields(psi))
                comm.set_phase(None)
                ctx.exchanges += 1
                ctx.finish_bundle_exchange(vd_frozen, 3, bundle_pending)
                ctx.fill_bc(psi)

            if overlap:
                ctx.charge_outer(W.advection)
            else:
                ctx.charge(W.advection, ctx._wpoints)
            tend = ctx.engine.apply_filter(ctx.engine.advection(psi, vd_frozen))
            zeta1 = (
                psi.axpy_into(dt2, tend, ring.scratch(psi))
                if ring is not None else psi.axpy(dt2, tend)
            )
            ctx.engine.fill_physical_ghosts(zeta1)

            ctx.charge(W.advection, ctx._wpoints)
            tend = ctx.engine.apply_filter(ctx.engine.advection(zeta1, vd_frozen))
            zeta2 = (
                psi.axpy_into(dt2, tend, ring.scratch(psi, zeta1))
                if ring is not None else psi.axpy(dt2, tend)
            )
            ctx.engine.fill_physical_ghosts(zeta2)

            if ring is not None:
                mid = ModelState.midpoint_into(psi, zeta2, ring.scratch(psi, zeta2))
            else:
                mid = ModelState.midpoint(psi, zeta2)
            ctx.charge(W.advection, ctx._wpoints)
            tend = ctx.engine.apply_filter(ctx.engine.advection(mid, vd_frozen))
            xi_pre = (
                psi.axpy_into(dt2, tend, ring.scratch(psi, mid))
                if ring is not None else psi.axpy(dt2, tend)
            )
            ctx.engine.fill_physical_ghosts(xi_pre)
            ctx.charge(W.update, 3 * ctx._wpoints)
            first_step = False
        ctx.record_telemetry(_step + 1, xi_pre)

    # ---- final smoothing (Algorithm 2 line 30): one extra exchange ----
    # (span name distinct from the per-step pair so trace-based accounting
    # of "halo-exchange" spans per step reads exactly 2)
    with span("smoothing-exchange", "comm"):
        comm.set_phase(PHASE_STENCIL)
        ctx.halo.exchange(
            state_fields(xi_pre), wy=STRIP,
            wz=min(STRIP, ctx.geom.gz) or None,
        )
        comm.set_phase(None)
        ctx.fill_bc(xi_pre)
    ctx.charge(cfg.weights.smoothing, ctx._wpoints)
    from repro.operators.smoothing import smooth_state, smooth_state_into

    if ring is not None:
        out = smooth_state_into(
            xi_pre, params, ring.scratch(xi_pre), ctx.ws, ctx.smoothers
        )
    else:
        out = smooth_state(xi_pre, params)
    ctx.fill_bc(out)
    if cfg.forcing is not None:
        cfg.forcing(out, ctx.geom, dt2)

    return RankResult(
        state=ctx.strip_local(out),
        c_calls=ctx.c_calls,
        exchanges=ctx.exchanges,
        telemetry=ctx.telemetry_partials if cfg.telemetry else None,
        ws_counters=ctx.ws_counters(),
    )
