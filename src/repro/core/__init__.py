"""Time integration: the serial reference core (Algorithm 1), the
distributed original cores under X-Y / Y-Z decompositions, and the
communication-avoiding core (Algorithm 2)."""
from repro.core.tendencies import TendencyEngine
from repro.core.integrator import SerialCore
from repro.core.distributed import DistributedConfig, original_rank_program
from repro.core.comm_avoiding import ca_rank_program
from repro.core.driver import CoreConfig, DynamicalCore, StepDiagnostics

__all__ = [
    "TendencyEngine",
    "SerialCore",
    "DistributedConfig",
    "original_rank_program",
    "ca_rank_program",
    "CoreConfig",
    "DynamicalCore",
    "StepDiagnostics",
]
