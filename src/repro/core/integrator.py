"""The serial reference core: Algorithm 1 and its approximate-C variant.

This is the ground truth the distributed cores are validated against.
It runs the full nonlinear time integration of Sec. 3:

* ``M`` nonlinear iterations of the adaptation process per step, each with
  3 internal updates (an RK3-like strong-stability scheme over ``dt_1``);
* one nonlinear iteration of the advection process over ``dt_2``
  (consistency of the process splitting wants ``dt_2 = M * dt_1``);
* the smoothing operator ``S`` at the end of the step.

With ``approximate_c=True`` it runs the approximate nonlinear iteration of
Sec. 4.2.2 instead: the first internal update of every iteration reuses
the *stale* ``C`` bundle cached from the previous iteration — the paper's
``C(psi^{i-2})``; the only bundles a 2-collective schedule ever has
available are ``C(eta_1)`` and ``C((psi+eta_2)/2)`` of the previous
iteration, and the latter equals ``C(psi^{i-2}) + O(dt_1)``, so that is
what is cached.  The ``c_calls`` counter lets tests assert the 3-vs-2
frequency claim directly.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.constants import DEFAULT_PARAMETERS, ModelParameters
from repro.core.tendencies import TendencyEngine
from repro.core.workspace import StateRing, Workspace
from repro.obs.spans import span, traced
from repro.grid.latlon import LatLonGrid
from repro.grid.sigma import SigmaLevels
from repro.operators.geometry import WorkingGeometry
from repro.operators.smoothing import smooth_state, smooth_state_into, smoothers_for
from repro.operators.vertical import VerticalDiagnostics
from repro.state.variables import ModelState

#: Ghost width of the serial working arrays: the smoothing radius (2)
#: dominates the unit stencil radius of the tendency terms.
SERIAL_GHOST_Y = 2

#: A forcing hook: called as ``forcing(state, geom, dt)`` after the
#: dynamics of each step, mutating the state in place (e.g. Held-Suarez).
ForcingFn = Callable[[ModelState, WorkingGeometry, float], None]


@dataclass
class SerialCore:
    """Reference implementation of the dynamical core on one rank."""

    grid: LatLonGrid
    sigma: SigmaLevels | None = None
    params: ModelParameters = DEFAULT_PARAMETERS
    approximate_c: bool = False
    forcing: ForcingFn | None = None
    #: run the pool-backed fast path (bit-identical to the allocating
    #: seed path; ``False`` keeps the original allocating implementation)
    use_workspace: bool = True
    #: kernel tier: ``"reference"`` (the oracle) or ``"fused"`` (the
    #: compiled/fused kernels of :mod:`repro.kernels`; bit-identical with
    #: per-operator fallback).  Requires ``use_workspace``.
    kernel_tier: str = "reference"
    #: fused-kernel backend: ``"auto"``, ``"c"``, ``"numba"`` or ``"numpy"``
    kernel_backend: str = "auto"

    engine: TendencyEngine = field(init=False, repr=False)
    c_calls: int = field(init=False, default=0)
    steps_taken: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.sigma is None:
            self.sigma = SigmaLevels.uniform(self.grid.nz)
        geom = WorkingGeometry.build_global(
            self.grid, self.sigma, gy=SERIAL_GHOST_Y, gz=0
        )
        self.ws = Workspace() if self.use_workspace else None
        self.kernels = None
        if self.ws is not None:
            from repro.kernels import kernel_set

            self.kernels = kernel_set(self.kernel_tier, self.kernel_backend)
        self.engine = TendencyEngine(
            geom, self.params, ws=self.ws, kernels=self.kernels
        )
        self._vd_stale: VerticalDiagnostics | None = None
        if self.ws is not None:
            self._ring = StateRing(self.ws, geom.shape3d)
            self._smoothers = smoothers_for(self.params)

    # ---- working-array padding ----------------------------------------------
    @property
    def geom(self) -> WorkingGeometry:
        return self.engine.geom

    def pad(self, state: ModelState) -> ModelState:
        """Interior (physical) state -> ghost-extended working state."""
        g = self.geom
        w = ModelState.zeros(g.shape3d)
        gy = g.gy
        for name, arr in state.fields().items():
            target = getattr(w, name)
            target[..., gy:-gy, :] = arr
        self.engine.fill_physical_ghosts(w)
        return w

    def strip(self, wstate: ModelState) -> ModelState:
        """Working state -> interior copy."""
        gy = self.geom.gy
        return ModelState(
            U=wstate.U[:, gy:-gy, :].copy(),
            V=wstate.V[:, gy:-gy, :].copy(),
            Phi=wstate.Phi[:, gy:-gy, :].copy(),
            psa=wstate.psa[gy:-gy, :].copy(),
        )

    # ---- the C operator with frequency accounting ------------------------------
    def _vertical_fresh(self, state: ModelState) -> VerticalDiagnostics:
        self.c_calls += 1
        if self.ws is not None:
            # the previously cached bundle is dead by the time a fresh C is
            # requested (verified for both the exact and approximate
            # schedules): recycle its buffers before taking new ones
            stale, self._vd_stale = self._vd_stale, None
            self.ws.give_vd(stale)
        vd = self.engine.vertical(state)
        self._vd_stale = vd
        return vd

    # ---- one nonlinear adaptation iteration --------------------------------------
    @traced("adaptation-iteration", "tendency")
    def _adaptation_iteration(self, psi: ModelState) -> ModelState:
        eng = self.engine
        dt1 = self.params.dt_adaptation

        if self.approximate_c and self._vd_stale is not None:
            vd1 = self._vd_stale  # the stale bundle: C(psi^{i-2}) + O(dt1)
        else:
            vd1 = self._vertical_fresh(psi)
        eta1 = psi.axpy(dt1, eng.apply_filter(eng.adaptation(psi, vd1)))
        eng.fill_physical_ghosts(eta1)

        vd2 = self._vertical_fresh(eta1)
        eta2 = psi.axpy(dt1, eng.apply_filter(eng.adaptation(eta1, vd2)))
        eng.fill_physical_ghosts(eta2)

        mid = ModelState.midpoint(psi, eta2)  # ghost fill is linear: no refill
        vd3 = self._vertical_fresh(mid)
        eta3 = psi.axpy(dt1, eng.apply_filter(eng.adaptation(mid, vd3)))
        eng.fill_physical_ghosts(eta3)
        return eta3

    @traced("adaptation-iteration", "tendency")
    def _adaptation_iteration_ws(self, psi: ModelState) -> ModelState:
        """Ring-buffer variant of :meth:`_adaptation_iteration`.

        Identical update sequence; the iterates rotate through the state
        ring instead of being freshly allocated (``scratch`` never returns
        a live state, so no update reads a buffer it is writing).
        """
        eng = self.engine
        ring = self._ring
        dt1 = self.params.dt_adaptation

        if self.approximate_c and self._vd_stale is not None:
            vd1 = self._vd_stale
        else:
            vd1 = self._vertical_fresh(psi)
        eta1 = psi.axpy_into(
            dt1, eng.apply_filter(eng.adaptation(psi, vd1)), ring.scratch(psi)
        )
        eng.fill_physical_ghosts(eta1)

        vd2 = self._vertical_fresh(eta1)
        eta2 = psi.axpy_into(
            dt1, eng.apply_filter(eng.adaptation(eta1, vd2)),
            ring.scratch(psi, eta1),
        )
        eng.fill_physical_ghosts(eta2)

        mid = ModelState.midpoint_into(psi, eta2, ring.scratch(psi, eta2))
        vd3 = self._vertical_fresh(mid)
        eta3 = psi.axpy_into(
            dt1, eng.apply_filter(eng.adaptation(mid, vd3)),
            ring.scratch(psi, mid),
        )
        eng.fill_physical_ghosts(eta3)
        return eta3

    def _step_ws(self, xi: ModelState) -> ModelState:
        """Ring-buffer variant of :meth:`step` (bit-identical)."""
        eng = self.engine
        ring = self._ring
        dt2 = self.params.dt_advection

        psi = xi
        for _ in range(self.params.m_iterations):
            psi = self._adaptation_iteration_ws(psi)

        vd = self._vd_stale
        if vd is None:  # pragma: no cover - adaptation always ran
            vd = self._vertical_fresh(psi)
        zeta1 = psi.axpy_into(
            dt2, eng.apply_filter(eng.advection(psi, vd)), ring.scratch(psi)
        )
        eng.fill_physical_ghosts(zeta1)
        zeta2 = psi.axpy_into(
            dt2, eng.apply_filter(eng.advection(zeta1, vd)),
            ring.scratch(psi, zeta1),
        )
        eng.fill_physical_ghosts(zeta2)
        mid = ModelState.midpoint_into(psi, zeta2, ring.scratch(psi, zeta2))
        zeta3 = psi.axpy_into(
            dt2, eng.apply_filter(eng.advection(mid, vd)),
            ring.scratch(psi, mid),
        )
        eng.fill_physical_ghosts(zeta3)

        out = ring.scratch(zeta3)
        smoothed = (
            self.kernels.smooth_state_into(
                zeta3, self.params, out, self.ws, self._smoothers
            )
            if self.kernels is not None
            else None
        )
        if smoothed is None:
            smooth_state_into(
                zeta3, self.params, out, self.ws, self._smoothers
            )
        eng.fill_physical_ghosts(out)

        if self.forcing is not None:
            self.forcing(out, self.geom, dt2)
            eng.fill_physical_ghosts(out)

        self.steps_taken += 1
        return out

    # ---- one full model step ----------------------------------------------------
    @traced("step", "step")
    def step(self, xi: ModelState) -> ModelState:
        """Advance one step of Algorithm 1 on a *working* state."""
        if self.ws is not None:
            return self._step_ws(xi)
        eng = self.engine
        dt2 = self.params.dt_advection

        psi = xi
        for _ in range(self.params.m_iterations):
            psi = self._adaptation_iteration(psi)

        # advection with the sigma-dot bundle frozen from the adaptation
        vd = self._vd_stale
        if vd is None:  # pragma: no cover - adaptation always ran
            vd = self._vertical_fresh(psi)
        zeta1 = psi.axpy(dt2, eng.apply_filter(eng.advection(psi, vd)))
        eng.fill_physical_ghosts(zeta1)
        zeta2 = psi.axpy(dt2, eng.apply_filter(eng.advection(zeta1, vd)))
        eng.fill_physical_ghosts(zeta2)
        mid = ModelState.midpoint(psi, zeta2)
        zeta3 = psi.axpy(dt2, eng.apply_filter(eng.advection(mid, vd)))
        eng.fill_physical_ghosts(zeta3)

        out = smooth_state(zeta3, self.params)
        eng.fill_physical_ghosts(out)

        if self.forcing is not None:
            self.forcing(out, self.geom, dt2)
            eng.fill_physical_ghosts(out)

        self.steps_taken += 1
        return out

    # ---- multi-step driver --------------------------------------------------------
    def run(
        self,
        state0: ModelState,
        nsteps: int,
        monitor: Callable[[int, ModelState], None] | None = None,
    ) -> ModelState:
        """Run ``nsteps`` from the interior state ``state0``; returns the
        interior final state.  ``monitor(step, interior_state)`` is called
        after every step if given."""
        w = self.pad(state0)
        for k in range(nsteps):
            w = self.step(w)
            if not np.isfinite(w.U).all():
                raise FloatingPointError(f"core blew up at step {k + 1}")
            if monitor is not None:
                monitor(k + 1, self.strip(w))
        return self.strip(w)
