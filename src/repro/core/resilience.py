"""Self-healing resilience for :class:`~repro.core.driver.DynamicalCore`.

Long climate integrations survive faults through an *escalation ladder*:
each layer absorbs what it can locally and hands the rest up, so the
expensive global recoveries run only when the cheap local ones fail:

1. **message retransmit** (:mod:`repro.simmpi.transport`, on by default
   here) — dropped or corrupted point-to-point payloads are retried at
   the message level inside the running chunk; the application never
   notices;
2. **buddy restore** (:mod:`repro.core.buddy`) — each rank's block state
   is mirrored in memory on a buddy rank at every chunk boundary, so a
   rank crash (or any other chunk failure) rewinds *disklessly* by
   reassembling the boundary state from surviving copies;
3. **elastic rank-loss recovery** (``rank_loss_policy``, default off) —
   when the failure detector (:mod:`repro.simmpi.membership`) declares a
   loss *permanent* (node death, killed OS process, flapping crasher),
   the run does not retry at the old membership: the boundary state is
   restored buddy-first, the communicator is rebuilt — a hot **spare**
   adopts the lost rank id, or the world **shrinks** to the survivors
   and the grid is re-decomposed — and blocks migrate live to their new
   owners (:mod:`repro.core.migrate`) before the chunk re-runs;
4. **disk rollback** — the seed behavior, now the escalation path: when
   the buddy snapshot cannot serve (double fault: a block's owner and
   its buddy both lost), the last ``ckpt_XXXXXXXX.npz`` is reloaded —
   elastic recoveries escalate here too, feeding the migration from a
   rank-0 scatter of the reloaded checkpoint;
5. **abort** — ``max_restarts`` recoveries of any kind exhaust into
   :class:`ResilienceExhausted`.

The recovery loop divides the run into chunks of ``checkpoint_interval``
steps; each chunk executes through ``DynamicalCore._run_once``.  A chunk
that raises a *retryable* failure — ``RankCrash``, ``CorruptedMessage``,
``MessageLost``, ``DeadlockError``, or any ``SpmdError`` carrying one —
triggers a buddy-first rewind and a retry; a chunk that completes is
vetted before commit:

* the **blowup guard** (``blowup_policy``) rejects non-finite or
  exploding fields, using the staged per-step telemetry to catch
  mid-chunk excursions;
* the **SDC acceptance gate** (``sdc_mass_tol`` / ``sdc_energy_tol``)
  compares the chunk-end mass/energy against the last accepted chunk
  boundary and rejects drifts beyond the tolerance (absolute for the
  near-zero mass proxy, fractional for energy) — an ABFT-style check
  that catches silent corruption checksums cannot see.

Committed chunks refresh the buddy mirror and append a disk checkpoint.

Determinism: because the simulated cluster advances logical clocks only,
a retry replays the chunk bit-identically when no new faults fire — the
property tests assert crash-interrupted runs end byte-equal to
fault-free ones, whether the rewind came from buddy memory or disk.
"""
from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.buddy import BuddyLost, BuddyStore, buddy_of
from repro.core.driver import StepDiagnostics
from repro.core.migrate import migrate_state
from repro.grid.decomposition import redecompose
from repro.grid.sigma import SigmaLevels
from repro.obs import flightrec
from repro.obs.spans import span
from repro.obs.telemetry import TelemetryRecord, record_for_state
from repro.simmpi.faults import (
    CorruptedMessage,
    FaultInjector,
    FaultPlan,
    RankCrash,
)
from repro.simmpi.launcher import SpmdError
from repro.simmpi.membership import (
    FailureDetector,
    MembershipConfig,
    MembershipView,
    RankLossUnrecoverable,
    evidence_from_failure,
)
from repro.simmpi.network import DeadlockError, MessageLost
from repro.simmpi.transport import TransportConfig
from repro.state.io import (
    checkpoint_path,
    latest_verified_checkpoint,
    load_state,
    save_state,
)
from repro.state.variables import ModelState

logger = logging.getLogger(__name__)


class BlowupError(RuntimeError):
    """The model produced non-finite or exploding fields (policy: abort)."""


class ResilienceExhausted(RuntimeError):
    """More recoveries were needed than ``max_restarts`` allows."""


@dataclass
class ResilienceConfig:
    """Knobs of the resilient driver.

    Parameters
    ----------
    checkpoint_dir:
        Directory for ``ckpt_XXXXXXXX.npz`` files (created if missing).
    checkpoint_interval:
        Model steps per chunk; buddy mirrors refresh and a checkpoint is
        written after every committed chunk.
    max_restarts:
        Total recoveries (of any kind) before giving up.
    backoff_base / backoff_factor / backoff_max:
        Settle time before retry ``k`` is
        ``min(backoff_base * backoff_factor**(k-1), backoff_max)``
        seconds, charged to the *logical* makespan (the simulated
        cluster must not block real wall-clock); the default base of 0
        disables it.
    blowup_policy:
        ``"abort"`` or ``"rollback"`` — what to do when a chunk completes
        with non-finite fields or ``max_abs() > blowup_threshold``.
    blowup_threshold:
        Stability bound on the committed state's max absolute value.
    verify_halo_checksums:
        Payload checksums on every simulated message (default **on**: a
        resilient run that cannot see corruption cannot heal it).  With
        the reliable transport armed, a checksum failure is retransmitted
        in place; set ``False`` to opt out and let silent corruption fall
        through to the blowup/SDC gates.
    transport:
        Reliable-transport policy injected into every chunk (default: a
        stock :class:`~repro.simmpi.transport.TransportConfig`, i.e.
        message-level retransmit on).  ``None`` models the raw seed
        network, making every drop/corruption escalate to a rollback.
    buddy_checkpoints:
        Keep the diskless buddy mirror (default on; it only engages on
        distributed runs with at least two ranks).
    sdc_mass_tol / sdc_energy_tol:
        SDC acceptance gates, measured against the last accepted chunk
        boundary: maximum *absolute* drift of the telemetry mass (the
        mass proxy is a conserved perturbation mean that hovers near
        zero, so a fractional test would be noise) and maximum
        *fractional* drift of the total energy across one chunk.
        ``None`` (default) disables a gate.
    faults:
        Optional :class:`FaultPlan`/:class:`FaultInjector` injected into
        every chunk.  A plan is converted to ONE injector up front, so
        one-shot crash specs stay consumed across restarts (the "failed
        node got replaced" model) and the retry can succeed.
    spmd_timeout:
        Override for the per-chunk deadlock timeout; ``None`` defers to
        ``CoreConfig.timeout`` / ``default_spmd_timeout``.
    resume:
        Start from the newest *verified* checkpoint already in
        ``checkpoint_dir`` instead of ``state0``
        (restart-after-process-death).  Checkpoints failing their
        checksum sidecar — e.g. torn by a crash mid-write — are skipped,
        so the resume falls back to the previous good checkpoint.
    on_chunk:
        Optional ``on_chunk(step, nsteps)`` callback invoked after every
        *committed* chunk (``step`` is the new committed step count).
        The job runner of :mod:`repro.serve` uses it as a per-job
        progress heartbeat; exceptions propagate (they abort the run).
    rank_loss_policy:
        What a *permanent* rank loss (node death, killed OS process, or
        a flapping rank escalated by the failure detector) recovers to:
        ``"abort"`` (default — the loss is fatal), ``"spare"`` (a rank
        from the hot-spare pool adopts the lost rank id; falls back to
        shrink when the pool is dry), or ``"shrink"`` (the communicator
        is rebuilt over the survivors and the grid re-decomposed onto
        them).  Either elastic tier sits between the buddy restore and
        the disk rollback: the chunk-boundary state is recovered
        buddy-first (disk on a double fault), then the membership is
        rebuilt and blocks migrate live to their new owners.
    spare_ranks:
        Size of the pre-forked hot-spare pool the ``"spare"`` policy
        draws from.
    membership:
        Failure-detector knobs (:class:`~repro.simmpi.membership.
        MembershipConfig`); ``None`` uses the stock configuration.
    """

    checkpoint_dir: str | Path
    checkpoint_interval: int = 1
    max_restarts: int = 8
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    blowup_policy: str = "rollback"
    blowup_threshold: float = 1e8
    verify_halo_checksums: bool = True
    transport: TransportConfig | None = field(default_factory=TransportConfig)
    buddy_checkpoints: bool = True
    sdc_mass_tol: float | None = None
    sdc_energy_tol: float | None = None
    faults: FaultPlan | FaultInjector | None = None
    spmd_timeout: float | None = None
    resume: bool = False
    on_chunk: "Callable[[int, int], None] | None" = None
    rank_loss_policy: str = "abort"
    spare_ranks: int = 0
    membership: MembershipConfig | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.rank_loss_policy not in ("abort", "spare", "shrink"):
            raise ValueError(
                f"rank_loss_policy must be 'abort', 'spare' or 'shrink', "
                f"got {self.rank_loss_policy!r}"
            )
        if self.spare_ranks < 0:
            raise ValueError("spare_ranks must be >= 0")
        if self.blowup_policy not in ("abort", "rollback"):
            raise ValueError(
                f"blowup_policy must be 'abort' or 'rollback', "
                f"got {self.blowup_policy!r}"
            )
        for name in ("sdc_mass_tol", "sdc_energy_tol"):
            tol = getattr(self, name)
            if tol is not None and tol <= 0:
                raise ValueError(f"{name} must be positive (or None)")


@dataclass(frozen=True)
class RestartRecord:
    """One recovery event of the resilient driver."""

    step: int          # model step the run was rewound to
    kind: str          # "crash" | "corruption" | "loss" | "deadlock" | "blowup" | "sdc" | "rank-loss"
    attempt: int       # retry count for the failing chunk (1-based)
    detail: str = ""
    source: str = "disk"   # where the rewound state came from: "buddy" | "disk"


@dataclass(frozen=True)
class RankLossRecord:
    """One elastic recovery from a permanent rank loss."""

    step: int                 # chunk boundary the run was rewound to
    lost: tuple[int, ...]     # rank ids declared permanently lost
    policy: str               # rebuild kind that ran: "spare" | "shrink"
    epoch: int                # membership epoch after the rebuild
    source: str               # boundary state source: "buddy" | "disk"
    mttr: float               # logical seconds: detect + consensus + migrate
    new_size: int             # communicator size after the rebuild
    #: MTTR decomposition: suspicion-to-consensus, block migration
    detect_s: float = 0.0
    migrate_s: float = 0.0


@dataclass
class ResilienceReport:
    """What happened during one resilient run."""

    checkpoints: list[tuple[int, Path]] = field(default_factory=list)
    restarts: list[RestartRecord] = field(default_factory=list)
    chunk_makespans: list[float] = field(default_factory=list)
    fault_events: list = field(default_factory=list)
    resumed_from_step: int = 0
    buddy_restores: int = 0
    disk_rollbacks: int = 0
    #: logical seconds charged to the makespan by retry backoff
    backoff_time: float = 0.0
    #: elastic recoveries from permanent rank losses
    rank_losses: list[RankLossRecord] = field(default_factory=list)
    #: logical seconds charged to the makespan by rank-loss recovery
    #: (failure detection + survivor consensus + block migration)
    recovery_time: float = 0.0
    spare_adoptions: int = 0
    shrinks: int = 0
    #: membership epoch at the end of the run (0: original membership)
    membership_epoch: int = 0
    #: communicator size at the end of the run
    final_nranks: int = 0

    @property
    def nrestarts(self) -> int:
        return len(self.restarts)

    def describe(self) -> str:
        lines = [
            f"chunks committed: {len(self.chunk_makespans)}",
            f"checkpoints written: {len(self.checkpoints)}",
            f"restarts: {self.nrestarts} "
            f"({self.buddy_restores} buddy, {self.disk_rollbacks} disk)",
        ]
        for r in self.restarts:
            lines.append(
                f"  rewound to step {r.step} from {r.source} ({r.kind}, "
                f"attempt {r.attempt}): {r.detail}"
            )
        if self.rank_losses:
            lines.append(
                f"rank losses recovered: {len(self.rank_losses)} "
                f"({self.spare_adoptions} spare, {self.shrinks} shrink), "
                f"epoch {self.membership_epoch}, "
                f"MTTR total {self.recovery_time:.3g} s logical"
            )
            for rl in self.rank_losses:
                lines.append(
                    f"  epoch {rl.epoch}: lost {list(rl.lost)} at step "
                    f"{rl.step} -> {rl.policy} ({rl.source} restore, "
                    f"{rl.new_size} rank(s), MTTR {rl.mttr:.3g} s)"
                )
        if self.fault_events:
            lines.append(f"fault events observed: {len(self.fault_events)}")
        return "\n".join(lines)


def _classify(exc: BaseException) -> str | None:
    """Retryable-failure kind of one exception, or None if fatal."""
    if isinstance(exc, RankCrash):
        return "crash"
    if isinstance(exc, CorruptedMessage):
        return "corruption"
    if isinstance(exc, MessageLost):
        return "loss"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, FloatingPointError):
        return "blowup"
    return None


def classify_failure(exc: BaseException) -> str | None:
    """Map an exception from a chunk run to a recovery kind.

    For an :class:`SpmdError` the *root cause* wins: a rank crash aborts
    every surviving rank with a ``DeadlockError``, so crash outranks
    corruption outranks message loss outranks deadlock when classifying
    the per-rank exceptions.  Returns ``None`` for failures that should
    propagate (programming errors, bad configuration, ...).
    """
    if isinstance(exc, SpmdError):
        kinds = {
            k
            for k in map(_classify, exc.exceptions.values())
            if k is not None
        }
        for kind in ("crash", "corruption", "loss", "blowup", "deadlock"):
            if kind in kinds:
                return kind
        return None
    return _classify(exc)


def crashed_ranks(exc: BaseException) -> tuple[int, ...]:
    """The ranks that died of an injected crash in ``exc`` (sorted)."""
    if isinstance(exc, SpmdError):
        return tuple(sorted(
            r for r, e in exc.exceptions.items()
            if r >= 0 and isinstance(e, RankCrash)
        ))
    if isinstance(exc, RankCrash):
        return (exc.rank,)
    return ()


#: retryable exception types of one chunk run
_RETRYABLE = (
    SpmdError, RankCrash, CorruptedMessage, MessageLost, DeadlockError,
    FloatingPointError,
)


def run_resilient(
    core,
    state0: ModelState,
    nsteps: int,
    rcfg: ResilienceConfig,
) -> tuple[ModelState, StepDiagnostics, ResilienceReport]:
    """Advance ``nsteps`` with the full escalation ladder armed.

    ``core`` is a :class:`~repro.core.driver.DynamicalCore`.  Returns the
    final gathered state, diagnostics accumulated over committed chunks
    (retried chunks count only their successful attempt), and the
    :class:`ResilienceReport`.
    """
    ckdir = Path(rcfg.checkpoint_dir)
    ckdir.mkdir(parents=True, exist_ok=True)
    report = ResilienceReport()
    diag = StepDiagnostics()

    injector = (
        rcfg.faults.injector()
        if isinstance(rcfg.faults, FaultPlan)
        else rcfg.faults
    )

    decomp = core.config.resolve_decomposition()
    buddy: BuddyStore | None = None
    if rcfg.buddy_checkpoints and decomp.nranks >= 2:
        buddy = BuddyStore(decomp)

    # Elastic membership: armed only when a non-abort policy asks for it.
    detector: FailureDetector | None = None
    view: MembershipView | None = None
    if rcfg.rank_loss_policy != "abort" and decomp.nranks >= 2:
        detector = FailureDetector(
            decomp.nranks,
            rcfg.membership if rcfg.membership is not None
            else MembershipConfig(),
            core.config.machine,
        )
        view = MembershipView(decomp.nranks, spares=rcfg.spare_ranks)

    sdc_armed = (
        rcfg.sdc_mass_tol is not None or rcfg.sdc_energy_tol is not None
    )
    sigma = (
        core.config.sigma
        if core.config.sigma is not None
        else SigmaLevels.uniform(core.config.grid.nz)
    )

    logger.info(
        "resilient run: %d step(s), chunks of %d — integrity mode: "
        "payload checksums %s, reliable transport %s, buddy checkpoints "
        "%s, SDC gates %s",
        nsteps, rcfg.checkpoint_interval,
        "ON" if rcfg.verify_halo_checksums else "OFF",
        "ON" if rcfg.transport is not None and rcfg.transport.reliable
        else "OFF",
        "ON" if buddy is not None else "OFF",
        "ON" if sdc_armed else "OFF",
    )

    def _metric(name: str, help: str, **labels) -> None:
        obs = core.observation
        if obs is not None and obs.config.metrics:
            obs.registry.counter(name, help, **labels).inc()

    step = 0
    state = state0
    resumed = False
    if rcfg.resume:
        found = latest_verified_checkpoint(ckdir)
        if found is not None:
            state, step = load_state(found[0])
            report.resumed_from_step = step
            resumed = True
    if not resumed:
        path = checkpoint_path(ckdir, 0)
        save_state(path, state0, step=0)
        report.checkpoints.append((0, path))
    if buddy is not None:
        buddy.store(step, state)
    accepted: TelemetryRecord | None = (
        record_for_state(step, state, core.config.grid, sigma)
        if sdc_armed else None
    )

    restarts_left = rcfg.max_restarts
    chunk_attempt = 1

    def _recover(
        kind: str, detail: str, crashed: tuple[int, ...] = ()
    ) -> ModelState:
        nonlocal restarts_left, chunk_attempt
        core._discard_observation()
        if restarts_left <= 0:
            logger.error(
                "resilience exhausted at step %d after %d restarts "
                "(last failure: %s: %s)",
                step, rcfg.max_restarts, kind, detail,
            )
            raise ResilienceExhausted(
                f"gave up at step {step} after {rcfg.max_restarts} "
                f"restarts (last failure: {kind}: {detail})"
            )
        restarts_left -= 1
        logger.warning(
            "chunk at step %d failed (%s, attempt %d): %s — rewinding",
            step, kind, chunk_attempt, detail,
        )
        if rcfg.backoff_base > 0.0:
            # Settle time is logical: it lands in the makespan, never in
            # wall-clock (the simulated cluster must not sleep for real).
            report.backoff_time += min(
                rcfg.backoff_base * rcfg.backoff_factor ** (chunk_attempt - 1),
                rcfg.backoff_max,
            )
        chunk_attempt += 1

        restored: ModelState | None = None
        source = "disk"
        if buddy is not None:
            if crashed:
                buddy.drop_ranks(crashed)
            try:
                with span("buddy-restore", "resilience"):
                    restored = buddy.restore(step)
                source = "buddy"
                report.buddy_restores += 1
                logger.info(
                    "restored step %d from buddy memory (crashed ranks: %s)",
                    step, list(crashed) or "none",
                )
            except BuddyLost as why:
                logger.warning(
                    "buddy restore unavailable at step %d (%s) — "
                    "escalating to disk rollback", step, why,
                )
        if restored is None:
            # The escalation path: reload from disk, exactly as a process
            # restarted from scratch would.
            with span("rollback", "resilience"):
                found = latest_verified_checkpoint(ckdir)
                if found is None:
                    raise ResilienceExhausted(
                        f"no checkpoint to roll back to in {ckdir}"
                    )
                restored, saved_step = load_state(found[0])
            if saved_step != step:
                raise ResilienceExhausted(
                    f"latest checkpoint is for step {saved_step}, "
                    f"expected step {step} — checkpoint directory corrupted?"
                )
            report.disk_rollbacks += 1
            logger.info(
                "restored checkpoint for step %d from %s", step, found[0]
            )
        report.restarts.append(
            RestartRecord(step=step, kind=kind, attempt=chunk_attempt - 1,
                          detail=detail, source=source)
        )
        _metric("resilience_restarts_total", "chunk recoveries", kind=kind)
        _metric(
            "resilience_buddy_restores_total"
            if source == "buddy" else "resilience_disk_rollbacks_total",
            "diskless buddy restores"
            if source == "buddy" else "disk checkpoint rollbacks",
        )
        if buddy is not None:
            # Re-mirror: the replacement rank needs a fresh primary and
            # every surviving rank a fresh mirror of it.
            buddy.store(step, restored)
        return restored

    def _recover_rank_loss(decision, exc: BaseException) -> ModelState:
        """The elastic tier: restore, rebuild the membership, migrate.

        Runs between the buddy restore and the disk rollback of the
        ladder: the chunk-boundary state is recovered buddy-first (disk
        when the owner AND its buddy are both among the lost — the
        double fault), the communicator is rebuilt per the policy, and
        every block migrates live to its owner under the new layout.
        """
        nonlocal restarts_left, chunk_attempt, decomp, buddy
        core._discard_observation()
        lost = decision.lost
        old_n = decomp.nranks
        if restarts_left <= 0:
            raise ResilienceExhausted(
                f"gave up at step {step} after {rcfg.max_restarts} "
                f"restarts (last failure: rank-loss: ranks {list(lost)} "
                f"permanently lost)"
            )
        restarts_left -= 1
        chunk_attempt += 1
        logger.warning(
            "permanent loss of rank(s) %s at step %d (epoch %d, policy "
            "%s) — rebuilding", list(lost), step, decision.epoch,
            rcfg.rank_loss_policy,
        )

        # 1. Recover the chunk-boundary state: buddy mirrors first, the
        # disk checkpoint when the loss took a block AND its mirror.
        restored: ModelState | None = None
        source = "disk"
        if buddy is not None:
            buddy.drop_ranks(lost)
            try:
                with span("buddy-restore", "resilience"):
                    restored = buddy.restore(step)
                source = "buddy"
                report.buddy_restores += 1
            except BuddyLost as why:
                logger.warning(
                    "double fault at step %d (%s) — escalating to disk "
                    "rollback", step, why,
                )
        if restored is None:
            with span("rollback", "resilience"):
                found = latest_verified_checkpoint(ckdir)
                if found is None:
                    raise ResilienceExhausted(
                        f"no checkpoint to roll back to in {ckdir}"
                    )
                restored, saved_step = load_state(found[0])
            if saved_step != step:
                raise ResilienceExhausted(
                    f"latest checkpoint is for step {saved_step}, "
                    f"expected step {step} — checkpoint directory "
                    f"corrupted?"
                )
            report.disk_rollbacks += 1

        # 2. Rebuild the communicator: spare adoption or survivor shrink.
        with span("membership-rebuild", "resilience",
                  args={"lost": list(lost), "policy": rcfg.rank_loss_policy}):
            try:
                plan = view.rebuild(lost, rcfg.rank_loss_policy)
            except RankLossUnrecoverable as why:
                raise ResilienceExhausted(str(why)) from why
        if injector is not None:
            # The victims fired their one-shot node-loss specs in their
            # own (possibly forked) injector copies; mark them consumed
            # here so the retry does not lose the same node twice.
            injector.consume_node_losses(lost)
        if plan.kind == "spare":
            new_decomp = decomp  # layout unchanged; spares adopt rank ids
        else:
            try:
                new_decomp = redecompose(decomp, plan.new_size)
            except ValueError as why:
                raise ResilienceExhausted(
                    f"cannot re-decompose {decomp.kind} layout onto "
                    f"{plan.new_size} rank(s): {why}"
                ) from why

        # 3. Migrate blocks from wherever their bytes live (survivors,
        # buddy-mirror hosts, or rank 0 after a disk rollback) to their
        # owners under the new layout, over the simulated transport.
        if source == "disk":
            carrier_of = {o: 0 for o in range(old_n)}
        else:
            carrier_of = {}
            for o in range(old_n):
                host = buddy_of(o, old_n) if o in lost else o
                carrier_of[o] = plan.rank_map.get(host, host)
        with span("block-migrate", "resilience",
                  args={"kind": plan.kind, "new_size": plan.new_size}):
            migrated, mig = migrate_state(
                restored, decomp, new_decomp, carrier_of,
                machine=core.config.machine,
                timeout=rcfg.spmd_timeout
                if rcfg.spmd_timeout is not None else 60.0,
            )
        if migrated.max_difference(restored) != 0.0:
            raise ResilienceExhausted(
                f"block migration corrupted the state at step {step} "
                f"(max diff {migrated.max_difference(restored):.3e})"
            )

        # 4. Adopt the new layout everywhere the run references it.
        decomp = new_decomp
        core.config.decomp = new_decomp
        core.config.nprocs = new_decomp.nranks
        if rcfg.buddy_checkpoints and new_decomp.nranks >= 2:
            buddy = BuddyStore(new_decomp)
            buddy.store(step, migrated)
        else:
            buddy = None

        mttr = decision.overhead + mig.makespan
        report.recovery_time += mttr
        report.rank_losses.append(RankLossRecord(
            step=step, lost=lost, policy=plan.kind, epoch=view.epoch,
            source=source, mttr=mttr, new_size=plan.new_size,
            detect_s=decision.overhead, migrate_s=mig.makespan,
        ))
        if plan.kind == "spare":
            report.spare_adoptions += 1
        else:
            report.shrinks += 1
        report.restarts.append(RestartRecord(
            step=step, kind="rank-loss", attempt=chunk_attempt - 1,
            detail=f"{plan.describe()}; {mig.describe()}", source=source,
        ))
        _metric("resilience_rank_losses_total",
                "permanent rank losses recovered", policy=plan.kind)
        obs = core.observation
        if obs is not None and obs.config.metrics:
            obs.registry.gauge(
                "membership_epoch", "current membership epoch"
            ).set(view.epoch)
            obs.registry.histogram(
                "recovery_mttr_seconds",
                "logical detect+consensus+migrate time per rank loss",
            ).observe(mttr)
        flightrec.note(
            "rank-loss-recovered", lost=list(lost), policy=plan.kind,
            epoch=view.epoch, step=step, source=source, mttr=mttr,
            new_size=plan.new_size,
        )
        logger.info(
            "epoch %d: %s; %s; MTTR %.3g s logical",
            view.epoch, plan.describe(), mig.describe(), mttr,
        )
        return migrated

    # Activate the core's span tracer for the whole resilient run, so the
    # chunk/rollback spans below land in the same trace as the per-step
    # spans; the per-chunk _run_once scope no-ops inside this one.
    with core._obs_scope():
        while step < nsteps:
            chunk = min(rcfg.checkpoint_interval, nsteps - step)
            try:
                with span("chunk", "resilience"):
                    new_state, chunk_diag, stats = core._run_once(
                        state,
                        chunk,
                        faults=injector,
                        verify_checksums=rcfg.verify_halo_checksums,
                        transport=rcfg.transport,
                        timeout=rcfg.spmd_timeout,
                        step0=step,
                    )
            except _RETRYABLE as exc:
                kind = classify_failure(exc)
                if isinstance(exc, SpmdError) and exc.stats:
                    report.fault_events.extend(
                        e for s in exc.stats for e in s.fault_events
                    )
                evidence = evidence_from_failure(exc)
                if detector is not None and evidence:
                    # Survivor-side detection round: every failure with
                    # rank evidence feeds the detector; only a permanent
                    # verdict (node loss, process death, flapping
                    # escalation) takes the elastic path — transient
                    # crashes fall through to the ordinary rewind.
                    with span("failure-detect", "resilience",
                              args={"evidence": [
                                  (e.rank, e.kind) for e in evidence]}):
                        decision = detector.decide(evidence)
                    if decision.permanent:
                        state = _recover_rank_loss(decision, exc)
                        continue
                elif any(e.directly_permanent for e in evidence):
                    perm = sorted(
                        {e.rank for e in evidence if e.directly_permanent}
                    )
                    raise ResilienceExhausted(
                        f"rank(s) {perm} permanently lost at step {step} "
                        f"and rank_loss_policy is 'abort' — set it to "
                        f"'spare' or 'shrink' to recover elastically"
                    ) from exc
                if kind is None:
                    raise
                if kind == "blowup" and rcfg.blowup_policy == "abort":
                    raise BlowupError(
                        f"model blew up in chunk starting at step {step}: "
                        f"{exc}"
                    ) from exc
                state = _recover(
                    kind, str(exc).splitlines()[0], crashed_ranks(exc)
                )
                continue

            if stats is not None:
                report.fault_events.extend(
                    e for s in stats for e in s.fault_events
                )

            detail = _blowup_detail(core, new_state, rcfg)
            if detail is not None:
                if rcfg.blowup_policy == "abort":
                    core._discard_observation()
                    raise BlowupError(
                        f"model blew up in chunk starting at step {step}: "
                        f"{detail}"
                    )
                state = _recover("blowup", detail)
                continue

            # SDC acceptance gate: vet the chunk-end invariants against
            # the last accepted boundary before committing anything.
            candidate: TelemetryRecord | None = None
            if sdc_armed:
                candidate = record_for_state(
                    step + chunk, new_state, core.config.grid, sigma
                )
                detail = _sdc_detail(candidate, accepted, rcfg)
                if detail is not None:
                    _metric(
                        "resilience_sdc_rejections_total",
                        "chunks rejected by the SDC acceptance gate",
                    )
                    state = _recover("sdc", detail)
                    continue

            # Commit the chunk.
            step += chunk
            state = new_state
            accepted = candidate
            diag.accumulate(chunk_diag)
            report.chunk_makespans.append(chunk_diag.makespan)
            if buddy is not None:
                buddy.store(step, state)
            path = checkpoint_path(ckdir, step)
            save_state(path, state, step=step)
            report.checkpoints.append((step, path))
            core._commit_observation()
            chunk_attempt = 1
            if rcfg.on_chunk is not None:
                rcfg.on_chunk(step, nsteps)

    diag.makespan += report.backoff_time + report.recovery_time
    report.membership_epoch = view.epoch if view is not None else 0
    report.final_nranks = decomp.nranks
    obs = getattr(core, "_observation", None)
    if obs is not None:
        obs.finalize_outputs()
    return state, diag, report


def _blowup_detail(core, new_state: ModelState, rcfg: ResilienceConfig) -> str | None:
    """Blowup description for a completed chunk, or ``None`` when healthy.

    The final-state checks of the seed are kept; when per-step physics
    telemetry was staged by the chunk, its NaN/Inf sentinels extend the
    guard to *mid-chunk* blowups (a chunk can go non-finite at step k and
    wander back to finite — telemetry catches what the end-state check
    cannot) and pinpoint the first bad step.
    """
    if not new_state.isfinite():
        return "non-finite fields"
    if new_state.max_abs() > rcfg.blowup_threshold:
        return (
            f"max |field| = {new_state.max_abs():.3e} "
            f"> {rcfg.blowup_threshold:.3e}"
        )
    for rec in getattr(core, "_staged_telemetry", ()):
        if not rec.finite:
            return f"telemetry: non-finite fields at step {rec.step}"
        if rec.max_abs > rcfg.blowup_threshold:
            return (
                f"telemetry: max |field| = {rec.max_abs:.3e} "
                f"> {rcfg.blowup_threshold:.3e} at step {rec.step}"
            )
    return None


def telemetry_drift(new: float, ref: float) -> float:
    """Fractional drift of one telemetry invariant across a chunk."""
    scale = max(abs(ref), abs(new), 1e-300)
    return abs(new - ref) / scale


def _sdc_detail(
    candidate: TelemetryRecord,
    accepted: TelemetryRecord | None,
    rcfg: ResilienceConfig,
) -> str | None:
    """SDC-gate verdict on a completed chunk, or ``None`` when accepted."""
    if accepted is None:
        return None
    if rcfg.sdc_mass_tol is not None:
        # mass is a conserved perturbation mean near zero: gate on the
        # absolute drift (a fractional test of ~0 is pure noise)
        drift = abs(candidate.mass - accepted.mass)
        if drift > rcfg.sdc_mass_tol:
            return (
                f"mass drift {drift:.3e} > tolerance "
                f"{rcfg.sdc_mass_tol:.3e} over one chunk"
            )
    if rcfg.sdc_energy_tol is not None:
        drift = telemetry_drift(candidate.energy, accepted.energy)
        if drift > rcfg.sdc_energy_tol:
            return (
                f"energy drift {drift:.3e} > tolerance "
                f"{rcfg.sdc_energy_tol:.3e} over one chunk"
            )
    return None
