"""Checkpoint/restart resilience for :class:`~repro.core.driver.DynamicalCore`.

Long climate integrations survive node failures by periodically writing the
gathered :class:`ModelState` to disk and, when a chunk of steps dies (rank
crash, corrupted halo payload, deadlock), rolling back to the last committed
checkpoint and re-running the chunk.  The recovery loop here mirrors that
structure on the simulated cluster:

* the run is divided into chunks of ``checkpoint_interval`` model steps;
* each chunk executes through ``DynamicalCore._run_once`` (so every
  algorithm variant, serial included, gets the same resilience surface);
* a chunk that raises a *retryable* failure — ``RankCrash``,
  ``CorruptedMessage``, ``DeadlockError``, or any ``SpmdError`` carrying
  one of these — triggers reload of the last checkpoint **from disk** and
  a retry with exponential backoff;
* a chunk that completes but produces non-finite or exploding fields is
  handled by ``blowup_policy``: ``"abort"`` raises :class:`BlowupError`,
  ``"rollback"`` rewinds to the last checkpoint and retries (with a fresh
  fault-injection attempt, so transient corruption does not recur);
* committed chunks append a checkpoint; ``max_restarts`` bounds the total
  number of recoveries before :class:`ResilienceExhausted` gives up.

Determinism: because the simulated cluster advances logical clocks only,
a restart replays the chunk bit-identically when no new faults fire —
the property tests assert crash-interrupted runs end byte-equal to
fault-free ones.
"""
from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.driver import StepDiagnostics
from repro.obs.spans import span
from repro.simmpi.faults import (
    CorruptedMessage,
    FaultInjector,
    FaultPlan,
    RankCrash,
)
from repro.simmpi.launcher import SpmdError
from repro.simmpi.network import DeadlockError
from repro.state.io import (
    checkpoint_path,
    latest_checkpoint,
    load_state,
    save_state,
)
from repro.state.variables import ModelState

logger = logging.getLogger(__name__)


class BlowupError(RuntimeError):
    """The model produced non-finite or exploding fields (policy: abort)."""


class ResilienceExhausted(RuntimeError):
    """More recoveries were needed than ``max_restarts`` allows."""


@dataclass
class ResilienceConfig:
    """Knobs of the resilient driver.

    Parameters
    ----------
    checkpoint_dir:
        Directory for ``ckpt_XXXXXXXX.npz`` files (created if missing).
    checkpoint_interval:
        Model steps per chunk; a checkpoint is written after every
        committed chunk.
    max_restarts:
        Total recoveries (of any kind) before giving up.
    backoff_base / backoff_factor / backoff_max:
        Wall-clock sleep before retry ``k`` is
        ``min(backoff_base * backoff_factor**(k-1), backoff_max)``
        seconds; the default base of 0 disables sleeping (the simulated
        cluster needs no settle time, real deployments do).
    blowup_policy:
        ``"abort"`` or ``"rollback"`` — what to do when a chunk completes
        with non-finite fields or ``max_abs() > blowup_threshold``.
    blowup_threshold:
        Stability bound on the committed state's max absolute value.
    verify_halo_checksums:
        Arm payload checksums on every simulated message, so in-flight
        corruption of wide-halo exchanges surfaces as
        ``CorruptedMessage`` instead of silently polluting the fields.
    faults:
        Optional :class:`FaultPlan`/:class:`FaultInjector` injected into
        every chunk.  A plan is converted to ONE injector up front, so
        one-shot crash specs stay consumed across restarts (the "failed
        node got replaced" model) and the retry can succeed.
    spmd_timeout:
        Override for the per-chunk deadlock timeout; ``None`` defers to
        ``CoreConfig.timeout`` / ``default_spmd_timeout``.
    resume:
        Start from the newest checkpoint already in ``checkpoint_dir``
        instead of ``state0`` (restart-after-process-death).
    """

    checkpoint_dir: str | Path
    checkpoint_interval: int = 1
    max_restarts: int = 8
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    blowup_policy: str = "rollback"
    blowup_threshold: float = 1e8
    verify_halo_checksums: bool = False
    faults: FaultPlan | FaultInjector | None = None
    spmd_timeout: float | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.blowup_policy not in ("abort", "rollback"):
            raise ValueError(
                f"blowup_policy must be 'abort' or 'rollback', "
                f"got {self.blowup_policy!r}"
            )


@dataclass(frozen=True)
class RestartRecord:
    """One recovery event of the resilient driver."""

    step: int          # model step the run was rewound to
    kind: str          # "crash" | "corruption" | "deadlock" | "blowup"
    attempt: int       # retry count for the failing chunk (1-based)
    detail: str = ""


@dataclass
class ResilienceReport:
    """What happened during one resilient run."""

    checkpoints: list[tuple[int, Path]] = field(default_factory=list)
    restarts: list[RestartRecord] = field(default_factory=list)
    chunk_makespans: list[float] = field(default_factory=list)
    fault_events: list = field(default_factory=list)
    resumed_from_step: int = 0

    @property
    def nrestarts(self) -> int:
        return len(self.restarts)

    def describe(self) -> str:
        lines = [
            f"chunks committed: {len(self.chunk_makespans)}",
            f"checkpoints written: {len(self.checkpoints)}",
            f"restarts: {self.nrestarts}",
        ]
        for r in self.restarts:
            lines.append(
                f"  rewound to step {r.step} ({r.kind}, attempt "
                f"{r.attempt}): {r.detail}"
            )
        if self.fault_events:
            lines.append(f"fault events observed: {len(self.fault_events)}")
        return "\n".join(lines)


def _classify(exc: BaseException) -> str | None:
    """Retryable-failure kind of one exception, or None if fatal."""
    if isinstance(exc, RankCrash):
        return "crash"
    if isinstance(exc, CorruptedMessage):
        return "corruption"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, FloatingPointError):
        return "blowup"
    return None


def classify_failure(exc: BaseException) -> str | None:
    """Map an exception from a chunk run to a recovery kind.

    For an :class:`SpmdError` the *root cause* wins: a rank crash aborts
    every surviving rank with a ``DeadlockError``, so crash outranks
    corruption outranks deadlock when classifying the per-rank
    exceptions.  Returns ``None`` for failures that should propagate
    (programming errors, bad configuration, ...).
    """
    if isinstance(exc, SpmdError):
        kinds = {
            k
            for k in map(_classify, exc.exceptions.values())
            if k is not None
        }
        for kind in ("crash", "corruption", "blowup", "deadlock"):
            if kind in kinds:
                return kind
        return None
    return _classify(exc)


def run_resilient(
    core,
    state0: ModelState,
    nsteps: int,
    rcfg: ResilienceConfig,
) -> tuple[ModelState, StepDiagnostics, ResilienceReport]:
    """Advance ``nsteps`` with checkpointing and restart-on-failure.

    ``core`` is a :class:`~repro.core.driver.DynamicalCore`.  Returns the
    final gathered state, diagnostics accumulated over committed chunks
    (retried chunks count only their successful attempt), and the
    :class:`ResilienceReport`.
    """
    ckdir = Path(rcfg.checkpoint_dir)
    ckdir.mkdir(parents=True, exist_ok=True)
    report = ResilienceReport()
    diag = StepDiagnostics()

    injector = (
        rcfg.faults.injector()
        if isinstance(rcfg.faults, FaultPlan)
        else rcfg.faults
    )

    step = 0
    state = state0
    resumed = False
    if rcfg.resume:
        found = latest_checkpoint(ckdir)
        if found is not None:
            state, step = load_state(found[0])
            report.resumed_from_step = step
            resumed = True
    if not resumed:
        path = checkpoint_path(ckdir, 0)
        save_state(path, state0, step=0)
        report.checkpoints.append((0, path))

    restarts_left = rcfg.max_restarts
    chunk_attempt = 1

    def _recover(kind: str, detail: str) -> ModelState:
        nonlocal restarts_left, chunk_attempt
        core._discard_observation()
        if restarts_left <= 0:
            logger.error(
                "resilience exhausted at step %d after %d restarts "
                "(last failure: %s: %s)",
                step, rcfg.max_restarts, kind, detail,
            )
            raise ResilienceExhausted(
                f"gave up at step {step} after {rcfg.max_restarts} "
                f"restarts (last failure: {kind}: {detail})"
            )
        restarts_left -= 1
        logger.warning(
            "chunk at step %d failed (%s, attempt %d): %s — rolling back",
            step, kind, chunk_attempt, detail,
        )
        report.restarts.append(
            RestartRecord(step=step, kind=kind, attempt=chunk_attempt,
                          detail=detail)
        )
        if rcfg.backoff_base > 0.0:
            delay = min(
                rcfg.backoff_base * rcfg.backoff_factor ** (chunk_attempt - 1),
                rcfg.backoff_max,
            )
            time.sleep(delay)
        chunk_attempt += 1
        # Reload from disk on purpose: recovery must exercise the same
        # path a process restarted from scratch would take.
        with span("rollback", "resilience"):
            found = latest_checkpoint(ckdir)
            if found is None:
                raise ResilienceExhausted(
                    f"no checkpoint to roll back to in {ckdir}"
                )
            restored, saved_step = load_state(found[0])
        if saved_step != step:
            raise ResilienceExhausted(
                f"latest checkpoint is for step {saved_step}, "
                f"expected step {step} — checkpoint directory corrupted?"
            )
        logger.info("restored checkpoint for step %d from %s", step, found[0])
        return restored

    # Activate the core's span tracer for the whole resilient run, so the
    # chunk/rollback spans below land in the same trace as the per-step
    # spans; the per-chunk _run_once scope no-ops inside this one.
    with core._obs_scope():
        while step < nsteps:
            chunk = min(rcfg.checkpoint_interval, nsteps - step)
            try:
                with span("chunk", "resilience"):
                    new_state, chunk_diag, stats = core._run_once(
                        state,
                        chunk,
                        faults=injector,
                        verify_checksums=rcfg.verify_halo_checksums,
                        timeout=rcfg.spmd_timeout,
                        step0=step,
                    )
            except (SpmdError, RankCrash, CorruptedMessage, DeadlockError,
                    FloatingPointError) as exc:
                kind = classify_failure(exc)
                if kind is None:
                    raise
                if isinstance(exc, SpmdError) and exc.stats:
                    report.fault_events.extend(
                        e for s in exc.stats for e in s.fault_events
                    )
                if kind == "blowup" and rcfg.blowup_policy == "abort":
                    raise BlowupError(
                        f"model blew up in chunk starting at step {step}: "
                        f"{exc}"
                    ) from exc
                state = _recover(kind, str(exc).splitlines()[0])
                continue

            if stats is not None:
                report.fault_events.extend(
                    e for s in stats for e in s.fault_events
                )

            detail = _blowup_detail(core, new_state, rcfg)
            if detail is not None:
                if rcfg.blowup_policy == "abort":
                    core._discard_observation()
                    raise BlowupError(
                        f"model blew up in chunk starting at step {step}: "
                        f"{detail}"
                    )
                state = _recover("blowup", detail)
                continue

            # Commit the chunk.
            step += chunk
            state = new_state
            diag.accumulate(chunk_diag)
            report.chunk_makespans.append(chunk_diag.makespan)
            path = checkpoint_path(ckdir, step)
            save_state(path, state, step=step)
            report.checkpoints.append((step, path))
            core._commit_observation()
            chunk_attempt = 1

    obs = getattr(core, "_observation", None)
    if obs is not None:
        obs.finalize_outputs()
    return state, diag, report


def _blowup_detail(core, new_state: ModelState, rcfg: ResilienceConfig) -> str | None:
    """Blowup description for a completed chunk, or ``None`` when healthy.

    The final-state checks of the seed are kept; when per-step physics
    telemetry was staged by the chunk, its NaN/Inf sentinels extend the
    guard to *mid-chunk* blowups (a chunk can go non-finite at step k and
    wander back to finite — telemetry catches what the end-state check
    cannot) and pinpoint the first bad step.
    """
    if not new_state.isfinite():
        return "non-finite fields"
    if new_state.max_abs() > rcfg.blowup_threshold:
        return (
            f"max |field| = {new_state.max_abs():.3e} "
            f"> {rcfg.blowup_threshold:.3e}"
        )
    for rec in getattr(core, "_staged_telemetry", ()):
        if not rec.finite:
            return f"telemetry: non-finite fields at step {rec.step}"
        if rec.max_abs > rcfg.blowup_threshold:
            return (
                f"telemetry: max |field| = {rec.max_abs:.3e} "
                f"> {rcfg.blowup_threshold:.3e} at step {rec.step}"
            )
    return None
