"""Continuous sampling profiler: stdlib-only collapsed-stack flamegraphs.

A :class:`SamplingProfiler` is a daemon thread that wakes at a
configurable rate, snapshots every thread's Python stack via
``sys._current_frames()``, and accumulates counts per collapsed stack —
the ``frame;frame;frame count`` text format every flamegraph renderer
(Brendan Gregg's ``flamegraph.pl``, speedscope, inferno) ingests
directly.  No native code, no signals, no per-function instrumentation:
the profiled workload pays only for the GIL grabs of the sampler
thread, which the ``bench_obs_overhead`` gate bounds at <10% at the
default rate.

Stacks are labelled by the thread's simulated-rank label (see
:func:`repro.obs.spans.set_rank`) so the flamegraph separates rank
programs from the driver; the sampler's own thread is skipped.

Attach it through ``ObsConfig(profile=...)`` (the driver then starts and
stops it with the observation scope and writes the collapsed output next
to the other artifacts) or drive it directly::

    prof = SamplingProfiler(hz=97)
    prof.start()
    ...
    prof.stop()
    prof.write("profile.collapsed")
"""
from __future__ import annotations

import sys
import threading
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.obs.spans import rank_by_tid

#: default sampling rate; a prime, so periodic workloads don't alias
DEFAULT_HZ = 97.0


@dataclass(frozen=True)
class ProfileConfig:
    """Profiler knobs, coercible from the shorthands ``True`` / a rate.

    Parameters
    ----------
    hz:
        Samples per second (the wake-up rate of the sampler thread).
    out:
        Destination of the collapsed-stack output; ``None`` defers to
        the attaching scope (the driver derives a path from its other
        observation outputs).
    max_frames:
        Stack depth cap per sample — deeper stacks are truncated at the
        root end, keeping the leaf (hot) frames.
    """

    hz: float = DEFAULT_HZ
    out: str | Path | None = None
    max_frames: int = 64

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ValueError("sampling rate must be positive")
        if self.max_frames < 1:
            raise ValueError("max_frames must be >= 1")

    @classmethod
    def coerce(cls, value) -> "ProfileConfig | None":
        """``None``/``False`` → off; ``True`` → defaults; a number → that
        rate; a path string → defaults writing there; or a ready config."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, ProfileConfig):
            return value
        if isinstance(value, (int, float)):
            return cls(hz=float(value))
        if isinstance(value, (str, Path)):
            return cls(out=value)
        raise TypeError(f"cannot make a ProfileConfig from {value!r}")


def _collapse(frame, max_frames: int) -> str:
    """One thread's stack as ``mod:func;...;mod:func`` (root first)."""
    frames: list[str] = []
    while frame is not None and len(frames) < max_frames:
        code = frame.f_code
        module = code.co_filename.rsplit("/", 1)[-1]
        frames.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return ";".join(frames)


class SamplingProfiler:
    """Background-thread sampling profiler (see module docstring)."""

    def __init__(self, config: ProfileConfig | None = None, **overrides):
        if config is None:
            config = ProfileConfig(**overrides)
        elif overrides:
            raise ValueError("pass either config or keyword overrides")
        self.config = config
        self.samples: Counter[str] = Counter()
        self.nsamples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._rank_by_tid: dict[int, int] = {}
        self._lock = threading.Lock()

    # ---- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, daemon=True, name="obs-profiler"
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ---- sampling --------------------------------------------------------
    def _sample_loop(self) -> None:
        interval = 1.0 / self.config.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self._take_sample(me)

    def _take_sample(self, skip_tid: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self.nsamples += 1
            for tid, frame in frames.items():
                if tid == skip_tid:
                    continue
                stack = _collapse(frame, self.config.max_frames)
                if not stack:
                    continue
                rank = rank_by_tid.get(tid, -1)
                label = f"rank {rank}" if rank >= 0 else "main"
                self.samples[f"{label};{stack}"] += 1

    # ---- output ----------------------------------------------------------
    def collapsed(self) -> str:
        """The accumulated samples in collapsed-stack text format."""
        with self._lock:
            items = sorted(self.samples.items())
        return "\n".join(f"{stack} {n}" for stack, n in items) + (
            "\n" if items else ""
        )

    def write(self, path: str | Path | None = None) -> Path:
        """Write the collapsed stacks (atomic); returns the path."""
        from repro.obs.exporters import write_text_atomic

        target = path if path is not None else self.config.out
        if target is None:
            raise ValueError("no output path configured for the profile")
        return write_text_atomic(target, self.collapsed())
