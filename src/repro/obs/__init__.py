"""repro.obs — unified observability: spans, metrics, telemetry, exporters.

The span/metrics primitives are stdlib-only and imported eagerly (the
simmpi transport and the operator stack instrument against them); the
numpy-backed telemetry module and the exporters load lazily on first
attribute access so importing :mod:`repro.simmpi` stays light.
"""
from repro.obs.metrics import (
    MetricsRegistry,
    absorb_comm_stats,
    absorb_workspace_counters,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanTracer,
    active_tracer,
    current_rank,
    current_trace_context,
    disable,
    enable,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    point,
    set_active,
    set_rank,
    set_trace_context,
    span,
    trace_context,
    traced,
    tracing,
)

_LAZY = {
    "ObsConfig": ("repro.obs.config", "ObsConfig"),
    "Observation": ("repro.obs.config", "Observation"),
    "TelemetryRecord": ("repro.obs.telemetry", "TelemetryRecord"),
    "TelemetrySeries": ("repro.obs.telemetry", "TelemetrySeries"),
    "block_partials": ("repro.obs.telemetry", "block_partials"),
    "combine_partials": ("repro.obs.telemetry", "combine_partials"),
    "record_for_state": ("repro.obs.telemetry", "record_for_state"),
    "chrome_trace": ("repro.obs.exporters", "chrome_trace"),
    "write_chrome_trace": ("repro.obs.exporters", "write_chrome_trace"),
    "load_chrome_trace": ("repro.obs.exporters", "load_chrome_trace"),
    "write_jsonl": ("repro.obs.exporters", "write_jsonl"),
    "read_jsonl": ("repro.obs.exporters", "read_jsonl"),
    "write_text_atomic": ("repro.obs.exporters", "write_text_atomic"),
    "ProfileConfig": ("repro.obs.profile", "ProfileConfig"),
    "SamplingProfiler": ("repro.obs.profile", "SamplingProfiler"),
    "FlightRecorder": ("repro.obs.flightrec", "FlightRecorder"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "MetricsRegistry",
    "absorb_comm_stats",
    "absorb_workspace_counters",
    "NULL_SPAN",
    "Span",
    "SpanTracer",
    "active_tracer",
    "current_rank",
    "current_trace_context",
    "disable",
    "enable",
    "format_traceparent",
    "new_trace_id",
    "parse_traceparent",
    "point",
    "set_active",
    "set_rank",
    "set_trace_context",
    "span",
    "trace_context",
    "traced",
    "tracing",
    *_LAZY,
]
