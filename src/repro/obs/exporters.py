"""Exporters: Chrome-trace/Perfetto JSON and JSONL event logs.

Two timelines coexist in this codebase: *wall-clock* spans recorded by
:class:`~repro.obs.spans.SpanTracer` from the executed integrators, and
*logical-clock* events recorded by the simulated cluster's
:class:`~repro.simmpi.trace.TraceRecorder`.  Both export to the Chrome
trace-event format (``chrome://tracing`` / https://ui.perfetto.dev), on
separate process lanes of one file, so the real execution and the
simulated schedule can be inspected side by side in the same viewer.

The JSONL exporter writes one JSON object per line (spans, telemetry
records, metric snapshots) — the grep-able event log for ad-hoc
analysis; :mod:`repro.obs.report` is the bundled reader for both
formats.
"""
from __future__ import annotations

import json
from pathlib import Path

#: timestamp scale of the Chrome trace format (microseconds)
_US = 1e6


def _meta(pid: int, name: str) -> dict:
    return {
        "ph": "M", "pid": pid, "tid": 0,
        "name": "process_name", "args": {"name": name},
    }


def span_events(
    spans, pid: int = 1, process_name: str = "wall-clock"
) -> list[dict]:
    """Chrome-trace events of wall-clock :class:`~repro.obs.spans.Span`.

    Lanes (``tid``): the simulated rank for rank-labelled spans, with
    unlabelled (serial/driver) spans on a ``main`` lane.
    """
    events = [_meta(pid, process_name)]
    lanes: dict[tuple[int, int], int] = {}
    for s in spans:
        lane_key = (s.rank, s.tid if s.rank < 0 else 0)
        lane = lanes.get(lane_key)
        if lane is None:
            lane = s.rank if s.rank >= 0 else 1000 + len(lanes)
            lanes[lane_key] = lane
            events.append({
                "ph": "M", "pid": pid, "tid": lane,
                "name": "thread_name",
                "args": {
                    "name": f"rank {s.rank}" if s.rank >= 0 else "main"
                },
            })
        events.append({
            "ph": "X", "pid": pid, "tid": lane,
            "name": s.name, "cat": s.cat,
            "ts": s.t_start * _US, "dur": s.duration * _US,
            "args": {"depth": s.depth},
        })
    return events


def logical_events(
    recorders,
    pid: int = 2,
    process_name: str = "logical-clock",
    time_scale: float = _US,
) -> list[dict]:
    """Chrome-trace events of per-rank logical-clock ``TraceRecorder``s.

    Logical seconds map to trace microseconds one-to-one by default
    (``time_scale=1e6``), which keeps simulated timelines readable at
    the zoom levels the viewer starts at.
    """
    events = [_meta(pid, process_name)]
    for rec in recorders:
        events.append({
            "ph": "M", "pid": pid, "tid": rec.rank,
            "name": "thread_name", "args": {"name": f"rank {rec.rank}"},
        })
        for e in rec.events:
            events.append({
                "ph": "X", "pid": pid, "tid": rec.rank,
                "name": e.kind, "cat": e.phase or e.kind,
                "ts": e.t_start * time_scale,
                "dur": e.duration * time_scale,
                "args": {"detail": e.detail} if e.detail else {},
            })
    return events


def chrome_trace(spans=(), recorders=(), extra_events=()) -> dict:
    """Assemble one Chrome-trace document from any mix of sources."""
    events: list[dict] = []
    if spans:
        events.extend(span_events(spans))
    if recorders:
        events.extend(logical_events(recorders))
    events.extend(extra_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, trace) -> Path:
    """Write a trace document (dict, or a bare event list) to ``path``."""
    if isinstance(trace, list):
        trace = {"traceEvents": trace, "displayTimeUnit": "ms"}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace) + "\n")
    return path


def load_chrome_trace(path) -> dict:
    """Read a Chrome-trace JSON back (dict with a ``traceEvents`` list)."""
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, list):  # bare-array form is legal Chrome trace
        doc = {"traceEvents": doc}
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return doc


def duration_events(doc: dict) -> list[dict]:
    """The complete (``ph == "X"``) events of a loaded trace document."""
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------
def jsonl_records(spans=(), telemetry=(), metrics: dict | None = None):
    """Yield the JSONL records of one observation snapshot."""
    for s in spans:
        yield {
            "type": "span", "name": s.name, "cat": s.cat,
            "t_start": s.t_start, "t_end": s.t_end,
            "rank": s.rank, "depth": s.depth,
        }
    for r in telemetry:
        yield {"type": "telemetry", **r.as_dict()}
    if metrics:
        for name, family in metrics.items():
            for sample in family["samples"]:
                yield {
                    "type": "metric", "name": name,
                    "kind": family["kind"], **sample,
                }


def write_jsonl(path, records) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return path


def read_jsonl(path) -> list[dict]:
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
