"""Exporters: Chrome-trace/Perfetto JSON and JSONL event logs.

Two timelines coexist in this codebase: *wall-clock* spans recorded by
:class:`~repro.obs.spans.SpanTracer` from the executed integrators, and
*logical-clock* events recorded by the simulated cluster's
:class:`~repro.simmpi.trace.TraceRecorder`.  Both export to the Chrome
trace-event format (``chrome://tracing`` / https://ui.perfetto.dev), on
separate process lanes of one file, so the real execution and the
simulated schedule can be inspected side by side in the same viewer.

Spans absorbed from worker/rank processes carry their OS pid, so a
serve job renders with one Chrome process row per real process, and
halo ``isend``/``irecv`` instant spans pair up as flow arrows between
rank lanes (matched by their transport-level ``link#seq`` flow key).

The JSONL exporter writes one JSON object per line (spans, telemetry
records, metric snapshots) — the grep-able event log for ad-hoc
analysis; :mod:`repro.obs.report` is the bundled reader for both
formats.  All file writers go through :func:`write_text_atomic`
(tmp + fsync + rename, the same discipline as :mod:`repro.state.io`)
so a crash mid-export never leaves a truncated artifact.
"""
from __future__ import annotations

import json
import zlib
from pathlib import Path

#: timestamp scale of the Chrome trace format (microseconds)
_US = 1e6

#: Chrome pid of the logical-clock lane; wall-clock process rows must
#: not collide with it
_LOGICAL_PID = 2


def write_text_atomic(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename)."""
    from repro.state.io import atomic_write_bytes

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, text.encode(), checksum=False)
    return path


def _meta(pid: int, name: str) -> dict:
    return {
        "ph": "M", "pid": pid, "tid": 0,
        "name": "process_name", "args": {"name": name},
    }


def _flow_id(flow: str) -> int:
    """Deterministic numeric flow id shared by both ends of a message."""
    return zlib.crc32(flow.encode())


def span_events(
    spans, pid: int = 1, process_name: str = "wall-clock"
) -> list[dict]:
    """Chrome-trace events of wall-clock :class:`~repro.obs.spans.Span`.

    Process rows (``pid``): spans from the first OS process render as
    chrome pid ``pid`` (1 by default); spans absorbed from other OS
    processes (serve workers, SPMD rank children) each get their own
    row, numbered past the logical-clock lane so the two exporters
    never collide.  Lanes (``tid``): the simulated rank for
    rank-labelled spans, with unlabelled (serial/driver) spans on a
    ``main`` lane.  Instant spans whose ``args`` carry a ``flow`` key
    are emitted as flow start/finish events (``ph`` ``s``/``f``) so the
    viewer draws arrows between matching isend/irecv pairs.
    """
    events = [_meta(pid, process_name)]
    pid_rows: dict[int, int] = {}
    next_row = max(pid, _LOGICAL_PID) + 1
    lanes: dict[tuple[int, int, int], int] = {}
    for s in spans:
        os_pid = getattr(s, "pid", 0)
        row = pid_rows.get(os_pid)
        if row is None:
            if not pid_rows:
                row = pid
            else:
                row = next_row
                next_row += 1
                events.append(
                    _meta(row, f"{process_name} pid {os_pid}")
                )
            pid_rows[os_pid] = row
        lane_key = (row, s.rank, s.tid if s.rank < 0 else 0)
        lane = lanes.get(lane_key)
        if lane is None:
            lane = s.rank if s.rank >= 0 else 1000 + len(lanes)
            lanes[lane_key] = lane
            events.append({
                "ph": "M", "pid": row, "tid": lane,
                "name": "thread_name",
                "args": {
                    "name": f"rank {s.rank}" if s.rank >= 0 else "main"
                },
            })
        args = {"depth": s.depth}
        if getattr(s, "span_id", 0):
            args["span_id"] = s.span_id
            args["parent_id"] = s.parent_id
        if getattr(s, "trace_id", ""):
            args["trace_id"] = s.trace_id
        if s.args:
            args.update(s.args)
        events.append({
            "ph": "X", "pid": row, "tid": lane,
            "name": s.name, "cat": s.cat,
            "ts": s.t_start * _US, "dur": s.duration * _US,
            "args": args,
        })
        flow = (s.args or {}).get("flow")
        if flow:
            events.append({
                "ph": "s" if s.name == "isend" else "f",
                **({} if s.name == "isend" else {"bp": "e"}),
                "pid": row, "tid": lane,
                "name": "msg", "cat": "comm",
                "ts": s.t_start * _US, "id": _flow_id(flow),
            })
    return events


def logical_events(
    recorders,
    pid: int = _LOGICAL_PID,
    process_name: str = "logical-clock",
    time_scale: float = _US,
) -> list[dict]:
    """Chrome-trace events of per-rank logical-clock ``TraceRecorder``s.

    Logical seconds map to trace microseconds one-to-one by default
    (``time_scale=1e6``), which keeps simulated timelines readable at
    the zoom levels the viewer starts at.
    """
    events = [_meta(pid, process_name)]
    for rec in recorders:
        events.append({
            "ph": "M", "pid": pid, "tid": rec.rank,
            "name": "thread_name", "args": {"name": f"rank {rec.rank}"},
        })
        for e in rec.events:
            events.append({
                "ph": "X", "pid": pid, "tid": rec.rank,
                "name": e.kind, "cat": e.phase or e.kind,
                "ts": e.t_start * time_scale,
                "dur": e.duration * time_scale,
                "args": {"detail": e.detail} if e.detail else {},
            })
    return events


def chrome_trace(spans=(), recorders=(), extra_events=()) -> dict:
    """Assemble one Chrome-trace document from any mix of sources."""
    events: list[dict] = []
    if spans:
        events.extend(span_events(spans))
    if recorders:
        events.extend(logical_events(recorders))
    events.extend(extra_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, trace) -> Path:
    """Write a trace document (dict, or a bare event list) to ``path``."""
    if isinstance(trace, list):
        trace = {"traceEvents": trace, "displayTimeUnit": "ms"}
    return write_text_atomic(path, json.dumps(trace) + "\n")


def load_chrome_trace(path) -> dict:
    """Read a Chrome-trace JSON back (dict with a ``traceEvents`` list)."""
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, list):  # bare-array form is legal Chrome trace
        doc = {"traceEvents": doc}
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return doc


def duration_events(doc: dict) -> list[dict]:
    """The complete (``ph == "X"``) events of a loaded trace document."""
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------
def jsonl_records(spans=(), telemetry=(), metrics: dict | None = None):
    """Yield the JSONL records of one observation snapshot."""
    for s in spans:
        rec = {
            "type": "span", "name": s.name, "cat": s.cat,
            "t_start": s.t_start, "t_end": s.t_end,
            "rank": s.rank, "depth": s.depth,
        }
        if getattr(s, "span_id", 0):
            rec["trace_id"] = s.trace_id
            rec["span_id"] = s.span_id
            rec["parent_id"] = s.parent_id
            rec["pid"] = s.pid
        if getattr(s, "args", None):
            rec["args"] = s.args
        yield rec
    for r in telemetry:
        yield {"type": "telemetry", **r.as_dict()}
    if metrics:
        for name, family in metrics.items():
            for sample in family["samples"]:
                yield {
                    "type": "metric", "name": name,
                    "kind": family["kind"], **sample,
                }


def write_jsonl(path, records) -> Path:
    lines = [json.dumps(rec) for rec in records]
    text = "\n".join(lines) + ("\n" if lines else "")
    return write_text_atomic(path, text)


def read_jsonl(path) -> list[dict]:
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
