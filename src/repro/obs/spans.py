"""Low-overhead wall-clock span tracing for the executed core.

A :class:`SpanTracer` records nested, named wall-clock spans — ``step >
tendency > adaptation/C/advection > halo-exchange`` — from every thread
that runs instrumented code (the simulated-MPI rank threads included).
Instrumentation sites call the module-level :func:`span` context manager;
when no tracer is active (the default) it returns a shared no-op object,
so the disabled overhead of an instrumented call site is one global read
plus an empty ``with`` block.

Causal trace context
--------------------
Every recorded span carries three identities on top of its timing:

* ``trace_id`` — a 16-hex-char id naming the causal tree the span
  belongs to (one serve job, one benchmark run, ...).  Threads inherit
  it from their :func:`trace_context`; spans recorded outside any
  context fall back to the tracer's own ``trace_id``.
* ``span_id`` — unique per span across *processes* (the OS pid is
  folded into the id, refreshed after ``fork``), so spans shipped back
  from worker/rank processes never collide with the parent's.
* ``parent_id`` — the enclosing open span on the same thread, else the
  thread's context parent (``0`` marks a root).  Cross-process edges
  are sewn at :meth:`SpanTracer.absorb` time: absorbing re-parents the
  orphan roots of a child process under the launch span that forked it.

Context crosses process boundaries as a small *traceparent* header
(:func:`format_traceparent` / :func:`parse_traceparent`) carried over
whatever channel launches the work — the serve supervisor puts it in
the job payload it pipes to workers, the SPMD process backend passes it
to rank children as a fork argument.

Thread/rank model
-----------------
Spans are buffered per thread with no locking on the hot path; the
buffers are merged (sorted by start time) when :attr:`SpanTracer.spans`
is read.  The SPMD launcher labels each rank thread via :func:`set_rank`,
so spans recorded inside a rank program carry their simulated rank;
spans from unlabelled threads (the serial core, the driver) carry rank
``-1`` and are exported as the ``main`` lane.

Timebase: ``time.perf_counter()`` seconds relative to the tracer's
construction (``epoch``).  This is *real* elapsed time, deliberately
distinct from the simulated cluster's logical clocks — the Chrome-trace
exporter puts both on separate process lanes of the same timeline.
"""
from __future__ import annotations

import dataclasses
import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One completed wall-clock span."""

    name: str
    cat: str
    t_start: float  # seconds since the tracer's epoch
    t_end: float
    rank: int       # simulated rank, or -1 for unlabelled threads
    tid: int        # OS thread ident (display/debug only)
    depth: int      # nesting depth within the recording thread
    trace_id: str = ""   # causal tree this span belongs to
    span_id: int = 0     # unique across threads and processes
    parent_id: int = 0   # enclosing span (0 = root of its process)
    pid: int = 0         # OS process that recorded the span
    args: dict | None = None  # small JSON-able payload (flow ids, ...)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: thread-local simulated-rank label (see :func:`set_rank`)
_rank_local = threading.local()

#: thread-local (trace_id, parent_id) causal context
_ctx_local = threading.local()

#: this process's pid, folded into span ids and recorded on every span;
#: refreshed in fork children so their spans are attributable
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX always has it
    os.register_at_fork(after_in_child=_refresh_pid)

_span_counter = itertools.count(1)


def new_span_id() -> int:
    """A span id unique across threads and (forked) processes.

    The pid occupies the high bits; ``itertools.count`` is atomic under
    the GIL, and a fork child inherits the counter position but gets a
    fresh pid, so parent and child never mint the same id.
    """
    return (_PID << 40) | next(_span_counter)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


#: tid -> simulated rank, readable from *other* threads (the sampling
#: profiler labels stacks with it); thread-locals alone can't cross
rank_by_tid: dict[int, int] = {}


def set_rank(rank: int) -> int:
    """Label this thread's subsequent spans with a simulated rank.

    Returns the previous label so callers can restore it (``-1`` when
    none was set) — the SPMD launcher does exactly that around each rank
    program so the serial fast path does not leak a rank label onto the
    caller's thread.
    """
    prev = getattr(_rank_local, "value", -1)
    _rank_local.value = rank
    rank_by_tid[threading.get_ident()] = rank
    return prev


def current_rank() -> int:
    """The simulated-rank label of the calling thread (-1 if none)."""
    return getattr(_rank_local, "value", -1)


# ---------------------------------------------------------------------------
# causal context
# ---------------------------------------------------------------------------
def set_trace_context(
    trace_id: str, parent_id: int = 0
) -> tuple[str, int]:
    """Set this thread's causal context; returns the previous one.

    Subsequent root spans on this thread join the tree ``trace_id`` as
    children of ``parent_id``.  Pass the returned pair back to restore.
    """
    prev = getattr(_ctx_local, "value", ("", 0))
    _ctx_local.value = (trace_id, parent_id)
    return prev


def current_trace_context() -> tuple[str, int]:
    """This thread's ``(trace_id, parent_id)`` causal context."""
    return getattr(_ctx_local, "value", ("", 0))


@contextmanager
def trace_context(trace_id: str, parent_id: int = 0):
    """Scope-bound :func:`set_trace_context` (restores on exit)."""
    prev = set_trace_context(trace_id, parent_id)
    try:
        yield
    finally:
        set_trace_context(*prev)


def format_traceparent(trace_id: str, parent_id: int) -> str:
    """Serialize a causal context for a pipe/env/payload header."""
    return f"repro-01-{trace_id or new_trace_id()}-{parent_id:x}"


def parse_traceparent(header: str) -> tuple[str, int]:
    """Inverse of :func:`format_traceparent`; raises ``ValueError``."""
    parts = header.split("-")
    if len(parts) != 4 or parts[0] != "repro" or parts[1] != "01":
        raise ValueError(f"not a repro traceparent header: {header!r}")
    return parts[2], int(parts[3], 16)


class _ThreadBuf:
    """Per-thread span buffer (append without locking)."""

    __slots__ = ("spans", "depth", "stack")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.depth = 0
        self.stack: list[int] = []  # open span ids, innermost last


class _LiveSpan:
    """An open span; closes (and records) on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_buf", "_depth",
                 "_t0", "span_id")

    def __init__(
        self, tracer: "SpanTracer", name: str, cat: str,
        args: dict | None = None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_LiveSpan":
        buf = self._tracer._thread_buf()
        self._buf = buf
        self._depth = buf.depth
        buf.depth += 1
        self.span_id = new_span_id()
        buf.stack.append(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        buf = self._buf
        buf.depth -= 1
        buf.stack.pop()
        ctx = getattr(_ctx_local, "value", ("", 0))
        epoch = self._tracer.epoch
        buf.spans.append(
            Span(
                name=self._name,
                cat=self._cat,
                t_start=self._t0 - epoch,
                t_end=t1 - epoch,
                rank=getattr(_rank_local, "value", -1),
                tid=threading.get_ident(),
                depth=self._depth,
                trace_id=ctx[0] or self._tracer.trace_id,
                span_id=self.span_id,
                parent_id=buf.stack[-1] if buf.stack else ctx[1],
                pid=_PID,
                args=self._args,
            )
        )
        return False


class SpanTracer:
    """Collects wall-clock spans from any number of threads."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.trace_id = new_trace_id()
        self._lock = threading.Lock()
        self._bufs: list[_ThreadBuf] = []
        self._tls = threading.local()

    def _thread_buf(self) -> _ThreadBuf:
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = _ThreadBuf()
            self._tls.buf = buf
            with self._lock:
                self._bufs.append(buf)
        return buf

    def span(
        self, name: str, cat: str = "core", args: dict | None = None
    ) -> _LiveSpan:
        """An open span context manager recording into this tracer."""
        return _LiveSpan(self, name, cat, args)

    def point(
        self, name: str, cat: str = "core", args: dict | None = None
    ) -> None:
        """Record an instant (zero-duration) span — e.g. a flow endpoint."""
        buf = self._thread_buf()
        ctx = getattr(_ctx_local, "value", ("", 0))
        t = time.perf_counter() - self.epoch
        buf.spans.append(
            Span(
                name=name, cat=cat, t_start=t, t_end=t,
                rank=getattr(_rank_local, "value", -1),
                tid=threading.get_ident(), depth=buf.depth,
                trace_id=ctx[0] or self.trace_id,
                span_id=new_span_id(),
                parent_id=buf.stack[-1] if buf.stack else ctx[1],
                pid=_PID, args=args,
            )
        )

    def absorb(
        self,
        spans: list[Span],
        trace_id: str | None = None,
        parent_id: int | None = None,
    ) -> None:
        """Merge completed spans recorded elsewhere into this tracer.

        Used by the process-backed SPMD launcher and the serve
        supervisor: each rank/worker process records into its own tracer
        (sharing this tracer's epoch, since ``perf_counter`` is
        system-wide on the platforms we run on) and ships its spans back
        at join; absorbing them here keeps span counts and per-rank
        lanes identical to the thread backend.

        ``trace_id``/``parent_id`` sew the causal tree across the
        process boundary: the absorbed process's *root* spans
        (``parent_id == 0``) are re-parented under ``parent_id`` —
        normally the launch span that forked the worker — and every
        span of such an *unanchored* trace (one whose root dangles)
        adopts ``trace_id``.  Spans whose trace was already anchored by
        a propagated context (their roots point at a cross-process
        parent) pass through untouched, so absorbing an
        already-contextualised worker batch is a no-op.
        """
        orphan_traces = {s.trace_id for s in spans if s.parent_id == 0}
        merged: list[Span] = []
        for s in spans:
            patch = {}
            if trace_id is not None and (
                not s.trace_id or s.trace_id in orphan_traces
            ):
                patch["trace_id"] = trace_id
            if parent_id is not None and s.parent_id == 0:
                patch["parent_id"] = parent_id
            merged.append(dataclasses.replace(s, **patch) if patch else s)
        buf = _ThreadBuf()
        buf.spans = merged
        with self._lock:
            self._bufs.append(buf)

    @property
    def spans(self) -> list[Span]:
        """All completed spans of all threads, ordered by start time."""
        with self._lock:
            bufs = list(self._bufs)
        out: list[Span] = []
        for buf in bufs:
            out.extend(buf.spans)
        out.sort(key=lambda s: (s.t_start, s.rank))
        return out

    def count(self, name: str | None = None, cat: str | None = None) -> int:
        """Number of completed spans matching ``name`` and/or ``cat``."""
        return sum(
            1
            for s in self.spans
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
        )

    def total_duration(self, name: str) -> float:
        """Summed duration (seconds) of all spans named ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def durations(self, name: str) -> list[float]:
        """Durations (seconds) of all spans named ``name``, in order."""
        return [s.duration for s in self.spans if s.name == name]


#: the process-global active tracer; ``None`` means tracing is disabled
_active: SpanTracer | None = None


def active_tracer() -> SpanTracer | None:
    return _active


def set_active(tracer: SpanTracer | None) -> SpanTracer | None:
    """Install (or clear, with ``None``) the active tracer; returns the
    previous one so callers can restore it."""
    global _active
    prev = _active
    _active = tracer
    return prev


def enable(tracer: SpanTracer | None = None) -> SpanTracer:
    """Activate tracing globally; returns the (possibly new) tracer."""
    tracer = tracer if tracer is not None else SpanTracer()
    set_active(tracer)
    return tracer


def disable() -> None:
    """Deactivate tracing globally (instrumentation reverts to no-ops)."""
    set_active(None)


@contextmanager
def tracing(tracer: SpanTracer | None = None):
    """Scope-bound activation: ``with tracing() as t: ... t.spans``."""
    t = tracer if tracer is not None else SpanTracer()
    prev = set_active(t)
    try:
        yield t
    finally:
        set_active(prev)


def span(name: str, cat: str = "core", args: dict | None = None):
    """The instrumentation entry point: a context manager that records a
    wall-clock span into the active tracer, or a shared no-op when
    tracing is disabled."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return _LiveSpan(tracer, name, cat, args)


def point(name: str, cat: str = "core", args: dict | None = None) -> None:
    """Record an instant span into the active tracer (no-op when off)."""
    tracer = _active
    if tracer is not None:
        tracer.point(name, cat, args)


def traced(name: str, cat: str = "core"):
    """Decorator form of :func:`span` for whole-function spans."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(name, cat):
                return fn(*args, **kwargs)

        return wrapped

    return deco
