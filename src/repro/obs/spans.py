"""Low-overhead wall-clock span tracing for the executed core.

A :class:`SpanTracer` records nested, named wall-clock spans — ``step >
tendency > adaptation/C/advection > halo-exchange`` — from every thread
that runs instrumented code (the simulated-MPI rank threads included).
Instrumentation sites call the module-level :func:`span` context manager;
when no tracer is active (the default) it returns a shared no-op object,
so the disabled overhead of an instrumented call site is one global read
plus an empty ``with`` block.

Thread/rank model
-----------------
Spans are buffered per thread with no locking on the hot path; the
buffers are merged (sorted by start time) when :attr:`SpanTracer.spans`
is read.  The SPMD launcher labels each rank thread via :func:`set_rank`,
so spans recorded inside a rank program carry their simulated rank;
spans from unlabelled threads (the serial core, the driver) carry rank
``-1`` and are exported as the ``main`` lane.

Timebase: ``time.perf_counter()`` seconds relative to the tracer's
construction (``epoch``).  This is *real* elapsed time, deliberately
distinct from the simulated cluster's logical clocks — the Chrome-trace
exporter puts both on separate process lanes of the same timeline.
"""
from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One completed wall-clock span."""

    name: str
    cat: str
    t_start: float  # seconds since the tracer's epoch
    t_end: float
    rank: int       # simulated rank, or -1 for unlabelled threads
    tid: int        # OS thread ident (display/debug only)
    depth: int      # nesting depth within the recording thread

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: thread-local simulated-rank label (see :func:`set_rank`)
_rank_local = threading.local()


def set_rank(rank: int) -> int:
    """Label this thread's subsequent spans with a simulated rank.

    Returns the previous label so callers can restore it (``-1`` when
    none was set) — the SPMD launcher does exactly that around each rank
    program so the serial fast path does not leak a rank label onto the
    caller's thread.
    """
    prev = getattr(_rank_local, "value", -1)
    _rank_local.value = rank
    return prev


def current_rank() -> int:
    """The simulated-rank label of the calling thread (-1 if none)."""
    return getattr(_rank_local, "value", -1)


class _ThreadBuf:
    """Per-thread span buffer (append without locking)."""

    __slots__ = ("spans", "depth")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.depth = 0


class _LiveSpan:
    """An open span; closes (and records) on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_cat", "_buf", "_depth", "_t0")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat

    def __enter__(self) -> "_LiveSpan":
        buf = self._tracer._thread_buf()
        self._buf = buf
        self._depth = buf.depth
        buf.depth += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        buf = self._buf
        buf.depth -= 1
        epoch = self._tracer.epoch
        buf.spans.append(
            Span(
                name=self._name,
                cat=self._cat,
                t_start=self._t0 - epoch,
                t_end=t1 - epoch,
                rank=getattr(_rank_local, "value", -1),
                tid=threading.get_ident(),
                depth=self._depth,
            )
        )
        return False


class SpanTracer:
    """Collects wall-clock spans from any number of threads."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._bufs: list[_ThreadBuf] = []
        self._tls = threading.local()

    def _thread_buf(self) -> _ThreadBuf:
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = _ThreadBuf()
            self._tls.buf = buf
            with self._lock:
                self._bufs.append(buf)
        return buf

    def span(self, name: str, cat: str = "core") -> _LiveSpan:
        """An open span context manager recording into this tracer."""
        return _LiveSpan(self, name, cat)

    def absorb(self, spans: list[Span]) -> None:
        """Merge completed spans recorded elsewhere into this tracer.

        Used by the process-backed SPMD launcher: each rank process
        records into its own tracer (sharing this tracer's epoch, since
        ``perf_counter`` is system-wide on the platforms we run on) and
        ships its spans back at join; absorbing them here keeps span
        counts and per-rank lanes identical to the thread backend.
        """
        buf = _ThreadBuf()
        buf.spans = list(spans)
        with self._lock:
            self._bufs.append(buf)

    @property
    def spans(self) -> list[Span]:
        """All completed spans of all threads, ordered by start time."""
        with self._lock:
            bufs = list(self._bufs)
        out: list[Span] = []
        for buf in bufs:
            out.extend(buf.spans)
        out.sort(key=lambda s: (s.t_start, s.rank))
        return out

    def count(self, name: str | None = None, cat: str | None = None) -> int:
        """Number of completed spans matching ``name`` and/or ``cat``."""
        return sum(
            1
            for s in self.spans
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
        )

    def total_duration(self, name: str) -> float:
        """Summed duration (seconds) of all spans named ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def durations(self, name: str) -> list[float]:
        """Durations (seconds) of all spans named ``name``, in order."""
        return [s.duration for s in self.spans if s.name == name]


#: the process-global active tracer; ``None`` means tracing is disabled
_active: SpanTracer | None = None


def active_tracer() -> SpanTracer | None:
    return _active


def set_active(tracer: SpanTracer | None) -> SpanTracer | None:
    """Install (or clear, with ``None``) the active tracer; returns the
    previous one so callers can restore it."""
    global _active
    prev = _active
    _active = tracer
    return prev


def enable(tracer: SpanTracer | None = None) -> SpanTracer:
    """Activate tracing globally; returns the (possibly new) tracer."""
    tracer = tracer if tracer is not None else SpanTracer()
    set_active(tracer)
    return tracer


def disable() -> None:
    """Deactivate tracing globally (instrumentation reverts to no-ops)."""
    set_active(None)


@contextmanager
def tracing(tracer: SpanTracer | None = None):
    """Scope-bound activation: ``with tracing() as t: ... t.spans``."""
    t = tracer if tracer is not None else SpanTracer()
    prev = set_active(t)
    try:
        yield t
    finally:
        set_active(prev)


def span(name: str, cat: str = "core"):
    """The instrumentation entry point: a context manager that records a
    wall-clock span into the active tracer, or a shared no-op when
    tracing is disabled."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return _LiveSpan(tracer, name, cat)


def traced(name: str, cat: str = "core"):
    """Decorator form of :func:`span` for whole-function spans."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with span(name, cat):
                return fn(*args, **kwargs)

        return wrapped

    return deco
