"""``python -m repro.obs.report`` — summarise exported observations.

Reads either a Chrome-trace JSON (``.json``, as written by
``Observation.write_chrome_trace`` / ``--chrome-trace``) or a JSONL
event log (as written by ``Observation.write_jsonl``) and prints a
span-count/duration breakdown plus, for JSONL, the physics-telemetry
trajectory.  Format is auto-detected from the file contents.
"""
from __future__ import annotations

import argparse
import json
from collections import defaultdict
from pathlib import Path


def _is_chrome_trace(path: Path) -> bool:
    with path.open() as fh:
        head = fh.read(1)
        while head.isspace():
            head = fh.read(1)
    return head in ("{", "[")  # JSONL starts with {, but on every line


def _detect_format(path: Path) -> str:
    """``"chrome"`` or ``"jsonl"``, sniffed from the first record."""
    first = ""
    with path.open() as fh:
        for line in fh:
            if line.strip():
                first = line.strip()
                break
    if not first:
        return "jsonl"
    try:
        rec = json.loads(first)
    except json.JSONDecodeError:
        return "chrome"  # single multi-line JSON document
    if isinstance(rec, dict) and rec.get("type") in (
        "span", "telemetry", "metric"
    ):
        return "jsonl"
    return "chrome"


def _span_table(rows: dict[tuple[str, str], list[float]]) -> list[str]:
    lines = [
        f"  {'name':<24} {'cat':<12} {'count':>6} "
        f"{'total_s':>10} {'mean_ms':>9}"
    ]
    for (name, cat), durs in sorted(
        rows.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durs)
        mean_ms = 1e3 * total / len(durs) if durs else 0.0
        lines.append(
            f"  {name:<24} {cat:<12} {len(durs):>6} "
            f"{total:>10.4f} {mean_ms:>9.3f}"
        )
    return lines


def report_chrome(path: Path) -> str:
    from repro.obs.exporters import duration_events, load_chrome_trace

    doc = load_chrome_trace(path)
    events = duration_events(doc)
    lanes = {(e.get("pid", 0), e.get("tid", 0)) for e in events}
    rows: dict[tuple[str, str], list[float]] = defaultdict(list)
    for e in events:
        rows[(e.get("name", "?"), e.get("cat", "?"))].append(
            e.get("dur", 0.0) / 1e6
        )
    lines = [
        f"{path}: Chrome trace, {len(events)} events on {len(lanes)} lanes"
    ]
    lines.extend(_span_table(rows))
    steps = sum(len(d) for (n, _), d in rows.items() if n == "step")
    if steps:
        per_step = {
            name: len(durs) / steps
            for (name, _), durs in rows.items()
            if name != "step"
        }
        exch = per_step.get("halo-exchange")
        if exch is not None:
            lines.append(f"  halo exchanges per step: {exch:g}")
    return "\n".join(lines)


def report_jsonl(path: Path) -> str:
    from repro.obs.exporters import read_jsonl

    records = read_jsonl(path)
    spans = [r for r in records if r.get("type") == "span"]
    telem = [r for r in records if r.get("type") == "telemetry"]
    metrics = [r for r in records if r.get("type") == "metric"]
    lines = [
        f"{path}: JSONL log — {len(spans)} spans, "
        f"{len(telem)} telemetry records, {len(metrics)} metric samples"
    ]
    if spans:
        rows: dict[tuple[str, str], list[float]] = defaultdict(list)
        for s in spans:
            rows[(s["name"], s.get("cat", "?"))].append(
                s["t_end"] - s["t_start"]
            )
        lines.extend(_span_table(rows))
    if telem:
        first, last = telem[0], telem[-1]
        lines.append(
            f"  telemetry steps {first['step']}..{last['step']}: "
            f"mass {first['mass']:+.4e} -> {last['mass']:+.4e}, "
            f"energy {first['energy']:.4e} -> {last['energy']:.4e}, "
            f"peak max|V| {max(t['max_wind'] for t in telem):.3f} m/s"
        )
        bad = [t["step"] for t in telem if not t.get("finite", True)]
        if bad:
            lines.append(f"  NON-FINITE fields first seen at step {bad[0]}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a Chrome-trace JSON or obs JSONL log.",
    )
    parser.add_argument("paths", nargs="+", help="exported files to read")
    parser.add_argument(
        "--format", choices=("auto", "chrome", "jsonl"), default="auto"
    )
    ns = parser.parse_args(argv)
    for raw in ns.paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"{path}: no such file")
        fmt = ns.format if ns.format != "auto" else _detect_format(path)
        print(report_chrome(path) if fmt == "chrome" else report_jsonl(path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
