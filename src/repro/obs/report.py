"""``python -m repro.obs.report`` — summarise exported observations.

Reads a Chrome-trace JSON (as written by
``Observation.write_chrome_trace`` / ``--chrome-trace``), a JSONL event
log (``Observation.write_jsonl``), or a flight-recorder dump
(:mod:`repro.obs.flightrec`) and prints a span-count/duration breakdown
— plus, for JSONL, the physics-telemetry trajectory, and for flight
dumps, the last events before death.  Format is auto-detected from the
file contents; ``--top N`` adds a table of the N slowest individual
spans for quick triage without opening a trace viewer.
"""
from __future__ import annotations

import argparse
import json
from collections import defaultdict
from pathlib import Path


def _is_chrome_trace(path: Path) -> bool:
    with path.open() as fh:
        head = fh.read(1)
        while head.isspace():
            head = fh.read(1)
    return head in ("{", "[")  # JSONL starts with {, but on every line


def _detect_format(path: Path) -> str:
    """``"chrome"``, ``"jsonl"`` or ``"flight"``, sniffed from the file."""
    first = ""
    with path.open() as fh:
        for line in fh:
            if line.strip():
                first = line.strip()
                break
    if not first:
        return "jsonl"
    try:
        rec = json.loads(first)
    except json.JSONDecodeError:
        # single multi-line JSON document: chrome trace or flight dump
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            return "chrome"
        if isinstance(doc, dict) and "flight_schema" in doc:
            return "flight"
        return "chrome"
    if isinstance(rec, dict) and "flight_schema" in rec:
        return "flight"
    if isinstance(rec, dict) and rec.get("type") in (
        "span", "telemetry", "metric"
    ):
        return "jsonl"
    return "chrome"


def _top_table(spans: list[dict], top: int) -> list[str]:
    """The ``top`` slowest individual spans, one line each.

    ``spans`` are dicts with name/cat/dur (seconds) plus optional
    rank/trace_id — the summarisers normalise both chrome events and
    JSONL records into this shape.
    """
    ranked = sorted(spans, key=lambda s: -s.get("dur", 0.0))[:top]
    lines = [
        f"  top {len(ranked)} slowest spans:",
        f"    {'dur_ms':>10} {'name':<24} {'cat':<12} {'rank':>4}  trace_id",
    ]
    for s in ranked:
        rank = s.get("rank")
        lines.append(
            f"    {1e3 * s.get('dur', 0.0):>10.3f} "
            f"{s.get('name', '?'):<24} {s.get('cat', '?'):<12} "
            f"{rank if rank is not None else '-':>4}  "
            f"{s.get('trace_id') or '-'}"
        )
    return lines


def _span_table(rows: dict[tuple[str, str], list[float]]) -> list[str]:
    lines = [
        f"  {'name':<24} {'cat':<12} {'count':>6} "
        f"{'total_s':>10} {'mean_ms':>9}"
    ]
    for (name, cat), durs in sorted(
        rows.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durs)
        mean_ms = 1e3 * total / len(durs) if durs else 0.0
        lines.append(
            f"  {name:<24} {cat:<12} {len(durs):>6} "
            f"{total:>10.4f} {mean_ms:>9.3f}"
        )
    return lines


def report_chrome(path: Path, top: int = 0) -> str:
    from repro.obs.exporters import duration_events, load_chrome_trace

    doc = load_chrome_trace(path)
    events = duration_events(doc)
    lanes = {(e.get("pid", 0), e.get("tid", 0)) for e in events}
    rows: dict[tuple[str, str], list[float]] = defaultdict(list)
    for e in events:
        rows[(e.get("name", "?"), e.get("cat", "?"))].append(
            e.get("dur", 0.0) / 1e6
        )
    lines = [
        f"{path}: Chrome trace, {len(events)} events on {len(lanes)} lanes"
    ]
    lines.extend(_span_table(rows))
    if top:
        flat = [
            {
                "name": e.get("name", "?"),
                "cat": e.get("cat", "?"),
                "dur": e.get("dur", 0.0) / 1e6,
                "rank": (e.get("args") or {}).get("rank"),
                "trace_id": (e.get("args") or {}).get("trace_id"),
            }
            for e in events
        ]
        lines.extend(_top_table(flat, top))
    steps = sum(len(d) for (n, _), d in rows.items() if n == "step")
    if steps:
        per_step = {
            name: len(durs) / steps
            for (name, _), durs in rows.items()
            if name != "step"
        }
        exch = per_step.get("halo-exchange")
        if exch is not None:
            lines.append(f"  halo exchanges per step: {exch:g}")
    return "\n".join(lines)


def report_jsonl(path: Path, top: int = 0) -> str:
    from repro.obs.exporters import read_jsonl

    records = read_jsonl(path)
    spans = [r for r in records if r.get("type") == "span"]
    telem = [r for r in records if r.get("type") == "telemetry"]
    metrics = [r for r in records if r.get("type") == "metric"]
    lines = [
        f"{path}: JSONL log — {len(spans)} spans, "
        f"{len(telem)} telemetry records, {len(metrics)} metric samples"
    ]
    if spans:
        rows: dict[tuple[str, str], list[float]] = defaultdict(list)
        for s in spans:
            rows[(s["name"], s.get("cat", "?"))].append(
                s["t_end"] - s["t_start"]
            )
        lines.extend(_span_table(rows))
        if top:
            flat = [
                {
                    "name": s["name"],
                    "cat": s.get("cat", "?"),
                    "dur": s["t_end"] - s["t_start"],
                    "rank": s.get("rank"),
                    "trace_id": s.get("trace_id"),
                }
                for s in spans
            ]
            lines.extend(_top_table(flat, top))
    if telem:
        first, last = telem[0], telem[-1]
        lines.append(
            f"  telemetry steps {first['step']}..{last['step']}: "
            f"mass {first['mass']:+.4e} -> {last['mass']:+.4e}, "
            f"energy {first['energy']:.4e} -> {last['energy']:.4e}, "
            f"peak max|V| {max(t['max_wind'] for t in telem):.3f} m/s"
        )
        bad = [t["step"] for t in telem if not t.get("finite", True)]
        if bad:
            lines.append(f"  NON-FINITE fields first seen at step {bad[0]}")
    return "\n".join(lines)


def report_flight(path: Path, last: int = 12) -> str:
    """Summarise a flight-recorder dump: who died, why, doing what."""
    from repro.obs.flightrec import load_dump

    doc = load_dump(path)
    meta = doc.get("meta") or {}
    who = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    lines = [
        f"{path}: flight recording — pid {doc.get('pid', '?')}"
        + (f" ({who})" if who else ""),
        f"  reason: {doc.get('reason', '?')}",
    ]
    events = doc.get("events") or []
    lines.append(f"  {len(events)} events in ring; last {min(last, len(events))}:")
    t_dump = doc.get("dumped_at")
    for ev in events[-last:]:
        age = ""
        if t_dump is not None and "t" in ev:
            age = f"  t-{t_dump - ev['t']:.3f}s"
        fields = ", ".join(
            f"{k}={v}" for k, v in ev.items() if k not in ("t", "kind")
        )
        lines.append(f"    {ev.get('kind', '?'):<12} {fields}{age}")
    tail = doc.get("spans_tail") or []
    if tail:
        open_names = [s["name"] for s in tail[-3:]]
        lines.append(
            f"  last spans before death: {', '.join(open_names)}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Summarise a Chrome-trace JSON, obs JSONL log, or "
            "flight-recorder dump."
        ),
    )
    parser.add_argument("paths", nargs="+", help="exported files to read")
    parser.add_argument(
        "--format",
        choices=("auto", "chrome", "jsonl", "flight"),
        default="auto",
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also list the N slowest individual spans",
    )
    ns = parser.parse_args(argv)
    for raw in ns.paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"{path}: no such file")
        fmt = ns.format if ns.format != "auto" else _detect_format(path)
        if fmt == "flight":
            print(report_flight(path))
        elif fmt == "chrome":
            print(report_chrome(path, top=ns.top))
        else:
            print(report_jsonl(path, top=ns.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
