"""Post-mortem flight recorder: a bounded ring of recent events per worker.

A watchdog-killed worker used to die silently — the supervisor knew
*that* it wedged, but the worker's last moments were lost.  A
:class:`FlightRecorder` keeps a fixed-size ring (``deque(maxlen=...)``)
of recent structured events — job assignments, heartbeats, log records,
anything :meth:`note`-worthy — entirely in memory, costing one dict
append per event, and flushes it to disk only when something goes wrong:

* **SIGTERM** (the first rung of the supervisor's kill escalation):
  :meth:`install_signal_handler` arms a handler that dumps the ring and
  then re-raises the default disposition, so the process still dies
  promptly and SIGKILL escalation is never needed for a healthy-enough
  worker.
* **explicitly**: callers dump on crash paths (the serve supervisor
  writes a kill record from its side whenever it reaps a worker, so even
  a SIGKILL'd or hard-crashed child leaves an artifact).

Dumps are single JSON documents (``flight_schema`` versioned) written
atomically; :mod:`repro.obs.report` summarizes them (`the last events
before death, per worker`).  A module-level default recorder makes the
integration one-liner-cheap: ``flightrec.install(path, meta=...)`` in
the worker entry point, ``flightrec.note(kind, **fields)`` anywhere —
a no-op when nothing is installed.
"""
from __future__ import annotations

import json
import logging
import os
import signal
import time
from collections import deque
from pathlib import Path

#: schema version of the dump document
FLIGHT_SCHEMA = 1

#: default ring capacity (events kept per worker)
DEFAULT_CAPACITY = 256


class _RecorderLogHandler(logging.Handler):
    """Routes log records into the recorder's ring."""

    def __init__(self, recorder: "FlightRecorder") -> None:
        super().__init__(level=logging.WARNING)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._recorder.note(
                "log", level=record.levelname, logger=record.name,
                message=record.getMessage(),
            )
        except Exception:  # never let observability break the workload
            pass


class FlightRecorder:
    """Bounded in-memory event ring, dumped to ``path`` on demand."""

    def __init__(
        self,
        path: str | Path,
        capacity: int = DEFAULT_CAPACITY,
        meta: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.meta = dict(meta or {})
        self.events: deque[dict] = deque(maxlen=capacity)
        self.dumped = False
        self._log_handler: _RecorderLogHandler | None = None
        self._prev_sigterm = None

    # ---- recording -------------------------------------------------------
    def note(self, kind: str, **fields) -> None:
        """Append one event to the ring (cheap; overwrites the oldest)."""
        self.events.append({"t": time.time(), "kind": kind, **fields})

    def attach_log_handler(
        self, logger: logging.Logger | None = None
    ) -> None:
        """Mirror WARNING+ log records of ``logger`` (root by default)
        into the ring."""
        if self._log_handler is not None:
            return
        self._log_handler = _RecorderLogHandler(self)
        (logger or logging.getLogger()).addHandler(self._log_handler)

    # ---- dumping ---------------------------------------------------------
    def dump(self, reason: str) -> Path:
        """Write the ring (plus any active tracer's span tail) to disk."""
        from repro.obs.exporters import write_text_atomic
        from repro.obs.spans import active_tracer

        spans_tail = []
        tracer = active_tracer()
        if tracer is not None:
            for s in tracer.spans[-32:]:
                spans_tail.append({
                    "name": s.name, "cat": s.cat,
                    "t_start": s.t_start, "t_end": s.t_end,
                    "rank": s.rank, "trace_id": s.trace_id,
                    "span_id": s.span_id, "parent_id": s.parent_id,
                })
        doc = {
            "flight_schema": FLIGHT_SCHEMA,
            "reason": reason,
            "pid": os.getpid(),
            "meta": self.meta,
            "dumped_at": time.time(),
            "events": list(self.events),
            "spans_tail": spans_tail,
        }
        out = write_text_atomic(self.path, json.dumps(doc, indent=1) + "\n")
        self.dumped = True
        return out

    # ---- signal integration ---------------------------------------------
    def install_signal_handler(self, signum: int = signal.SIGTERM) -> None:
        """Dump-then-die on ``signum`` (main thread only).

        The handler writes the ring, restores the default disposition,
        and re-raises the signal against this process — so the observed
        exit status is indistinguishable from an uninstrumented kill and
        the supervisor's TERM→KILL escalation still works if the dump
        itself wedges (the escalation's SIGKILL cannot be caught).
        """

        def _dump_and_die(sig, frame):
            try:
                self.dump(f"signal {signal.Signals(sig).name}")
            finally:
                signal.signal(sig, signal.SIG_DFL)
                os.kill(os.getpid(), sig)

        self._prev_sigterm = signal.signal(signum, _dump_and_die)


# ---------------------------------------------------------------------------
# module-level default recorder (worker-process convenience)
# ---------------------------------------------------------------------------
_installed: FlightRecorder | None = None


def install(
    path: str | Path,
    capacity: int = DEFAULT_CAPACITY,
    meta: dict | None = None,
    signals: bool = True,
    logs: bool = True,
) -> FlightRecorder:
    """Create and arm this process's default recorder."""
    global _installed
    rec = FlightRecorder(path, capacity=capacity, meta=meta)
    if signals:
        rec.install_signal_handler()
    if logs:
        rec.attach_log_handler()
    _installed = rec
    return rec


def get_recorder() -> FlightRecorder | None:
    return _installed


def note(kind: str, **fields) -> None:
    """Record into the default recorder; no-op when none is installed."""
    if _installed is not None:
        _installed.note(kind, **fields)


def load_dump(path: str | Path) -> dict:
    """Read one dump back; raises ``ValueError`` on schema mismatch."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "flight_schema" not in doc:
        raise ValueError(f"{path}: not a flight-recorder dump")
    return doc
