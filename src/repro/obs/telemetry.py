"""Per-step physics telemetry: mass, energy, winds and finiteness.

The paper's algorithms rearrange *communication*; the physics must not
notice.  This module computes, per model step, the handful of global
scalars a production dynamical core watches continuously:

* ``mass`` — the area-weighted mean surface-pressure perturbation (the
  discrete mass proxy of :func:`repro.analysis.energy.global_mean_psa`);
* ``energy`` (and its kinetic / available-potential / surface split) —
  the transformed-variable energy integral of Sec. 2.2;
* ``max_wind`` — :math:`\\max \\sqrt{U^2 + V^2}` over the volume;
* ``max_abs`` and ``finite`` — the NaN/Inf/blowup sentinels the
  resilience layer's blowup guard consumes.

All quantities decompose over block decompositions as plain sums and
maxes, so distributed rank programs record **local partials with zero
extra communication** (the communication-count claims of the paper stay
untouched) and the driver combines them after the run.  Combined values
agree with the serial formulas up to floating-point summation order.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.state.standard_atmosphere import StandardAtmosphere

_REFERENCE = StandardAtmosphere()


@dataclass(frozen=True)
class TelemetryRecord:
    """Global physics scalars after one model step."""

    step: int
    mass: float
    energy: float
    kinetic: float
    available_potential: float
    surface_potential: float
    max_wind: float
    max_abs: float
    finite: bool

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "mass": self.mass,
            "energy": self.energy,
            "kinetic": self.kinetic,
            "available_potential": self.available_potential,
            "surface_potential": self.surface_potential,
            "max_wind": self.max_wind,
            "max_abs": self.max_abs,
            "finite": self.finite,
        }


def block_partials(state, grid, sigma, extent=None) -> dict:
    """Local partial sums/maxes of one interior block (no communication).

    ``state`` is an interior :class:`~repro.state.variables.ModelState`
    (a rank's own block, or the global state with ``extent=None``).
    The weights follow :mod:`repro.analysis.energy`: per-cell area
    ``cell_area / nx`` horizontally, ``dsigma`` vertically.
    """
    area_rows = grid.cell_area() / grid.nx  # (ny,) per-cell area
    dsig = sigma.dsigma
    # The 2-D surface field belongs to the z-root blocks only: in a yz
    # decomposition every z-block of a column sees the same psa, and
    # counting it once per block would multiply the mass by pz.
    owns_surface = extent is None or extent.z0 == 0
    if extent is not None:
        area_rows = area_rows[extent.y0: extent.y1]
        dsig = dsig[extent.z0: extent.z1]
    area2 = area_rows[:, None]
    w3 = dsig[:, None, None] * area2[None]
    wind_sq = state.U**2 + state.V**2
    c_s = constants.R_DRY * _REFERENCE.t_surface_ref
    finite = bool(
        np.isfinite(state.U).all()
        and np.isfinite(state.V).all()
        and np.isfinite(state.Phi).all()
        and np.isfinite(state.psa).all()
    )
    return {
        "psa_area": (
            float(np.sum(state.psa * area2)) if owns_surface else 0.0
        ),
        "kinetic": 0.5 * float(np.sum(wind_sq * w3)),
        "available_potential": 0.5 * float(np.sum(state.Phi**2 * w3)),
        "surface_potential": 0.5 * c_s * float(
            np.sum((state.psa / constants.P_REFERENCE) ** 2 * area2)
        ) if owns_surface else 0.0,
        "max_wind_sq": float(np.max(wind_sq)),
        "max_abs": state.max_abs(),
        "finite": finite,
    }


def combine_partials(step: int, partials: list[dict], grid) -> TelemetryRecord:
    """Reduce per-rank partials (or one global partial) to a record."""
    total_area = float(np.sum(grid.cell_area()))
    kinetic = sum(p["kinetic"] for p in partials)
    ape = sum(p["available_potential"] for p in partials)
    surf = sum(p["surface_potential"] for p in partials)
    return TelemetryRecord(
        step=step,
        mass=sum(p["psa_area"] for p in partials) / total_area,
        energy=kinetic + ape + surf,
        kinetic=kinetic,
        available_potential=ape,
        surface_potential=surf,
        max_wind=float(np.sqrt(max(p["max_wind_sq"] for p in partials))),
        max_abs=max(p["max_abs"] for p in partials),
        finite=all(p["finite"] for p in partials),
    )


def record_for_state(step: int, state, grid, sigma) -> TelemetryRecord:
    """Telemetry record of one *global* interior state (serial path)."""
    return combine_partials(step, [block_partials(state, grid, sigma)], grid)


class TelemetrySeries:
    """An append-only time series of :class:`TelemetryRecord`."""

    def __init__(self) -> None:
        self.records: list[TelemetryRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: TelemetryRecord) -> None:
        self.records.append(record)

    def extend(self, records) -> None:
        self.records.extend(records)

    def steps(self) -> list[int]:
        return [r.step for r in self.records]

    def column(self, name: str) -> list:
        return [getattr(r, name) for r in self.records]

    def first_nonfinite_step(self) -> int | None:
        """The earliest recorded step with NaN/Inf fields, or ``None``."""
        for r in self.records:
            if not r.finite:
                return r.step
        return None

    def as_dicts(self) -> list[dict]:
        return [r.as_dict() for r in self.records]

    def summary(self) -> str:
        if not self.records:
            return "telemetry: (empty)"
        first, last = self.records[0], self.records[-1]
        drift = (
            (last.energy - first.energy) / first.energy
            if first.energy
            else 0.0
        )
        lines = [
            f"telemetry: {len(self.records)} steps "
            f"[{first.step}..{last.step}]",
            f"  mass    {first.mass:+.6e} -> {last.mass:+.6e}",
            f"  energy  {first.energy:.6e} -> {last.energy:.6e} "
            f"(drift {drift:+.3%})",
            f"  max|V|  peak {max(r.max_wind for r in self.records):.3f} m/s",
        ]
        bad = self.first_nonfinite_step()
        if bad is not None:
            lines.append(f"  NON-FINITE fields first seen at step {bad}")
        return "\n".join(lines)
