"""A small metrics registry: counters, gauges and histograms.

The registry is the numeric (non-timeline) half of the observability
layer.  It absorbs the per-rank :class:`~repro.simmpi.stats.CommStats`
counters and the :class:`~repro.core.workspace.Workspace` pool counters
of a run, and anything else instrumented code wants to record, and
exports either a JSON-friendly dict or a Prometheus text-format dump
(``# HELP`` / ``# TYPE`` / samples), so the numbers land directly in
standard scrape tooling.

Metrics are identified by name plus an optional, frozen label set —
``registry.counter("simmpi_p2p_messages_total", rank="3")`` — and
metric objects are get-or-create, so repeated absorption of chunked
(resilient) runs accumulates rather than overwrites.
"""
from __future__ import annotations

import math
import threading

#: default histogram bucket upper bounds (seconds-oriented)
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (set wins; no monotonicity)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (Prometheus cumulative-``le`` semantics).

    Each bucket (plus the +Inf overflow) keeps the most recent exemplar
    — a ``(value, trace_id)`` pair — so a latency outlier in a scrape
    links straight back to the causal trace that produced it.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "exemplars")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        self.counts = [0] * len(self.buckets)  # per-bucket (non-cumulative)
        self.count = 0
        self.sum = 0.0
        # one slot per bucket + the +Inf overflow; latest observation wins
        self.exemplars: list[tuple[float, str] | None] = (
            [None] * (len(self.buckets) + 1)
        )

    def observe(self, value: float, trace_id: str | None = None) -> None:
        self.count += 1
        self.sum += value
        slot = len(self.buckets)  # +Inf overflow
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                slot = i
                break
        if trace_id:
            self.exemplars[slot] = (value, trace_id)

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf excluded."""
        out, running = [], 0
        for ub, c in zip(self.buckets, self.counts):
            running += c
            out.append((ub, running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Linear interpolation inside the bucket that holds the target
        rank; observations past the last finite bucket clamp to its
        upper bound.  ``nan`` when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        lower = 0.0
        for ub, running in self.cumulative():
            if running >= target:
                bucket_n = self.counts[self.buckets.index(ub)]
                prev = running - bucket_n
                frac = (target - prev) / bucket_n if bucket_n else 0.0
                return lower + (ub - lower) * frac
            lower = ub
        return self.buckets[-1]

    def summary(self) -> dict:
        """``{count, sum, mean, p50, p99}`` snapshot of this histogram."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else math.nan,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample-value rendering (``NaN``/``+Inf``/``-Inf``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def _format_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _exemplar_suffix(exemplar: tuple[float, str] | None) -> str:
    """OpenMetrics exemplar annotation for one bucket line (or '')."""
    if exemplar is None:
        return ""
    value, trace_id = exemplar
    return (
        f' # {{trace_id="{_escape_label(trace_id)}"}} {_format_value(value)}'
    )


class MetricsRegistry:
    """Name- and label-keyed collection of counters/gauges/histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, tuple[str, str]] = {}  # name -> (kind, help)
        self._metrics: dict[str, dict[tuple, object]] = {}

    def _get(self, kind: str, name: str, help: str, factory, labels):
        key = _label_key(labels)
        with self._lock:
            seen = self._kinds.get(name)
            if seen is None:
                self._kinds[name] = (kind, help)
            elif seen[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen[0]}, "
                    f"requested {kind}"
                )
            family = self._metrics.setdefault(name, {})
            metric = family.get(key)
            if metric is None:
                metric = factory()
                family[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, Counter, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, Gauge, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get(
            "histogram", name, help, lambda: Histogram(buckets), labels
        )

    # ---- export -----------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-friendly snapshot: ``{name: {kind, help, samples: [...]}}``."""
        with self._lock:
            kinds = dict(self._kinds)
            metrics = {n: dict(fam) for n, fam in self._metrics.items()}
        out: dict = {}
        for name in sorted(metrics):
            kind, help = kinds[name]
            samples = []
            for key in sorted(metrics[name]):
                m = metrics[name][key]
                labels = dict(key)
                if isinstance(m, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": m.count,
                            "sum": m.sum,
                            "buckets": {
                                str(ub): c for ub, c in m.cumulative()
                            },
                            "summary": m.summary(),
                            "exemplars": {
                                str(ub): {"value": ex[0], "trace_id": ex[1]}
                                for ub, ex in zip(
                                    (*m.buckets, "+Inf"), m.exemplars
                                )
                                if ex is not None
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": m.value})
            out[name] = {"kind": kind, "help": help, "samples": samples}
        return out

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format of every metric."""
        with self._lock:
            kinds = dict(self._kinds)
            metrics = {n: dict(fam) for n, fam in self._metrics.items()}
        lines: list[str] = []
        for name in sorted(metrics):
            kind, help = kinds[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(metrics[name]):
                m = metrics[name][key]
                if isinstance(m, Histogram):
                    for i, (ub, c) in enumerate(m.cumulative()):
                        le = f'le="{ub:g}"'
                        lines.append(
                            f"{name}_bucket{_format_labels(key, le)} {c}"
                            f"{_exemplar_suffix(m.exemplars[i])}"
                        )
                    le_inf = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket{_format_labels(key, le_inf)} "
                        f"{m.count}{_exemplar_suffix(m.exemplars[-1])}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{_format_value(m.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {m.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(m.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# absorbers: existing counter sources -> registry
# ---------------------------------------------------------------------------
def absorb_comm_stats(registry: MetricsRegistry, stats, rank: int) -> None:
    """Accumulate one rank's :class:`CommStats` into the registry."""
    r = str(rank)
    for field, name, help in (
        ("p2p_messages_sent", "simmpi_p2p_messages_sent_total",
         "point-to-point messages sent"),
        ("p2p_messages_received", "simmpi_p2p_messages_received_total",
         "point-to-point messages received"),
        ("p2p_bytes_sent", "simmpi_p2p_bytes_sent_total",
         "point-to-point payload bytes sent"),
        ("p2p_bytes_received", "simmpi_p2p_bytes_received_total",
         "point-to-point payload bytes received"),
        ("collective_ops", "simmpi_collective_ops_total",
         "collective operations"),
        ("collective_bytes", "simmpi_collective_bytes_total",
         "modelled bytes moved in collectives"),
        ("synchronizations", "simmpi_synchronizations_total",
         "forced waits on another rank"),
        ("faults_injected", "simmpi_faults_total",
         "injected/detected fault events"),
        ("retransmits", "simmpi_retransmits_total",
         "failed wire attempts re-sent by the reliable transport"),
        ("breaker_trips", "simmpi_breaker_trips_total",
         "per-link circuit breakers tripped open"),
        ("messages_lost", "simmpi_messages_lost_total",
         "permanently lost messages detected as sequence gaps"),
    ):
        registry.counter(name, help, rank=r).inc(getattr(stats, field))
    for field, name, help in (
        ("compute_time", "simmpi_compute_seconds_total",
         "logical compute seconds"),
        ("p2p_time", "simmpi_p2p_seconds_total",
         "logical point-to-point seconds"),
        ("collective_time", "simmpi_collective_seconds_total",
         "logical collective seconds"),
        ("retransmit_time", "simmpi_retransmit_seconds_total",
         "logical seconds lost to retransmit detection and backoff"),
    ):
        registry.counter(name, help, rank=r).inc(getattr(stats, field))
    for tag, seconds in stats.tagged_time.items():
        registry.counter(
            "simmpi_phase_seconds_total", "logical seconds per phase tag",
            rank=r, phase=tag,
        ).inc(seconds)


def absorb_workspace_counters(
    registry: MetricsRegistry, counters: dict, rank: int
) -> None:
    """Accumulate one rank's workspace pool counters into the registry.

    ``counters`` is the ``{"fresh_allocations", "reuses", "pooled_bytes"}``
    dict a rank program reports (or a serial core's live values).
    """
    r = str(rank)
    registry.counter(
        "workspace_fresh_allocations_total",
        "pool misses that allocated a fresh buffer", rank=r,
    ).inc(counters["fresh_allocations"])
    registry.counter(
        "workspace_reuses_total", "pool hits reusing a parked buffer",
        rank=r,
    ).inc(counters["reuses"])
    registry.gauge(
        "workspace_pooled_bytes", "bytes currently parked in the pool",
        rank=r,
    ).set(counters["pooled_bytes"])


def absorb_overlap_metrics(
    registry: MetricsRegistry, overlap: dict, rank: int
) -> None:
    """Accumulate one rank's task-graph executor metrics into the registry.

    ``overlap`` is the :meth:`ExecutorMetrics.as_dict` payload a rank
    running under ``executor="taskgraph"`` attaches to its result.
    """
    r = str(rank)
    for field, name, help in (
        ("tasks", "taskgraph_tasks_total", "graph tasks executed"),
        ("windows", "taskgraph_windows_total",
         "post->wait communication windows opened"),
        ("early_claims", "taskgraph_early_claims_total",
         "requests claimed by polling before their wait task"),
        ("poll_sweeps", "taskgraph_poll_sweeps_total",
         "nonblocking test() sweeps over in-flight requests"),
    ):
        registry.counter(name, help, rank=r).inc(overlap[field])
    for field, name, help in (
        ("overlap_seconds", "taskgraph_overlap_seconds_total",
         "wall seconds of compute executed inside open comm windows"),
        ("window_seconds", "taskgraph_window_seconds_total",
         "wall seconds the comm windows were open"),
        ("blocked_seconds", "taskgraph_blocked_seconds_total",
         "wall seconds blocked claiming outstanding requests"),
    ):
        registry.counter(name, help, rank=r).inc(overlap[field])
    registry.gauge(
        "taskgraph_max_ready_depth",
        "high-water mark of tasks runnable inside one comm window",
        rank=r,
    ).set(overlap["max_ready_depth"])
