"""Observation configuration and the per-run observation bundle.

``CoreConfig(observe=True)`` (or ``observe=ObsConfig(...)``) turns the
observability layer on for a :class:`~repro.core.driver.DynamicalCore`;
the core then owns an :class:`Observation` — the live tracer, metrics
registry, telemetry series, and captured logical-clock traces — exposed
as ``core.observation`` after (and during) a run.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.obs.telemetry import TelemetrySeries


@dataclass
class ObsConfig:
    """What to observe, and where (optionally) to write it.

    All collection switches default on — construction of an ``ObsConfig``
    *is* the opt-in; ``observe=None``/``False`` on the core config keeps
    the whole layer disabled at near-zero cost.
    """

    spans: bool = True           # wall-clock span tracing
    logical_trace: bool = True   # capture simmpi TraceRecorder events
    metrics: bool = True         # CommStats / workspace -> registry
    telemetry: bool = True       # per-step physics scalars
    chrome_trace: str | None = None  # auto-write Chrome trace here
    jsonl: str | None = None         # auto-write JSONL event log here
    profile: object = None  # sampling profiler: True / Hz / path / config

    def __post_init__(self) -> None:
        if self.profile is not None:
            from repro.obs.profile import ProfileConfig

            self.profile = ProfileConfig.coerce(self.profile)

    @classmethod
    def coerce(cls, value) -> "ObsConfig | None":
        """Normalise a ``CoreConfig.observe`` value.

        ``None``/``False`` -> ``None`` (disabled), ``True`` -> defaults,
        an ``ObsConfig`` passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"observe must be None/bool/ObsConfig, got {type(value).__name__}"
        )


@dataclass
class Observation:
    """The live observability state of one core (possibly many runs)."""

    config: ObsConfig
    tracer: SpanTracer | None = None
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    telemetry: TelemetrySeries = field(default_factory=TelemetrySeries)
    logical_traces: list = field(default_factory=list)
    profiler: object = None  # SamplingProfiler when config.profile is set

    def __post_init__(self) -> None:
        if self.config.spans and self.tracer is None:
            self.tracer = SpanTracer()
        if self.config.profile is not None and self.profiler is None:
            from repro.obs.profile import SamplingProfiler

            self.profiler = SamplingProfiler(self.config.profile)

    @property
    def spans(self) -> list:
        return self.tracer.spans if self.tracer is not None else []

    def chrome_trace(self) -> dict:
        """Chrome-trace document of wall-clock + logical-clock lanes."""
        from repro.obs import exporters

        return exporters.chrome_trace(
            spans=self.spans, recorders=self.logical_traces
        )

    def write_chrome_trace(self, path):
        from repro.obs import exporters

        return exporters.write_chrome_trace(path, self.chrome_trace())

    def write_jsonl(self, path):
        from repro.obs import exporters

        return exporters.write_jsonl(
            path,
            exporters.jsonl_records(
                spans=self.spans,
                telemetry=self.telemetry.records,
                metrics=self.registry.as_dict(),
            ),
        )

    def prometheus_text(self) -> str:
        return self.registry.to_prometheus_text()

    def finalize_outputs(self) -> None:
        """Write any outputs the config asked for (idempotent overwrite)."""
        if self.config.chrome_trace:
            self.write_chrome_trace(self.config.chrome_trace)
        if self.config.jsonl:
            self.write_jsonl(self.config.jsonl)
        if self.profiler is not None and self.config.profile.out is not None:
            self.profiler.write()

    def summary(self) -> str:
        lines = []
        if self.tracer is not None:
            spans = self.tracer.spans
            lines.append(f"spans: {len(spans)} recorded")
            steps = self.tracer.count("step")
            if steps:
                lines.append(
                    f"  step x{steps}  "
                    f"halo-exchange x{self.tracer.count('halo-exchange')}"
                )
        lines.append(self.telemetry.summary())
        return "\n".join(lines)
