"""Parameter sweeps: workload generation over grids, iteration counts and
machine models.

The evaluation-scale figures fix the paper's configuration; these helpers
explore around it — resolution scaling, the M (nonlinear iteration)
sensitivity, and machine-parameter sensitivity of the CA advantage — the
"what if" questions a downstream user asks before adopting the algorithm.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.constants import ModelParameters
from repro.grid.latlon import LatLonGrid
from repro.perf.model import Calibration, PerformanceModel


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's projected comparison."""

    label: str
    nprocs: int
    total_ca: float
    total_yz: float
    total_xy: float

    @property
    def ca_speedup_vs_yz(self) -> float:
        return self.total_yz / self.total_ca

    @property
    def ca_speedup_vs_xy(self) -> float:
        return self.total_xy / self.total_ca


def _compare(model: PerformanceModel, nprocs: int, label: str) -> SweepPoint:
    return SweepPoint(
        label=label,
        nprocs=nprocs,
        total_ca=model.timing("ca", nprocs).total_time,
        total_yz=model.timing("original-yz", nprocs).total_time,
        total_xy=model.timing("original-xy", nprocs).total_time,
    )


def resolution_sweep(
    nprocs: int = 256,
    shapes: list[tuple[int, int, int]] | None = None,
    model_years: float = 10.0,
) -> list[SweepPoint]:
    """CA advantage across horizontal resolutions.

    Default shapes: 2, 1, 0.5 degrees (the paper's mesh is the 0.5-degree
    point).  The time step shrinks proportionally with resolution.
    """
    shapes = shapes or [(180, 90, 30), (360, 180, 30), (720, 360, 30)]
    out = []
    for nx, ny, nz in shapes:
        grid = LatLonGrid(nx=nx, ny=ny, nz=nz)
        dt = PerformanceModel.PAPER_DT * (720 / nx)
        model = PerformanceModel(grid, model_years=model_years, dt_step=dt)
        out.append(_compare(model, nprocs, f"{nx}x{ny}x{nz}"))
    return out


def m_iterations_sweep(
    nprocs: int = 512, m_values: list[int] | None = None
) -> list[SweepPoint]:
    """Sensitivity to the number of nonlinear iterations M.

    Two competing effects: larger M saves more exchanges (the original
    pays 3M + 4, CA always 2) but also widens CA's halos (3M), growing
    the redundant computation quadratically on small blocks.  At the
    paper's block sizes the redundancy effect wins, so the CA *speedup
    ratio* shrinks with M even though CA stays ahead — a trade-off the
    paper does not discuss but the model exposes.
    """
    m_values = m_values or [1, 2, 3, 4]
    out = []
    for m in m_values:
        params = ModelParameters(
            dt_adaptation=60.0, dt_advection=60.0 * m, m_iterations=m
        )
        grid = LatLonGrid(nx=720, ny=360, nz=30)
        model = PerformanceModel(grid, params=params)
        out.append(_compare(model, nprocs, f"M={m}"))
    return out


def latency_sweep(
    nprocs: int = 512, factors: list[float] | None = None
) -> list[SweepPoint]:
    """Sensitivity to network latency (round overhead + sync scale).

    The CA algorithm trades volume for frequency, so its advantage grows
    on higher-latency fabrics and shrinks toward zero-latency ones.
    """
    factors = factors or [0.25, 1.0, 4.0]
    base = Calibration()
    grid = LatLonGrid(nx=720, ny=360, nz=30)
    out = []
    for f in factors:
        cal = Calibration(
            seconds_per_point=base.seconds_per_point,
            beta=base.beta,
            alpha_msg=base.alpha_msg * f,
            round_overhead=base.round_overhead * f,
            sync_base=base.sync_base * f,
            sync_per_doubling=base.sync_per_doubling * f,
        )
        model = PerformanceModel(grid, calibration=cal)
        out.append(_compare(model, nprocs, f"latency x{f:g}"))
    return out


def render_sweep(points: list[SweepPoint], title: str) -> str:
    """Plain-text table of one sweep."""
    lines = [
        title,
        f"{'config':>14} {'CA[s]':>10} {'YZ[s]':>10} {'XY[s]':>10} "
        f"{'CA/YZ':>7} {'CA/XY':>7}",
    ]
    for p in points:
        lines.append(
            f"{p.label:>14} {p.total_ca:>10.0f} {p.total_yz:>10.0f} "
            f"{p.total_xy:>10.0f} {p.ca_speedup_vs_yz:>7.2f} "
            f"{p.ca_speedup_vs_xy:>7.2f}"
        )
    return "\n".join(lines)
