"""Benchmark harness: regenerates every table and figure of the paper's
evaluation section.  ``python -m repro.bench.figures all`` prints them."""
from repro.bench.harness import (
    FigureSeries,
    fig1_comm_fraction,
    fig6_collective_time,
    fig7_stencil_time,
    fig8_total_runtime,
    small_scale_measured,
)

__all__ = [
    "FigureSeries",
    "fig1_comm_fraction",
    "fig6_collective_time",
    "fig7_stencil_time",
    "fig8_total_runtime",
    "small_scale_measured",
]
