"""Experiment harness behind the figure/table regeneration.

Two layers of evidence:

* **projection** — the calibrated :class:`repro.perf.PerformanceModel`
  evaluated at paper scale (720 x 360 x 30, 10 model years, 128..1024
  ranks): this is what the ``fig*`` series report, since no single machine
  can execute 10 model years at 50 km;
* **measurement** — :func:`small_scale_measured` runs the *actual*
  algorithms on the simulated cluster at a reduced scale and returns the
  logical-clock time breakdown, used to validate that the projected
  orderings (who wins, by roughly what factor) also hold for the
  executable implementations.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.constants import ModelParameters
from repro.core.driver import DynamicalCore, StepDiagnostics
from repro.grid.decomposition import Decomposition
from repro.grid.latlon import LatLonGrid, paper_grid
from repro.perf.model import (
    ALGORITHMS,
    PAPER_PROC_SWEEP,
    PerformanceModel,
)
from repro.physics import HeldSuarezForcing, perturbed_rest_state
from repro.state.variables import ModelState


@dataclass
class FigureSeries:
    """One reproduced figure: x-axis process counts and per-algorithm series."""

    figure: str
    description: str
    procs: list[int]
    series: dict[str, list[float]]
    unit: str

    def render(self) -> str:
        """Plain-text rendering (rows = algorithms, columns = p)."""
        lines = [f"{self.figure}: {self.description} [{self.unit}]"]
        header = f"{'algorithm':>14} " + " ".join(f"{p:>12}" for p in self.procs)
        lines.append(header)
        lines.append("-" * len(header))
        for name, values in self.series.items():
            lines.append(
                f"{name:>14} " + " ".join(f"{v:>12.1f}" for v in values)
            )
        return "\n".join(lines)


def _model(grid: LatLonGrid | None = None, **kwargs) -> PerformanceModel:
    return PerformanceModel(grid or paper_grid(), **kwargs)


def fig1_comm_fraction(
    procs: list[int] | None = None, model: PerformanceModel | None = None
) -> FigureSeries:
    """Figure 1: communication vs computation percentage of the dycore
    runtime (original algorithm, both decompositions)."""
    pm = model or _model()
    procs = procs or PAPER_PROC_SWEEP
    series: dict[str, list[float]] = {}
    for alg in ("original-xy", "original-yz"):
        series[f"{alg} comm%"] = [
            100.0 * pm.timing(alg, p).comm_fraction for p in procs
        ]
        series[f"{alg} comp%"] = [
            100.0 * (1.0 - pm.timing(alg, p).comm_fraction) for p in procs
        ]
    return FigureSeries(
        figure="Figure 1",
        description="communication/computation share of dycore runtime",
        procs=procs,
        series=series,
        unit="%",
    )


def fig6_collective_time(
    procs: list[int] | None = None, model: PerformanceModel | None = None
) -> FigureSeries:
    """Figure 6: collective-communication time of the three algorithms."""
    pm = model or _model()
    procs = procs or PAPER_PROC_SWEEP
    series = {
        alg: [pm.timing(alg, p).collective_comm_time for p in procs]
        for alg in ALGORITHMS
    }
    return FigureSeries(
        figure="Figure 6",
        description="time for collective communication (10 model years)",
        procs=procs,
        series=series,
        unit="s",
    )


def fig7_stencil_time(
    procs: list[int] | None = None, model: PerformanceModel | None = None
) -> FigureSeries:
    """Figure 7: communication time of the stencil computation."""
    pm = model or _model()
    procs = procs or PAPER_PROC_SWEEP
    series = {
        alg: [pm.timing(alg, p).stencil_comm_time for p in procs]
        for alg in ALGORITHMS
    }
    return FigureSeries(
        figure="Figure 7",
        description="communication time of stencil (10 model years)",
        procs=procs,
        series=series,
        unit="s",
    )


def fig8_total_runtime(
    procs: list[int] | None = None, model: PerformanceModel | None = None
) -> FigureSeries:
    """Figure 8: total runtime of the dynamical core."""
    pm = model or _model()
    procs = procs or PAPER_PROC_SWEEP
    series = {
        alg: [pm.timing(alg, p).total_time for p in procs]
        for alg in ALGORITHMS
    }
    return FigureSeries(
        figure="Figure 8",
        description="total runtime of dynamical core (10 model years)",
        procs=procs,
        series=series,
        unit="s",
    )


@dataclass
class MeasuredPoint:
    """One executed (algorithm, decomposition) measurement."""

    algorithm: str
    decomp: Decomposition
    diagnostics: StepDiagnostics
    final_state: ModelState


def small_scale_measured(
    grid: LatLonGrid | None = None,
    nsteps: int = 2,
    nprocs: int = 4,
    params: ModelParameters | None = None,
    with_forcing: bool = True,
    algorithms: tuple[str, ...] = ("original-xy", "original-yz", "ca"),
) -> dict[str, MeasuredPoint]:
    """Execute the real algorithms on the simulated cluster.

    Returns per-algorithm diagnostics (logical-clock breakdown + counters)
    and final states, all starting from the same initial condition — the
    ground truth the projection model is validated against in the tests
    and benchmarks.
    """
    grid = grid or LatLonGrid(nx=32, ny=16, nz=8)
    params = params or ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )
    forcing = HeldSuarezForcing() if with_forcing else None
    state0 = perturbed_rest_state(grid, amplitude_k=2.0)
    out: dict[str, MeasuredPoint] = {}
    for alg in algorithms:
        core = DynamicalCore(
            grid,
            algorithm=alg,
            nprocs=nprocs,
            params=params,
            forcing=forcing,
        )
        final, diag = core.run(state0, nsteps)
        out[alg] = MeasuredPoint(
            algorithm=alg,
            decomp=core.config.resolve_decomposition(),
            diagnostics=diag,
            final_state=final,
        )
    return out
