"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench.figures fig1
    python -m repro.bench.figures fig6 fig7 fig8
    python -m repro.bench.figures tables
    python -m repro.bench.figures measured   # executes the real cores
    python -m repro.bench.figures all
"""
from __future__ import annotations

import sys

from repro.analysis.lower_bounds import section53_costs
from repro.bench.harness import (
    fig1_comm_fraction,
    fig6_collective_time,
    fig7_stencil_time,
    fig8_total_runtime,
    small_scale_measured,
)
from repro.grid.latlon import paper_grid
from repro.operators.stencil_meta import (
    TABLE1_ADAPTATION,
    TABLE2_ADVECTION,
    TABLE3_SMOOTHING,
    render_table,
)
from repro.perf.model import PAPER_PROC_SWEEP


def render_tables() -> str:
    """Tables 1-3 as declared stencil footprints."""
    return "\n\n".join(
        [
            render_table(
                TABLE1_ADAPTATION,
                "Table 1: Stencil Computation in Adaptation Process",
            ),
            render_table(
                TABLE2_ADVECTION,
                "Table 2: Stencil Computation in Advection Process",
            ),
            render_table(TABLE3_SMOOTHING, "Table 3: Stencil Computation in Smoothing"),
        ]
    )


def render_sec53() -> str:
    """The Section 5.3 asymptotic W / S costs at paper scale."""
    g = paper_grid()
    lines = ["Section 5.3: asymptotic communication (W) and latency (S) costs"]
    lines.append(f"{'p':>6} {'alg':>6} {'W [words]':>14} {'S [syncs]':>10}")
    from repro.grid.decomposition import xy_decomposition, yz_decomposition

    for p in PAPER_PROC_SWEEP:
        dyz = yz_decomposition(g.nx, g.ny, g.nz, p)
        dxy = xy_decomposition(g.nx, g.ny, g.nz, p)
        for alg, d in (("ca", dyz), ("yz", dyz), ("xy", dxy)):
            c = section53_costs(
                alg, g.nx, g.ny, g.nz, d.px, d.py, d.pz, nsteps=1
            )
            lines.append(f"{p:>6} {alg:>6} {c.W:>14.0f} {c.S:>10.0f}")
    return "\n".join(lines)


def render_measured() -> str:
    """Small-scale executed comparison of the three algorithms."""
    points = small_scale_measured()
    lines = [
        "Executed small-scale comparison (simulated cluster, logical clock)",
        f"{'algorithm':>14} {'decomp':>10} {'stencil[s]':>11} {'collect[s]':>11} "
        f"{'compute[s]':>11} {'msgs':>8} {'c_calls':>8} {'exchanges':>9}",
    ]
    for alg, pt in points.items():
        d = pt.diagnostics
        dec = pt.decomp
        lines.append(
            f"{alg:>14} {f'{dec.px}x{dec.py}x{dec.pz}':>10} "
            f"{d.stencil_comm_time:>11.5f} {d.collective_comm_time:>11.5f} "
            f"{d.compute_time:>11.5f} {d.p2p_messages:>8} {d.c_calls:>8} "
            f"{d.exchanges:>9}"
        )
    return "\n".join(lines)


def render_fig2() -> str:
    """Figure 2: the operator form of the calculating flow, for both
    algorithms."""
    from repro.core.operator_form import render_flow, step_schedule

    return "\n\n".join(
        [
            "Figure 2: the operator form of the calculating flow",
            render_flow(step_schedule("original", "yz", 3)),
            render_flow(step_schedule("ca", "yz", 3)),
        ]
    )


def render_scaling() -> str:
    """Strong-scaling comparison of all algorithms (incl. the 3-D baseline)."""
    from repro.analysis.scaling import scaling_report
    from repro.perf.model import PerformanceModel

    pm = PerformanceModel(paper_grid())
    return scaling_report(
        pm, ["original-xy", "original-yz", "original-3d", "ca"],
        PAPER_PROC_SWEEP,
    )


def render_sweeps() -> str:
    """Parameter sweeps around the paper's configuration."""
    from repro.bench.sweeps import (
        latency_sweep,
        m_iterations_sweep,
        render_sweep,
        resolution_sweep,
    )

    return "\n\n".join(
        [
            render_sweep(resolution_sweep(), "resolution sweep (p = 256)"),
            render_sweep(m_iterations_sweep(), "M sweep (p = 512)"),
            render_sweep(latency_sweep(), "network-latency sweep (p = 512)"),
        ]
    )


def render_imbalance() -> str:
    """Polar-filter load imbalance per decomposition."""
    from repro.analysis.imbalance import compare_decompositions

    g = paper_grid()
    lines = ["polar-filter load imbalance (720x360x30)"]
    lines.append(
        f"{'p':>6} {'decomp':>6} {'imbalance':>10} {'idle ranks':>11}"
    )
    for p in PAPER_PROC_SWEEP:
        for name, rep in compare_decompositions(g, p).items():
            lines.append(
                f"{p:>6} {name:>6} {rep.imbalance_factor:>10.1f} "
                f"{100 * rep.idle_fraction:>10.0f}%"
            )
    return "\n".join(lines)


TARGETS = {
    "fig1": lambda: fig1_comm_fraction().render(),
    "fig2": render_fig2,
    "fig6": lambda: fig6_collective_time().render(),
    "fig7": lambda: fig7_stencil_time().render(),
    "fig8": lambda: fig8_total_runtime().render(),
    "tables": render_tables,
    "sec53": render_sec53,
    "measured": render_measured,
    "scaling": render_scaling,
    "sweeps": render_sweeps,
    "imbalance": render_imbalance,
}


def main(argv: list[str]) -> int:
    targets = argv or ["all"]
    if targets == ["all"]:
        targets = list(TARGETS)
    unknown = [t for t in targets if t not in TARGETS]
    if unknown:
        print(f"unknown targets: {unknown}; available: {sorted(TARGETS)} or 'all'")
        return 2
    for t in targets:
        print(TARGETS[t]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
