"""``python -m repro``: package info and entry points."""
import sys

from repro import __version__


def main() -> int:
    print(f"repro {__version__} — Communication-Avoiding Dynamical Core "
          f"of an Atmospheric GCM (ICPP 2018 reproduction)")
    print()
    print("entry points:")
    print("  python -m repro.bench.figures all   reproduce every figure/table")
    print("  python -m repro.perf.report [f.json] machine-readable report")
    print("  python examples/quickstart.py        run the core")
    print("  pytest tests/                        500+ tests")
    print("  pytest benchmarks/ --benchmark-only  asserted benchmarks")
    print()
    print("docs: README.md DESIGN.md EXPERIMENTS.md docs/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
