"""Initial conditions for the dry-model experiments.

The standard H-S protocol starts from a resting, horizontally uniform
atmosphere plus a small perturbation to break zonal symmetry; the flow
then spins up toward a statistically steady circulation.
"""
from __future__ import annotations

import numpy as np

from repro import constants
from repro.grid.latlon import LatLonGrid
from repro.state.variables import ModelState


def rest_state(grid: LatLonGrid) -> ModelState:
    """Resting atmosphere on the standard stratification.

    In transformed variables this is exactly the zero state: ``u = v = 0``,
    ``T = T~`` and ``p_s = p~_s``.
    """
    return ModelState.zeros(grid.shape3d)


def perturbed_rest_state(
    grid: LatLonGrid,
    amplitude_k: float = 1.0,
    center_lat_deg: float = 40.0,
    center_lon_deg: float = 90.0,
    width_deg: float = 15.0,
) -> ModelState:
    """Rest state plus a localized warm temperature anomaly.

    ``amplitude_k`` is the peak anomaly in kelvin; it enters ``Phi``
    through the transform with ``P`` evaluated at the reference pressure.
    """
    state = rest_state(grid)
    lat = 90.0 - np.degrees(grid.theta_c)  # (ny,)
    lon = np.degrees(grid.lon)  # (nx,)
    dlat = (lat[:, None] - center_lat_deg) / width_deg
    dlon = (lon[None, :] - center_lon_deg + 180.0) % 360.0 - 180.0
    dlon = dlon / width_deg
    bump = np.exp(-(dlat**2 + dlon**2))  # (ny, nx)
    p_ref_fac = np.sqrt(
        (constants.P_REFERENCE - constants.P_TOP) / constants.P_REFERENCE
    )
    phi_amp = (
        p_ref_fac * constants.R_DRY * amplitude_k / constants.B_GRAVITY_WAVE
    )
    # deepest in mid-troposphere
    sigma_profile = np.sin(np.pi * np.linspace(0.0, 1.0, grid.nz)) ** 2
    state.Phi += phi_amp * sigma_profile[:, None, None] * bump[None]
    return state


def balanced_random_state(
    grid: LatLonGrid,
    rng: np.random.Generator,
    wind_amplitude: float = 1.0,
    temp_amplitude_k: float = 0.5,
    psa_amplitude_pa: float = 50.0,
) -> ModelState:
    """Smooth random state for operator and round-trip testing.

    The random fields are smoothed by repeated nearest-neighbour averaging
    so stencil tests are not dominated by grid-scale noise, and the pole
    rows are zonally averaged (a physically admissible polar state).
    """
    def smooth(a: np.ndarray, passes: int = 4) -> np.ndarray:
        for _ in range(passes):
            a = 0.5 * a + 0.25 * (np.roll(a, 1, -1) + np.roll(a, -1, -1))
            inner = a[..., 1:-1, :]
            a[..., 1:-1, :] = (
                0.5 * inner + 0.25 * (a[..., :-2, :] + a[..., 2:, :])
            )
        return a

    nz, ny, nx = grid.shape3d
    p_ref_fac = np.sqrt(
        (constants.P_REFERENCE - constants.P_TOP) / constants.P_REFERENCE
    )
    U = smooth(rng.standard_normal((nz, ny, nx))) * wind_amplitude * p_ref_fac
    V = smooth(rng.standard_normal((nz, ny, nx))) * wind_amplitude * p_ref_fac
    Phi = (
        smooth(rng.standard_normal((nz, ny, nx)))
        * p_ref_fac * constants.R_DRY * temp_amplitude_k / constants.B_GRAVITY_WAVE
    )
    psa = smooth(rng.standard_normal((ny, nx))) * psa_amplitude_pa
    # quiet poles: zonal-mean the rows adjacent to the poles
    for arr in (U, V, Phi):
        arr[:, 0, :] = arr[:, 0, :].mean(axis=-1, keepdims=True)
        arr[:, -1, :] = arr[:, -1, :].mean(axis=-1, keepdims=True)
    V[:, -1, :] = 0.0  # south-pole interface row
    psa[0, :] = psa[0, :].mean()
    psa[-1, :] = psa[-1, :].mean()
    return ModelState(U=U, V=V, Phi=Phi, psa=psa)
