"""Idealized physics: the Held-Suarez dry benchmark forcing (Sec. 5.1)
and initial conditions."""
from repro.physics.held_suarez import HeldSuarezForcing
from repro.physics.initial import (
    rest_state,
    perturbed_rest_state,
    balanced_random_state,
)

__all__ = [
    "HeldSuarezForcing",
    "rest_state",
    "perturbed_rest_state",
    "balanced_random_state",
]
