"""Held-Suarez idealized dry forcing (Held & Suarez 1994, paper ref. [11]).

The paper's evaluation runs the H-S benchmark: no moisture, no radiation —
just Newtonian relaxation of temperature toward a prescribed radiative
equilibrium ``T_eq(theta, sigma)`` and Rayleigh drag on the near-surface
winds.  Both forcings are *linear* in the transformed variables:
``U = P u`` relaxes like ``u``, and ``Phi = P R (T - T~)/b`` relaxes
toward ``Phi_eq = P R (T_eq - T~)/b`` at the same rate, so the forcing is
applied directly in transformed space.

Standard H-S constants: ``k_f = 1/day``, ``k_a = 1/40 day``,
``k_s = 1/4 day``, ``sigma_b = 0.7``, ``dT_y = 60 K``,
``dtheta_z = 10 K``.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.operators.geometry import WorkingGeometry
from repro.state.standard_atmosphere import StandardAtmosphere
from repro.state.transforms import p_factor
from repro.state.variables import ModelState

DAY = 86400.0


@dataclass(frozen=True)
class HeldSuarezForcing:
    """Callable forcing hook for the cores: ``forcing(state, geom, dt)``.

    Uses exact exponential relaxation over ``dt`` (unconditionally stable
    even for the long advection step).
    """

    reference: StandardAtmosphere = StandardAtmosphere()
    k_f: float = 1.0 / DAY
    k_a: float = 1.0 / (40.0 * DAY)
    k_s: float = 1.0 / (4.0 * DAY)
    sigma_b: float = 0.7
    delta_t_y: float = 60.0
    delta_theta_z: float = 10.0
    t_base: float = 315.0
    t_floor: float = 200.0

    def equilibrium_temperature(
        self, geom: WorkingGeometry, ps: np.ndarray
    ) -> np.ndarray:
        """``T_eq(latitude, pressure)`` on the working grid, ``(nz_w, ny_w, nx_w)``."""
        # geographic latitude: lat = pi/2 - colatitude; the H-S profile uses
        # sin^2(lat) = cos^2(colat), cos^2(lat) = sin^2(colat)
        sin2_lat = geom.row3(geom.cos_c**2)
        cos2_lat = geom.row3(geom.sin_c**2)
        sigma = geom.lev3(geom.sigma_mid)
        p = constants.P_TOP + sigma * (ps[None] - constants.P_TOP)
        p_ratio = p / constants.P_REFERENCE
        t_eq = (
            self.t_base
            - self.delta_t_y * sin2_lat
            - self.delta_theta_z * np.log(np.maximum(p_ratio, 1e-8)) * cos2_lat
        ) * np.maximum(p_ratio, 1e-8) ** constants.KAPPA
        return np.maximum(self.t_floor, t_eq)

    def relaxation_rate(self, geom: WorkingGeometry) -> np.ndarray:
        """``k_T(latitude, sigma)``: faster relaxation in the tropical
        boundary layer, ``(nz_w, ny_w, 1)``."""
        sigma = geom.lev3(geom.sigma_mid)
        cos4_lat = geom.row3(geom.sin_c**4)
        bl = np.maximum(0.0, (sigma - self.sigma_b) / (1.0 - self.sigma_b))
        return self.k_a + (self.k_s - self.k_a) * bl * cos4_lat

    def drag_rate(self, geom: WorkingGeometry) -> np.ndarray:
        """``k_v(sigma)``: Rayleigh drag inside the boundary layer,
        ``(nz_w, 1, 1)``."""
        sigma = geom.lev3(geom.sigma_mid)
        return self.k_f * np.maximum(0.0, (sigma - self.sigma_b) / (1.0 - self.sigma_b))

    def __call__(
        self, state: ModelState, geom: WorkingGeometry, dt: float
    ) -> None:
        """Apply the forcing over ``dt`` seconds, in place."""
        # Rayleigh drag (exact integration of dU/dt = -k_v U)
        decay = np.exp(-self.drag_rate(geom) * dt)
        state.U *= decay
        state.V *= decay

        # Newtonian temperature relaxation in transformed space
        ps = state.psa + self.reference.p_surface
        P = p_factor(ps)[None]
        t_eq = self.equilibrium_temperature(geom, ps)
        t_ref = self.reference.temperature_at_sigma(geom.sigma_mid, ps=ps)
        phi_eq = (
            P * constants.R_DRY * (t_eq - t_ref) / constants.B_GRAVITY_WAVE
        )
        k_t = self.relaxation_rate(geom)
        w = np.exp(-k_t * dt)
        state.Phi[...] = phi_eq + (state.Phi - phi_eq) * w
