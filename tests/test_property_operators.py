"""Property-based tests of the filter and vertical-diagnostics invariants."""
import math

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.operators.filter import FILTER_PROFILES, damping_factors, apply_filter_rows


rows_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 3), st.integers(4, 10), st.just(16)),
    elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
)


@settings(max_examples=30, deadline=None)
@given(arr=rows_arrays, profile=st.sampled_from(FILTER_PROFILES))
def test_filter_preserves_zonal_mean(arr, profile):
    """Wavenumber 0 is never touched, for any profile and any data."""
    ny = arr.shape[1]
    sin_rows = np.linspace(0.05, 1.0, ny)
    mask, factors = damping_factors(sin_rows, 16, math.radians(70.0), profile)
    before = arr.mean(axis=-1).copy()
    if mask.any():
        apply_filter_rows(arr, mask, factors)
    assert np.allclose(arr.mean(axis=-1), before, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arr=rows_arrays, profile=st.sampled_from(FILTER_PROFILES))
def test_filter_never_amplifies(arr, profile):
    """Damping factors <= 1: the filtered rows' L2 norm cannot grow."""
    ny = arr.shape[1]
    sin_rows = np.linspace(0.05, 1.0, ny)
    mask, factors = damping_factors(sin_rows, 16, math.radians(70.0), profile)
    if not mask.any():
        return
    norms_before = np.sqrt((arr[:, mask, :] ** 2).sum(axis=-1))
    apply_filter_rows(arr, mask, factors)
    norms_after = np.sqrt((arr[:, mask, :] ** 2).sum(axis=-1))
    assert np.all(norms_after <= norms_before + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    amp=st.floats(0.1, 20.0),
)
def test_vertical_boundary_interfaces_always_zero(seed, amp):
    """PW vanishes at the model top and surface for any admissible state."""
    from repro.grid.latlon import LatLonGrid
    from repro.grid.sigma import SigmaLevels
    from repro.operators.geometry import WorkingGeometry
    from repro.operators.vertical import compute_vertical_diagnostics
    from repro.physics import balanced_random_state
    from repro.core.tendencies import TendencyEngine
    from repro.constants import ModelParameters
    from repro.state.variables import ModelState

    grid = LatLonGrid(nx=16, ny=8, nz=4)
    sigma = SigmaLevels.uniform(grid.nz)
    geom = WorkingGeometry.build_global(grid, sigma, gy=2, gz=0)
    rng = np.random.default_rng(seed)
    state = balanced_random_state(grid, rng, wind_amplitude=amp)
    eng = TendencyEngine(geom, ModelParameters())
    w = ModelState.zeros(geom.shape3d)
    for name, arr in state.fields().items():
        getattr(w, name)[..., 2:-2, :] = arr
    eng.fill_physical_ghosts(w)
    vd = compute_vertical_diagnostics(w.U, w.V, w.Phi, w.psa, geom)
    top = np.abs(vd.pw_iface[0]).max()
    bottom = np.abs(vd.pw_iface[-1]).max()
    scale = max(np.abs(vd.pw_iface).max(), 1e-30)
    assert top <= 1e-12 * max(scale, 1.0)
    assert bottom <= 1e-10 * max(scale, 1.0)
