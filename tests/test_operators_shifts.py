"""Shift primitives and boundary ghost fills."""
import numpy as np
import pytest

from repro.operators.shifts import (
    fill_pole_ghosts,
    fill_pole_ghosts_vrow,
    fill_z_edge_ghosts,
    interior2d,
    interior3d,
    sx,
    sy,
    sz,
)


class TestShifts:
    def test_sx_positive_reads_larger_index(self, rng):
        a = rng.standard_normal((2, 3, 8))
        assert np.array_equal(sx(a, 1)[..., 0], a[..., 1])
        assert np.array_equal(sx(a, -1)[..., 1], a[..., 0])

    def test_sx_periodic_wrap(self, rng):
        a = rng.standard_normal((2, 3, 8))
        assert np.array_equal(sx(a, 1)[..., -1], a[..., 0])

    def test_sy_and_sz(self, rng):
        a = rng.standard_normal((4, 5, 6))
        assert np.array_equal(sy(a, 2)[:, 0, :], a[:, 2, :])
        assert np.array_equal(sz(a, 1)[0], a[1])

    def test_zero_shift_is_identity_view(self, rng):
        a = rng.standard_normal((2, 3, 4))
        assert sx(a, 0) is a
        assert sy(a, 0) is a

    def test_sz_requires_3d(self):
        with pytest.raises(ValueError):
            sz(np.zeros((3, 4)), 1)


class TestPoleGhosts:
    def test_scalar_mirror_shifts_half_circle(self):
        nx, gy = 8, 2
        a = np.zeros((1, 2 + 2 * gy, nx))
        a[0, gy, :] = np.arange(nx, dtype=float)
        fill_pole_ghosts(a, gy, vector=False, north=True, south=False)
        assert np.array_equal(a[0, gy - 1, :], np.roll(np.arange(8.0), 4))

    def test_vector_mirror_flips_sign(self):
        nx, gy = 8, 1
        a = np.zeros((1, 2 + 2 * gy, nx))
        a[0, gy, :] = 1.0
        fill_pole_ghosts(a, gy, vector=True, north=True, south=False)
        assert np.all(a[0, 0, :] == -1.0)

    def test_south_mirror(self):
        nx, gy = 8, 2
        a = np.zeros((4 + 2 * gy, nx))
        a[-gy - 1, :] = np.arange(nx, dtype=float)  # last interior row
        fill_pole_ghosts(a, gy, vector=False, north=False, south=True)
        assert np.array_equal(a[-gy, :], np.roll(np.arange(8.0), 4))

    def test_double_mirror_is_identity(self, rng):
        """Mirroring twice returns the original row values."""
        nx, gy = 8, 2
        a = rng.standard_normal((3, 4 + 2 * gy, nx))
        orig = a[:, gy: gy + 2, :].copy()
        fill_pole_ghosts(a, gy, vector=True, north=True, south=False)
        ghost = a[:, :gy, :]
        # mirror the ghosts back: rows reversed, rolled, sign flipped
        back = -np.roll(ghost[:, ::-1, :], nx // 2, axis=-1)
        assert np.allclose(back, orig)

    def test_requires_even_nx(self):
        with pytest.raises(ValueError):
            fill_pole_ghosts(np.zeros((2, 6, 7)), 1, vector=False)

    def test_gy_zero_noop(self):
        a = np.ones((2, 4, 8))
        fill_pole_ghosts(a, 0, vector=False)
        assert np.all(a == 1.0)


class TestVRowGhosts:
    def test_north_pole_interface_zeroed(self):
        nx, gy = 8, 2
        a = np.ones((6 + 2 * gy, nx))
        fill_pole_ghosts_vrow(a, gy, north=True, south=False)
        assert np.all(a[gy - 1, :] == 0.0)

    def test_north_antisymmetric(self):
        nx, gy = 8, 2
        a = np.zeros((6 + 2 * gy, nx))
        a[gy, :] = np.arange(nx, dtype=float)  # interface +1 row
        fill_pole_ghosts_vrow(a, gy, north=True, south=False)
        assert np.array_equal(a[gy - 2, :], -np.roll(np.arange(8.0), 4))

    def test_south_pole_interface_on_last_interior_row(self):
        nx, gy = 8, 2
        ny_i = 6
        a = np.ones((ny_i + 2 * gy, nx))
        fill_pole_ghosts_vrow(a, gy, north=False, south=True)
        pole = ny_i + gy - 1
        assert np.all(a[pole, :] == 0.0)
        # ghosts mirror interior rows across the pole with sign flip
        assert np.array_equal(
            a[pole + 1, :], -np.roll(a[pole - 1, :], nx // 2)
        )


class TestZEdgeGhosts:
    def test_replication(self):
        a = np.arange(6.0)[:, None, None] * np.ones((6, 2, 3))
        fill_z_edge_ghosts(a, 2, top=True, bottom=True)
        assert np.all(a[0] == 2.0)
        assert np.all(a[1] == 2.0)
        assert np.all(a[-1] == 3.0)

    def test_one_sided(self):
        a = np.arange(5.0)[:, None, None] * np.ones((5, 2, 2))
        fill_z_edge_ghosts(a, 1, top=True, bottom=False)
        assert np.all(a[0] == 1.0)
        assert np.all(a[-1] == 4.0)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            fill_z_edge_ghosts(np.zeros((4, 4)), 1)


class TestInteriorViews:
    def test_interior3d(self):
        a = np.zeros((8, 10, 12))
        v = interior3d(a, gy=2, gz=1, gx=3)
        assert v.shape == (6, 6, 6)
        v += 1.0
        assert a.sum() == 6 * 6 * 6

    def test_interior2d_no_ghosts(self):
        a = np.zeros((4, 5))
        assert interior2d(a, 0, 0).shape == (4, 5)
