"""Checkpoint/restart resilience of the dynamical-core driver."""
import pytest

from repro.constants import ModelParameters
from repro.core.driver import ALGORITHMS, DynamicalCore, default_spmd_timeout
from repro.core.resilience import (
    BlowupError,
    ResilienceConfig,
    ResilienceExhausted,
)
from repro.grid.latlon import LatLonGrid
from repro.physics import perturbed_rest_state
from repro.simmpi import CrashSpec, FaultPlan, LinkFault
from repro.state.io import checkpoint_path, latest_checkpoint, save_state

NSTEPS = 3
NPROCS = 4


@pytest.fixture(scope="module")
def grid():
    # big enough for the CA wide halo (gy=5 < ny_local=8) on 4 ranks
    return LatLonGrid(nx=32, ny=16, nz=8)


@pytest.fixture(scope="module")
def params():
    return ModelParameters(
        dt_adaptation=60.0, dt_advection=60.0, m_iterations=1
    )


@pytest.fixture(scope="module")
def state0(grid):
    return perturbed_rest_state(grid, amplitude_k=2.0)


def make_core(grid, params, algorithm):
    nprocs = 1 if algorithm == "serial" else NPROCS
    return DynamicalCore(
        grid, algorithm=algorithm, nprocs=nprocs, params=params
    )


class TestCheckpointIO:
    def test_latest_checkpoint_picks_highest_step(self, tmp_path, grid, state0):
        for step in (0, 2, 10):
            save_state(checkpoint_path(tmp_path, step), state0, step=step)
        (tmp_path / "other.npz").write_bytes(b"not a checkpoint")
        found = latest_checkpoint(tmp_path)
        assert found is not None
        path, step = found
        assert step == 10
        assert path.name == "ckpt_00000010.npz"

    def test_latest_checkpoint_empty_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None


class TestTimeoutScaling:
    def test_default_spmd_timeout_floors_at_120(self):
        assert default_spmd_timeout(1) == 120.0
        assert default_spmd_timeout(10) == 120.0

    def test_default_spmd_timeout_scales_with_steps(self):
        assert default_spmd_timeout(1000) == 5000.0


class TestCheckpointRestartProperty:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_chunked_run_matches_plain_run(
        self, tmp_path, grid, params, state0, algorithm
    ):
        """Checkpoint every 2 steps; the chunked run must reproduce the
        uninterrupted run (exactly for the serial/original cores; to
        round-off for CA, whose deferred smoothing makes chunk
        boundaries slightly different schedules)."""
        core = make_core(grid, params, algorithm)
        plain, _ = core.run(state0, NSTEPS)
        chunked, diag, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=tmp_path, checkpoint_interval=2),
        )
        diff = plain.max_difference(chunked)
        if algorithm == "ca":
            assert diff < 2e-2
        else:
            assert diff < 1e-13
        assert report.nrestarts == 0
        # 0, 2, 3 -> three checkpoints
        assert [s for s, _ in report.checkpoints] == [0, 2, 3]
        assert all(p.exists() for _, p in report.checkpoints)

    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    def test_resume_from_disk_continues_exactly(
        self, tmp_path, grid, params, state0, algorithm
    ):
        """Kill after 2 of 4 steps, resume in a fresh driver from the
        on-disk checkpoints: final state identical to one uninterrupted
        chunked run."""
        core = make_core(grid, params, algorithm)
        d_full, d_cut = tmp_path / "full", tmp_path / "cut"
        full, _, _ = core.run_resilient(
            state0, 4,
            ResilienceConfig(checkpoint_dir=d_full, checkpoint_interval=1),
        )
        core.run_resilient(
            state0, 2,
            ResilienceConfig(checkpoint_dir=d_cut, checkpoint_interval=1),
        )
        core2 = make_core(grid, params, algorithm)  # "new process"
        resumed, _, report = core2.run_resilient(
            state0, 4,
            ResilienceConfig(
                checkpoint_dir=d_cut, checkpoint_interval=1, resume=True
            ),
        )
        assert report.resumed_from_step == 2
        assert full.max_difference(resumed) == 0.0


class TestCrashRecovery:
    @pytest.mark.parametrize("algorithm", ["original-yz", "ca"])
    @pytest.mark.parametrize("crash_step", [1, 2, 3])
    def test_crash_at_every_step_recovers_bit_identically(
        self, tmp_path, grid, params, state0, algorithm, crash_step
    ):
        """The acceptance sweep: crash rank 1 inside chunk k (for every
        k), restart from the last checkpoint, and end byte-equal to the
        fault-free run of the same chunked driver."""
        core = make_core(grid, params, algorithm)
        d_ref = tmp_path / "ref"
        ref, _, _ = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=d_ref, checkpoint_interval=1),
        )
        plan = FaultPlan(
            seed=0,
            crashes=(CrashSpec(rank=1, at_attempt=crash_step, at_call=5),),
        )
        d_crash = tmp_path / "crash"
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=d_crash, checkpoint_interval=1, faults=plan
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "crash"
        assert report.restarts[0].step == crash_step - 1
        assert any(e.kind == "crash" for e in report.fault_events)


class TestCorruptionRecovery:
    def test_checksum_detects_corrupt_halo_and_recovers(
        self, tmp_path, grid, params, state0
    ):
        """Corrupt every halo payload of attempt 1; with checksums armed
        the chunk dies with CorruptedMessage, rolls back, and the retry
        (attempt 2, fault window closed) completes bit-identically."""
        core = make_core(grid, params, "original-yz")
        d_ref = tmp_path / "ref"
        ref, _, _ = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=d_ref, checkpoint_interval=1),
        )
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(corrupt_probability=1.0, attempts=(1,)),),
        )
        d_cor = tmp_path / "cor"
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=d_cor,
                checkpoint_interval=1,
                faults=plan,
                verify_halo_checksums=True,
                # raw network: corruption must escalate to a rollback
                # instead of being healed in place by retransmission
                transport=None,
                buddy_checkpoints=False,
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "corruption"
        kinds = {e.kind for e in report.fault_events}
        assert "corruption-detected" in kinds

    def test_silent_nan_corruption_caught_by_blowup_guard(
        self, tmp_path, grid, params, state0
    ):
        """Without checksums a NaN-corrupted halo poisons the chunk; the
        finite-fields guard catches it at commit time and rolls back."""
        core = make_core(grid, params, "original-yz")
        d_ref = tmp_path / "ref"
        ref, _, _ = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(checkpoint_dir=d_ref, checkpoint_interval=1),
        )
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(
                corrupt_probability=1.0, corrupt_mode="nan", attempts=(1,),
            ),),
        )
        d_nan = tmp_path / "nan"
        recovered, _, report = core.run_resilient(
            state0, NSTEPS,
            ResilienceConfig(
                checkpoint_dir=d_nan,
                checkpoint_interval=1,
                faults=plan,
                blowup_policy="rollback",
                verify_halo_checksums=False,  # corruption must stay silent
            ),
        )
        assert ref.max_difference(recovered) == 0.0
        assert report.nrestarts == 1
        assert report.restarts[0].kind == "blowup"

    def test_blowup_policy_abort_raises(self, tmp_path, grid, params, state0):
        core = make_core(grid, params, "original-yz")
        plan = FaultPlan(
            seed=0,
            link_faults=(LinkFault(
                corrupt_probability=1.0, corrupt_mode="nan", attempts=(1,),
            ),),
        )
        with pytest.raises(BlowupError):
            core.run_resilient(
                state0, NSTEPS,
                ResilienceConfig(
                    checkpoint_dir=tmp_path,
                    checkpoint_interval=1,
                    faults=plan,
                    blowup_policy="abort",
                    verify_halo_checksums=False,  # corruption must stay silent
                ),
            )


class TestExhaustion:
    def test_persistent_failure_exhausts_restarts(
        self, tmp_path, grid, params, state0
    ):
        """A crash on every attempt must eventually give up."""
        core = make_core(grid, params, "original-yz")
        plan = FaultPlan(
            crashes=tuple(
                CrashSpec(rank=1, at_attempt=k, at_call=1)
                for k in range(1, 12)
            ),
        )
        with pytest.raises(ResilienceExhausted):
            core.run_resilient(
                state0, NSTEPS,
                ResilienceConfig(
                    checkpoint_dir=tmp_path,
                    checkpoint_interval=1,
                    faults=plan,
                    max_restarts=2,
                ),
            )

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResilienceConfig(checkpoint_dir=tmp_path, checkpoint_interval=0)
        with pytest.raises(ValueError):
            ResilienceConfig(checkpoint_dir=tmp_path, blowup_policy="panic")

    def test_fatal_errors_propagate_unretried(
        self, tmp_path, grid, params, state0
    ):
        """Programming errors are not retryable: a bad configuration must
        raise immediately, not burn through max_restarts."""
        bad_grid = LatLonGrid(nx=16, ny=8, nz=4)
        core = DynamicalCore(
            bad_grid, algorithm="ca", nprocs=2,
            params=ModelParameters(
                dt_adaptation=60.0, dt_advection=60.0, m_iterations=3
            ),
        )
        from repro.simmpi import SpmdError

        bad_state = perturbed_rest_state(bad_grid, amplitude_k=2.0)
        with pytest.raises(SpmdError):
            core.run_resilient(
                bad_state, 1,
                ResilienceConfig(checkpoint_dir=tmp_path),
            )


class TestDiagnosticsAccumulation:
    def test_diagnostics_sum_over_chunks(self, tmp_path, grid, params, state0):
        core = make_core(grid, params, "original-yz")
        _, plain_diag, _ = core._run_once(state0, 2)
        _, chunk_diag, report = core.run_resilient(
            state0, 2,
            ResilienceConfig(checkpoint_dir=tmp_path, checkpoint_interval=1),
        )
        assert chunk_diag.p2p_messages == pytest.approx(
            plain_diag.p2p_messages, rel=0.2
        )
        assert chunk_diag.makespan == pytest.approx(
            sum(report.chunk_makespans)
        )
        assert chunk_diag.c_calls == plain_diag.c_calls


class TestVerifiedResumeFallback:
    def test_resume_skips_torn_newest_checkpoint(
        self, tmp_path, grid, params, state0
    ):
        """Kill-during-checkpoint drill: the newest checkpoint is torn
        (truncated mid-write); a resume must fall back to the previous
        good one and still reproduce the uninterrupted run exactly."""
        core = make_core(grid, params, "serial")
        plain, _ = core.run(state0, NSTEPS)

        first = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_interval=1
        )
        core.run_resilient(state0, 2, first)  # checkpoints at 0, 1, 2
        newest = checkpoint_path(tmp_path, 2)
        newest.write_bytes(newest.read_bytes()[:64])

        rcfg = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_interval=1, resume=True
        )
        final, _, report = core.run_resilient(state0, NSTEPS, rcfg)
        assert report.resumed_from_step == 1  # not 2: torn file skipped
        assert plain.max_difference(final) < 1e-12

    def test_on_chunk_hook_fires_per_committed_chunk(
        self, tmp_path, grid, params, state0
    ):
        core = make_core(grid, params, "serial")
        seen = []
        rcfg = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_interval=1,
            on_chunk=lambda step, total: seen.append((step, total)),
        )
        core.run_resilient(state0, NSTEPS, rcfg)
        assert seen == [(1, NSTEPS), (2, NSTEPS), (3, NSTEPS)]
