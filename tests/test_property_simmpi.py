"""Property-based tests: the simulated cluster's determinism and the
max-plus clock algebra under randomized communication patterns."""
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simmpi import MachineModel, run_spmd


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(2, 5),
    seed=st.integers(0, 1000),
    rounds=st.integers(1, 5),
)
def test_random_ring_traffic_deterministic(nranks, seed, rounds):
    """Clocks and payloads are identical across repeated runs."""

    def prog(comm):
        rng = np.random.default_rng(seed + comm.rank)
        acc = 0.0
        for _ in range(rounds):
            comm.compute(float(rng.random()) * 1e-4)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(right, rng.random(8), left)
            acc += float(got.sum())
        return acc

    r1 = run_spmd(nranks, prog)
    r2 = run_spmd(nranks, prog)
    assert r1.clocks == r2.clocks
    assert r1.results == r2.results


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(2, 5),
    compute=st.lists(st.floats(0.0, 1.0), min_size=5, max_size=5),
)
def test_barrier_clock_is_max(nranks, compute):
    """After a barrier every clock equals the slowest rank's arrival."""
    machine = MachineModel(alpha=0.0, beta=0.0)

    def prog(comm):
        comm.compute(compute[comm.rank % len(compute)])
        comm.barrier()
        return comm.clock

    res = run_spmd(nranks, prog, machine=machine)
    expected = max(compute[r % len(compute)] for r in range(nranks))
    assert all(c == res.clocks[0] for c in res.clocks)
    assert res.clocks[0] >= expected - 1e-12


@settings(max_examples=15, deadline=None)
@given(nranks=st.integers(2, 6), nelem=st.integers(1, 64))
def test_allreduce_matches_numpy(nranks, nelem):
    def prog(comm):
        data = np.full(nelem, float(comm.rank + 1))
        return comm.allreduce(data)

    res = run_spmd(nranks, prog)
    expected = sum(range(1, nranks + 1))
    for out in res.results:
        assert np.allclose(out, expected)


@settings(max_examples=10, deadline=None)
@given(nranks=st.integers(2, 4), nmsg=st.integers(1, 10))
def test_message_conservation(nranks, nmsg):
    """Total messages sent == total received; bytes likewise."""

    def prog(comm):
        for m in range(nmsg):
            dest = (comm.rank + 1 + m) % comm.size
            if dest != comm.rank:
                comm.send(dest, np.zeros(m + 1), tag=m)
        for m in range(nmsg):
            src = (comm.rank - 1 - m) % comm.size
            if src != comm.rank:
                comm.recv(src, tag=m)

    res = run_spmd(nranks, prog)
    sent = sum(s.p2p_messages_sent for s in res.stats)
    recv = sum(s.p2p_messages_received for s in res.stats)
    assert sent == recv
    assert sum(s.p2p_bytes_sent for s in res.stats) == sum(
        s.p2p_bytes_received for s in res.stats
    )
